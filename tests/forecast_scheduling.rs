//! Integration: forecasting feeding scheduling (paper §8, second
//! interplay), including publish-subscribe-triggered rescheduling.

use mirabel::core::{TimeSlot, SLOTS_PER_DAY};
use mirabel::forecast::{ForecastHub, ForecastModel, HwtModel};
use mirabel::schedule::{evaluate, reschedule, scenario, Budget, GreedyScheduler, ScenarioConfig};
use mirabel::timeseries::{smape, DemandGenerator};

#[test]
fn forecast_driven_scheduling_beats_no_flexibility() {
    let day = SLOTS_PER_DAY as usize;
    // Train on 3 weeks, forecast the next day.
    let gen = DemandGenerator {
        base: 100.0,
        ..DemandGenerator::default()
    };
    let hist = gen.generate(TimeSlot(0), 21 * day, 1);
    let mut model = HwtModel::daily_weekly();
    model.fit(&hist);
    let forecast = model.forecast(day);
    let truth = gen.generate(TimeSlot((21 * day) as i64), day, 2);
    let err = smape(truth.values(), &forecast);
    assert!(err < 0.1, "forecast quality degraded: {err}");

    // A scheduling problem whose baseline is the *forecast* (recentred);
    // solving it must reduce the cost measured against the *truth*.
    let mut problem = scenario(ScenarioConfig {
        offer_count: 60,
        seed: 4,
        ..ScenarioConfig::default()
    });
    let mean: f64 = forecast.iter().sum::<f64>() / day as f64;
    problem.baseline_imbalance = forecast.iter().map(|v| (v - mean) * 0.3).collect();
    let planned = GreedyScheduler.run(&problem, Budget::evaluations(40_000), 7);

    let mut truth_problem = problem.clone();
    truth_problem.baseline_imbalance = truth.values().iter().map(|v| (v - mean) * 0.3).collect();
    let baseline_cost = evaluate(
        &truth_problem,
        &mirabel::schedule::Solution::baseline(&truth_problem),
    )
    .total();
    let planned_cost = evaluate(&truth_problem, &planned.solution).total();
    assert!(
        planned_cost < baseline_cost,
        "forecast-driven plan {planned_cost} vs do-nothing {baseline_cost}"
    );
}

#[test]
fn pubsub_triggers_rescheduling_only_on_significant_change() {
    let problem = scenario(ScenarioConfig {
        offer_count: 30,
        seed: 9,
        ..ScenarioConfig::default()
    });
    let initial = GreedyScheduler.run(&problem, Budget::evaluations(30_000), 1);

    // The scheduler subscribes with a 5% significance threshold.
    let hub = ForecastHub::new();
    let sub = hub.subscribe(problem.horizon(), 0.05);

    // First forecast publication: always notifies; scheduler plans.
    let f0: Vec<f64> = problem.baseline_imbalance.clone();
    assert_eq!(hub.publish(&f0), vec![sub]);
    hub.poll(sub).unwrap();

    // Tiny forecast wobble (<5%): suppressed, no rescheduling cost paid.
    let f1: Vec<f64> = f0.iter().map(|v| v * 1.01).collect();
    assert!(hub.publish(&f1).is_empty());

    // Significant change: notification arrives, scheduler repairs the
    // previous solution incrementally.
    let f2: Vec<f64> = f0.iter().map(|v| v * 1.5 + 1.0).collect();
    assert_eq!(hub.publish(&f2), vec![sub]);
    let notification = hub.poll(sub).unwrap();
    let mut updated = problem.clone();
    updated.baseline_imbalance = notification.forecast.clone();
    let stale_cost = evaluate(&updated, &initial.solution).total();
    let repaired = reschedule(&updated, &initial.solution, Budget::evaluations(5_000), 2);
    assert!(repaired.cost.total() <= stale_cost);
    assert!(repaired.solution.is_feasible(&updated));

    let (publishes, notifications) = hub.stats();
    assert_eq!(publishes, 3);
    assert_eq!(notifications, 2); // one suppressed
}
