//! Integration: the negotiation calibration loop (§7 + its research
//! direction) closed over real scheduling outcomes.
//!
//! For every offer in a scheduled scenario we compute the *realized
//! profit* the paper's profit-sharing scheme needs — the schedule cost
//! with the offer withheld minus the cost with it included — and feed
//! (pre-execution potentials, realized profit) pairs into the calibrator.
//! The calibrated weights must rank offers by realized value better than
//! the hand-set defaults.

use mirabel::core::TimeSlot;
use mirabel::negotiate::{
    apply_calibration, calibrate_weights, FlexibilityPotentials, PotentialConfig,
    PreExecutionPricing, ProfitSharing, ValueObservation,
};
use mirabel::schedule::{evaluate, Budget, GreedyScheduler, SchedulingProblem, Solution};

/// Realized profit of offer `j` within the executed schedule: the cost of
/// the same schedule with offer `j` withheld, minus the full cost — the
/// offer's (deterministic) marginal contribution.
fn realized_profit(
    problem: &SchedulingProblem,
    solution: &Solution,
    with_cost: f64,
    j: usize,
) -> f64 {
    let mut without = problem.clone();
    without.offers.remove(j);
    let mut partial = solution.clone();
    partial.placements.remove(j);
    evaluate(&without, &partial).total() - with_cost
}

/// A problem where flexibility *is* value: every offer starts from slot 0
/// with the same 2-slot, 2-kWh profile, but time flexibility and energy
/// width vary. A renewable surplus sits at slots 40–50, so only offers
/// flexible enough to reach it (and wide enough to soak it) make money.
fn flexibility_driven_problem() -> SchedulingProblem {
    use mirabel::core::{EnergyRange, FlexOffer, Profile};
    use mirabel::schedule::MarketPrices;
    let horizon = 96usize;
    let offers: Vec<FlexOffer> = (0..30u64)
        .map(|i| {
            let tf = (i % 10) * 6; // 0..54 slots
            let width = (i % 5) as f64 * 0.8; // 0..3.2 kWh of energy flex
            FlexOffer::builder(i, 1)
                .earliest_start(TimeSlot(0))
                .time_flexibility(tf as u32)
                .assignment_before(TimeSlot(-8))
                .profile(Profile::uniform(
                    2,
                    EnergyRange::new(2.0, 2.0 + width).unwrap(),
                ))
                .build()
                .unwrap()
        })
        .collect();
    let mut baseline = vec![0.6f64; horizon];
    for slot in baseline.iter_mut().take(50).skip(40) {
        *slot = -6.0;
    }
    SchedulingProblem::new(
        TimeSlot(0),
        baseline,
        offers,
        MarketPrices::flat(horizon, 0.30, 0.0, 0.0),
        vec![0.25; horizon],
    )
    .unwrap()
}

#[test]
fn calibration_learns_from_realized_profits() {
    let problem = flexibility_driven_problem();
    let full = GreedyScheduler.run(&problem, Budget::evaluations(20_000), 1);
    let with_cost = full.cost.total();
    let now = TimeSlot(-8); // before every assignment deadline

    let cfg = PotentialConfig::default();
    let observations: Vec<ValueObservation> = (0..problem.offers.len())
        .map(|j| ValueObservation {
            potentials: FlexibilityPotentials::compute(&problem.offers[j], now, &cfg),
            realized_profit: realized_profit(&problem, &full.solution, with_cost, j),
        })
        .collect();

    // Profit sharing would pay prosumers from these same numbers.
    let sharing = ProfitSharing::default();
    for obs in &observations {
        let pay = sharing.payment(mirabel::core::Price(obs.realized_profit));
        assert!(pay.eur() >= 0.0);
    }

    let weights =
        calibrate_weights(&observations, 1e-6).expect("enough observations for a 3x3 system");
    let mut calibrated = cfg;
    apply_calibration(&mut calibrated, weights);
    // weights were renormalized to a convex combination
    let sum = calibrated.w_assignment + calibrated.w_scheduling + calibrated.w_energy;
    assert!((sum - 1.0).abs() < 1e-9);

    // Ranking quality: Spearman-style agreement between predicted value
    // and realized profit, calibrated vs default.
    let agreement = |c: &PotentialConfig| -> f64 {
        let mut pairs: Vec<(f64, f64)> = observations
            .iter()
            .map(|o| (o.potentials.total_value(c), o.realized_profit))
            .collect();
        // count concordant pairs
        let mut concordant = 0usize;
        let mut total = 0usize;
        for i in 0..pairs.len() {
            for j in i + 1..pairs.len() {
                let dv = pairs[i].0 - pairs[j].0;
                let dp = pairs[i].1 - pairs[j].1;
                if dv == 0.0 || dp == 0.0 {
                    continue;
                }
                total += 1;
                if (dv > 0.0) == (dp > 0.0) {
                    concordant += 1;
                }
            }
        }
        pairs.clear();
        if total == 0 {
            0.5
        } else {
            concordant as f64 / total as f64
        }
    };

    let default_agreement = agreement(&cfg);
    let calibrated_agreement = agreement(&calibrated);
    assert!(
        calibrated_agreement + 1e-9 >= default_agreement,
        "calibrated {calibrated_agreement} < default {default_agreement}"
    );
    // and the calibrated ranking should be meaningfully informative
    assert!(
        calibrated_agreement > 0.5,
        "calibrated ranking no better than chance: {calibrated_agreement}"
    );
}

#[test]
fn acceptance_with_calibrated_pricing_still_filters() {
    // Plug calibrated weights into the acceptance policy's pricing and
    // check the policy still separates flexible from rigid offers.
    use mirabel::core::{EnergyRange, FlexOffer, Profile};
    use mirabel::negotiate::AcceptancePolicy;

    let mut pricing = PreExecutionPricing::default();
    apply_calibration(&mut pricing.potentials, (0.1, 2.0, 1.0));
    let policy = AcceptancePolicy {
        pricing,
        ..AcceptancePolicy::default()
    };

    let flexible = FlexOffer::builder(1, 1)
        .earliest_start(TimeSlot(100))
        .time_flexibility(24)
        .assignment_before(TimeSlot(90))
        .profile(Profile::uniform(4, EnergyRange::new(1.0, 3.0).unwrap()))
        .build()
        .unwrap();
    let rigid = FlexOffer::builder(2, 1)
        .earliest_start(TimeSlot(100))
        .assignment_before(TimeSlot(90))
        .profile(Profile::uniform(4, EnergyRange::fixed(2.0)))
        .build()
        .unwrap();

    assert!(policy.decide(&flexible, TimeSlot(40)).is_accepted());
    assert!(!policy.decide(&rigid, TimeSlot(40)).is_accepted());
}
