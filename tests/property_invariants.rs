//! Workspace-level property tests: cross-crate invariants under random
//! inputs.

use mirabel::aggregate::{AggregationParams, AggregationPipeline, FlexOfferUpdate};
use mirabel::core::{AggregateId, EnergyRange, FlexOffer, Profile, ScheduledFlexOffer, TimeSlot};
use mirabel::schedule::{evaluate, MarketPrices, SchedulingProblem, Solution};
use proptest::prelude::*;

fn arb_offer(id: u64) -> impl Strategy<Value = FlexOffer> {
    (
        0i64..50,    // earliest start
        0u32..16,    // time flexibility
        1u32..6,     // duration
        0.0f64..4.0, // min energy per slot
        0.0f64..3.0, // extra width
    )
        .prop_map(move |(es, tf, dur, lo, w)| {
            FlexOffer::builder(id, 1)
                .earliest_start(TimeSlot(es))
                .time_flexibility(tf)
                .profile(Profile::uniform(dur, EnergyRange::new(lo, lo + w).unwrap()))
                .build()
                .unwrap()
        })
}

fn arb_offers(n: usize) -> impl Strategy<Value = Vec<FlexOffer>> {
    (1..=n).prop_flat_map(|k| (0..k as u64).map(arb_offer).collect::<Vec<_>>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compression never loses offers, and the flexibility loss is
    /// bounded by the configured tolerance per offer.
    #[test]
    fn aggregation_conserves_offers_and_bounds_loss(
        offers in arb_offers(40),
        sat in 0u32..8,
        tft in 0u32..8,
    ) {
        let params = AggregationParams::p3(sat, tft);
        let pipeline =
            AggregationPipeline::from_scratch(params, None, offers.clone());
        let report = pipeline.report();
        prop_assert_eq!(report.offer_count, offers.len());
        prop_assert!(report.aggregate_count <= offers.len());
        // max per-offer time-flexibility loss is the TF tolerance
        prop_assert!(
            report.loss_per_offer() <= tft as f64 + 1e-9,
            "loss {} > tolerance {}", report.loss_per_offer(), tft
        );
    }

    /// Incremental deletes leave the pipeline exactly as if the deleted
    /// offers had never been inserted.
    #[test]
    fn incremental_delete_equals_never_inserted(
        offers in arb_offers(30),
        keep_mask in proptest::collection::vec(any::<bool>(), 30),
    ) {
        let params = AggregationParams::p3(4, 4);
        let mut incremental = AggregationPipeline::new(params, None);
        incremental.apply(
            offers.iter().cloned().map(FlexOfferUpdate::Insert).collect(),
        );
        let deletions: Vec<_> = offers
            .iter()
            .zip(&keep_mask)
            .filter(|(_, &keep)| !keep)
            .map(|(o, _)| FlexOfferUpdate::Delete(o.id()))
            .collect();
        incremental.apply(deletions);

        let kept: Vec<FlexOffer> = offers
            .iter()
            .zip(&keep_mask)
            .filter(|(_, &keep)| keep)
            .map(|(o, _)| o.clone())
            .collect();
        let fresh = AggregationPipeline::from_scratch(params, None, kept);
        prop_assert_eq!(incremental.report(), fresh.report());
    }

    /// Every macro-offer schedule disaggregates into member schedules
    /// that validate, regardless of the shift/fill chosen.
    #[test]
    fn disaggregation_valid_for_any_choice(
        offers in arb_offers(20),
        shift_frac in 0.0f64..1.0,
        fill in 0.0f64..1.0,
    ) {
        let pipeline = AggregationPipeline::from_scratch(
            AggregationParams::p3(4, 4),
            None,
            offers.clone(),
        );
        for macro_offer in pipeline.macro_offers() {
            let tf = macro_offer.time_flexibility();
            let shift = (tf as f64 * shift_frac) as u32;
            let schedule = ScheduledFlexOffer::at_fraction(
                &macro_offer,
                macro_offer.earliest_start() + shift,
                fill,
            );
            let micro = pipeline
                .disaggregate(AggregateId(macro_offer.id().value()), &schedule)
                .unwrap();
            for s in micro {
                let o = offers.iter().find(|o| o.id() == s.offer_id).unwrap();
                prop_assert!(s.validate_against(o, 1e-6).is_ok());
            }
        }
    }

    /// The schedule cost function is bounded below by the no-market,
    /// no-offer mismatch floor of zero only when imbalance is zero; and
    /// random feasible solutions never beat the all-slots-zero residual.
    #[test]
    fn cost_is_finite_and_feasibility_preserved(
        offers in arb_offers(15),
        seed in 0u64..1000,
    ) {
        let horizon = 80usize;
        let eligible: Vec<FlexOffer> = offers
            .into_iter()
            .filter(|o| o.latest_end() <= TimeSlot(horizon as i64))
            .collect();
        prop_assume!(!eligible.is_empty());
        let problem = SchedulingProblem::new(
            TimeSlot(0),
            vec![0.5; horizon],
            eligible,
            MarketPrices::flat(horizon, 0.08, 0.03, 10.0),
            vec![0.2; horizon],
        ).unwrap();
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let s = Solution::random(&problem, &mut rng);
        prop_assert!(s.is_feasible(&problem));
        let c = evaluate(&problem, &s);
        prop_assert!(c.total().is_finite());
        prop_assert!(c.mismatch_cost >= 0.0);
        prop_assert!(c.energy_bought >= 0.0);
        prop_assert!(c.energy_sold >= 0.0);
    }
}
