//! Integration: aggregation → scheduling → disaggregation across crates.
//!
//! This is the paper's central correctness claim (§4, disaggregation
//! requirement) exercised at realistic scale through the public API.

use mirabel::aggregate::{AggregationParams, AggregationPipeline, BinPackerConfig};
use mirabel::core::{
    AggregateId, Energy, FlexOfferGenerator, GeneratorConfig, TimeSlot, SLOTS_PER_DAY,
};
use mirabel::schedule::{Budget, GreedyScheduler, MarketPrices, SchedulingProblem};

fn day_offers(n: usize, seed: u64) -> Vec<mirabel::core::FlexOffer> {
    FlexOfferGenerator::new(
        GeneratorConfig {
            window_start: TimeSlot(0),
            window_slots: SLOTS_PER_DAY / 2,
            max_time_flexibility: SLOTS_PER_DAY / 4,
            max_slices: 2,
            max_slice_duration: 2,
            assignment_lead: (1, 4),
            ..GeneratorConfig::default()
        },
        seed,
    )
    .take(n)
    .collect()
}

fn schedule_and_disaggregate(params: AggregationParams, binpack: Option<BinPackerConfig>) {
    let offers = day_offers(3_000, 11);
    let pipeline = AggregationPipeline::from_scratch(params, binpack, offers.clone());
    let horizon = SLOTS_PER_DAY as usize;
    let macros: Vec<_> = pipeline
        .macro_offers()
        .into_iter()
        .filter(|m| m.latest_end() <= TimeSlot(horizon as i64))
        .collect();
    assert!(!macros.is_empty());

    let baseline: Vec<f64> = (0..horizon)
        .map(|i| 40.0 * ((i as f64 / horizon as f64) - 0.5))
        .collect();
    let problem = SchedulingProblem::new(
        TimeSlot(0),
        baseline,
        macros,
        MarketPrices::flat(horizon, 0.09, 0.02, 25.0),
        vec![0.2; horizon],
    )
    .unwrap();
    let result = GreedyScheduler.run(&problem, Budget::evaluations(50_000), 3);
    assert!(result.solution.is_feasible(&problem));

    // Disaggregate every scheduled macro offer and re-validate all micro
    // schedules against the original offers; check per-slot conservation.
    let mut validated = 0usize;
    for macro_schedule in result.solution.to_schedules(&problem) {
        let agg_id = AggregateId(macro_schedule.offer_id.value());
        let micro = pipeline.disaggregate(agg_id, &macro_schedule).unwrap();
        for (k, &agg_e) in macro_schedule.slot_energies.iter().enumerate() {
            let t = macro_schedule.start + k as u32;
            let sum: Energy = micro.iter().map(|s| s.energy_at(t)).sum();
            assert!(
                sum.approx_eq(agg_e, 1e-6),
                "energy conservation at {t}: {sum} vs {agg_e}"
            );
        }
        for s in micro {
            let offer = offers.iter().find(|o| o.id() == s.offer_id).unwrap();
            s.validate_against(offer, 1e-6).unwrap();
            validated += 1;
        }
    }
    assert!(validated > 0);
}

#[test]
fn roundtrip_p0() {
    schedule_and_disaggregate(AggregationParams::p0(), None);
}

#[test]
fn roundtrip_p1() {
    schedule_and_disaggregate(AggregationParams::p1(8), None);
}

#[test]
fn roundtrip_p2() {
    schedule_and_disaggregate(AggregationParams::p2(8), None);
}

#[test]
fn roundtrip_p3() {
    schedule_and_disaggregate(AggregationParams::p3(8, 8), None);
}

#[test]
fn roundtrip_with_binpacker() {
    schedule_and_disaggregate(
        AggregationParams::p3(8, 8),
        Some(BinPackerConfig::max_members(25)),
    );
}

#[test]
fn aggregation_enables_larger_instances() {
    // §8: "aggregation is first used to reduce the number of flex-offers
    // substantially" — the same scheduling budget goes much further on
    // the aggregated instance.
    let offers = day_offers(3_000, 5);
    let horizon = SLOTS_PER_DAY as usize;
    let baseline: Vec<f64> = (0..horizon).map(|i| -0.5 * (i % 7) as f64).collect();
    let prices = MarketPrices::flat(horizon, 0.09, 0.02, 25.0);
    let penalties = vec![0.2; horizon];

    let pipeline =
        AggregationPipeline::from_scratch(AggregationParams::p3(16, 16), None, offers.clone());
    let macros: Vec<_> = pipeline
        .macro_offers()
        .into_iter()
        .filter(|m| m.latest_end() <= TimeSlot(horizon as i64))
        .collect();
    let micro_eligible: Vec<_> = offers
        .iter()
        .filter(|m| m.latest_end() <= TimeSlot(horizon as i64))
        .cloned()
        .collect();
    assert!(
        macros.len() * 10 < micro_eligible.len(),
        "compression too weak"
    );

    let p_macro = SchedulingProblem::new(
        TimeSlot(0),
        baseline.clone(),
        macros,
        prices.clone(),
        penalties.clone(),
    )
    .unwrap();
    let budget = Budget::evaluations(20_000);
    let macro_result = GreedyScheduler.run(&p_macro, budget, 1);
    // With the aggregated instance the budget suffices for at least one
    // complete randomized-greedy pass (trajectory non-empty, feasible).
    assert!(!macro_result.trajectory.is_empty());
    assert!(macro_result.solution.is_feasible(&p_macro));
}
