//! Integration: the full EDMS hierarchy under various conditions —
//! including the negotiation layer and failure injection.

use mirabel::edms::{simulate, FailureModel, SchedulerKind, SimulationConfig};

#[test]
fn balancing_improves_and_offers_are_conserved() {
    for seed in [1, 2, 3] {
        let r = simulate(SimulationConfig {
            seed,
            cycles: 3,
            brps: 2,
            prosumers_per_brp: 6,
            offers_per_prosumer: 2,
            budget_evaluations: 10_000,
            ..SimulationConfig::default()
        });
        assert_eq!(
            r.assigned + r.fallbacks,
            r.offers_submitted,
            "offer conservation (seed {seed}): {r:?}"
        );
        assert!(
            r.imbalance_after <= r.imbalance_before,
            "scheduling made things worse (seed {seed}): {r:?}"
        );
    }
}

#[test]
fn all_schedulers_complete_the_hierarchy() {
    for scheduler in [
        SchedulerKind::Greedy,
        SchedulerKind::Evolutionary,
        SchedulerKind::Hybrid,
    ] {
        let r = simulate(SimulationConfig {
            scheduler,
            seed: 5,
            cycles: 2,
            budget_evaluations: 6_000,
            ..SimulationConfig::default()
        });
        assert!(r.assigned > 0, "{scheduler:?} assigned nothing: {r:?}");
    }
}

#[test]
fn tso_and_local_modes_both_balance() {
    let local = simulate(SimulationConfig {
        seed: 8,
        use_tso: false,
        ..SimulationConfig::default()
    });
    let tso = simulate(SimulationConfig {
        seed: 8,
        use_tso: true,
        ..SimulationConfig::default()
    });
    assert!(local.imbalance_after < local.imbalance_before);
    assert!(tso.imbalance_after < tso.imbalance_before);
    // Both modes keep every offer accounted for.
    assert_eq!(local.assigned + local.fallbacks, local.offers_submitted);
    assert_eq!(tso.assigned + tso.fallbacks, tso.offers_submitted);
}

#[test]
fn graceful_degradation_is_monotone_in_loss_rate() {
    let mut prev_assigned = usize::MAX;
    for (i, drop) in [0.0, 0.5, 1.0].into_iter().enumerate() {
        let r = simulate(SimulationConfig {
            seed: 13,
            failure: FailureModel::drop(drop),
            ..SimulationConfig::default()
        });
        assert_eq!(r.assigned + r.fallbacks, r.offers_submitted);
        // More loss ⇒ no more assignments than before (not strictly
        // monotone per-seed, but the extremes must order correctly).
        if i > 0 {
            assert!(r.assigned <= prev_assigned + 2, "loss {drop}: {r:?}");
        }
        prev_assigned = r.assigned;
        if drop == 1.0 {
            assert_eq!(r.assigned, 0);
            assert!((r.imbalance_after - r.imbalance_before).abs() < 1e-6);
        }
    }
}

#[test]
fn message_delay_within_cycle_tolerance_still_works() {
    let r = simulate(SimulationConfig {
        seed: 21,
        failure: FailureModel::delay(3),
        ..SimulationConfig::default()
    });
    assert!(r.assigned > 0, "delays broke the pipeline: {r:?}");
    assert_eq!(r.assigned + r.fallbacks, r.offers_submitted);
}
