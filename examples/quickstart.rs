//! Quickstart: the full MIRABEL loop on one screen.
//!
//! Generate micro flex-offers → aggregate → schedule against a forecast
//! imbalance → disaggregate → validate every micro schedule.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mirabel::aggregate::{AggregationParams, AggregationPipeline};
use mirabel::core::{AggregateId, FlexOfferGenerator, GeneratorConfig, TimeSlot, SLOTS_PER_DAY};
use mirabel::schedule::{
    evaluate, Budget, GreedyScheduler, MarketPrices, SchedulingProblem, Solution,
};

fn main() {
    // --- 1. Micro flex-offers -----------------------------------------
    // 2 000 offers, all executable within one day so a single intra-day
    // scheduling window covers them.
    let config = GeneratorConfig {
        window_start: TimeSlot(0),
        window_slots: SLOTS_PER_DAY / 2,
        max_time_flexibility: SLOTS_PER_DAY / 4,
        max_slices: 2,
        max_slice_duration: 2,
        assignment_lead: (1, 4),
        ..GeneratorConfig::default()
    };
    let offers: Vec<_> = FlexOfferGenerator::new(config, 7).take(2_000).collect();
    println!("generated {} micro flex-offers", offers.len());

    // --- 2. Aggregation ------------------------------------------------
    let pipeline =
        AggregationPipeline::from_scratch(AggregationParams::p3(8, 8), None, offers.clone());
    let report = pipeline.report();
    println!(
        "aggregated into {} macro offers (compression {:.1}x, {:.2} slots of time flexibility lost per offer)",
        report.aggregate_count,
        report.compression_ratio(),
        report.loss_per_offer()
    );

    // --- 3. Scheduling ---------------------------------------------------
    // Macro offers that fit the day; a midday RES surplus to soak up.
    let horizon = SLOTS_PER_DAY as usize;
    let macros: Vec<_> = pipeline
        .macro_offers()
        .into_iter()
        .filter(|m| m.earliest_start() >= TimeSlot(0) && m.latest_end() <= TimeSlot(horizon as i64))
        .collect();
    let baseline: Vec<f64> = (0..horizon)
        .map(|i| {
            let x = i as f64 / horizon as f64;
            60.0 * (0.8 - 1.8 * (-((x - 0.5) * (x - 0.5)) / 0.02).exp())
        })
        .collect();
    let problem = SchedulingProblem::new(
        TimeSlot(0),
        baseline,
        macros,
        MarketPrices::flat(horizon, 0.09, 0.02, 30.0),
        vec![0.2; horizon],
    )
    .expect("macros fit the window");

    let unscheduled = evaluate(&problem, &Solution::baseline(&problem)).total();
    let result = GreedyScheduler.run(&problem, Budget::evaluations(100_000), 1);
    println!(
        "schedule cost {:.2} EUR (open-contract baseline {:.2} EUR) over {} macro offers",
        result.cost.total(),
        unscheduled,
        problem.offers.len()
    );

    // --- 4. Disaggregation ----------------------------------------------
    let mut micro_count = 0usize;
    for macro_schedule in result.solution.to_schedules(&problem) {
        let agg_id = AggregateId(macro_schedule.offer_id.value());
        let micro = pipeline
            .disaggregate(agg_id, &macro_schedule)
            .expect("disaggregation requirement holds by construction");
        for s in &micro {
            let offer = offers.iter().find(|o| o.id() == s.offer_id).unwrap();
            s.validate_against(offer, 1e-6)
                .expect("every micro schedule respects its offer");
        }
        micro_count += micro.len();
    }
    println!("disaggregated into {micro_count} valid micro schedules — done");
}
