//! Multi-region federation: three national hierarchies, one storm.
//!
//! Builds a three-region federation — each region a complete
//! prosumer → BRP → TSO hierarchy with its own network, id space and
//! derived RNG streams — glued by the cross-border macro-offer
//! exchange. A loss storm is scoped to region 1 alone
//! (`ChaosPlan::in_region`), and the campaign proves **fault
//! isolation**: regions 0 and 2 end bit-identical to their solo twins,
//! while region 1 self-heals and converges on its reliable twin after
//! the storm passes.
//!
//! ```sh
//! cargo run --release --example federation
//! ```

use mirabel::core::RegionId;
use mirabel::edms::chaos::{loss_storm, run_federation_campaign, FederationCampaignConfig};
use mirabel::edms::{ChaosPlan, FederationConfig, SimulationConfig};

fn main() {
    let campaign = FederationCampaignConfig {
        federation: FederationConfig {
            regions: 3,
            sim: SimulationConfig {
                brps: 2,
                prosumers_per_brp: 8,
                cycles: 5,
                offers_per_prosumer: 2,
                use_tso: true,
                seed: 7,
                budget_evaluations: 8_000,
                // Cycles 1–2: 50% loss — but only inside the region the
                // campaign scopes this plan to.
                chaos: ChaosPlan::reliable().phase(loss_storm(1, 3, 0.5)),
                ..SimulationConfig::default()
            },
            ..FederationConfig::default()
        },
        storm_region: RegionId(1),
        quiet_cycles: 2,
    };

    println!("--- federation: 3 regions, loss storm scoped to region 1 ---");
    let report = run_federation_campaign(&campaign);
    println!("{}", report.summary());

    println!("\n--- per-region outcome ---");
    for (i, region) in report.federation.regions.iter().enumerate() {
        let stormed = if i == 1 { " (stormed)" } else { "" };
        println!(
            "region {i}{stormed:<10} offers {:>3}  assigned {:>3}  fallbacks {:>3}  \
             dropped {:>3}  imbalance {:>7.1} → {:>6.1}  (−{:.0}%)",
            region.offers_submitted,
            region.assigned,
            region.fallbacks,
            region.network.dropped,
            region.imbalance_before,
            region.imbalance_after,
            100.0 * region.imbalance_reduction(),
        );
    }

    let x = &report.federation.exchange;
    println!(
        "\nexchange: {} delta envelopes, {} resyncs served, {:.1} kWh matched, \
         {} bus bytes, converged: {}",
        x.deltas_published, x.snapshots_served, x.matched_kwh, x.bus.bytes_sent, x.converged,
    );

    assert!(
        report.converged(),
        "isolation or convergence failed:\n{}",
        report.summary()
    );
    println!("\nfault isolation + self-healing: verified");
}
