//! The paper's §2 use scenario, step by step.
//!
//! "A consumer arrives home at 10pm and wants to recharge the electric
//! car's battery at lowest possible price by the next morning. … the
//! trader's node schedules the flex-offer to start energy consumption at
//! 3am … The car's battery is fully charged at 5am."
//!
//! ```sh
//! cargo run --release --example ev_charging
//! ```

use mirabel::core::{
    EnergyRange, FlexOffer, OfferKind, Profile, ScheduledFlexOffer, TimeSlot, SLOTS_PER_HOUR,
};
use mirabel::negotiate::{AcceptancePolicy, PreExecutionPricing};
use mirabel::schedule::{Budget, GreedyScheduler, MarketPrices, SchedulingProblem};

/// Slot of the hour `h` (fractional hours allowed) on day `d`.
fn at(d: i64, h: f64) -> TimeSlot {
    TimeSlot(d * 96 + (h * SLOTS_PER_HOUR as f64) as i64)
}

fn main() {
    // Step 1+2: plug in at 22:00; 2 h charging profile; must finish by
    // 07:00, so the latest start is 05:00. ~6.25 kWh per 15-min slot
    // charges 50 kWh in 2 h.
    let offer = FlexOffer::builder(1, 501)
        .kind(OfferKind::Consumption)
        .earliest_start(at(0, 22.0))
        .latest_start(at(1, 5.0))
        .assignment_before(at(0, 22.0))
        .profile(Profile::uniform(
            2 * SLOTS_PER_HOUR,
            EnergyRange::new(5.0, 6.25).unwrap(),
        ))
        .build()
        .expect("the EV flex-offer is valid");
    println!("flex-offer: {offer}");
    println!(
        "  time flexibility: {} slots ({} hours)",
        offer.time_flexibility(),
        offer.time_flexibility() / SLOTS_PER_HOUR
    );

    // The BRP values and accepts the offer (Negotiation, §7).
    let now = at(0, 21.75);
    let policy = AcceptancePolicy::default();
    let decision = policy.decide(&offer, now);
    println!("  BRP decision: {decision:?}");
    let discount = PreExecutionPricing::default().discount_per_kwh(&offer, now);
    println!("  flexibility discount: {discount} per kWh");

    // Step 3: the trader schedules against the night's wind forecast —
    // a surplus peaking at 03:00 (the reason the paper's schedule lands
    // there).
    let window_start = at(0, 22.0);
    let horizon = 10 * SLOTS_PER_HOUR as usize; // 22:00 → 08:00
    let baseline: Vec<f64> = (0..horizon)
        .map(|i| {
            let t = window_start + i as u32;
            let hours_past_22 = (t - window_start) as f64 / SLOTS_PER_HOUR as f64;
            // wind surplus bump centred on 03:00 (5 h past 22:00)
            -8.0 * (-((hours_past_22 - 5.0) * (hours_past_22 - 5.0)) / 2.0).exp()
        })
        .collect();
    let problem = SchedulingProblem::new(
        window_start,
        baseline,
        vec![offer.clone()],
        MarketPrices::flat(horizon, 0.12, 0.01, 2.0),
        vec![0.25; horizon],
    )
    .expect("offer fits the night window");

    let result = GreedyScheduler.run(&problem, Budget::evaluations(10_000), 3);
    let schedule: ScheduledFlexOffer = result.solution.placements[0].to_schedule(&offer);
    schedule
        .validate_against(&offer, 1e-9)
        .expect("the assignment respects the offer");

    let start_hour = (schedule.start.index() % 96) as f64 / SLOTS_PER_HOUR as f64;
    println!(
        "  scheduled start: {} ({}h{:02}m), total energy {}",
        schedule.start,
        start_hour as u32,
        ((start_hour.fract()) * 60.0) as u32,
        schedule.total_energy()
    );
    println!("  schedule cost: {:.2} EUR", result.cost.total());

    // Step 4: the consumer's node starts supplying energy at the
    // scheduled start; charging completes two hours later.
    println!(
        "  charging window: {} → {} (battery full)",
        schedule.start,
        schedule.end()
    );
    assert!(schedule.start >= offer.earliest_start());
    assert!(schedule.start <= offer.latest_start());
    // The surplus peaks at 03:00; the greedy scheduler should start the
    // charge in the small hours, not at plug-in time.
    assert!(
        schedule.start >= at(1, 1.0),
        "schedule should exploit the night wind surplus"
    );
}
