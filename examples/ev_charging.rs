//! The paper's §2 use scenario — one EV, then the whole fleet.
//!
//! **Act 1** walks the paper's story step by step: "A consumer arrives
//! home at 10pm and wants to recharge the electric car's battery at
//! lowest possible price by the next morning. … the trader's node
//! schedules the flex-offer to start energy consumption at 3am … The
//! car's battery is fully charged at 5am."
//!
//! **Act 2** scales it up and breaks things: an EV fleet behind a
//! three-level hierarchy where 10% of the cars plug in or out every
//! planning round, the wide-area links drop a third of their messages
//! for a day, and a BRP is partitioned from the TSO and healed. The
//! chaos campaign's invariant checker then verifies the paper's
//! fault-tolerance claim the hard way: every offer terminates exactly
//! once, no phantom offers linger at the TSO, no committed schedule
//! violates its energy bounds — and after a quiet period the fleet's
//! plans are **bit-identical** to a run that never saw the storm.
//!
//! ```sh
//! cargo run --release --example ev_charging
//! ```

use mirabel::core::{
    EnergyRange, FlexOffer, NodeId, OfferKind, Profile, ScheduledFlexOffer, TimeSlot,
    SLOTS_PER_HOUR,
};
use mirabel::edms::chaos::{loss_storm, partition_between, run_campaign, CampaignConfig};
use mirabel::edms::{ChaosPlan, SimulationConfig};
use mirabel::negotiate::{AcceptancePolicy, PreExecutionPricing};
use mirabel::schedule::{Budget, GreedyScheduler, MarketPrices, SchedulingProblem};

/// Slot of the hour `h` (fractional hours allowed) on day `d`.
fn at(d: i64, h: f64) -> TimeSlot {
    TimeSlot(d * 96 + (h * SLOTS_PER_HOUR as f64) as i64)
}

fn main() {
    println!("=== Act 1: one EV, the paper's §2 walkthrough ===\n");
    single_ev_walkthrough();
    println!("\n=== Act 2: the fleet, under fire ===\n");
    fleet_churn_campaign();
}

fn single_ev_walkthrough() {
    // Step 1+2: plug in at 22:00; 2 h charging profile; must finish by
    // 07:00, so the latest start is 05:00. ~6.25 kWh per 15-min slot
    // charges 50 kWh in 2 h.
    let offer = FlexOffer::builder(1, 501)
        .kind(OfferKind::Consumption)
        .earliest_start(at(0, 22.0))
        .latest_start(at(1, 5.0))
        .assignment_before(at(0, 22.0))
        .profile(Profile::uniform(
            2 * SLOTS_PER_HOUR,
            EnergyRange::new(5.0, 6.25).unwrap(),
        ))
        .build()
        .expect("the EV flex-offer is valid");
    println!("flex-offer: {offer}");
    println!(
        "  time flexibility: {} slots ({} hours)",
        offer.time_flexibility(),
        offer.time_flexibility() / SLOTS_PER_HOUR
    );

    // The BRP values and accepts the offer (Negotiation, §7).
    let now = at(0, 21.75);
    let policy = AcceptancePolicy::default();
    let decision = policy.decide(&offer, now);
    println!("  BRP decision: {decision:?}");
    let discount = PreExecutionPricing::default().discount_per_kwh(&offer, now);
    println!("  flexibility discount: {discount} per kWh");

    // Step 3: the trader schedules against the night's wind forecast —
    // a surplus peaking at 03:00 (the reason the paper's schedule lands
    // there).
    let window_start = at(0, 22.0);
    let horizon = 10 * SLOTS_PER_HOUR as usize; // 22:00 → 08:00
    let baseline: Vec<f64> = (0..horizon)
        .map(|i| {
            let t = window_start + i as u32;
            let hours_past_22 = (t - window_start) as f64 / SLOTS_PER_HOUR as f64;
            // wind surplus bump centred on 03:00 (5 h past 22:00)
            -8.0 * (-((hours_past_22 - 5.0) * (hours_past_22 - 5.0)) / 2.0).exp()
        })
        .collect();
    let problem = SchedulingProblem::new(
        window_start,
        baseline,
        vec![offer.clone()],
        MarketPrices::flat(horizon, 0.12, 0.01, 2.0),
        vec![0.25; horizon],
    )
    .expect("offer fits the night window");

    let result = GreedyScheduler.run(&problem, Budget::evaluations(10_000), 3);
    let schedule: ScheduledFlexOffer = result.solution.placements[0].to_schedule(&offer);
    schedule
        .validate_against(&offer, 1e-9)
        .expect("the assignment respects the offer");

    let start_hour = (schedule.start.index() % 96) as f64 / SLOTS_PER_HOUR as f64;
    println!(
        "  scheduled start: {} ({}h{:02}m), total energy {}",
        schedule.start,
        start_hour as u32,
        ((start_hour.fract()) * 60.0) as u32,
        schedule.total_energy()
    );
    println!("  schedule cost: {:.2} EUR", result.cost.total());

    // Step 4: the consumer's node starts supplying energy at the
    // scheduled start; charging completes two hours later.
    println!(
        "  charging window: {} → {} (battery full)",
        schedule.start,
        schedule.end()
    );
    assert!(schedule.start >= offer.earliest_start());
    assert!(schedule.start <= offer.latest_start());
    // The surplus peaks at 03:00; the greedy scheduler should start the
    // charge in the small hours, not at plug-in time.
    assert!(
        schedule.start >= at(1, 1.0),
        "schedule should exploit the night wind surplus"
    );
}

/// Act 2: an EV fleet — 3 BRPs × 12 cars, 2 charging offers per car per
/// day — run through a scripted storm with 10% plug-in/plug-out churn
/// every round, then checked for complete self-healing.
fn fleet_churn_campaign() {
    let tso = NodeId(9_999); // the simulation's fixed TSO id
    let plan = ChaosPlan::reliable()
        // day 1: a third of all wide-area messages vanish
        .phase(loss_storm(1, 2, 0.34))
        // day 3: BRP 1 loses its TSO uplink entirely, then heals
        .phase(partition_between(3, 4, NodeId(1), tso));
    let campaign = CampaignConfig {
        sim: SimulationConfig {
            brps: 3,
            prosumers_per_brp: 12,
            offers_per_prosumer: 2,
            cycles: 8,
            use_tso: true,
            chaos: plan,
            churn_fraction: 0.10,
            budget_evaluations: 6_000,
            seed: 22,
            ..SimulationConfig::default()
        },
        quiet_cycles: 4,
    };

    println!(
        "fleet: {} EVs behind {} BRPs and one TSO, {} cycles, 10% churn/round",
        campaign.sim.brps * campaign.sim.prosumers_per_brp,
        campaign.sim.brps,
        campaign.sim.cycles
    );
    println!("storm: 34% loss on day 1, BRP1 <-> TSO partitioned on day 3\n");

    let report = run_campaign(&campaign);
    println!("{}", report.summary());
    println!(
        "\nimbalance reduction under chaos: {:.1}% (baseline run: {:.1}%)",
        report.chaos.imbalance_reduction() * 100.0,
        report.baseline.imbalance_reduction() * 100.0
    );
    assert!(
        report.chaos.network.dropped > 0,
        "the storm should actually have dropped messages"
    );
    assert!(
        report.converged(),
        "the fleet must self-heal completely after the storm"
    );
    println!("\nthe storm left no trace: the quiet tail is bit-identical to the no-chaos run");
}
