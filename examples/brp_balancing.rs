//! A BRP's balancing day: forecasting + aggregation + scheduling together
//! (the §8 component interplay).
//!
//! The BRP trains an HWT model on three weeks of synthetic demand
//! history, forecasts the next day, receives a flood of flex-offers,
//! aggregates them at different parameter settings and schedules each —
//! printing the §8 trade-off between compression, flexibility loss and
//! schedule cost.
//!
//! ```sh
//! cargo run --release --example brp_balancing
//! ```

use mirabel::aggregate::{AggregationParams, AggregationPipeline};
use mirabel::core::{FlexOfferGenerator, GeneratorConfig, TimeSlot, SLOTS_PER_DAY};
use mirabel::forecast::{ForecastModel, HwtModel};
use mirabel::schedule::{
    evaluate, Budget, GreedyScheduler, MarketPrices, SchedulingProblem, Solution,
};
use mirabel::timeseries::{smape, DemandGenerator, WindGenerator};

fn main() {
    let day = SLOTS_PER_DAY as usize;
    let history_days = 21;
    let planning_day_start = TimeSlot((history_days * day) as i64);

    // --- Forecasting (§5) ----------------------------------------------
    let demand_gen = DemandGenerator {
        base: 300.0,
        ..DemandGenerator::default()
    };
    let wind_gen = WindGenerator {
        rated_power: 260.0,
        ..WindGenerator::default()
    };
    let demand_hist = demand_gen.generate(TimeSlot(0), history_days * day, 11);
    let wind_hist = wind_gen.generate(TimeSlot(0), history_days * day, 12);

    let mut demand_model = HwtModel::daily_weekly();
    demand_model.fit(&demand_hist);
    let mut wind_model = HwtModel::daily_weekly();
    wind_model.fit(&wind_hist);

    let demand_forecast = demand_model.forecast(day);
    let wind_forecast = wind_model.forecast(day);

    // how good were we? (compare against the ground-truth generators)
    let demand_truth = demand_gen.generate(planning_day_start, day, 13);
    let wind_truth = wind_gen.generate(planning_day_start, day, 14);
    println!(
        "day-ahead forecast SMAPE: demand {:.4}, wind {:.4}",
        smape(demand_truth.values(), &demand_forecast),
        smape(wind_truth.values(), &wind_forecast),
    );

    // Baseline imbalance = forecast non-flexible demand − forecast RES,
    // recentred so flexible load can actually balance it.
    let mean_net: f64 = demand_forecast
        .iter()
        .zip(&wind_forecast)
        .map(|(d, w)| d - w)
        .sum::<f64>()
        / day as f64;
    let baseline: Vec<f64> = demand_forecast
        .iter()
        .zip(&wind_forecast)
        .map(|(d, w)| (d - w - mean_net) * 0.2)
        .collect();

    // --- Offers for the planning day ------------------------------------
    let offers: Vec<_> = FlexOfferGenerator::new(
        GeneratorConfig {
            window_start: planning_day_start,
            window_slots: (day / 2) as u32,
            max_time_flexibility: (day / 4) as u32,
            max_slices: 2,
            max_slice_duration: 2,
            assignment_lead: (1, 4),
            ..GeneratorConfig::default()
        },
        99,
    )
    .take(5_000)
    .collect();
    println!(
        "{} flex-offers received for the planning day\n",
        offers.len()
    );

    // --- §8 interplay: aggregation level vs scheduling outcome ----------
    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>14} {:>12}",
        "params", "aggregates", "compression", "tf-loss/offer", "open-ct. EUR", "cost EUR"
    );
    for (name, params) in [
        ("P0", AggregationParams::p0()),
        ("P1(16)", AggregationParams::p1(16)),
        ("P2(16)", AggregationParams::p2(16)),
        ("P3(16,16)", AggregationParams::p3(16, 16)),
        ("P3(48,48)", AggregationParams::p3(48, 48)),
    ] {
        let pipeline = AggregationPipeline::from_scratch(params, None, offers.clone());
        let report = pipeline.report();
        let end = planning_day_start + day as u32;
        let macros: Vec<_> = pipeline
            .macro_offers()
            .into_iter()
            .filter(|m| m.earliest_start() >= planning_day_start && m.latest_end() <= end)
            .collect();
        let problem = SchedulingProblem::new(
            planning_day_start,
            baseline.clone(),
            macros,
            MarketPrices::flat(day, 0.09, 0.02, 40.0),
            vec![0.2; day],
        )
        .expect("macros fit the day");
        // What the same offers would cost with no scheduling at all:
        // every device runs its open contract (earliest start, max energy).
        let open_contract: f64 = {
            let open = Solution {
                placements: problem
                    .offers
                    .iter()
                    .map(|o| mirabel::schedule::Placement {
                        start: o.earliest_start(),
                        fractions: vec![1.0; o.duration() as usize],
                    })
                    .collect(),
            };
            evaluate(&problem, &open).total()
        };
        let result = GreedyScheduler.run(&problem, Budget::evaluations(150_000), 5);
        println!(
            "{:<10} {:>10} {:>12.1} {:>14.2} {:>14.2} {:>12.2}",
            name,
            report.aggregate_count,
            report.compression_ratio(),
            report.loss_per_offer(),
            open_contract,
            result.cost.total(),
        );
    }
    println!(
        "\n(open-ct. = the traditional grid: same offers, no scheduling — \
         earliest start at maximum energy)"
    );
}
