//! End-to-end EDMS hierarchy simulation (paper §2/§3 + Figure 1).
//!
//! Runs the full prosumer → BRP → TSO message flow for several planning
//! cycles, with and without message loss, and prints the imbalance
//! reduction scheduling achieves over the open-contract world — plus the
//! graceful degradation when the network misbehaves.
//!
//! Every planning level runs the unified node runtime: BRPs forward
//! macro-offer *deltas* to the TSO, and intra-day forecast refinements
//! reach each level through the pub/sub hub as typed change events —
//! the `replans` column counts the resulting incremental replans
//! (rebase + scoped repair on a live evaluator; in 3-level mode they
//! happen at the TSO, which subscribes to the hub like any BRP).
//!
//! ```sh
//! cargo run --release --example hierarchy_simulation
//! ```

use mirabel::edms::{simulate, FailureModel, SchedulerKind, SimulationConfig};

fn run(label: &str, cfg: SimulationConfig) {
    let r = simulate(cfg);
    println!(
        "{label:<28} offers {:>4}  assigned {:>4}  fallbacks {:>4}  replans {:>3}  \
         imbalance {:>8.1} → {:>8.1}  (−{:.0}%)",
        r.offers_submitted,
        r.assigned,
        r.fallbacks,
        r.replans,
        r.imbalance_before,
        r.imbalance_after,
        100.0 * r.imbalance_reduction(),
    );
}

fn main() {
    let base = SimulationConfig {
        brps: 3,
        prosumers_per_brp: 8,
        cycles: 4,
        offers_per_prosumer: 3,
        seed: 7,
        budget_evaluations: 30_000,
        ..SimulationConfig::default()
    };

    println!("--- two-level hierarchy (BRPs schedule locally) ---");
    run("greedy scheduler", base.clone());
    run(
        "evolutionary scheduler",
        SimulationConfig {
            scheduler: SchedulerKind::Evolutionary,
            ..base.clone()
        },
    );
    run(
        "hybrid scheduler",
        SimulationConfig {
            scheduler: SchedulerKind::Hybrid,
            ..base.clone()
        },
    );

    println!("\n--- three-level hierarchy (macro-offer deltas routed via TSO) ---");
    run(
        "greedy via TSO",
        SimulationConfig {
            use_tso: true,
            ..base.clone()
        },
    );
    run(
        "TSO, heavier refinements",
        SimulationConfig {
            use_tso: true,
            refine_fraction: 0.3,
            ..base.clone()
        },
    );
    run(
        "TSO, no refinements",
        SimulationConfig {
            use_tso: true,
            refine_fraction: 0.0,
            ..base.clone()
        },
    );

    println!("\n--- fault tolerance: message loss → open-contract fallback ---");
    for drop in [0.0, 0.2, 0.5, 1.0] {
        run(
            &format!("{:.0}% message loss", drop * 100.0),
            SimulationConfig {
                failure: FailureModel::drop(drop),
                ..base.clone()
            },
        );
    }
    println!(
        "\nWith 100% loss the system degrades exactly to the traditional\n\
         open-contract world (imbalance unchanged) — the paper's graceful\n\
         degradation guarantee."
    );
}
