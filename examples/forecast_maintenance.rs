//! The forecasting component's operational loop (paper §5): continuous
//! model maintenance, threshold-triggered re-estimation with a
//! context-aware warm start, and publish-subscribe forecast delivery.
//!
//! ```sh
//! cargo run --release --example forecast_maintenance
//! ```

use mirabel::core::{TimeSlot, SLOTS_PER_DAY};
use mirabel::forecast::context::ContextRepository;
use mirabel::forecast::{
    Budget, EvaluationStrategy, ForecastHub, ForecastModel, HwtModel, MaintenanceAction,
    ModelMaintainer,
};
use mirabel::timeseries::DemandGenerator;
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let day = SLOTS_PER_DAY as usize;

    // Train the initial model on two weeks of history.
    let gen = DemandGenerator::default();
    let history = gen.generate(TimeSlot(0), 14 * day, 1);
    let mut model = HwtModel::daily_weekly();
    model.fit(&history);

    // Wrap it in the maintainer: threshold-based evaluation strategy and
    // a shared context repository for warm-started re-estimation.
    let repo = Arc::new(Mutex::new(ContextRepository::new(2.0)));
    let mut maintainer = ModelMaintainer::new(
        model,
        history,
        EvaluationStrategy::ThresholdBased {
            smape_threshold: 0.04,
            window: 32, // two hours of drift is enough evidence
        },
    )
    .with_budget(Budget::evaluations(200))
    .with_repository(Arc::clone(&repo));

    // The scheduler subscribes to day-ahead forecasts, but only wants to
    // be woken for >5 % changes.
    let hub = ForecastHub::new();
    let scheduler_sub = hub.subscribe(day, 0.05);

    // Live operation: three weeks of measurements arrive; after ten days
    // the grid area changes structurally (20 % load growth — think new
    // industrial consumer).
    let future = gen.generate(TimeSlot(14 * day as i64), 21 * day, 2);
    let mut reestimations = 0;
    let mut notifications = 0;
    for (i, (_, y)) in future.iter().enumerate() {
        // After ten days a new industrial consumer raises the level 40 %.
        let y = if i > 10 * day { y * 1.4 } else { y };
        match maintainer.observe(y) {
            MaintenanceAction::Updated => {}
            MaintenanceAction::Reestimated {
                old_error,
                new_error,
                warm_started,
            } => {
                reestimations += 1;
                println!(
                    "slot {i:>5}: re-estimated (rolling SMAPE {old_error:.4} → in-sample {new_error:.4}, warm start: {warm_started})"
                );
            }
        }
        // Publish a forecast for the *next calendar day* every 3 hours —
        // a window fixed in absolute time, so the hub's significance
        // check compares like with like.
        if i % 12 == 0 {
            let until_midnight = day - (i % day);
            let forecast = maintainer.forecast(until_midnight + day);
            if !hub.publish(&forecast[until_midnight..]).is_empty() {
                notifications += 1;
                hub.poll(scheduler_sub);
            }
        }
    }

    let (publishes, delivered) = hub.stats();
    println!("\nafter three weeks of operation:");
    println!("  re-estimations triggered: {reestimations}");
    println!("  context repository cases: {}", repo.lock().len());
    println!(
        "  forecasts published: {publishes}, delivered to the scheduler: {delivered} \
         ({}% suppressed as insignificant)",
        100 * (publishes - delivered) / publishes.max(1)
    );
    println!(
        "  final rolling one-step SMAPE: {:.4}",
        maintainer.rolling_error()
    );
    assert!(notifications > 0);
    assert!(
        reestimations > 0,
        "the structural break must trigger adaptation"
    );
}
