//! Flex-offer forecasting (paper §5).
//!
//! "Flex-offers can be viewed as multi-variate time series that consists
//! of a vector of observations (e.g., min power, max power) per time
//! slice. To forecast flex-offers, we decompose this multi-variate time
//! series into a set of univariate time series and apply our already
//! defined forecast model types to the individual time series."
//!
//! [`FlexOfferSeries`] bins a historical flex-offer population onto the
//! slot grid (by earliest start) as three univariate series — aggregate
//! minimum energy, aggregate maximum energy, offer count — and
//! [`FlexOfferForecaster`] forecasts each dimension independently,
//! re-imposing `min ≤ max` on recomposition.

use crate::hwt::HwtModel;
use crate::model::ForecastModel;
use mirabel_core::{FlexOffer, TimeSlot};
use mirabel_timeseries::TimeSeries;

/// A flex-offer population decomposed into univariate slot series.
#[derive(Debug, Clone, PartialEq)]
pub struct FlexOfferSeries {
    /// Sum of profile minimum total energy of offers starting per slot.
    pub min_energy: TimeSeries,
    /// Sum of profile maximum total energy of offers starting per slot.
    pub max_energy: TimeSeries,
    /// Number of offers with earliest start in each slot.
    pub count: TimeSeries,
}

impl FlexOfferSeries {
    /// Bin `offers` by earliest-start slot over `[from, to)`.
    pub fn from_offers(offers: &[FlexOffer], from: TimeSlot, to: TimeSlot) -> FlexOfferSeries {
        let len = (to - from).max(0) as usize;
        let mut min_e = vec![0.0; len];
        let mut max_e = vec![0.0; len];
        let mut count = vec![0.0; len];
        for o in offers {
            let d = o.earliest_start() - from;
            if d < 0 || d >= len as i64 {
                continue;
            }
            let i = d as usize;
            min_e[i] += o.profile().min_total_energy().kwh();
            max_e[i] += o.profile().max_total_energy().kwh();
            count[i] += 1.0;
        }
        FlexOfferSeries {
            min_energy: TimeSeries::new(from, min_e),
            max_energy: TimeSeries::new(from, max_e),
            count: TimeSeries::new(from, count),
        }
    }

    /// Length in slots.
    pub fn len(&self) -> usize {
        self.count.len()
    }

    /// Whether the series covers no slots.
    pub fn is_empty(&self) -> bool {
        self.count.is_empty()
    }
}

/// Forecast envelope of a future flex-offer population.
#[derive(Debug, Clone, PartialEq)]
pub struct FlexEnvelopeForecast {
    /// Forecast aggregate minimum energy per slot.
    pub min_energy: Vec<f64>,
    /// Forecast aggregate maximum energy per slot.
    pub max_energy: Vec<f64>,
    /// Forecast offer count per slot (non-negative).
    pub count: Vec<f64>,
}

/// Per-dimension univariate forecaster over a [`FlexOfferSeries`].
#[derive(Debug, Clone)]
pub struct FlexOfferForecaster {
    min_model: HwtModel,
    max_model: HwtModel,
    count_model: HwtModel,
    fitted: bool,
}

impl Default for FlexOfferForecaster {
    fn default() -> FlexOfferForecaster {
        FlexOfferForecaster {
            min_model: HwtModel::daily_weekly(),
            max_model: HwtModel::daily_weekly(),
            count_model: HwtModel::daily_weekly(),
            fitted: false,
        }
    }
}

impl FlexOfferForecaster {
    /// New forecaster with daily+weekly HWT models per dimension.
    pub fn new() -> FlexOfferForecaster {
        FlexOfferForecaster::default()
    }

    /// Fit all three univariate models.
    pub fn fit(&mut self, series: &FlexOfferSeries) {
        self.min_model.fit(&series.min_energy);
        self.max_model.fit(&series.max_energy);
        self.count_model.fit(&series.count);
        self.fitted = true;
    }

    /// Whether [`FlexOfferForecaster::fit`] has run.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// Consume one new observation per dimension.
    pub fn update(&mut self, min_energy: f64, max_energy: f64, count: f64) {
        self.min_model.update(min_energy);
        self.max_model.update(max_energy);
        self.count_model.update(count);
    }

    /// Forecast the envelope `horizon` slots ahead. Recomposition clamps
    /// counts to be non-negative and enforces `min ≤ max` per slot.
    pub fn forecast(&self, horizon: usize) -> FlexEnvelopeForecast {
        let min_raw = self.min_model.forecast(horizon);
        let max_raw = self.max_model.forecast(horizon);
        let count_raw = self.count_model.forecast(horizon);
        let mut min_energy = Vec::with_capacity(horizon);
        let mut max_energy = Vec::with_capacity(horizon);
        let mut count = Vec::with_capacity(horizon);
        for i in 0..horizon {
            let lo = min_raw[i].max(0.0);
            let hi = max_raw[i].max(lo);
            min_energy.push(lo);
            max_energy.push(hi);
            count.push(count_raw[i].max(0.0));
        }
        FlexEnvelopeForecast {
            min_energy,
            max_energy,
            count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{EnergyRange, Profile, SLOTS_PER_DAY};

    fn offer(id: u64, start: i64, min_e: f64, max_e: f64) -> FlexOffer {
        FlexOffer::builder(id, 1)
            .earliest_start(TimeSlot(start))
            .profile(Profile::uniform(1, EnergyRange::new(min_e, max_e).unwrap()))
            .build()
            .unwrap()
    }

    #[test]
    fn binning_sums_per_slot() {
        let offers = vec![
            offer(1, 5, 1.0, 2.0),
            offer(2, 5, 3.0, 4.0),
            offer(3, 7, 10.0, 10.0),
            offer(4, 99, 1.0, 1.0), // outside window, ignored
        ];
        let s = FlexOfferSeries::from_offers(&offers, TimeSlot(0), TimeSlot(10));
        assert_eq!(s.len(), 10);
        assert_eq!(s.min_energy.at(TimeSlot(5)), Some(4.0));
        assert_eq!(s.max_energy.at(TimeSlot(5)), Some(6.0));
        assert_eq!(s.count.at(TimeSlot(5)), Some(2.0));
        assert_eq!(s.count.at(TimeSlot(7)), Some(1.0));
        assert_eq!(s.count.at(TimeSlot(0)), Some(0.0));
    }

    #[test]
    fn forecast_envelope_is_consistent() {
        // Daily-periodic offer arrivals for 3 weeks.
        let mut offers = Vec::new();
        let mut id = 0;
        for day in 0..21i64 {
            for k in 0..10 {
                let slot = day * SLOTS_PER_DAY as i64 + 70 + (k % 3); // evening cluster
                offers.push(offer(id, slot, 2.0, 3.0));
                id += 1;
            }
        }
        let s =
            FlexOfferSeries::from_offers(&offers, TimeSlot(0), TimeSlot(21 * SLOTS_PER_DAY as i64));
        let mut f = FlexOfferForecaster::new();
        f.fit(&s);
        assert!(f.is_fitted());
        let env = f.forecast(SLOTS_PER_DAY as usize);
        for i in 0..env.min_energy.len() {
            assert!(env.min_energy[i] >= 0.0);
            assert!(env.max_energy[i] >= env.min_energy[i]);
            assert!(env.count[i] >= 0.0);
        }
        // the evening cluster should dominate the forecast day
        let evening: f64 = env.count[70..74].iter().sum();
        let morning: f64 = env.count[20..24].iter().sum();
        assert!(evening > morning, "evening {evening} vs morning {morning}");
    }

    #[test]
    fn update_moves_all_dimensions() {
        let offers: Vec<FlexOffer> = (0..100)
            .map(|i| offer(i, (i % 96) as i64, 1.0, 2.0))
            .collect();
        let s = FlexOfferSeries::from_offers(&offers, TimeSlot(0), TimeSlot(96 * 8));
        let mut f = FlexOfferForecaster::new();
        f.fit(&s);
        let before = f.forecast(2);
        f.update(before.min_energy[0], before.max_energy[0], before.count[0]);
        let after = f.forecast(1);
        // feeding back its own forecast keeps the envelope finite & ordered
        assert!(after.max_energy[0] >= after.min_energy[0]);
    }

    #[test]
    fn empty_population() {
        let s = FlexOfferSeries::from_offers(&[], TimeSlot(0), TimeSlot(0));
        assert!(s.is_empty());
        let s2 = FlexOfferSeries::from_offers(&[], TimeSlot(0), TimeSlot(5));
        assert_eq!(s2.len(), 5);
        assert_eq!(s2.count.values(), &[0.0; 5]);
    }
}
