//! The EGRV multi-equation regression model (paper §5, \[11\]).
//!
//! Ramanathan/Engle/Granger/Vahid-Araghi/Brace forecast electricity load
//! with *one regression equation per intra-day period*: each period's
//! equation has its own coefficients over deterministic (calendar) and
//! stochastic (lagged load, weather) regressors. MIRABEL adds weather,
//! calendar events and energy-type context as inputs.
//!
//! The equations are independent given the feature matrix, which is what
//! makes the estimation embarrassingly parallel (see [`crate::parallel`]).

use crate::linalg::{dot, ridge_ols};
use crate::model::ForecastModel;
use mirabel_core::{TimeSlot, SLOTS_PER_DAY, SLOTS_PER_WEEK};
use mirabel_timeseries::{Calendar, TimeSeries};

/// Exogenous inputs: calendar events and (optionally) weather.
#[derive(Debug, Clone, Default)]
pub struct Exogenous {
    /// Holiday/weekday calendar.
    pub calendar: Calendar,
    /// Temperature series covering history *and* the forecast horizon
    /// (weather forecasts in production; synthetic here).
    pub temperature: Option<TimeSeries>,
}

/// EGRV structural configuration.
#[derive(Debug, Clone, Copy)]
pub struct EgrvConfig {
    /// Number of intra-day periods, each with its own equation
    /// (24 = hourly equations at 15-minute data).
    pub periods_per_day: usize,
    /// Include the one-week lagged load as a regressor.
    pub use_weekly_lag: bool,
    /// Ridge regularizer for the per-equation least squares.
    pub ridge: f64,
}

impl Default for EgrvConfig {
    fn default() -> EgrvConfig {
        EgrvConfig {
            periods_per_day: 24,
            use_weekly_lag: true,
            ridge: 1e-6,
        }
    }
}

/// EGRV model state: per-period coefficient vectors plus the rolling
/// history buffer that supplies lagged regressors.
#[derive(Debug, Clone)]
pub struct EgrvModel {
    config: EgrvConfig,
    exog: Exogenous,
    /// Coefficients per intra-day period; empty until fitted.
    coeffs: Vec<Vec<f64>>,
    /// Observed history (dense from `start`).
    history: Vec<f64>,
    start: TimeSlot,
}

impl EgrvModel {
    /// Create an unfitted model.
    pub fn new(config: EgrvConfig, exog: Exogenous) -> EgrvModel {
        assert!(config.periods_per_day >= 1);
        assert!((SLOTS_PER_DAY as usize).is_multiple_of(config.periods_per_day));
        EgrvModel {
            coeffs: vec![Vec::new(); config.periods_per_day],
            config,
            exog,
            history: Vec::new(),
            start: TimeSlot::EPOCH,
        }
    }

    /// Default-configured model without weather input.
    pub fn with_calendar(calendar: Calendar) -> EgrvModel {
        EgrvModel::new(
            EgrvConfig::default(),
            Exogenous {
                calendar,
                temperature: None,
            },
        )
    }

    /// Whether the model has been fitted.
    pub fn is_fitted(&self) -> bool {
        self.coeffs.iter().all(|c| !c.is_empty())
    }

    /// Number of regressors per equation.
    pub fn feature_count(&self) -> usize {
        // intercept + daily lag [+ weekly lag] + 6 weekday dummies
        // + holiday + [temp, temp^2]
        let mut k = 1 + 1 + 6 + 1;
        if self.config.use_weekly_lag {
            k += 1;
        }
        if self.exog.temperature.is_some() {
            k += 2;
        }
        k
    }

    /// Intra-day period index of a slot.
    pub fn period_of(&self, t: TimeSlot) -> usize {
        let slots_per_period = SLOTS_PER_DAY as usize / self.config.periods_per_day;
        t.slot_of_day() as usize / slots_per_period
    }

    /// Minimum history (in slots) needed before rows can be formed.
    pub fn min_lag(&self) -> usize {
        if self.config.use_weekly_lag {
            SLOTS_PER_WEEK as usize
        } else {
            SLOTS_PER_DAY as usize
        }
    }

    /// Feature vector for slot `t`, reading lags from `values` (indexed
    /// relative to `self.start`). `idx` is the index of `t` in `values`.
    fn features(&self, t: TimeSlot, values: &[f64], idx: usize) -> Vec<f64> {
        let mut row = Vec::with_capacity(self.feature_count());
        row.push(1.0);
        row.push(values[idx - SLOTS_PER_DAY as usize]);
        if self.config.use_weekly_lag {
            row.push(values[idx - SLOTS_PER_WEEK as usize]);
        }
        let dow = t.day_of_week();
        for d in 1..7 {
            row.push(if dow == d { 1.0 } else { 0.0 });
        }
        row.push(if self.exog.calendar.is_holiday(t) {
            1.0
        } else {
            0.0
        });
        if let Some(temp) = &self.exog.temperature {
            let v = temp.at(t).unwrap_or_else(|| temp.mean());
            row.push(v);
            row.push(v * v);
        }
        row
    }

    /// Per-period training-row builder; exposed so the parallel estimator
    /// can fit equations independently.
    pub(crate) fn training_rows(
        &self,
        period: usize,
        values: &[f64],
        start: TimeSlot,
    ) -> (Vec<Vec<f64>>, Vec<f64>) {
        let min_lag = self.min_lag();
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for idx in min_lag..values.len() {
            let t = start + idx as u32;
            if self.period_of(t) != period {
                continue;
            }
            rows.push(self.features(t, values, idx));
            ys.push(values[idx]);
        }
        (rows, ys)
    }

    /// Fit one period's equation; used by both the serial `fit` and the
    /// parallel path.
    pub(crate) fn fit_period(&self, period: usize, values: &[f64], start: TimeSlot) -> Vec<f64> {
        let (rows, ys) = self.training_rows(period, values, start);
        if rows.len() < self.feature_count() {
            // Not enough data: fall back to a mean-only equation.
            let mean = if ys.is_empty() {
                0.0
            } else {
                ys.iter().sum::<f64>() / ys.len() as f64
            };
            let mut c = vec![0.0; self.feature_count()];
            c[0] = mean;
            return c;
        }
        ridge_ols(&rows, &ys, self.config.ridge).unwrap_or_else(|_| {
            let mut c = vec![0.0; self.feature_count()];
            c[0] = ys.iter().sum::<f64>() / ys.len() as f64;
            c
        })
    }

    /// Install externally-fitted coefficients (parallel estimation path).
    pub(crate) fn install(&mut self, coeffs: Vec<Vec<f64>>, history: &TimeSeries) {
        assert_eq!(coeffs.len(), self.config.periods_per_day);
        self.coeffs = coeffs;
        self.history = history.values().to_vec();
        self.start = history.start();
    }

    /// Read-only view of the internal history buffer (for tests).
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Configuration accessor.
    pub fn config(&self) -> &EgrvConfig {
        &self.config
    }
}

impl ForecastModel for EgrvModel {
    fn name(&self) -> &'static str {
        "EGRV"
    }

    /// EGRV coefficients are estimated in closed form (least squares), so
    /// there are no black-box tunable parameters.
    fn params(&self) -> Vec<f64> {
        Vec::new()
    }

    fn set_params(&mut self, params: &[f64]) {
        assert!(params.is_empty(), "EGRV has no black-box parameters");
    }

    fn param_bounds(&self) -> Vec<(f64, f64)> {
        Vec::new()
    }

    fn fit(&mut self, history: &TimeSeries) {
        self.history = history.values().to_vec();
        self.start = history.start();
        let values = self.history.clone();
        for p in 0..self.config.periods_per_day {
            self.coeffs[p] = self.fit_period(p, &values, self.start);
        }
    }

    fn update(&mut self, value: f64) {
        // "shift of lagged input values" — appending moves every lag window.
        self.history.push(value);
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        let mut values = self.history.clone();
        let mut out = Vec::with_capacity(horizon);
        for k in 0..horizon {
            let idx = values.len();
            let t = self.start + idx as u32;
            let pred = if idx < self.min_lag() || !self.is_fitted() {
                // insufficient lags: persist the last value
                values.last().copied().unwrap_or(0.0)
            } else {
                let row = self.features(t, &values, idx);
                dot(&row, &self.coeffs[self.period_of(t)])
            };
            out.push(pred);
            values.push(pred);
            let _ = k;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_timeseries::{smape, DemandGenerator};

    fn demand(days: usize, seed: u64) -> TimeSeries {
        DemandGenerator::default().generate(TimeSlot(0), days * SLOTS_PER_DAY as usize, seed)
    }

    #[test]
    fn construction_validates_period_divisibility() {
        let ok = EgrvModel::new(
            EgrvConfig {
                periods_per_day: 96,
                ..EgrvConfig::default()
            },
            Exogenous::default(),
        );
        assert_eq!(ok.config().periods_per_day, 96);
    }

    #[test]
    #[should_panic]
    fn construction_rejects_nondivisible_periods() {
        EgrvModel::new(
            EgrvConfig {
                periods_per_day: 7,
                ..EgrvConfig::default()
            },
            Exogenous::default(),
        );
    }

    #[test]
    fn feature_count_varies_with_config() {
        let base = EgrvModel::new(
            EgrvConfig {
                use_weekly_lag: false,
                ..EgrvConfig::default()
            },
            Exogenous::default(),
        );
        assert_eq!(base.feature_count(), 9);
        let weekly = EgrvModel::new(EgrvConfig::default(), Exogenous::default());
        assert_eq!(weekly.feature_count(), 10);
        let weather = EgrvModel::new(
            EgrvConfig::default(),
            Exogenous {
                calendar: Calendar::new(),
                temperature: Some(TimeSeries::new(TimeSlot(0), vec![10.0; 96])),
            },
        );
        assert_eq!(weather.feature_count(), 12);
    }

    #[test]
    fn period_mapping() {
        let m = EgrvModel::with_calendar(Calendar::new());
        assert_eq!(m.period_of(TimeSlot(0)), 0);
        assert_eq!(m.period_of(TimeSlot(3)), 0);
        assert_eq!(m.period_of(TimeSlot(4)), 1);
        assert_eq!(m.period_of(TimeSlot(95)), 23);
        assert_eq!(m.period_of(TimeSlot(96)), 0);
    }

    #[test]
    fn learns_synthetic_demand() {
        let s = demand(28, 4);
        let (train, test) = s.split_at_slot(TimeSlot(21 * SLOTS_PER_DAY as i64));
        let mut m = EgrvModel::with_calendar(Calendar::new());
        m.fit(&train);
        assert!(m.is_fitted());
        let f = m.forecast(SLOTS_PER_DAY as usize);
        let err = smape(&test.values()[..SLOTS_PER_DAY as usize], &f);
        assert!(err < 0.08, "EGRV day-ahead SMAPE {err}");
    }

    #[test]
    fn update_extends_lag_window() {
        let s = demand(15, 8);
        let mut m = EgrvModel::with_calendar(Calendar::new());
        m.fit(&s);
        let n = m.history_len();
        m.update(42.0);
        assert_eq!(m.history_len(), n + 1);
    }

    #[test]
    fn unfitted_model_persists_last_value() {
        let m = EgrvModel::with_calendar(Calendar::new());
        let f = m.forecast(3);
        assert_eq!(f, vec![0.0, 0.0, 0.0]);
        let mut m2 = EgrvModel::with_calendar(Calendar::new());
        m2.update(7.0);
        assert_eq!(m2.forecast(2), vec![7.0, 7.0]);
    }

    #[test]
    fn short_history_falls_back_to_mean_equation() {
        let s = TimeSeries::new(TimeSlot(0), vec![5.0; 100]); // < one week
        let mut m = EgrvModel::with_calendar(Calendar::new());
        m.fit(&s);
        assert!(m.is_fitted()); // mean-only equations
        let f = m.forecast(2);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn no_black_box_params() {
        let m = EgrvModel::with_calendar(Calendar::new());
        assert!(m.params().is_empty());
        assert!(m.param_bounds().is_empty());
    }

    #[test]
    fn temperature_regressors_improve_weather_driven_demand() {
        // Weather-sensitive demand (electric heating); the temperature
        // series — history plus "weather forecast" for the horizon — is
        // supplied as the exogenous input, exactly as §5 describes.
        let gen = DemandGenerator {
            noise: 0.002,
            ..DemandGenerator::default()
        };
        let days = 35;
        let temp = gen.temperature(TimeSlot(0), days * SLOTS_PER_DAY as usize, 42);
        let demand = gen.generate_with_temperature(&temp, 2.0, 7);
        let split = TimeSlot(((days - 7) * SLOTS_PER_DAY as usize) as i64);
        let (train, test) = demand.split_at_slot(split);

        let mut with_weather = EgrvModel::new(
            EgrvConfig::default(),
            Exogenous {
                calendar: Calendar::new(),
                temperature: Some(temp.clone()),
            },
        );
        with_weather.fit(&train);
        let mut without_weather = EgrvModel::with_calendar(Calendar::new());
        without_weather.fit(&train);

        let horizon = 7 * SLOTS_PER_DAY as usize;
        let e_with = smape(&test.values()[..horizon], &with_weather.forecast(horizon));
        let e_without = smape(
            &test.values()[..horizon],
            &without_weather.forecast(horizon),
        );
        assert!(
            e_with < e_without,
            "weather-aware {e_with} vs blind {e_without}"
        );
    }

    #[test]
    fn holiday_dummy_improves_holiday_forecast() {
        // Build a calendar where day 21 is a holiday, with holidays in
        // training (days 7 and 14) teaching the dummy.
        let cal = Calendar::with_holidays([7, 14, 21]);
        let gen = DemandGenerator {
            calendar: cal.clone(),
            noise: 0.0,
            ..DemandGenerator::default()
        };
        let s = gen.generate(TimeSlot(0), 22 * SLOTS_PER_DAY as usize, 5);
        let (train, test) = s.split_at_slot(TimeSlot(21 * SLOTS_PER_DAY as i64));

        let mut with_cal = EgrvModel::with_calendar(cal);
        with_cal.fit(&train);
        let mut without_cal = EgrvModel::with_calendar(Calendar::new());
        without_cal.fit(&train);

        let horizon = SLOTS_PER_DAY as usize;
        let e_with = smape(&test.values()[..horizon], &with_cal.forecast(horizon));
        let e_without = smape(&test.values()[..horizon], &without_cal.forecast(horizon));
        assert!(
            e_with <= e_without,
            "holiday-aware {e_with} vs unaware {e_without}"
        );
    }
}
