//! Holt-Winters-Taylor exponential smoothing (paper §5, \[12\]).
//!
//! Taylor's "triple seasonal methods for short-term electricity demand
//! forecasting" extend Holt-Winters with up to three additive seasonal
//! cycles (intra-day, intra-week, intra-year) and a first-order
//! autoregressive adjustment of the residual. The additive
//! error-correction form implemented here is:
//!
//! ```text
//! base_t = l + d[t mod s1] + w[t mod s2] (+ a[t mod s3])
//! ŷ_t    = base_t + φ · e_{t-1}
//! e_t    = y_t − base_t
//! l      += α  · (y_t − ŷ_t)
//! d[…]   += γd · (y_t − ŷ_t)
//! w[…]   += γw · (y_t − ŷ_t)
//! a[…]   += γa · (y_t − ŷ_t)
//! ```
//!
//! A `k`-step forecast adds `φᵏ · e_last` to the seasonal base, so the AR
//! correction fades with the horizon.

use crate::model::ForecastModel;
use mirabel_core::{SLOTS_PER_DAY, SLOTS_PER_WEEK};
use mirabel_timeseries::TimeSeries;

/// Which seasonal cycles the model carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seasonality {
    /// Intra-day cycle only.
    Daily,
    /// Intra-day + intra-week cycles (the default for energy demand).
    DailyWeekly,
    /// Intra-day + intra-week + intra-year cycles (Taylor's triple).
    DailyWeeklyAnnual,
}

impl Seasonality {
    /// The cycle lengths in slots, shortest first.
    pub fn periods(self) -> Vec<usize> {
        match self {
            Seasonality::Daily => vec![SLOTS_PER_DAY as usize],
            Seasonality::DailyWeekly => {
                vec![SLOTS_PER_DAY as usize, SLOTS_PER_WEEK as usize]
            }
            Seasonality::DailyWeeklyAnnual => vec![
                SLOTS_PER_DAY as usize,
                SLOTS_PER_WEEK as usize,
                365 * SLOTS_PER_DAY as usize,
            ],
        }
    }
}

/// HWT configuration: seasonal structure (not tuned by the estimator).
#[derive(Debug, Clone, Copy)]
pub struct HwtConfig {
    /// Seasonal cycles to model.
    pub seasonality: Seasonality,
}

impl Default for HwtConfig {
    fn default() -> HwtConfig {
        HwtConfig {
            seasonality: Seasonality::DailyWeekly,
        }
    }
}

/// Holt-Winters-Taylor model state.
#[derive(Debug, Clone)]
pub struct HwtModel {
    periods: Vec<usize>,
    /// Smoothing parameters: alpha, one gamma per cycle, then phi.
    params: Vec<f64>,
    level: f64,
    seasons: Vec<Vec<f64>>,
    /// Raw residual `y - base` of the last observation (AR input).
    last_err: f64,
    /// Index of the next expected observation relative to the fit origin.
    t: usize,
    fitted: bool,
}

impl HwtModel {
    /// Create an unfitted model with default parameters
    /// (α=0.1, γ=0.2 each, φ=0.5).
    pub fn new(config: HwtConfig) -> HwtModel {
        let periods = config.seasonality.periods();
        let mut params = vec![0.1];
        params.extend(std::iter::repeat_n(0.2, periods.len()));
        params.push(0.5);
        HwtModel {
            seasons: periods.iter().map(|&p| vec![0.0; p]).collect(),
            periods,
            params,
            level: 0.0,
            last_err: 0.0,
            t: 0,
            fitted: false,
        }
    }

    /// Model with daily+weekly seasonality (the Figure 4 configuration).
    pub fn daily_weekly() -> HwtModel {
        HwtModel::new(HwtConfig::default())
    }

    fn alpha(&self) -> f64 {
        self.params[0]
    }

    fn gamma(&self, cycle: usize) -> f64 {
        self.params[1 + cycle]
    }

    fn phi(&self) -> f64 {
        self.params[self.params.len() - 1]
    }

    fn base_at(&self, t: usize) -> f64 {
        let mut v = self.level;
        for (cycle, period) in self.periods.iter().enumerate() {
            v += self.seasons[cycle][t % period];
        }
        v
    }

    /// Whether [`ForecastModel::fit`] has been called.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn initialize(&mut self, values: &[f64]) {
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n.max(1) as f64;
        self.level = mean;
        // Initialize each cycle's indices as the average deviation of the
        // slots mapping to that index, shorter cycles first; longer cycles
        // absorb what the shorter ones left over.
        let mut residual: Vec<f64> = values.iter().map(|v| v - mean).collect();
        for (cycle, &period) in self.periods.iter().enumerate() {
            let mut sums = vec![0.0; period];
            let mut counts = vec![0usize; period];
            for (i, r) in residual.iter().enumerate() {
                sums[i % period] += r;
                counts[i % period] += 1;
            }
            for i in 0..period {
                self.seasons[cycle][i] = if counts[i] > 0 {
                    sums[i] / counts[i] as f64
                } else {
                    0.0
                };
            }
            for (i, r) in residual.iter_mut().enumerate() {
                *r -= self.seasons[cycle][i % period];
            }
        }
        self.last_err = 0.0;
        self.t = 0;
    }
}

impl ForecastModel for HwtModel {
    fn name(&self) -> &'static str {
        "HWT"
    }

    fn params(&self) -> Vec<f64> {
        self.params.clone()
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.params.len(), "HWT parameter count");
        self.params.copy_from_slice(params);
    }

    fn param_bounds(&self) -> Vec<(f64, f64)> {
        let mut b = vec![(0.0, 1.0)]; // alpha
        b.extend(std::iter::repeat_n((0.0, 1.0), self.periods.len())); // gammas
        b.push((-0.95, 0.95)); // phi
        b
    }

    fn fit(&mut self, history: &TimeSeries) {
        self.initialize(history.values());
        self.fitted = true;
        // Run the smoothing recursions over the history so the state ends
        // positioned at the end of the series.
        for &y in history.values() {
            self.update(y);
        }
    }

    fn update(&mut self, y: f64) {
        let base = self.base_at(self.t);
        let pred = base + self.phi() * self.last_err;
        let err = y - pred;
        self.level += self.alpha() * err;
        let t = self.t;
        for (cycle, period) in self.periods.iter().enumerate() {
            let g = self.gamma(cycle);
            self.seasons[cycle][t % period] += g * err;
        }
        self.last_err = y - base;
        self.t += 1;
    }

    fn forecast(&self, horizon: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(horizon);
        let mut ar = self.last_err;
        for k in 0..horizon {
            ar *= self.phi();
            out.push(self.base_at(self.t + k) + ar);
        }
        out
    }
}

/// Convenience: fit an HWT model on `history` and forecast `horizon` slots.
pub fn fit_and_forecast(history: &TimeSeries, horizon: usize) -> Vec<f64> {
    let mut m = HwtModel::daily_weekly();
    m.fit(history);
    m.forecast(horizon)
}

/// Seasonal-naive baseline: repeat the value one `period` ago.
pub fn seasonal_naive(history: &TimeSeries, horizon: usize, period: usize) -> Vec<f64> {
    let v = history.values();
    (0..horizon)
        .map(|k| {
            if v.len() >= period {
                v[v.len() - period + (k % period)]
            } else if let Some(&last) = v.last() {
                last
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::TimeSlot;
    use mirabel_timeseries::{smape, DemandGenerator};

    fn demand(days: usize, seed: u64) -> TimeSeries {
        DemandGenerator::default().generate(TimeSlot(0), days * SLOTS_PER_DAY as usize, seed)
    }

    #[test]
    fn seasonality_periods() {
        assert_eq!(Seasonality::Daily.periods(), vec![96]);
        assert_eq!(Seasonality::DailyWeekly.periods(), vec![96, 672]);
        assert_eq!(Seasonality::DailyWeeklyAnnual.periods().len(), 3);
    }

    #[test]
    fn constant_series_forecasts_constant() {
        let s = TimeSeries::new(TimeSlot(0), vec![5.0; 96 * 15]);
        let mut m = HwtModel::daily_weekly();
        m.fit(&s);
        for f in m.forecast(96) {
            assert!((f - 5.0).abs() < 1e-6, "forecast {f}");
        }
    }

    #[test]
    fn pure_daily_cycle_learned() {
        // y_t = 10 + sin(2π t/96): perfectly daily-periodic.
        let vals: Vec<f64> = (0..96 * 20)
            .map(|t| 10.0 + (2.0 * std::f64::consts::PI * t as f64 / 96.0).sin())
            .collect();
        let s = TimeSeries::new(TimeSlot(0), vals.clone());
        let mut m = HwtModel::new(HwtConfig {
            seasonality: Seasonality::Daily,
        });
        m.fit(&s);
        let f = m.forecast(96);
        let actual: Vec<f64> = (0..96)
            .map(|k| 10.0 + (2.0 * std::f64::consts::PI * ((96 * 20 + k) as f64) / 96.0).sin())
            .collect();
        let err = smape(&actual, &f);
        assert!(err < 0.01, "SMAPE {err}");
    }

    #[test]
    fn beats_seasonal_naive_on_synthetic_demand() {
        let s = demand(28, 3);
        let (train, test) = s.split_at_slot(TimeSlot(21 * SLOTS_PER_DAY as i64));
        let mut m = HwtModel::daily_weekly();
        m.fit(&train);
        let f = m.forecast(96);
        let naive = seasonal_naive(&train, 96, SLOTS_PER_WEEK as usize);
        let actual = &test.values()[..96];
        let e_model = smape(actual, &f);
        let e_naive = smape(actual, &naive);
        assert!(
            e_model <= e_naive * 1.2,
            "model {e_model} vs naive {e_naive}"
        );
        assert!(e_model < 0.10, "model error too high: {e_model}");
    }

    #[test]
    fn update_shifts_state_forward() {
        let s = demand(14, 1);
        let mut a = HwtModel::daily_weekly();
        a.fit(&s);
        // feeding the model its own forecast keeps the next forecast coherent
        let f1 = a.forecast(2);
        a.update(f1[0]);
        let f2 = a.forecast(1);
        assert!((f2[0] - f1[1]).abs() / f1[1].abs() < 0.05);
    }

    #[test]
    fn error_grows_with_horizon_on_noisy_series() {
        let s = demand(28, 9);
        let (train, test) = s.split_at_slot(TimeSlot(21 * SLOTS_PER_DAY as i64));
        let mut m = HwtModel::daily_weekly();
        m.fit(&train);
        let f = m.forecast(4 * SLOTS_PER_DAY as usize);
        let day_err = |d: usize| {
            let lo = d * SLOTS_PER_DAY as usize;
            let hi = lo + SLOTS_PER_DAY as usize;
            smape(&test.values()[lo..hi], &f[lo..hi])
        };
        // horizon day 4 should not be more accurate than day 1
        assert!(day_err(3) >= day_err(0) * 0.8);
    }

    #[test]
    fn params_roundtrip_and_bounds() {
        let mut m = HwtModel::daily_weekly();
        let p = m.params();
        assert_eq!(p.len(), 4); // alpha, 2 gammas, phi
        let bounds = m.param_bounds();
        assert_eq!(bounds.len(), 4);
        m.set_params(&[0.3, 0.1, 0.05, 0.2]);
        assert_eq!(m.params(), vec![0.3, 0.1, 0.05, 0.2]);
    }

    #[test]
    #[should_panic(expected = "HWT parameter count")]
    fn wrong_param_count_panics() {
        HwtModel::daily_weekly().set_params(&[0.1]);
    }

    #[test]
    fn seasonal_naive_baseline() {
        let s = TimeSeries::new(TimeSlot(0), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(seasonal_naive(&s, 3, 2), vec![3.0, 4.0, 3.0]);
        assert_eq!(seasonal_naive(&s, 2, 10), vec![4.0, 4.0]);
        let empty = TimeSeries::empty(TimeSlot(0));
        assert_eq!(seasonal_naive(&empty, 1, 2), vec![0.0]);
    }

    #[test]
    fn triple_seasonality_tracks_annual_cycle() {
        // Two years of noise-free demand with a strong annual component:
        // the triple-seasonal model should forecast mid-summer correctly
        // from end-of-year state, while daily+weekly misses the annual
        // swing it has never modelled.
        let gen = DemandGenerator {
            noise: 0.0,
            annual_amplitude: 0.25,
            ..DemandGenerator::default()
        };
        let n = 2 * 365 * SLOTS_PER_DAY as usize;
        let s = gen.generate(TimeSlot(0), n, 1);
        let mut triple = HwtModel::new(HwtConfig {
            seasonality: Seasonality::DailyWeeklyAnnual,
        });
        triple.fit(&s);
        // forecast ~half a year ahead, one day's worth
        let horizon = 183 * SLOTS_PER_DAY as usize;
        let f = triple.forecast(horizon);
        let actual: Vec<f64> = (0..SLOTS_PER_DAY as usize)
            .map(|k| gen.expected(TimeSlot((n + horizon - SLOTS_PER_DAY as usize + k) as i64)))
            .collect();
        let err_triple = smape(&actual, &f[horizon - SLOTS_PER_DAY as usize..]);

        let mut double = HwtModel::daily_weekly();
        double.fit(&s);
        let g = double.forecast(horizon);
        let err_double = smape(&actual, &g[horizon - SLOTS_PER_DAY as usize..]);
        assert!(
            err_triple < err_double,
            "triple {err_triple} vs double {err_double}"
        );
    }

    #[test]
    fn evaluate_gives_small_error_on_smooth_series() {
        let s = demand(21, 5);
        let mut m = HwtModel::daily_weekly();
        let err = m.evaluate(&s, 14 * SLOTS_PER_DAY as usize);
        assert!(err < 0.05, "in-sample one-step SMAPE {err}");
    }
}
