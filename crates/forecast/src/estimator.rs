//! Parameter estimation for forecast models (paper §5).
//!
//! Model creation "involves computationally expensive parameter
//! estimation, where we reuse existing well-established local (e.g.
//! Downhill-Simplex) and global (e.g. Simulated Annealing) parameter
//! estimators". This module provides the four algorithms the paper
//! mentions and compares in Figure 4(a):
//!
//! * [`NelderMead`] — the local downhill-simplex method \[8\],
//! * [`RandomRestartNelderMead`] — the paper's winning global method,
//! * [`SimulatedAnnealing`] — Metropolis acceptance with geometric cooling \[1\],
//! * [`RandomSearch`] — uniform sampling baseline.
//!
//! All optimizers minimize a black-box [`Objective`] over a box-bounded
//! domain and record an improvement *trajectory* (time, evaluations, best
//! error) so the Figure 4(a) error-development curves fall directly out of
//! the API.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Boxed black-box function type used by [`Objective`].
type BoxedObjectiveFn<'a> = Box<dyn Fn(&[f64]) -> f64 + 'a>;

/// A black-box minimization target over a box-bounded domain.
pub struct Objective<'a> {
    f: BoxedObjectiveFn<'a>,
    bounds: Vec<(f64, f64)>,
}

impl<'a> Objective<'a> {
    /// Wrap a function with per-dimension `(lo, hi)` bounds.
    pub fn new(bounds: Vec<(f64, f64)>, f: impl Fn(&[f64]) -> f64 + 'a) -> Objective<'a> {
        assert!(!bounds.is_empty());
        assert!(bounds.iter().all(|(lo, hi)| lo <= hi));
        Objective {
            f: Box::new(f),
            bounds,
        }
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.bounds.len()
    }

    /// The box bounds.
    pub fn bounds(&self) -> &[(f64, f64)] {
        &self.bounds
    }

    /// Evaluate the raw function (no clamping).
    pub fn eval(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }

    /// Project a point into the box.
    pub fn clamp(&self, x: &mut [f64]) {
        for (v, (lo, hi)) in x.iter_mut().zip(&self.bounds) {
            *v = v.clamp(*lo, *hi);
        }
    }

    /// Uniform random point inside the box.
    pub fn random_point(&self, rng: &mut StdRng) -> Vec<f64> {
        self.bounds
            .iter()
            .map(|&(lo, hi)| if lo == hi { lo } else { rng.gen_range(lo..hi) })
            .collect()
    }
}

/// Estimation budget: evaluation cap and optional wall-clock cap.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Maximum number of objective evaluations.
    pub max_evaluations: usize,
    /// Optional wall-clock limit.
    pub max_time: Option<Duration>,
}

impl Budget {
    /// Evaluation-count budget (deterministic; used in tests).
    pub fn evaluations(n: usize) -> Budget {
        Budget {
            max_evaluations: n,
            max_time: None,
        }
    }

    /// Wall-clock budget with a generous evaluation backstop.
    pub fn time(d: Duration) -> Budget {
        Budget {
            max_evaluations: usize::MAX,
            max_time: Some(d),
        }
    }
}

/// One improvement event during estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Wall-clock time since estimation start.
    pub elapsed: Duration,
    /// Objective evaluations consumed so far.
    pub evaluations: usize,
    /// Best error found so far.
    pub best_error: f64,
}

/// Outcome of an estimation run.
#[derive(Debug, Clone)]
pub struct EstimationResult {
    /// Best parameter vector found.
    pub best_params: Vec<f64>,
    /// Objective value at `best_params`.
    pub best_error: f64,
    /// Total objective evaluations.
    pub evaluations: usize,
    /// Improvement trajectory (monotonically decreasing `best_error`).
    pub trajectory: Vec<TrajectoryPoint>,
}

/// Book-keeping shared by all optimizers: counts evaluations, enforces the
/// budget, and records the improvement trajectory.
struct Tracker<'o, 'f> {
    obj: &'o Objective<'f>,
    budget: Budget,
    start: Instant,
    evaluations: usize,
    best_params: Vec<f64>,
    best_error: f64,
    trajectory: Vec<TrajectoryPoint>,
}

impl<'o, 'f> Tracker<'o, 'f> {
    fn new(obj: &'o Objective<'f>, budget: Budget) -> Tracker<'o, 'f> {
        Tracker {
            obj,
            budget,
            start: Instant::now(),
            evaluations: 0,
            best_params: Vec::new(),
            best_error: f64::INFINITY,
            trajectory: Vec::new(),
        }
    }

    fn exhausted(&self) -> bool {
        if self.evaluations >= self.budget.max_evaluations {
            return true;
        }
        if let Some(t) = self.budget.max_time {
            if self.start.elapsed() >= t {
                return true;
            }
        }
        false
    }

    fn eval(&mut self, x: &[f64]) -> f64 {
        let v = self.obj.eval(x);
        self.evaluations += 1;
        if v < self.best_error {
            self.best_error = v;
            self.best_params = x.to_vec();
            self.trajectory.push(TrajectoryPoint {
                elapsed: self.start.elapsed(),
                evaluations: self.evaluations,
                best_error: v,
            });
        }
        v
    }

    fn finish(self) -> EstimationResult {
        EstimationResult {
            best_params: self.best_params,
            best_error: self.best_error,
            evaluations: self.evaluations,
            trajectory: self.trajectory,
        }
    }
}

/// A parameter estimator: minimizes an [`Objective`] within a [`Budget`].
pub trait Estimator {
    /// Algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Run the minimization. `seed` makes stochastic algorithms
    /// reproducible.
    fn estimate(&self, obj: &Objective<'_>, budget: Budget, seed: u64) -> EstimationResult;
}

// ---------------------------------------------------------------------------
// Nelder-Mead downhill simplex
// ---------------------------------------------------------------------------

/// The Nelder-Mead downhill-simplex local search \[8\].
#[derive(Debug, Clone, Copy)]
pub struct NelderMead {
    /// Reflection coefficient (standard: 1.0).
    pub alpha: f64,
    /// Expansion coefficient (standard: 2.0).
    pub gamma: f64,
    /// Contraction coefficient (standard: 0.5).
    pub rho: f64,
    /// Shrink coefficient (standard: 0.5).
    pub sigma: f64,
    /// Convergence tolerance on the simplex value spread.
    pub tolerance: f64,
}

impl Default for NelderMead {
    fn default() -> NelderMead {
        NelderMead {
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
            tolerance: 1e-10,
        }
    }
}

impl NelderMead {
    /// Run one simplex descent from `start` until convergence or budget
    /// exhaustion, using `tracker` for accounting. Returns when done.
    fn descend(&self, tracker: &mut Tracker<'_, '_>, start: &[f64]) {
        let obj = tracker.obj;
        let n = obj.dim();
        // Initial simplex: start plus n axis-perturbed points (5% of the
        // bound width, at least 1e-3).
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
        let f0 = tracker.eval(start);
        simplex.push((start.to_vec(), f0));
        for i in 0..n {
            if tracker.exhausted() {
                return;
            }
            let (lo, hi) = obj.bounds()[i];
            let step = ((hi - lo) * 0.05).max(1e-3);
            let mut p = start.to_vec();
            p[i] = if p[i] + step <= hi {
                p[i] + step
            } else {
                p[i] - step
            };
            obj.clamp(&mut p);
            let f = tracker.eval(&p);
            simplex.push((p, f));
        }

        loop {
            if tracker.exhausted() {
                return;
            }
            simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
            let spread = simplex[n].1 - simplex[0].1;
            if spread.abs() < self.tolerance {
                return;
            }
            // centroid of all but worst
            let mut centroid = vec![0.0; n];
            for (p, _) in &simplex[..n] {
                for (c, v) in centroid.iter_mut().zip(p) {
                    *c += v / n as f64;
                }
            }
            let worst = simplex[n].clone();
            let point_along = |t: f64| -> Vec<f64> {
                let mut p: Vec<f64> = centroid
                    .iter()
                    .zip(&worst.0)
                    .map(|(c, w)| c + t * (c - w))
                    .collect();
                obj.clamp(&mut p);
                p
            };

            let refl = point_along(self.alpha);
            let f_refl = tracker.eval(&refl);
            if f_refl < simplex[0].1 {
                // try expansion
                if tracker.exhausted() {
                    return;
                }
                let exp = point_along(self.gamma);
                let f_exp = tracker.eval(&exp);
                simplex[n] = if f_exp < f_refl {
                    (exp, f_exp)
                } else {
                    (refl, f_refl)
                };
            } else if f_refl < simplex[n - 1].1 {
                simplex[n] = (refl, f_refl);
            } else {
                // contraction
                if tracker.exhausted() {
                    return;
                }
                let con = point_along(-self.rho);
                let f_con = tracker.eval(&con);
                if f_con < worst.1 {
                    simplex[n] = (con, f_con);
                } else {
                    // shrink towards best
                    let best = simplex[0].0.clone();
                    for item in simplex.iter_mut().skip(1) {
                        if tracker.exhausted() {
                            return;
                        }
                        let mut p: Vec<f64> = best
                            .iter()
                            .zip(&item.0)
                            .map(|(b, x)| b + self.sigma * (x - b))
                            .collect();
                        obj.clamp(&mut p);
                        let f = tracker.eval(&p);
                        *item = (p, f);
                    }
                }
            }
        }
    }
}

impl NelderMead {
    /// Single simplex descent from an explicit starting point — the
    /// warm-start path used by context-aware model adaptation.
    pub fn estimate_from(
        &self,
        obj: &Objective<'_>,
        budget: Budget,
        start: &[f64],
    ) -> EstimationResult {
        let mut tracker = Tracker::new(obj, budget);
        let mut s = start.to_vec();
        obj.clamp(&mut s);
        self.descend(&mut tracker, &s);
        tracker.finish()
    }
}

impl Estimator for NelderMead {
    fn name(&self) -> &'static str {
        "Nelder-Mead"
    }

    fn estimate(&self, obj: &Objective<'_>, budget: Budget, seed: u64) -> EstimationResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tracker = Tracker::new(obj, budget);
        let start = obj.random_point(&mut rng);
        self.descend(&mut tracker, &start);
        tracker.finish()
    }
}

// ---------------------------------------------------------------------------
// Random-restart Nelder-Mead (the paper's main global estimator)
// ---------------------------------------------------------------------------

/// Repeated Nelder-Mead descents from random starting points until the
/// budget is exhausted. The paper: "we employ Random Restart Nelder Mead
/// as our main global search algorithm".
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomRestartNelderMead {
    /// The inner simplex configuration.
    pub inner: NelderMead,
}

impl Estimator for RandomRestartNelderMead {
    fn name(&self) -> &'static str {
        "Random Restart Nelder-Mead"
    }

    fn estimate(&self, obj: &Objective<'_>, budget: Budget, seed: u64) -> EstimationResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tracker = Tracker::new(obj, budget);
        while !tracker.exhausted() {
            let start = obj.random_point(&mut rng);
            self.inner.descend(&mut tracker, &start);
        }
        tracker.finish()
    }
}

// ---------------------------------------------------------------------------
// Simulated annealing
// ---------------------------------------------------------------------------

/// Metropolis search with geometric cooling \[1\].
#[derive(Debug, Clone, Copy)]
pub struct SimulatedAnnealing {
    /// Initial temperature relative to the first objective value.
    pub initial_temp: f64,
    /// Geometric cooling factor per step (e.g. 0.995).
    pub cooling: f64,
    /// Proposal step size as a fraction of each bound width.
    pub step_fraction: f64,
    /// Restart temperature floor: when the temperature falls below
    /// `floor * initial_temp` the search re-heats (keeps exploring within
    /// large budgets).
    pub reheat_floor: f64,
}

impl Default for SimulatedAnnealing {
    fn default() -> SimulatedAnnealing {
        SimulatedAnnealing {
            initial_temp: 1.0,
            cooling: 0.995,
            step_fraction: 0.1,
            reheat_floor: 1e-6,
        }
    }
}

impl Estimator for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "Simulated Annealing"
    }

    fn estimate(&self, obj: &Objective<'_>, budget: Budget, seed: u64) -> EstimationResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tracker = Tracker::new(obj, budget);
        let mut current = obj.random_point(&mut rng);
        let mut f_cur = tracker.eval(&current);
        let scale = f_cur.abs().max(1e-12);
        let mut temp = self.initial_temp * scale;
        while !tracker.exhausted() {
            let mut cand = current.clone();
            for (i, &(lo, hi)) in obj.bounds().iter().enumerate() {
                let w = (hi - lo).max(1e-12);
                cand[i] += rng.gen_range(-1.0..1.0) * w * self.step_fraction;
            }
            obj.clamp(&mut cand);
            let f_cand = tracker.eval(&cand);
            let accept = f_cand <= f_cur || {
                let p = ((f_cur - f_cand) / temp.max(1e-300)).exp();
                rng.gen_bool(p.clamp(0.0, 1.0))
            };
            if accept {
                current = cand;
                f_cur = f_cand;
            }
            temp *= self.cooling;
            if temp < self.reheat_floor * scale {
                temp = self.initial_temp * scale;
                current = obj.random_point(&mut rng);
                if tracker.exhausted() {
                    break;
                }
                f_cur = tracker.eval(&current);
            }
        }
        tracker.finish()
    }
}

// ---------------------------------------------------------------------------
// Random search
// ---------------------------------------------------------------------------

/// Uniform random sampling of the box — the baseline in Figure 4(a).
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSearch;

impl Estimator for RandomSearch {
    fn name(&self) -> &'static str {
        "Random Search"
    }

    fn estimate(&self, obj: &Objective<'_>, budget: Budget, seed: u64) -> EstimationResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tracker = Tracker::new(obj, budget);
        while !tracker.exhausted() {
            let p = obj.random_point(&mut rng);
            tracker.eval(&p);
        }
        tracker.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere() -> Objective<'static> {
        Objective::new(vec![(-5.0, 5.0); 4], |x| {
            x.iter().map(|v| v * v).sum::<f64>()
        })
    }

    fn rosenbrock() -> Objective<'static> {
        Objective::new(vec![(-2.0, 2.0); 2], |x| {
            (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
        })
    }

    #[test]
    fn objective_clamp_and_random_point() {
        let obj = sphere();
        let mut p = vec![10.0, -10.0, 0.0, 3.0];
        obj.clamp(&mut p);
        assert_eq!(p, vec![5.0, -5.0, 0.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let q = obj.random_point(&mut rng);
        assert!(q.iter().all(|v| (-5.0..=5.0).contains(v)));
    }

    #[test]
    fn objective_degenerate_bound() {
        let obj = Objective::new(vec![(2.0, 2.0)], |x| x[0]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(obj.random_point(&mut rng), vec![2.0]);
    }

    #[test]
    fn nelder_mead_solves_sphere() {
        let obj = sphere();
        let r = NelderMead::default().estimate(&obj, Budget::evaluations(2000), 42);
        assert!(r.best_error < 1e-4, "best {}", r.best_error);
    }

    #[test]
    fn nelder_mead_solves_rosenbrock() {
        let obj = rosenbrock();
        let r = RandomRestartNelderMead::default().estimate(&obj, Budget::evaluations(5000), 7);
        assert!(r.best_error < 1e-3, "best {}", r.best_error);
        assert!((r.best_params[0] - 1.0).abs() < 0.1);
    }

    #[test]
    fn simulated_annealing_improves() {
        let obj = sphere();
        let r = SimulatedAnnealing::default().estimate(&obj, Budget::evaluations(3000), 11);
        assert!(r.best_error < 0.5, "best {}", r.best_error);
    }

    #[test]
    fn random_search_improves_slowly() {
        let obj = sphere();
        let few = RandomSearch.estimate(&obj, Budget::evaluations(30), 3);
        let many = RandomSearch.estimate(&obj, Budget::evaluations(3000), 3);
        assert!(many.best_error <= few.best_error);
    }

    #[test]
    fn rrnm_beats_random_search_on_same_budget() {
        let obj = rosenbrock();
        let budget = Budget::evaluations(2000);
        let rr = RandomRestartNelderMead::default().estimate(&obj, budget, 5);
        let rs = RandomSearch.estimate(&obj, budget, 5);
        assert!(
            rr.best_error <= rs.best_error,
            "rrnm {} rs {}",
            rr.best_error,
            rs.best_error
        );
    }

    #[test]
    fn budget_respected() {
        let obj = sphere();
        for est in [
            &RandomRestartNelderMead::default() as &dyn Estimator,
            &SimulatedAnnealing::default(),
            &RandomSearch,
            &NelderMead::default(),
        ] {
            let r = est.estimate(&obj, Budget::evaluations(100), 1);
            // Small overshoot is allowed inside an inner loop iteration.
            assert!(
                r.evaluations <= 110,
                "{} used {} evaluations",
                est.name(),
                r.evaluations
            );
        }
    }

    #[test]
    fn trajectory_monotone_decreasing() {
        let obj = rosenbrock();
        let r = SimulatedAnnealing::default().estimate(&obj, Budget::evaluations(1000), 2);
        assert!(!r.trajectory.is_empty());
        for w in r.trajectory.windows(2) {
            assert!(w[1].best_error <= w[0].best_error);
            assert!(w[1].evaluations >= w[0].evaluations);
        }
        assert_eq!(r.trajectory.last().unwrap().best_error, r.best_error);
    }

    #[test]
    fn deterministic_per_seed() {
        let obj = sphere();
        let a = SimulatedAnnealing::default().estimate(&obj, Budget::evaluations(500), 9);
        let b = SimulatedAnnealing::default().estimate(&obj, Budget::evaluations(500), 9);
        assert_eq!(a.best_params, b.best_params);
        let c = SimulatedAnnealing::default().estimate(&obj, Budget::evaluations(500), 10);
        assert_ne!(a.best_params, c.best_params);
    }

    #[test]
    fn results_stay_in_bounds() {
        let obj = Objective::new(vec![(0.0, 1.0), (-0.95, 0.95)], |x| {
            (x[0] - 2.0).powi(2) + (x[1] - 2.0).powi(2) // optimum outside box
        });
        for est in [
            &RandomRestartNelderMead::default() as &dyn Estimator,
            &SimulatedAnnealing::default(),
            &RandomSearch,
        ] {
            let r = est.estimate(&obj, Budget::evaluations(500), 4);
            assert!(r.best_params[0] <= 1.0 + 1e-12, "{}", est.name());
            assert!(r.best_params[1] <= 0.95 + 1e-12, "{}", est.name());
            // constrained optimum is at the upper corner
            assert!(r.best_params[0] > 0.8, "{}", est.name());
        }
    }
}
