//! Context-aware model adaptation (paper §5, \[2\]).
//!
//! "Observing these context information offers the possibility of storing
//! previous models in conjunction to their corresponding context
//! information within a repository to reuse them whenever a similar
//! context reoccurs. This kind of case-based reasoning approach achieves a
//! higher forecast accuracy in less time."
//!
//! A [`ContextDescriptor`] summarizes a training window (level, spread,
//! seasonal amplitudes, calendar mix); the [`ContextRepository`] stores
//! `(descriptor, parameters, error)` cases and answers nearest-neighbour
//! queries under a normalized Euclidean distance.

use mirabel_core::{SLOTS_PER_DAY, SLOTS_PER_WEEK};
use mirabel_timeseries::{Calendar, TimeSeries};
use serde::{Deserialize, Serialize};

/// Numeric summary of a time-series context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextDescriptor {
    features: Vec<f64>,
}

impl ContextDescriptor {
    /// Build from raw features (for tests / custom contexts).
    pub fn from_features(features: Vec<f64>) -> ContextDescriptor {
        ContextDescriptor { features }
    }

    /// The raw feature vector.
    pub fn features(&self) -> &[f64] {
        &self.features
    }

    /// Normalized Euclidean distance: each dimension is scaled by the
    /// larger magnitude of the pair so level-like and ratio-like features
    /// are comparable.
    pub fn distance(&self, other: &ContextDescriptor) -> f64 {
        assert_eq!(self.features.len(), other.features.len());
        self.features
            .iter()
            .zip(&other.features)
            .map(|(&a, &b)| {
                let scale = a.abs().max(b.abs()).max(1e-9);
                let d = (a - b) / scale;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }
}

/// Derive a descriptor from a training window and its calendar.
///
/// Features: mean level, coefficient of variation, daily seasonal
/// amplitude (relative), weekly seasonal amplitude (relative), fraction of
/// non-working days in the window.
pub fn describe(series: &TimeSeries, calendar: &Calendar) -> ContextDescriptor {
    let mean = series.mean();
    let cv = if mean.abs() > 1e-12 {
        series.std_dev() / mean.abs()
    } else {
        0.0
    };

    let amplitude = |period: usize| -> f64 {
        if series.len() < 2 * period || mean.abs() < 1e-12 {
            return 0.0;
        }
        let mut sums = vec![0.0; period];
        let mut counts = vec![0usize; period];
        for (i, &v) in series.values().iter().enumerate() {
            sums[i % period] += v;
            counts[i % period] += 1;
        }
        let means: Vec<f64> = sums
            .iter()
            .zip(&counts)
            .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect();
        let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (hi - lo) / mean.abs()
    };

    let mut holiday_slots = 0usize;
    for (slot, _) in series.iter() {
        if !calendar.is_working_day(slot) {
            holiday_slots += 1;
        }
    }
    let offday_fraction = if series.is_empty() {
        0.0
    } else {
        holiday_slots as f64 / series.len() as f64
    };

    ContextDescriptor {
        features: vec![
            mean,
            cv,
            amplitude(SLOTS_PER_DAY as usize),
            amplitude(SLOTS_PER_WEEK as usize),
            offday_fraction,
        ],
    }
}

/// A remembered estimation outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Case {
    /// Context the parameters were estimated under.
    pub descriptor: ContextDescriptor,
    /// The estimated model parameters.
    pub params: Vec<f64>,
    /// In-sample error the parameters achieved.
    pub error: f64,
}

/// Case base for context-aware parameter reuse.
#[derive(Debug, Clone, Default)]
pub struct ContextRepository {
    cases: Vec<Case>,
    max_distance: f64,
}

impl ContextRepository {
    /// Repository that answers queries only within `max_distance` of a
    /// stored case.
    pub fn new(max_distance: f64) -> ContextRepository {
        ContextRepository {
            cases: Vec::new(),
            max_distance,
        }
    }

    /// Store a case.
    pub fn store(&mut self, descriptor: ContextDescriptor, params: Vec<f64>, error: f64) {
        self.cases.push(Case {
            descriptor,
            params,
            error,
        });
    }

    /// Nearest stored case within the distance threshold.
    pub fn nearest(&self, query: &ContextDescriptor) -> Option<&Case> {
        self.cases
            .iter()
            .map(|c| (c.descriptor.distance(query), c))
            .filter(|(d, _)| *d <= self.max_distance)
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, c)| c)
    }

    /// Number of stored cases.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// Drop the worst cases, keeping at most `keep` best-by-error.
    pub fn prune(&mut self, keep: usize) {
        self.cases.sort_by(|a, b| a.error.total_cmp(&b.error));
        self.cases.truncate(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::TimeSlot;
    use mirabel_timeseries::DemandGenerator;

    #[test]
    fn descriptor_distance_zero_to_self() {
        let d = ContextDescriptor::from_features(vec![1.0, 2.0]);
        assert_eq!(d.distance(&d), 0.0);
    }

    #[test]
    fn descriptor_scale_invariant_comparison() {
        // 35000 vs 36000 (3% apart) should be closer than 0.1 vs 0.5.
        let a = ContextDescriptor::from_features(vec![35_000.0]);
        let b = ContextDescriptor::from_features(vec![36_000.0]);
        let c = ContextDescriptor::from_features(vec![0.1]);
        let e = ContextDescriptor::from_features(vec![0.5]);
        assert!(a.distance(&b) < c.distance(&e));
    }

    #[test]
    fn describe_captures_seasonality() {
        let s = DemandGenerator::default().generate(TimeSlot(0), 14 * 96, 1);
        let d = describe(&s, &Calendar::new());
        assert_eq!(d.features().len(), 5);
        assert!(d.features()[0] > 10_000.0); // mean level
        assert!(d.features()[2] > 0.1); // daily amplitude is pronounced

        // Weekend fraction of a 14-day window is 4/14.
        assert!((d.features()[4] - 4.0 / 14.0).abs() < 0.05);
    }

    #[test]
    fn describe_flat_series() {
        let s = TimeSeries::new(TimeSlot(0), vec![5.0; 96]);
        let d = describe(&s, &Calendar::new());
        assert_eq!(d.features()[1], 0.0); // no variation
        assert_eq!(d.features()[2], 0.0); // too short / flat for amplitude
    }

    #[test]
    fn repository_nearest_within_threshold() {
        let mut repo = ContextRepository::new(0.5);
        let d1 = ContextDescriptor::from_features(vec![1.0, 0.2]);
        let d2 = ContextDescriptor::from_features(vec![5.0, 0.9]);
        repo.store(d1.clone(), vec![0.1], 0.01);
        repo.store(d2, vec![0.9], 0.02);
        let q = ContextDescriptor::from_features(vec![1.05, 0.21]);
        let hit = repo.nearest(&q).unwrap();
        assert_eq!(hit.params, vec![0.1]);
        // far query misses entirely
        let far = ContextDescriptor::from_features(vec![100.0, 100.0]);
        assert!(repo.nearest(&far).is_none());
    }

    #[test]
    fn repository_prune_keeps_best() {
        let mut repo = ContextRepository::new(10.0);
        for i in 0..10 {
            repo.store(
                ContextDescriptor::from_features(vec![i as f64]),
                vec![i as f64],
                i as f64 * 0.01,
            );
        }
        repo.prune(3);
        assert_eq!(repo.len(), 3);
        let q = ContextDescriptor::from_features(vec![0.0]);
        assert!(repo.nearest(&q).unwrap().error <= 0.02);
    }

    #[test]
    fn empty_repository() {
        let repo = ContextRepository::new(1.0);
        assert!(repo.is_empty());
        assert!(repo
            .nearest(&ContextDescriptor::from_features(vec![1.0]))
            .is_none());
    }
}
