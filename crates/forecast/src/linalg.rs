//! Minimal dense linear algebra for the EGRV least-squares fits.
//!
//! The EGRV model solves one small normal-equations system per intra-day
//! period (at most a dozen regressors), so a simple Cholesky factorization
//! with a ridge fallback is entirely sufficient — and keeps the workspace
//! free of an external linear-algebra dependency (DESIGN.md §6).

/// Errors from the tiny solver.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The system matrix was not positive definite even after ridging.
    NotPositiveDefinite,
    /// Dimension mismatch between rows/columns/vectors.
    DimensionMismatch,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite => write!(f, "matrix not positive definite"),
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Cholesky factorization of a symmetric positive-definite matrix given in
/// row-major order. Returns the lower-triangular factor `L` (row-major),
/// such that `A = L Lᵀ`.
pub fn cholesky(a: &[f64], n: usize) -> Result<Vec<f64>, LinalgError> {
    if a.len() != n * n {
        return Err(LinalgError::DimensionMismatch);
    }
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Ok(l)
}

/// Solve `A x = b` for symmetric positive-definite `A` via Cholesky.
pub fn solve_spd(a: &[f64], b: &[f64], n: usize) -> Result<Vec<f64>, LinalgError> {
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch);
    }
    let l = cholesky(a, n)?;
    // forward substitution L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // back substitution Lᵀ x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Ok(x)
}

/// Ordinary least squares via the normal equations with a ridge term:
/// solves `(XᵀX + λI) β = Xᵀy`. Each row of `rows` is one observation's
/// regressor vector; all rows must share the same length.
///
/// The ridge `lambda` (e.g. `1e-8 … 1e-4`) guards against collinear
/// dummies; if the ridged system is still not positive definite the ridge
/// is escalated ×100 up to three times before giving up.
pub fn ridge_ols(rows: &[Vec<f64>], y: &[f64], lambda: f64) -> Result<Vec<f64>, LinalgError> {
    let m = rows.len();
    if m == 0 || m != y.len() {
        return Err(LinalgError::DimensionMismatch);
    }
    let k = rows[0].len();
    if k == 0 || rows.iter().any(|r| r.len() != k) {
        return Err(LinalgError::DimensionMismatch);
    }
    let mut xtx = vec![0.0; k * k];
    let mut xty = vec![0.0; k];
    for (row, &yi) in rows.iter().zip(y) {
        for i in 0..k {
            xty[i] += row[i] * yi;
            for j in 0..=i {
                xtx[i * k + j] += row[i] * row[j];
            }
        }
    }
    // mirror lower triangle to upper
    for i in 0..k {
        for j in 0..i {
            xtx[j * k + i] = xtx[i * k + j];
        }
    }
    let mut lam = lambda.max(0.0);
    for _ in 0..4 {
        let mut a = xtx.clone();
        for i in 0..k {
            a[i * k + i] += lam;
        }
        match solve_spd(&a, &xty, k) {
            Ok(beta) => return Ok(beta),
            Err(LinalgError::NotPositiveDefinite) => {
                lam = if lam == 0.0 { 1e-8 } else { lam * 100.0 };
            }
            Err(e) => return Err(e),
        }
    }
    Err(LinalgError::NotPositiveDefinite)
}

/// Dot product of a regressor row and a coefficient vector.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let l = cholesky(&a, 2).unwrap();
        assert_eq!(l, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn cholesky_known_factor() {
        // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]]
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let l = cholesky(&a, 2).unwrap();
        assert!((l[0] - 2.0).abs() < 1e-12);
        assert!((l[2] - 1.0).abs() < 1e-12);
        assert!((l[3] - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert_eq!(cholesky(&a, 2), Err(LinalgError::NotPositiveDefinite));
    }

    #[test]
    fn solve_spd_roundtrip() {
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let x_true = [1.0, -2.0];
        let b = [4.0 * 1.0 + 2.0 * -2.0, 2.0 * 1.0 + 3.0 * -2.0];
        let x = solve_spd(&a, &b, 2).unwrap();
        assert!((x[0] - x_true[0]).abs() < 1e-12);
        assert!((x[1] - x_true[1]).abs() < 1e-12);
    }

    #[test]
    fn ols_recovers_exact_linear_model() {
        // y = 3 + 2 x
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| 3.0 + 2.0 * i as f64).collect();
        let beta = ridge_ols(&rows, &y, 1e-10).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-6);
        assert!((beta[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn ols_handles_collinear_columns_via_ridge() {
        // second and third columns identical: rank deficient
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, i as f64, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 1.0 + 4.0 * i as f64).collect();
        let beta = ridge_ols(&rows, &y, 1e-6).unwrap();
        // the two collinear coefficients split the true slope
        assert!((beta[1] + beta[2] - 4.0).abs() < 1e-3);
    }

    #[test]
    fn ols_dimension_errors() {
        assert_eq!(
            ridge_ols(&[], &[], 0.0),
            Err(LinalgError::DimensionMismatch)
        );
        assert_eq!(
            ridge_ols(&[vec![1.0]], &[1.0, 2.0], 0.0),
            Err(LinalgError::DimensionMismatch)
        );
        assert_eq!(
            ridge_ols(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0], 0.0),
            Err(LinalgError::DimensionMismatch)
        );
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
