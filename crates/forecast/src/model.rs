//! The common forecast-model interface and transparent model selection.

use crate::egrv::EgrvModel;
use crate::hwt::HwtModel;
use mirabel_timeseries::{smape, Calendar, TimeSeries};

/// A trainable, incrementally-maintainable forecast model.
///
/// The lifecycle mirrors the paper's two main components (§5): *model
/// creation* ([`ForecastModel::fit`], driven by an estimator that tunes
/// [`ForecastModel::set_params`]) and *model update and maintenance*
/// ([`ForecastModel::update`] for each new measurement, re-fitting on
/// demand).
pub trait ForecastModel: Send {
    /// Human-readable model name ("HWT", "EGRV", ...).
    fn name(&self) -> &'static str;

    /// Current tunable parameter vector.
    fn params(&self) -> Vec<f64>;

    /// Replace the tunable parameters (length must match [`ForecastModel::params`]).
    fn set_params(&mut self, params: &[f64]);

    /// Box bounds for each tunable parameter, used by the estimators.
    fn param_bounds(&self) -> Vec<(f64, f64)>;

    /// (Re-)initialize internal state from a training series using the
    /// current parameters.
    fn fit(&mut self, history: &TimeSeries);

    /// Consume one new measurement at the slot following the last seen one
    /// — the paper's "simple update of smoothing constants or the shift of
    /// lagged input values … low additional costs".
    fn update(&mut self, value: f64);

    /// Forecast the next `horizon` slots after the last seen measurement.
    fn forecast(&self, horizon: usize) -> Vec<f64>;

    /// One-step-ahead in-sample SMAPE over `history` with the current
    /// parameters: the estimation objective. The default re-fits on a
    /// training prefix and scores rolling one-step forecasts on the rest.
    fn evaluate(&mut self, history: &TimeSeries, warmup: usize) -> f64 {
        let n = history.len();
        if n <= warmup + 1 {
            return f64::MAX;
        }
        let (train, test) = history.split_at_slot(history.start() + warmup as u32);
        self.fit(&train);
        let mut preds = Vec::with_capacity(test.len());
        for &y in test.values() {
            preds.push(self.forecast(1)[0]);
            self.update(y);
        }
        smape(test.values(), &preds)
    }
}

/// Transparent model creation (paper §5): fit the EGRV model, and "if the
/// EGRV model does not provide accurate results, we fall back to the
/// alternative (more robust) HWT-Model".
///
/// Both models are trained on the prefix of `history` before `holdout`
/// trailing slots and compared by one-step rolling SMAPE on the holdout.
/// EGRV wins ties (it is the primary model); the returned model is re-fit
/// on the *full* history.
pub fn create_best_model(
    history: &TimeSeries,
    calendar: &Calendar,
    holdout: usize,
) -> Box<dyn ForecastModel> {
    let warmup = history.len().saturating_sub(holdout);
    let mut egrv = EgrvModel::with_calendar(calendar.clone());
    let egrv_err = egrv.evaluate(history, warmup);
    let mut hwt = HwtModel::daily_weekly();
    let hwt_err = hwt.evaluate(history, warmup);
    if egrv_err.is_finite() && egrv_err <= hwt_err {
        egrv.fit(history);
        Box::new(egrv)
    } else {
        hwt.fit(history);
        Box::new(hwt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{TimeSlot, SLOTS_PER_DAY};
    use mirabel_timeseries::DemandGenerator;

    #[test]
    fn selector_returns_fitted_model() {
        let s = DemandGenerator::default().generate(TimeSlot(0), 21 * SLOTS_PER_DAY as usize, 13);
        let m = create_best_model(&s, &Calendar::new(), 3 * SLOTS_PER_DAY as usize);
        let f = m.forecast(SLOTS_PER_DAY as usize);
        assert_eq!(f.len(), SLOTS_PER_DAY as usize);
        assert!(f.iter().all(|v| v.is_finite()));
        // Either model is acceptable; the name tells which one won.
        assert!(m.name() == "EGRV" || m.name() == "HWT");
    }

    #[test]
    fn selector_falls_back_to_hwt_on_short_history() {
        // Less than a week: EGRV cannot form its weekly-lag rows and its
        // mean-only fallback loses to HWT on a seasonal series.
        let s = DemandGenerator::default().generate(TimeSlot(0), 3 * 96, 13);
        let m = create_best_model(&s, &Calendar::new(), 96);
        assert_eq!(m.name(), "HWT");
    }
}
