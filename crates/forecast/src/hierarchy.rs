//! Hierarchical forecasting advisor (paper §5, \[5\]).
//!
//! "Beside the use of individual forecast models, forecast models can be
//! used to aggregate or disaggregate forecast values without the need for
//! individual models at each system node. Therefore, we provide an advisor
//! component that computes for a given hierarchical structure a
//! configuration of forecast models according to specified accuracy and
//! runtime constraints."
//!
//! Each hierarchy node can either run its **own model** (runtime cost,
//! known accuracy) or **aggregate** its children's forecasts (no own
//! runtime; error combines from the children). The advisor computes the
//! Pareto frontier of `(error, runtime)` configurations bottom-up and
//! returns the cheapest configuration meeting a root accuracy constraint.

use std::collections::HashMap;

/// A node of the forecast hierarchy with its measured/estimated model
/// characteristics.
#[derive(Debug, Clone)]
pub struct HierarchyNode {
    /// Unique node name within the hierarchy.
    pub name: String,
    /// Children aggregated by this node (empty ⇒ leaf; leaves must run
    /// their own model).
    pub children: Vec<HierarchyNode>,
    /// Expected error (e.g. SMAPE) of a dedicated model at this node.
    pub model_error: f64,
    /// Runtime cost (e.g. seconds of estimation/maintenance per cycle) of
    /// a dedicated model at this node.
    pub model_runtime: f64,
    /// Multiplier applied to the combined child error when this node
    /// aggregates child forecasts instead (≥ 0; < 1 models error
    /// cancellation of independent children, > 1 models correlation).
    pub aggregation_factor: f64,
}

impl HierarchyNode {
    /// Leaf node.
    pub fn leaf(name: impl Into<String>, model_error: f64, model_runtime: f64) -> HierarchyNode {
        HierarchyNode {
            name: name.into(),
            children: Vec::new(),
            model_error,
            model_runtime,
            aggregation_factor: 1.0,
        }
    }

    /// Internal node.
    pub fn internal(
        name: impl Into<String>,
        model_error: f64,
        model_runtime: f64,
        aggregation_factor: f64,
        children: Vec<HierarchyNode>,
    ) -> HierarchyNode {
        HierarchyNode {
            name: name.into(),
            children,
            model_error,
            model_runtime,
            aggregation_factor,
        }
    }
}

/// The advisor's decision for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodePlan {
    /// Run a dedicated forecast model at this node.
    OwnModel,
    /// Sum the children's forecasts.
    AggregateChildren,
}

/// A complete configuration: per-node plans plus the root characteristics.
#[derive(Debug, Clone)]
pub struct Configuration {
    /// Plan per node name.
    pub plans: HashMap<String, NodePlan>,
    /// Root forecast error of this configuration.
    pub root_error: f64,
    /// Total runtime of all dedicated models in the configuration.
    pub total_runtime: f64,
}

/// One point on a node's Pareto frontier with reconstruction info.
#[derive(Debug, Clone)]
struct FrontierPoint {
    error: f64,
    runtime: f64,
    /// `None` ⇒ own model; `Some(choices)` ⇒ aggregate, with the chosen
    /// frontier index per child.
    children_choice: Option<Vec<usize>>,
}

/// Maximum frontier size kept per node (pruned by Pareto dominance first,
/// then thinned uniformly).
const FRONTIER_CAP: usize = 32;

fn pareto_prune(mut points: Vec<FrontierPoint>) -> Vec<FrontierPoint> {
    points.sort_by(|a, b| {
        a.error
            .total_cmp(&b.error)
            .then(a.runtime.total_cmp(&b.runtime))
    });
    let mut out: Vec<FrontierPoint> = Vec::new();
    let mut best_runtime = f64::INFINITY;
    for p in points {
        if p.runtime < best_runtime {
            best_runtime = p.runtime;
            out.push(p);
        }
    }
    if out.len() > FRONTIER_CAP {
        // Thin uniformly but always keep the extremes.
        let n = out.len();
        let idx: Vec<usize> = (0..FRONTIER_CAP)
            .map(|i| i * (n - 1) / (FRONTIER_CAP - 1))
            .collect();
        out = idx.into_iter().map(|i| out[i].clone()).collect();
    }
    out
}

/// Combine child errors for an aggregating parent: independent-error
/// (root-sum-square averaged) model scaled by the node's
/// `aggregation_factor`.
fn combine_child_errors(errors: &[f64], factor: f64) -> f64 {
    let n = errors.len().max(1) as f64;
    let rss = errors.iter().map(|e| e * e).sum::<f64>().sqrt();
    factor * rss / n
}

fn frontier(node: &HierarchyNode) -> Vec<FrontierPoint> {
    let own = FrontierPoint {
        error: node.model_error,
        runtime: node.model_runtime,
        children_choice: None,
    };
    if node.children.is_empty() {
        return vec![own];
    }
    let child_frontiers: Vec<Vec<FrontierPoint>> = node.children.iter().map(frontier).collect();

    // Merge children pairwise, tracking per-child choice indices.
    // combos: (per-child chosen index, child errors, total runtime)
    let mut combos: Vec<(Vec<usize>, Vec<f64>, f64)> = vec![(Vec::new(), Vec::new(), 0.0)];
    for cf in &child_frontiers {
        let mut next = Vec::with_capacity(combos.len() * cf.len());
        for (choice, errs, rt) in &combos {
            for (i, p) in cf.iter().enumerate() {
                let mut c = choice.clone();
                c.push(i);
                let mut e = errs.clone();
                e.push(p.error);
                next.push((c, e, rt + p.runtime));
            }
        }
        // Prune combos to keep the product tractable: keep Pareto points
        // under (combined-so-far error proxy = RSS of child errors, runtime).
        next.sort_by(|a, b| {
            let ea = a.1.iter().map(|e| e * e).sum::<f64>();
            let eb = b.1.iter().map(|e| e * e).sum::<f64>();
            ea.total_cmp(&eb).then(a.2.total_cmp(&b.2))
        });
        let mut pruned: Vec<(Vec<usize>, Vec<f64>, f64)> = Vec::new();
        let mut best_rt = f64::INFINITY;
        for item in next {
            if item.2 < best_rt {
                best_rt = item.2;
                pruned.push(item);
            }
        }
        pruned.truncate(FRONTIER_CAP);
        combos = pruned;
    }

    let mut points = vec![own];
    for (choice, errs, rt) in combos {
        points.push(FrontierPoint {
            error: combine_child_errors(&errs, node.aggregation_factor),
            runtime: rt,
            children_choice: Some(choice),
        });
    }
    pareto_prune(points)
}

fn reconstruct(
    node: &HierarchyNode,
    frontiers: &FrontierPoint,
    plans: &mut HashMap<String, NodePlan>,
) {
    match &frontiers.children_choice {
        None => {
            plans.insert(node.name.clone(), NodePlan::OwnModel);
        }
        Some(choices) => {
            plans.insert(node.name.clone(), NodePlan::AggregateChildren);
            for (child, &idx) in node.children.iter().zip(choices) {
                let cf = frontier(child);
                reconstruct(child, &cf[idx], plans);
            }
        }
    }
}

/// Compute the cheapest configuration whose root error does not exceed
/// `max_error`. Returns `None` when even the best-error configuration
/// violates the constraint.
pub fn advise(root: &HierarchyNode, max_error: f64) -> Option<Configuration> {
    let front = frontier(root);
    let feasible = front
        .iter()
        .filter(|p| p.error <= max_error)
        .min_by(|a, b| a.runtime.total_cmp(&b.runtime))?;
    let mut plans = HashMap::new();
    reconstruct(root, feasible, &mut plans);
    Some(Configuration {
        plans,
        root_error: feasible.error,
        total_runtime: feasible.runtime,
    })
}

/// The full Pareto frontier at the root — `(error, runtime)` pairs — for
/// reporting and for the interplay experiments.
pub fn root_frontier(root: &HierarchyNode) -> Vec<(f64, f64)> {
    frontier(root)
        .into_iter()
        .map(|p| (p.error, p.runtime))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// BRP with two prosumers: the paper's minimal hierarchy.
    fn small_tree() -> HierarchyNode {
        HierarchyNode::internal(
            "brp",
            0.02, // a dedicated BRP model is accurate…
            10.0, // …but expensive
            0.8,  // child errors partially cancel
            vec![
                HierarchyNode::leaf("prosumer-a", 0.06, 1.0),
                HierarchyNode::leaf("prosumer-b", 0.08, 1.0),
            ],
        )
    }

    #[test]
    fn leaf_must_run_own_model() {
        let leaf = HierarchyNode::leaf("l", 0.05, 2.0);
        let cfg = advise(&leaf, 1.0).unwrap();
        assert_eq!(cfg.plans["l"], NodePlan::OwnModel);
        assert_eq!(cfg.total_runtime, 2.0);
    }

    #[test]
    fn loose_constraint_prefers_cheap_aggregation() {
        let cfg = advise(&small_tree(), 0.10).unwrap();
        assert_eq!(cfg.plans["brp"], NodePlan::AggregateChildren);
        // runtime = two leaf models only
        assert!((cfg.total_runtime - 2.0).abs() < 1e-12);
        // combined error: 0.8 * sqrt(0.06² + 0.08²) / 2 = 0.04
        assert!((cfg.root_error - 0.04).abs() < 1e-12);
    }

    #[test]
    fn tight_constraint_forces_own_model() {
        let cfg = advise(&small_tree(), 0.03).unwrap();
        assert_eq!(cfg.plans["brp"], NodePlan::OwnModel);
        assert!((cfg.total_runtime - 10.0).abs() < 1e-12);
    }

    #[test]
    fn infeasible_constraint_returns_none() {
        assert!(advise(&small_tree(), 0.001).is_none());
    }

    #[test]
    fn three_level_hierarchy() {
        let tso = HierarchyNode::internal(
            "tso",
            0.015,
            100.0,
            0.9,
            vec![small_tree(), {
                let mut t = small_tree();
                t.name = "brp2".into();
                t.children[0].name = "prosumer-c".into();
                t.children[1].name = "prosumer-d".into();
                t
            }],
        );
        // Loose: everything aggregates; runtime = 4 leaf models.
        let loose = advise(&tso, 0.2).unwrap();
        assert_eq!(loose.plans["tso"], NodePlan::AggregateChildren);
        assert!((loose.total_runtime - 4.0).abs() < 1e-9);
        // Tighter: the TSO still aggregates but BRPs may need own models,
        // or the TSO runs its own — whichever is cheaper.
        let tight = advise(&tso, 0.016).unwrap();
        assert!(tight.root_error <= 0.016);
        // Frontier is monotone: error down, runtime up.
        let front = root_frontier(&tso);
        for w in front.windows(2) {
            assert!(w[1].0 >= w[0].0 || w[1].1 <= w[0].1);
        }
    }

    #[test]
    fn combine_errors_model() {
        assert!(
            (combine_child_errors(&[0.1, 0.1], 1.0)
                - 0.1 / 2f64.sqrt() * 2f64.sqrt() / 2f64.sqrt())
            .abs()
                < 1.0
        );
        // exact: sqrt(0.02)/2
        let e = combine_child_errors(&[0.1, 0.1], 1.0);
        assert!((e - (0.02f64).sqrt() / 2.0).abs() < 1e-12);
        assert_eq!(combine_child_errors(&[], 1.0), 0.0);
    }
}
