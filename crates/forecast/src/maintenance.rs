//! Model update and maintenance (paper §5).
//!
//! "A continuous stream of new measurements require a continuous
//! maintenance of forecast models. … Due to changing time series
//! characteristics, the accuracy of the forecast models might be reduced
//! over time, which poses the necessity of adapting the model parameters.
//! To evaluate the need for a model adaptation, we offer different model
//! evaluation strategies (e.g., time- or threshold-based)."
//!
//! [`ModelMaintainer`] wraps any [`ForecastModel`]: every observation is a
//! cheap incremental [`ForecastModel::update`]; a configurable
//! [`EvaluationStrategy`] decides when the expensive parameter
//! re-estimation runs; an optional [`crate::context::ContextRepository`]
//! supplies warm starts (context-aware adaptation).

use crate::context::{describe, ContextRepository};
use crate::estimator::{Budget, Estimator, NelderMead, Objective, RandomRestartNelderMead};
use crate::model::ForecastModel;
use mirabel_timeseries::{smape, Calendar, TimeSeries};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// When to trigger the expensive parameter re-estimation.
#[derive(Debug, Clone, Copy)]
pub enum EvaluationStrategy {
    /// Re-estimate every `every_updates` observations.
    TimeBased {
        /// Observations between re-estimations.
        every_updates: usize,
    },
    /// Re-estimate when the rolling one-step SMAPE over the last `window`
    /// observations exceeds `smape_threshold`.
    ThresholdBased {
        /// SMAPE level that triggers adaptation.
        smape_threshold: f64,
        /// Rolling window length.
        window: usize,
    },
    /// Never re-estimate (update-only baseline for the ablation bench).
    Never,
}

/// What happened when an observation was consumed.
#[derive(Debug, Clone, PartialEq)]
pub enum MaintenanceAction {
    /// Cheap incremental update only.
    Updated,
    /// Parameters were re-estimated.
    Reestimated {
        /// Rolling error before adaptation.
        old_error: f64,
        /// In-sample error of the re-estimated parameters.
        new_error: f64,
        /// Whether the warm start came from the context repository.
        warm_started: bool,
    },
}

/// Continuously-maintained forecast model.
pub struct ModelMaintainer<M: ForecastModel + Clone> {
    model: M,
    strategy: EvaluationStrategy,
    history: TimeSeries,
    max_history: usize,
    recent: VecDeque<(f64, f64)>,
    recent_cap: usize,
    updates_since_estimation: usize,
    estimation_budget: Budget,
    repository: Option<Arc<Mutex<ContextRepository>>>,
    calendar: Calendar,
    seed: u64,
    reestimations: usize,
}

impl<M: ForecastModel + Clone> ModelMaintainer<M> {
    /// Wrap a fitted model. `history` is the series the model was fitted
    /// on (kept, bounded by `max_history`, as re-estimation training data).
    pub fn new(model: M, history: TimeSeries, strategy: EvaluationStrategy) -> Self {
        ModelMaintainer {
            model,
            strategy,
            history,
            max_history: 16_384,
            recent: VecDeque::new(),
            recent_cap: 512,
            updates_since_estimation: 0,
            estimation_budget: Budget::evaluations(400),
            repository: None,
            calendar: Calendar::new(),
            seed: 1,
            reestimations: 0,
        }
    }

    /// Attach a context repository for warm-started re-estimation.
    pub fn with_repository(mut self, repo: Arc<Mutex<ContextRepository>>) -> Self {
        self.repository = Some(repo);
        self
    }

    /// Set the calendar used for context descriptors.
    pub fn with_calendar(mut self, calendar: Calendar) -> Self {
        self.calendar = calendar;
        self
    }

    /// Override the per-re-estimation budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.estimation_budget = budget;
        self
    }

    /// Access the wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Number of re-estimations performed so far.
    pub fn reestimation_count(&self) -> usize {
        self.reestimations
    }

    /// Rolling one-step SMAPE over the whole retained window.
    pub fn rolling_error(&self) -> f64 {
        self.rolling_error_over(self.recent.len())
    }

    /// Rolling one-step SMAPE over the last `n` observations only — the
    /// quantity the threshold strategy monitors (a long buffer would
    /// dilute fresh drift).
    pub fn rolling_error_over(&self, n: usize) -> f64 {
        if self.recent.is_empty() || n == 0 {
            return 0.0;
        }
        let skip = self.recent.len().saturating_sub(n);
        let (actual, pred): (Vec<f64>, Vec<f64>) = self.recent.iter().skip(skip).copied().unzip();
        smape(&actual, &pred)
    }

    /// Forecast through the wrapped model.
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        self.model.forecast(horizon)
    }

    fn should_reestimate(&self) -> bool {
        match self.strategy {
            EvaluationStrategy::TimeBased { every_updates } => {
                self.updates_since_estimation >= every_updates
            }
            EvaluationStrategy::ThresholdBased {
                smape_threshold,
                window,
            } => self.recent.len() >= window && self.rolling_error_over(window) > smape_threshold,
            EvaluationStrategy::Never => false,
        }
    }

    /// Consume one new measurement.
    pub fn observe(&mut self, y: f64) -> MaintenanceAction {
        let pred = self.model.forecast(1).first().copied().unwrap_or(0.0);
        self.recent.push_back((y, pred));
        while self.recent.len() > self.recent_cap {
            self.recent.pop_front();
        }
        self.model.update(y);
        self.history.push(y);
        if self.history.len() > self.max_history {
            self.history = self.history.tail(self.max_history);
        }
        self.updates_since_estimation += 1;

        if !self.should_reestimate() {
            return MaintenanceAction::Updated;
        }
        let old_error = match self.strategy {
            EvaluationStrategy::ThresholdBased { window, .. } => self.rolling_error_over(window),
            _ => self.rolling_error(),
        };
        let (new_error, warm_started) = self.reestimate();
        self.updates_since_estimation = 0;
        self.recent.clear();
        self.reestimations += 1;
        MaintenanceAction::Reestimated {
            old_error,
            new_error,
            warm_started,
        }
    }

    /// Re-estimate parameters on the retained history; returns the new
    /// in-sample error and whether the context repository supplied the
    /// starting point.
    fn reestimate(&mut self) -> (f64, bool) {
        let bounds = self.model.param_bounds();
        let warmup = (self.history.len() / 2).max(1);
        if bounds.is_empty() {
            // Closed-form model (EGRV): re-fit is the re-estimation.
            self.model.fit(&self.history);
            let mut probe = self.model.clone();
            let err = probe.evaluate(&self.history, warmup);
            return (err, false);
        }

        let base = self.model.clone();
        let history = self.history.clone();
        let objective = Objective::new(bounds, move |p: &[f64]| {
            let mut m = base.clone();
            m.set_params(p);
            m.evaluate(&history, warmup)
        });

        let descriptor = describe(&self.history, &self.calendar);
        let warm = self
            .repository
            .as_ref()
            .and_then(|r| r.lock().nearest(&descriptor).map(|c| c.params.clone()));

        let result = match &warm {
            Some(start) => {
                // Context-aware adaptation: a single simplex descent from
                // the remembered parameters ("achieves a higher forecast
                // accuracy in less time, especially for complex models").
                NelderMead::default().estimate_from(&objective, self.estimation_budget, start)
            }
            None => RandomRestartNelderMead::default().estimate(
                &objective,
                self.estimation_budget,
                self.seed,
            ),
        };
        self.seed = self.seed.wrapping_add(1);

        self.model.set_params(&result.best_params);
        self.model.fit(&self.history);
        if let Some(repo) = &self.repository {
            repo.lock()
                .store(descriptor, result.best_params.clone(), result.best_error);
        }
        (result.best_error, warm.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hwt::HwtModel;
    use mirabel_core::{TimeSlot, SLOTS_PER_DAY};
    use mirabel_timeseries::DemandGenerator;

    fn fitted_maintainer(strategy: EvaluationStrategy) -> (ModelMaintainer<HwtModel>, TimeSeries) {
        let s = DemandGenerator::default().generate(TimeSlot(0), 14 * 96, 2);
        let mut m = HwtModel::daily_weekly();
        m.fit(&s);
        let future =
            DemandGenerator::default().generate(TimeSlot(14 * 96), 7 * SLOTS_PER_DAY as usize, 3);
        (
            ModelMaintainer::new(m, s, strategy).with_budget(Budget::evaluations(60)),
            future,
        )
    }

    #[test]
    fn updates_are_cheap_by_default() {
        let (mut mm, future) = fitted_maintainer(EvaluationStrategy::Never);
        for &y in future.values().iter().take(200) {
            assert_eq!(mm.observe(y), MaintenanceAction::Updated);
        }
        assert_eq!(mm.reestimation_count(), 0);
        assert!(mm.rolling_error() < 0.2);
    }

    #[test]
    fn time_based_triggers_periodically() {
        let (mut mm, future) =
            fitted_maintainer(EvaluationStrategy::TimeBased { every_updates: 96 });
        let mut reest = 0;
        for &y in future.values().iter().take(200) {
            if matches!(mm.observe(y), MaintenanceAction::Reestimated { .. }) {
                reest += 1;
            }
        }
        assert_eq!(reest, 2);
        assert_eq!(mm.reestimation_count(), 2);
    }

    #[test]
    fn threshold_based_fires_on_drift() {
        let (mut mm, _) = fitted_maintainer(EvaluationStrategy::ThresholdBased {
            smape_threshold: 0.10,
            window: 32,
        });
        // Feed a level-shifted series (structural break) to push the error up.
        let mut fired = false;
        for i in 0..200 {
            let y = 70_000.0 + (i % 7) as f64 * 100.0;
            if matches!(mm.observe(y), MaintenanceAction::Reestimated { .. }) {
                fired = true;
                break;
            }
        }
        assert!(fired, "threshold strategy never fired on a level shift");
    }

    #[test]
    fn threshold_not_fired_when_accurate() {
        let (mut mm, future) = fitted_maintainer(EvaluationStrategy::ThresholdBased {
            smape_threshold: 0.50,
            window: 32,
        });
        for &y in future.values().iter().take(150) {
            mm.observe(y);
        }
        assert_eq!(mm.reestimation_count(), 0);
    }

    #[test]
    fn context_repository_provides_warm_start() {
        let repo = Arc::new(Mutex::new(ContextRepository::new(2.0)));
        let (mm0, future) = fitted_maintainer(EvaluationStrategy::TimeBased { every_updates: 96 });
        let mut mm = ModelMaintainer::new(
            mm0.model().clone(),
            mm0.history.clone(),
            EvaluationStrategy::TimeBased { every_updates: 96 },
        )
        .with_budget(Budget::evaluations(60))
        .with_repository(Arc::clone(&repo));

        let mut warm_count = 0;
        let mut cold_count = 0;
        for &y in future.values().iter().take(300) {
            if let MaintenanceAction::Reestimated { warm_started, .. } = mm.observe(y) {
                if warm_started {
                    warm_count += 1;
                } else {
                    cold_count += 1;
                }
            }
        }
        // First re-estimation is cold (empty repo), later ones warm.
        assert_eq!(cold_count, 1);
        assert!(warm_count >= 1);
        assert!(repo.lock().len() >= 2);
    }

    #[test]
    fn history_is_bounded() {
        let (mut mm, _) = fitted_maintainer(EvaluationStrategy::Never);
        mm.max_history = 100;
        for i in 0..500 {
            mm.observe(35_000.0 + i as f64);
        }
        assert!(mm.history.len() <= 100);
    }
}
