//! # mirabel-forecast
//!
//! The MIRABEL forecasting component (paper §5).
//!
//! Two energy-domain forecast models:
//!
//! * [`HwtModel`] — Taylor's exponential smoothing with double/triple
//!   seasonality and AR(1) error correction (the paper's robust fallback
//!   and the model used in the Figure 4 experiments);
//! * [`EgrvModel`] — the Engle/Granger/Ramanathan/Vahid-Araghi
//!   multi-equation regression model: one least-squares equation per
//!   intra-day period with lagged-load, calendar and weather regressors.
//!
//! Model parameters are estimated by black-box optimizers over an
//! [`estimator::Objective`]: [`NelderMead`], [`RandomRestartNelderMead`],
//! [`SimulatedAnnealing`] and [`RandomSearch`] — the three global methods
//! compared in Figure 4(a) plus the local simplex they build on.
//!
//! Around the models, the crate implements the paper's optimizations:
//!
//! * [`maintenance`] — continuous model update plus time-/threshold-based
//!   re-estimation triggers,
//! * [`context`] — the case-based parameter repository ("context-aware
//!   model adaptation"),
//! * [`hierarchy`] — the advisor that places models in a node hierarchy
//!   under accuracy/runtime constraints,
//! * [`pubsub`] — publish-subscribe forecast queries with significance
//!   thresholds, delivering typed slot-range change events that drive
//!   incremental rescheduling downstream,
//! * [`flexoffer_forecast`] — flex-offer (multivariate) forecasting by
//!   decomposition into univariate series,
//! * [`parallel`] — parallelized multi-equation model estimation on
//!   the shared deterministic worker pool
//!   ([`mirabel_core::exec::Pool`]): partition-parallel EGRV fitting
//!   and intra-model parallel parameter estimation, both borrowing the
//!   history into the workers (no per-fit copies) and bit-identical to
//!   the serial path for any pool width.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod egrv;
pub mod estimator;
pub mod flexoffer_forecast;
pub mod hierarchy;
pub mod hwt;
pub mod linalg;
pub mod maintenance;
pub mod model;
pub mod parallel;
pub mod pubsub;

pub use context::{describe, ContextDescriptor, ContextRepository};
pub use egrv::{EgrvConfig, EgrvModel, Exogenous};
pub use estimator::{
    Budget, EstimationResult, Estimator, NelderMead, Objective, RandomRestartNelderMead,
    RandomSearch, SimulatedAnnealing,
};
pub use hierarchy::{advise, Configuration, HierarchyNode, NodePlan};
pub use hwt::{HwtConfig, HwtModel, Seasonality};
pub use maintenance::{EvaluationStrategy, MaintenanceAction, ModelMaintainer};
pub use model::create_best_model;
pub use model::ForecastModel;
pub use pubsub::{ForecastEvent, ForecastHub, SlotRange, Subscription};
