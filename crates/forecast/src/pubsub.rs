//! Publish-subscribe forecast queries (paper §5).
//!
//! "The scheduling component does not always need or even not want to have
//! the most up-to-date forecast values as every new forecast value
//! triggers the computationally expensive maintenance of schedules. Only
//! if forecast values change significantly, notifications are required. …
//! our goal is to minimize the overall costs of the subscriber."
//!
//! Subscribers register a horizon and a *significance threshold*; the hub
//! forwards a published forecast to a subscriber only when it deviates
//! from the last forecast that subscriber saw by more than the threshold.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// A subscriber registration.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    /// Subscriber id.
    pub id: u64,
    /// How many forecast slots the subscriber cares about.
    pub horizon: usize,
    /// Relative-change threshold that triggers a notification
    /// (e.g. 0.05 = notify on >5 % deviation in any slot).
    pub threshold: f64,
}

/// A delivered notification.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// Target subscription.
    pub subscription: u64,
    /// The forecast (truncated to the subscriber's horizon).
    pub forecast: Vec<f64>,
    /// The maximum relative change that triggered the delivery
    /// (`f64::INFINITY` for the initial notification).
    pub max_relative_change: f64,
}

#[derive(Debug)]
struct SubEntry {
    sub: Subscription,
    last_notified: Option<Vec<f64>>,
    queue: VecDeque<Notification>,
}

#[derive(Debug, Default)]
struct HubInner {
    subs: Vec<SubEntry>,
    next_id: u64,
    publishes: u64,
    notifications: u64,
}

/// The forecast notification hub.
#[derive(Debug, Default)]
pub struct ForecastHub {
    inner: Mutex<HubInner>,
}

impl ForecastHub {
    /// Empty hub.
    pub fn new() -> ForecastHub {
        ForecastHub::default()
    }

    /// Register a subscriber; returns its id.
    pub fn subscribe(&self, horizon: usize, threshold: f64) -> u64 {
        assert!(horizon > 0, "horizon must be positive");
        assert!(threshold >= 0.0, "threshold must be non-negative");
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.subs.push(SubEntry {
            sub: Subscription {
                id,
                horizon,
                threshold,
            },
            last_notified: None,
            queue: VecDeque::new(),
        });
        id
    }

    /// Remove a subscriber; returns whether it existed.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let mut inner = self.inner.lock();
        let before = inner.subs.len();
        inner.subs.retain(|e| e.sub.id != id);
        inner.subs.len() != before
    }

    /// Publish a new forecast; queues notifications for every subscriber
    /// whose significance threshold is exceeded. Returns the ids notified.
    pub fn publish(&self, forecast: &[f64]) -> Vec<u64> {
        let mut inner = self.inner.lock();
        inner.publishes += 1;
        let mut notified = Vec::new();
        let mut delivered = 0;
        for entry in inner.subs.iter_mut() {
            let h = entry.sub.horizon.min(forecast.len());
            let view = &forecast[..h];
            let change = match &entry.last_notified {
                None => f64::INFINITY,
                Some(prev) => max_relative_change(prev, view),
            };
            if change > entry.sub.threshold {
                entry.last_notified = Some(view.to_vec());
                entry.queue.push_back(Notification {
                    subscription: entry.sub.id,
                    forecast: view.to_vec(),
                    max_relative_change: change,
                });
                notified.push(entry.sub.id);
                delivered += 1;
            }
        }
        inner.notifications += delivered;
        notified
    }

    /// Pop the oldest pending notification for subscriber `id`.
    pub fn poll(&self, id: u64) -> Option<Notification> {
        let mut inner = self.inner.lock();
        inner
            .subs
            .iter_mut()
            .find(|e| e.sub.id == id)
            .and_then(|e| e.queue.pop_front())
    }

    /// `(publishes, notifications)` counters — the subscriber-cost metric
    /// the paper's design minimizes.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.publishes, inner.notifications)
    }

    /// Number of active subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.inner.lock().subs.len()
    }
}

/// Maximum per-slot relative change between two forecast vectors.
fn max_relative_change(prev: &[f64], new: &[f64]) -> f64 {
    let n = prev.len().min(new.len());
    let mut worst: f64 = if prev.len() != new.len() {
        f64::INFINITY
    } else {
        0.0
    };
    for i in 0..n {
        let denom = prev[i].abs().max(1e-9);
        worst = worst.max((new[i] - prev[i]).abs() / denom);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_publish_always_notifies() {
        let hub = ForecastHub::new();
        let id = hub.subscribe(4, 0.5);
        let notified = hub.publish(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(notified, vec![id]);
        let n = hub.poll(id).unwrap();
        assert_eq!(n.forecast, vec![1.0, 2.0, 3.0, 4.0]); // truncated to horizon
        assert!(n.max_relative_change.is_infinite());
    }

    #[test]
    fn small_change_suppressed() {
        let hub = ForecastHub::new();
        let id = hub.subscribe(2, 0.10);
        hub.publish(&[100.0, 100.0]);
        hub.poll(id).unwrap();
        // 5% change: below threshold, no notification
        assert!(hub.publish(&[105.0, 100.0]).is_empty());
        assert!(hub.poll(id).is_none());
        // 15% change vs the *last notified* values, not the suppressed ones
        let notified = hub.publish(&[115.0, 100.0]);
        assert_eq!(notified, vec![id]);
        let n = hub.poll(id).unwrap();
        assert!((n.max_relative_change - 0.15).abs() < 1e-9);
    }

    #[test]
    fn thresholds_are_per_subscriber() {
        let hub = ForecastHub::new();
        let picky = hub.subscribe(1, 0.5);
        let eager = hub.subscribe(1, 0.01);
        hub.publish(&[100.0]);
        hub.poll(picky);
        hub.poll(eager);
        let notified = hub.publish(&[110.0]); // 10% change
        assert_eq!(notified, vec![eager]);
        let (publishes, notifications) = hub.stats();
        assert_eq!(publishes, 2);
        assert_eq!(notifications, 3); // 2 initial + 1 eager
        let _ = picky;
    }

    #[test]
    fn unsubscribe_stops_notifications() {
        let hub = ForecastHub::new();
        let id = hub.subscribe(1, 0.0);
        assert!(hub.unsubscribe(id));
        assert!(!hub.unsubscribe(id));
        assert!(hub.publish(&[1.0]).is_empty());
        assert_eq!(hub.subscriber_count(), 0);
    }

    #[test]
    fn notifications_queue_in_order() {
        let hub = ForecastHub::new();
        let id = hub.subscribe(1, 0.0);
        hub.publish(&[1.0]);
        hub.publish(&[2.0]);
        hub.publish(&[3.0]);
        assert_eq!(hub.poll(id).unwrap().forecast, vec![1.0]);
        assert_eq!(hub.poll(id).unwrap().forecast, vec![2.0]);
        assert_eq!(hub.poll(id).unwrap().forecast, vec![3.0]);
        assert!(hub.poll(id).is_none());
    }

    #[test]
    fn zero_threshold_notifies_on_any_change() {
        let hub = ForecastHub::new();
        let id = hub.subscribe(2, 0.0);
        hub.publish(&[1.0, 1.0]);
        hub.poll(id);
        // identical forecast: change 0.0 is NOT > 0.0 — suppressed
        assert!(hub.publish(&[1.0, 1.0]).is_empty());
        assert_eq!(hub.publish(&[1.0, 1.0001]), vec![id]);
    }

    #[test]
    fn shorter_forecast_than_horizon_is_fine() {
        let hub = ForecastHub::new();
        let id = hub.subscribe(10, 0.1);
        assert_eq!(hub.publish(&[1.0, 2.0]), vec![id]);
        assert_eq!(hub.poll(id).unwrap().forecast.len(), 2);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        ForecastHub::new().subscribe(0, 0.1);
    }
}
