//! Publish-subscribe forecast queries (paper §5).
//!
//! "The scheduling component does not always need or even not want to have
//! the most up-to-date forecast values as every new forecast value
//! triggers the computationally expensive maintenance of schedules. Only
//! if forecast values change significantly, notifications are required. …
//! our goal is to minimize the overall costs of the subscriber."
//!
//! Subscribers register a horizon and a *significance threshold*; the hub
//! forwards a published forecast to a subscriber only when it deviates
//! from the last forecast that subscriber saw by more than the threshold.
//!
//! Delivered events are **typed deltas**, not opaque snapshots: every
//! [`ForecastEvent`] carries the contiguous [`SlotRange`]s whose values
//! actually moved since the subscriber's last event. Downstream
//! schedulers feed those ranges straight into
//! `DeltaEvaluator::rebase` + scoped repair, so the cost of reacting to
//! a notification is proportional to the *change* — the event tells the
//! subscriber exactly where to look.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::ops::Range;

/// A subscriber registration.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    /// Subscriber id.
    pub id: u64,
    /// How many forecast slots the subscriber cares about.
    pub horizon: usize,
    /// Relative-change threshold that triggers a notification
    /// (e.g. 0.05 = notify on >5 % deviation in any slot).
    pub threshold: f64,
}

/// A contiguous half-open range `[start, end)` of forecast slots whose
/// values changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRange {
    /// First changed slot (inclusive).
    pub start: usize,
    /// One past the last changed slot.
    pub end: usize,
}

impl SlotRange {
    /// Number of slots covered.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the range covers no slots.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// The covered slot indices as an iterator-friendly range.
    pub fn slots(&self) -> Range<usize> {
        self.start..self.end
    }
}

/// A delivered typed forecast change event.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastEvent {
    /// Target subscription.
    pub subscription: u64,
    /// The forecast (truncated to the subscriber's horizon).
    pub forecast: Vec<f64>,
    /// Contiguous slot ranges that differ from the last event this
    /// subscriber received. The initial event reports the full horizon.
    pub changed: Vec<SlotRange>,
    /// The maximum relative change that triggered the delivery
    /// (`f64::INFINITY` for the initial event).
    pub max_relative_change: f64,
}

impl ForecastEvent {
    /// Total number of changed slots across all ranges.
    pub fn changed_slot_count(&self) -> usize {
        self.changed.iter().map(SlotRange::len).sum()
    }

    /// Flatten the changed ranges into individual slot indices (the
    /// shape `DeltaEvaluator::rebase` consumes).
    pub fn changed_slots(&self) -> Vec<usize> {
        self.changed.iter().flat_map(SlotRange::slots).collect()
    }
}

#[derive(Debug)]
struct SubEntry {
    sub: Subscription,
    last_notified: Option<Vec<f64>>,
    queue: VecDeque<ForecastEvent>,
}

#[derive(Debug, Default)]
struct HubInner {
    subs: Vec<SubEntry>,
    next_id: u64,
    publishes: u64,
    notifications: u64,
}

/// The forecast notification hub.
#[derive(Debug, Default)]
pub struct ForecastHub {
    inner: Mutex<HubInner>,
}

impl ForecastHub {
    /// Empty hub.
    pub fn new() -> ForecastHub {
        ForecastHub::default()
    }

    /// Register a subscriber; returns its id.
    pub fn subscribe(&self, horizon: usize, threshold: f64) -> u64 {
        assert!(horizon > 0, "horizon must be positive");
        assert!(threshold >= 0.0, "threshold must be non-negative");
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.subs.push(SubEntry {
            sub: Subscription {
                id,
                horizon,
                threshold,
            },
            last_notified: None,
            queue: VecDeque::new(),
        });
        id
    }

    /// Remove a subscriber; returns whether it existed.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let mut inner = self.inner.lock();
        let before = inner.subs.len();
        inner.subs.retain(|e| e.sub.id != id);
        inner.subs.len() != before
    }

    /// Publish a new forecast; queues a typed change event for every
    /// subscriber whose significance threshold is exceeded. Returns the
    /// ids notified.
    pub fn publish(&self, forecast: &[f64]) -> Vec<u64> {
        let mut inner = self.inner.lock();
        inner.publishes += 1;
        let mut notified = Vec::new();
        let mut delivered = 0;
        for entry in inner.subs.iter_mut() {
            let h = entry.sub.horizon.min(forecast.len());
            let view = &forecast[..h];
            let change = match &entry.last_notified {
                None => f64::INFINITY,
                Some(prev) => max_relative_change(prev, view),
            };
            if change > entry.sub.threshold {
                let changed = changed_ranges(entry.last_notified.as_deref(), view);
                entry.last_notified = Some(view.to_vec());
                entry.queue.push_back(ForecastEvent {
                    subscription: entry.sub.id,
                    forecast: view.to_vec(),
                    changed,
                    max_relative_change: change,
                });
                notified.push(entry.sub.id);
                delivered += 1;
            }
        }
        inner.notifications += delivered;
        notified
    }

    /// Pop the oldest pending event for subscriber `id`.
    pub fn poll(&self, id: u64) -> Option<ForecastEvent> {
        let mut inner = self.inner.lock();
        inner
            .subs
            .iter_mut()
            .find(|e| e.sub.id == id)
            .and_then(|e| e.queue.pop_front())
    }

    /// `(publishes, notifications)` counters — the subscriber-cost metric
    /// the paper's design minimizes.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.publishes, inner.notifications)
    }

    /// Number of active subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.inner.lock().subs.len()
    }
}

/// Maximum per-slot relative change between two forecast vectors.
fn max_relative_change(prev: &[f64], new: &[f64]) -> f64 {
    let n = prev.len().min(new.len());
    let mut worst: f64 = if prev.len() != new.len() {
        f64::INFINITY
    } else {
        0.0
    };
    for i in 0..n {
        let denom = prev[i].abs().max(1e-9);
        worst = worst.max((new[i] - prev[i]).abs() / denom);
    }
    worst
}

/// Group the slots where `prev` and `new` differ (at all — the
/// significance threshold gates *delivery*, not the reported delta: a
/// rebase must see every moved slot to stay exact) into contiguous
/// ranges. No previous forecast, or a length change, reports the full
/// horizon.
fn changed_ranges(prev: Option<&[f64]>, new: &[f64]) -> Vec<SlotRange> {
    let full = vec![SlotRange {
        start: 0,
        end: new.len(),
    }];
    let Some(prev) = prev else { return full };
    if prev.len() != new.len() {
        return full;
    }
    let mut ranges: Vec<SlotRange> = Vec::new();
    for (i, (a, b)) in prev.iter().zip(new).enumerate() {
        if a == b {
            continue;
        }
        match ranges.last_mut() {
            Some(last) if last.end == i => last.end = i + 1,
            _ => ranges.push(SlotRange {
                start: i,
                end: i + 1,
            }),
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_publish_always_notifies() {
        let hub = ForecastHub::new();
        let id = hub.subscribe(4, 0.5);
        let notified = hub.publish(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(notified, vec![id]);
        let n = hub.poll(id).unwrap();
        assert_eq!(n.forecast, vec![1.0, 2.0, 3.0, 4.0]); // truncated to horizon
        assert!(n.max_relative_change.is_infinite());
        // the initial event reports the whole horizon as changed
        assert_eq!(n.changed, vec![SlotRange { start: 0, end: 4 }]);
        assert_eq!(n.changed_slot_count(), 4);
    }

    #[test]
    fn small_change_suppressed() {
        let hub = ForecastHub::new();
        let id = hub.subscribe(2, 0.10);
        hub.publish(&[100.0, 100.0]);
        hub.poll(id).unwrap();
        // 5% change: below threshold, no notification
        assert!(hub.publish(&[105.0, 100.0]).is_empty());
        assert!(hub.poll(id).is_none());
        // 15% change vs the *last notified* values, not the suppressed ones
        let notified = hub.publish(&[115.0, 100.0]);
        assert_eq!(notified, vec![id]);
        let n = hub.poll(id).unwrap();
        assert!((n.max_relative_change - 0.15).abs() < 1e-9);
        // only slot 0 moved since the last delivered event
        assert_eq!(n.changed, vec![SlotRange { start: 0, end: 1 }]);
    }

    #[test]
    fn thresholds_are_per_subscriber() {
        let hub = ForecastHub::new();
        let picky = hub.subscribe(1, 0.5);
        let eager = hub.subscribe(1, 0.01);
        hub.publish(&[100.0]);
        hub.poll(picky);
        hub.poll(eager);
        let notified = hub.publish(&[110.0]); // 10% change
        assert_eq!(notified, vec![eager]);
        let (publishes, notifications) = hub.stats();
        assert_eq!(publishes, 2);
        assert_eq!(notifications, 3); // 2 initial + 1 eager
        let _ = picky;
    }

    #[test]
    fn unsubscribe_stops_notifications() {
        let hub = ForecastHub::new();
        let id = hub.subscribe(1, 0.0);
        assert!(hub.unsubscribe(id));
        assert!(!hub.unsubscribe(id));
        assert!(hub.publish(&[1.0]).is_empty());
        assert_eq!(hub.subscriber_count(), 0);
    }

    #[test]
    fn notifications_queue_in_order() {
        let hub = ForecastHub::new();
        let id = hub.subscribe(1, 0.0);
        hub.publish(&[1.0]);
        hub.publish(&[2.0]);
        hub.publish(&[3.0]);
        assert_eq!(hub.poll(id).unwrap().forecast, vec![1.0]);
        assert_eq!(hub.poll(id).unwrap().forecast, vec![2.0]);
        assert_eq!(hub.poll(id).unwrap().forecast, vec![3.0]);
        assert!(hub.poll(id).is_none());
    }

    #[test]
    fn zero_threshold_notifies_on_any_change() {
        let hub = ForecastHub::new();
        let id = hub.subscribe(2, 0.0);
        hub.publish(&[1.0, 1.0]);
        hub.poll(id);
        // identical forecast: change 0.0 is NOT > 0.0 — suppressed
        assert!(hub.publish(&[1.0, 1.0]).is_empty());
        assert_eq!(hub.publish(&[1.0, 1.0001]), vec![id]);
    }

    #[test]
    fn shorter_forecast_than_horizon_is_fine() {
        let hub = ForecastHub::new();
        let id = hub.subscribe(10, 0.1);
        assert_eq!(hub.publish(&[1.0, 2.0]), vec![id]);
        assert_eq!(hub.poll(id).unwrap().forecast.len(), 2);
    }

    #[test]
    fn changed_ranges_group_contiguous_slots() {
        let hub = ForecastHub::new();
        let id = hub.subscribe(8, 0.0);
        hub.publish(&[10.0; 8]);
        hub.poll(id).unwrap();
        // Slots 1,2 and 5 move; 1-2 must merge into one range.
        let mut next = [10.0; 8];
        next[1] = 12.0;
        next[2] = 13.0;
        next[5] = 9.0;
        assert_eq!(hub.publish(&next), vec![id]);
        let event = hub.poll(id).unwrap();
        assert_eq!(
            event.changed,
            vec![
                SlotRange { start: 1, end: 3 },
                SlotRange { start: 5, end: 6 }
            ]
        );
        assert_eq!(event.changed_slots(), vec![1, 2, 5]);
        assert_eq!(event.changed_slot_count(), 3);
    }

    #[test]
    fn suppressed_changes_accumulate_into_next_event() {
        // A sub-threshold wobble is not delivered, but once a later
        // publish crosses the threshold the event's ranges must cover
        // *every* slot that differs from the last delivered forecast —
        // including the earlier suppressed wobble.
        let hub = ForecastHub::new();
        let id = hub.subscribe(4, 0.10);
        hub.publish(&[100.0, 100.0, 100.0, 100.0]);
        hub.poll(id).unwrap();
        assert!(hub.publish(&[100.0, 104.0, 100.0, 100.0]).is_empty()); // 4% — suppressed
        assert_eq!(hub.publish(&[100.0, 104.0, 100.0, 120.0]), vec![id]); // 20% on slot 3
        let event = hub.poll(id).unwrap();
        assert_eq!(
            event.changed,
            vec![
                SlotRange { start: 1, end: 2 },
                SlotRange { start: 3, end: 4 }
            ]
        );
    }

    #[test]
    fn slot_range_helpers() {
        let r = SlotRange { start: 3, end: 7 };
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert_eq!(r.slots().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
        assert!(SlotRange { start: 5, end: 5 }.is_empty());
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        ForecastHub::new().subscribe(0, 0.1);
    }
}
