//! Parallelized model creation (paper §5).
//!
//! "As multi-equation models consist of several independent individual
//! models, we can reduce the time needed for estimating such models by
//! partitioning and parallelization. Therefore, we horizontally partition
//! the time series according to the multi-equation access pattern and
//! parallelize the model estimation process according to the resulting
//! independent data partitions."
//!
//! [`fit_egrv_parallel`] fits one EGRV equation per intra-day period
//! across the shared deterministic worker pool
//! ([`mirabel_core::exec::Pool`] — parked persistent workers, so the
//! periodic re-fit pays a wake-up instead of a thread spawn); the
//! result is identical to the serial
//! [`crate::model::ForecastModel::fit`] (verified by test, for any pool
//! width).

use crate::egrv::EgrvModel;
use crate::estimator::{
    Budget, EstimationResult, Estimator, Objective, RandomRestartNelderMead, TrajectoryPoint,
};
use mirabel_core::exec::Pool;
use mirabel_timeseries::TimeSeries;

/// Fit `model` on `history` across `pool`'s lanes, one partition of
/// intra-day periods per lane. Equivalent to the serial fit for any
/// pool width (coefficients are installed by period index); faster when
/// the per-equation row extraction dominates. The history slice is
/// borrowed straight into the tasks — the periodic re-fit path no
/// longer pays an O(history) copy per call.
pub fn fit_egrv_parallel(model: &mut EgrvModel, history: &TimeSeries, pool: &Pool) {
    let periods = model.config().periods_per_day;
    let lanes = pool.width().clamp(1, periods);
    let values = history.values();
    let start = history.start();

    let model_ref = &*model;
    // Periods are strided across lanes so each lane's load is balanced
    // even if row counts differ per period.
    let parts: Vec<Vec<(usize, Vec<f64>)>> = pool.run(lanes, |w| {
        let mut out: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut p = w;
        while p < periods {
            out.push((p, model_ref.fit_period(p, values, start)));
            p += lanes;
        }
        out
    });
    let mut coeffs = vec![Vec::new(); periods];
    for part in parts {
        for (p, c) in part {
            coeffs[p] = c;
        }
    }

    model.install(coeffs, history);
}

/// Intra-model parallel parameter estimation (paper §5 Research
/// Directions: "the creation time of models might not only be reduced by
/// inter-model parallelizing, but also by intra-model parallelizing, i.e.,
/// parallel parameter estimation of one model").
///
/// Runs `restarts` independent random-restart Nelder-Mead searches on
/// the shared worker pool, each on its own objective instance built by
/// `make_objective` (the inputs are borrowed into the tasks, never
/// copied per search), and merges the results: the best parameters win
/// and the trajectories are combined into a single best-so-far
/// envelope. `restarts` determines the search (and therefore the
/// result); the pool width only determines how many run concurrently.
pub fn parallel_random_restart<'a, F>(
    make_objective: F,
    budget: Budget,
    restarts: usize,
    seed: u64,
    pool: &Pool,
) -> EstimationResult
where
    F: Fn() -> Objective<'a> + Sync,
{
    assert!(restarts >= 1);
    let results: Vec<EstimationResult> = pool.run(restarts, |k| {
        let objective = make_objective();
        RandomRestartNelderMead::default().estimate(&objective, budget, seed.wrapping_add(k as u64))
    });

    // Merge: best overall result; envelope trajectory across workers.
    let mut all_points: Vec<TrajectoryPoint> = results
        .iter()
        .flat_map(|r| r.trajectory.iter().copied())
        .collect();
    all_points.sort_by_key(|a| a.elapsed);
    let mut trajectory = Vec::with_capacity(all_points.len());
    let mut best = f64::INFINITY;
    for p in all_points {
        if p.best_error < best {
            best = p.best_error;
            trajectory.push(p);
        }
    }
    let evaluations = results.iter().map(|r| r.evaluations).sum();
    let winner = results
        .into_iter()
        .min_by(|a, b| a.best_error.total_cmp(&b.best_error))
        .expect("threads >= 1");
    EstimationResult {
        best_params: winner.best_params,
        best_error: winner.best_error,
        evaluations,
        trajectory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::egrv::{EgrvConfig, EgrvModel, Exogenous};
    use crate::model::ForecastModel;
    use mirabel_core::{TimeSlot, SLOTS_PER_DAY};
    use mirabel_timeseries::{Calendar, DemandGenerator};

    fn demand(days: usize) -> TimeSeries {
        DemandGenerator::default().generate(TimeSlot(0), days * SLOTS_PER_DAY as usize, 17)
    }

    #[test]
    fn parallel_fit_matches_serial() {
        let s = demand(21);
        let mut serial = EgrvModel::with_calendar(Calendar::new());
        serial.fit(&s);
        let mut parallel = EgrvModel::with_calendar(Calendar::new());
        fit_egrv_parallel(&mut parallel, &s, &Pool::new(4));
        let horizon = SLOTS_PER_DAY as usize;
        let fs = serial.forecast(horizon);
        let fp = parallel.forecast(horizon);
        for (a, b) in fs.iter().zip(&fp) {
            assert!((a - b).abs() < 1e-9, "serial {a} vs parallel {b}");
        }
    }

    #[test]
    fn pool_width_does_not_change_coefficients() {
        // Serial (width 1) is the reference; wider pools must install
        // bit-identical EGRV coefficients and forecasts.
        let s = demand(21);
        let fit_with = |width: usize| {
            let mut m = EgrvModel::with_calendar(Calendar::new());
            fit_egrv_parallel(&mut m, &s, &Pool::new(width));
            m.forecast(SLOTS_PER_DAY as usize)
        };
        let reference = fit_with(1);
        assert_eq!(reference, fit_with(2));
        assert_eq!(reference, fit_with(8));
    }

    #[test]
    fn single_lane_degenerate_case() {
        let s = demand(15);
        let mut m = EgrvModel::with_calendar(Calendar::new());
        fit_egrv_parallel(&mut m, &s, &Pool::new(1));
        assert!(m.is_fitted());
    }

    #[test]
    fn parallel_estimation_merges_results() {
        let make = || {
            Objective::new(vec![(-3.0, 3.0); 3], |x: &[f64]| {
                x.iter().map(|v| (v - 1.0) * (v - 1.0)).sum::<f64>()
            })
        };
        let r = parallel_random_restart(make, Budget::evaluations(600), 4, 3, Pool::global());
        assert!(r.best_error < 1e-4, "best {}", r.best_error);
        // evaluations accumulate across workers
        assert!(r.evaluations > 600 && r.evaluations <= 4 * 660);
        // merged trajectory is a monotone envelope
        for w in r.trajectory.windows(2) {
            assert!(w[1].best_error <= w[0].best_error);
            assert!(w[1].elapsed >= w[0].elapsed);
        }
    }

    #[test]
    fn parallel_estimation_single_thread_matches_serial_quality() {
        let make = || {
            Objective::new(vec![(-2.0, 2.0); 2], |x: &[f64]| {
                (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
            })
        };
        let par = parallel_random_restart(make, Budget::evaluations(3_000), 1, 7, Pool::global());
        let serial =
            RandomRestartNelderMead::default().estimate(&make(), Budget::evaluations(3_000), 7);
        assert_eq!(par.best_params, serial.best_params);
    }

    #[test]
    fn wider_pool_than_periods_is_clamped() {
        let s = demand(15);
        let mut m = EgrvModel::new(
            EgrvConfig {
                periods_per_day: 4,
                ..EgrvConfig::default()
            },
            Exogenous::default(),
        );
        fit_egrv_parallel(&mut m, &s, &Pool::new(64));
        assert!(m.is_fitted());
    }
}
