//! Parallelized model creation (paper §5).
//!
//! "As multi-equation models consist of several independent individual
//! models, we can reduce the time needed for estimating such models by
//! partitioning and parallelization. Therefore, we horizontally partition
//! the time series according to the multi-equation access pattern and
//! parallelize the model estimation process according to the resulting
//! independent data partitions."
//!
//! [`fit_egrv_parallel`] fits one EGRV equation per intra-day period
//! across a thread pool; the result is identical to the serial
//! [`crate::model::ForecastModel::fit`] (verified by test).

use crate::egrv::EgrvModel;
use crate::estimator::{
    Budget, EstimationResult, Estimator, Objective, RandomRestartNelderMead, TrajectoryPoint,
};
use mirabel_timeseries::TimeSeries;

/// Fit `model` on `history` using up to `threads` worker threads, one
/// partition of intra-day periods per worker. Equivalent to the serial
/// fit; faster when the per-equation row extraction dominates.
pub fn fit_egrv_parallel(model: &mut EgrvModel, history: &TimeSeries, threads: usize) {
    let periods = model.config().periods_per_day;
    let threads = threads.clamp(1, periods);
    let values: Vec<f64> = history.values().to_vec();
    let start = history.start();

    let coeffs: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let model_ref = &*model;
        let values_ref = &values;
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            handles.push(scope.spawn(move || {
                // Periods are strided across workers so each worker's load
                // is balanced even if row counts differ per period.
                let mut out: Vec<(usize, Vec<f64>)> = Vec::new();
                let mut p = w;
                while p < periods {
                    out.push((p, model_ref.fit_period(p, values_ref, start)));
                    p += threads;
                }
                out
            }));
        }
        let mut coeffs = vec![Vec::new(); periods];
        for h in handles {
            for (p, c) in h.join().expect("EGRV worker panicked") {
                coeffs[p] = c;
            }
        }
        coeffs
    });

    model.install(coeffs, history);
}

/// Intra-model parallel parameter estimation (paper §5 Research
/// Directions: "the creation time of models might not only be reduced by
/// inter-model parallelizing, but also by intra-model parallelizing, i.e.,
/// parallel parameter estimation of one model").
///
/// Runs `threads` independent random-restart Nelder-Mead searches, each on
/// its own objective instance built by `make_objective`, and merges the
/// results: the best parameters win and the trajectories are combined into
/// a single best-so-far envelope.
pub fn parallel_random_restart<'a, F>(
    make_objective: F,
    budget: Budget,
    threads: usize,
    seed: u64,
) -> EstimationResult
where
    F: Fn() -> Objective<'a> + Sync,
{
    assert!(threads >= 1);
    let make_ref = &make_objective;
    let results: Vec<EstimationResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|k| {
                scope.spawn(move || {
                    let objective = make_ref();
                    RandomRestartNelderMead::default().estimate(
                        &objective,
                        budget,
                        seed.wrapping_add(k as u64),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("estimation worker panicked"))
            .collect()
    });

    // Merge: best overall result; envelope trajectory across workers.
    let mut all_points: Vec<TrajectoryPoint> = results
        .iter()
        .flat_map(|r| r.trajectory.iter().copied())
        .collect();
    all_points.sort_by_key(|a| a.elapsed);
    let mut trajectory = Vec::with_capacity(all_points.len());
    let mut best = f64::INFINITY;
    for p in all_points {
        if p.best_error < best {
            best = p.best_error;
            trajectory.push(p);
        }
    }
    let evaluations = results.iter().map(|r| r.evaluations).sum();
    let winner = results
        .into_iter()
        .min_by(|a, b| a.best_error.total_cmp(&b.best_error))
        .expect("threads >= 1");
    EstimationResult {
        best_params: winner.best_params,
        best_error: winner.best_error,
        evaluations,
        trajectory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::egrv::{EgrvConfig, EgrvModel, Exogenous};
    use crate::model::ForecastModel;
    use mirabel_core::{TimeSlot, SLOTS_PER_DAY};
    use mirabel_timeseries::{Calendar, DemandGenerator};

    fn demand(days: usize) -> TimeSeries {
        DemandGenerator::default().generate(TimeSlot(0), days * SLOTS_PER_DAY as usize, 17)
    }

    #[test]
    fn parallel_fit_matches_serial() {
        let s = demand(21);
        let mut serial = EgrvModel::with_calendar(Calendar::new());
        serial.fit(&s);
        let mut parallel = EgrvModel::with_calendar(Calendar::new());
        fit_egrv_parallel(&mut parallel, &s, 4);
        let horizon = SLOTS_PER_DAY as usize;
        let fs = serial.forecast(horizon);
        let fp = parallel.forecast(horizon);
        for (a, b) in fs.iter().zip(&fp) {
            assert!((a - b).abs() < 1e-9, "serial {a} vs parallel {b}");
        }
    }

    #[test]
    fn single_thread_degenerate_case() {
        let s = demand(15);
        let mut m = EgrvModel::with_calendar(Calendar::new());
        fit_egrv_parallel(&mut m, &s, 1);
        assert!(m.is_fitted());
    }

    #[test]
    fn parallel_estimation_merges_results() {
        let make = || {
            Objective::new(vec![(-3.0, 3.0); 3], |x: &[f64]| {
                x.iter().map(|v| (v - 1.0) * (v - 1.0)).sum::<f64>()
            })
        };
        let r = parallel_random_restart(make, Budget::evaluations(600), 4, 3);
        assert!(r.best_error < 1e-4, "best {}", r.best_error);
        // evaluations accumulate across workers
        assert!(r.evaluations > 600 && r.evaluations <= 4 * 660);
        // merged trajectory is a monotone envelope
        for w in r.trajectory.windows(2) {
            assert!(w[1].best_error <= w[0].best_error);
            assert!(w[1].elapsed >= w[0].elapsed);
        }
    }

    #[test]
    fn parallel_estimation_single_thread_matches_serial_quality() {
        let make = || {
            Objective::new(vec![(-2.0, 2.0); 2], |x: &[f64]| {
                (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
            })
        };
        let par = parallel_random_restart(make, Budget::evaluations(3_000), 1, 7);
        let serial =
            RandomRestartNelderMead::default().estimate(&make(), Budget::evaluations(3_000), 7);
        assert_eq!(par.best_params, serial.best_params);
    }

    #[test]
    fn more_threads_than_periods_is_clamped() {
        let s = demand(15);
        let mut m = EgrvModel::new(
            EgrvConfig {
                periods_per_day: 4,
                ..EgrvConfig::default()
            },
            Exogenous::default(),
        );
        fit_egrv_parallel(&mut m, &s, 64);
        assert!(m.is_fitted());
    }
}
