//! The bin-packer (paper §4): bounds on aggregate size.
//!
//! "The aggregation parameters might not be sufficient when aggregating a
//! large number of identical flex-offers. In such a case, all identical
//! flex-offer\[s\] will be aggregated into a single aggregated flex-offer
//! thus losing the flexibility to schedule them individually. To prevent
//! this, a so called bin-packer is designed. … It should be noticed that
//! this bin-packer is an optional feature and can be turned off."
//!
//! The packer consumes group **membership deltas** and maintains its bins
//! incrementally: a removed offer leaves exactly its bin, an added offer
//! first-fits into the existing bins (emptied bins are reused before new
//! ones open). One trickle update therefore touches O(bins of the group)
//! state instead of re-packing the whole group, and downstream sub-group
//! updates are deltas too — unchanged members generate no traffic.

use crate::config::BinPackerConfig;
use crate::slab::OfferSlab;
use crate::update::{GroupUpdate, SubgroupId, SubgroupUpdate};
use mirabel_core::{FlexOffer, FlexOfferId, GroupId};
use std::collections::{BTreeMap, HashMap};

/// One bounded sub-group of a similarity group. The member list is kept
/// in insertion order; the running energy total tracks the packing bound.
#[derive(Debug, Default)]
struct Bin {
    members: Vec<FlexOfferId>,
    energy: f64,
}

/// Incremental packing state of one group.
#[derive(Debug, Default)]
struct GroupBins {
    /// Index in this vector = sub-group index. Emptied bins stay as
    /// reusable holes so indices remain stable.
    bins: Vec<Bin>,
    /// Offer → bin index.
    assign: HashMap<FlexOfferId, u32>,
}

/// Per-flush membership delta of one bin.
#[derive(Debug, Default)]
struct BinDelta {
    added: Vec<FlexOfferId>,
    removed: Vec<FlexOffer>,
}

/// Splits similarity groups into bounds-satisfying sub-groups.
#[derive(Debug)]
pub struct BinPacker {
    config: BinPackerConfig,
    groups: HashMap<GroupId, GroupBins>,
}

impl BinPacker {
    /// Packer with the given bounds.
    pub fn new(config: BinPackerConfig) -> BinPacker {
        BinPacker {
            config,
            groups: HashMap::new(),
        }
    }

    /// The bounds in use.
    pub fn config(&self) -> &BinPackerConfig {
        &self.config
    }

    /// Whether `bin` can take another offer of energy `e` kWh. An empty
    /// bin always accepts, so oversized single offers still get packed.
    fn fits(config: &BinPackerConfig, bin: &Bin, e: f64) -> bool {
        if bin.members.is_empty() {
            return true;
        }
        if let Some(mm) = config.max_members {
            if bin.members.len() >= mm {
                return false;
            }
        }
        if let Some(me) = config.max_energy_kwh {
            if bin.energy + e > me {
                return false;
            }
        }
        true
    }

    /// Consume group deltas, maintain the bins, emit sub-group deltas.
    pub fn apply(&mut self, updates: Vec<GroupUpdate>, slab: &OfferSlab) -> Vec<SubgroupUpdate> {
        let mut out = Vec::new();
        for u in updates {
            match u {
                GroupUpdate::Removed { group } => {
                    if let Some(entry) = self.groups.remove(&group) {
                        for (index, bin) in entry.bins.iter().enumerate() {
                            if !bin.members.is_empty() {
                                out.push(SubgroupUpdate::Removed {
                                    subgroup: SubgroupId {
                                        group,
                                        index: index as u32,
                                    },
                                });
                            }
                        }
                    }
                }
                GroupUpdate::Upsert {
                    group,
                    added,
                    removed,
                } => {
                    let entry = self.groups.entry(group).or_default();
                    let mut deltas: BTreeMap<u32, BinDelta> = BTreeMap::new();
                    // Detach every departing member first, THEN re-sum
                    // the touched bins: a batch may remove several
                    // members of one bin, and mid-removal "survivors"
                    // that are later entries of the same removed list
                    // are already gone from the slab.
                    for offer in removed {
                        let idx = entry
                            .assign
                            .remove(&offer.id())
                            .expect("removed offer was packed");
                        let bin = &mut entry.bins[idx as usize];
                        bin.members.retain(|&m| m != offer.id());
                        deltas.entry(idx).or_default().removed.push(offer);
                    }
                    for &idx in deltas.keys() {
                        // Re-sum from the true survivors (all still in the
                        // slab) instead of subtracting: the running total
                        // stays drift-free across long delete streams.
                        let bin = &mut entry.bins[idx as usize];
                        bin.energy = bin
                            .members
                            .iter()
                            .map(|m| {
                                slab.get(*m)
                                    .expect("bin member is in the slab")
                                    .profile()
                                    .max_total_energy()
                                    .kwh()
                            })
                            .sum();
                    }
                    for id in added {
                        let e = slab
                            .get(id)
                            .expect("added offer is in the slab")
                            .profile()
                            .max_total_energy()
                            .kwh();
                        let config = &self.config;
                        let idx = match (0..entry.bins.len())
                            .find(|&i| BinPacker::fits(config, &entry.bins[i], e))
                        {
                            Some(i) => i,
                            None => {
                                entry.bins.push(Bin::default());
                                entry.bins.len() - 1
                            }
                        };
                        let bin = &mut entry.bins[idx];
                        bin.members.push(id);
                        bin.energy += e;
                        entry.assign.insert(id, idx as u32);
                        deltas.entry(idx as u32).or_default().added.push(id);
                    }
                    for (index, delta) in deltas {
                        let subgroup = SubgroupId { group, index };
                        if entry.bins[index as usize].members.is_empty() {
                            out.push(SubgroupUpdate::Removed { subgroup });
                        } else if !(delta.added.is_empty() && delta.removed.is_empty()) {
                            out.push(SubgroupUpdate::Upsert {
                                subgroup,
                                added: delta.added,
                                removed: delta.removed,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Pass-through used when the bin-packer is disabled: each group maps
    /// to exactly one sub-group (index 0).
    pub fn passthrough(updates: Vec<GroupUpdate>) -> Vec<SubgroupUpdate> {
        updates
            .into_iter()
            .map(|u| match u {
                GroupUpdate::Upsert {
                    group,
                    added,
                    removed,
                } => SubgroupUpdate::Upsert {
                    subgroup: SubgroupId { group, index: 0 },
                    added,
                    removed,
                },
                GroupUpdate::Removed { group } => SubgroupUpdate::Removed {
                    subgroup: SubgroupId { group, index: 0 },
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{EnergyRange, Profile, TimeSlot};

    fn offer(id: u64, max_kwh: f64) -> FlexOffer {
        FlexOffer::builder(id, 1)
            .earliest_start(TimeSlot(10))
            .profile(Profile::uniform(1, EnergyRange::new(0.0, max_kwh).unwrap()))
            .build()
            .unwrap()
    }

    /// Stock a slab and produce the matching group upsert delta.
    fn upsert(slab: &mut OfferSlab, group: u64, members: Vec<FlexOffer>) -> GroupUpdate {
        let added = members.iter().map(|o| o.id()).collect();
        for o in members {
            slab.insert(o);
        }
        GroupUpdate::Upsert {
            group: GroupId(group),
            added,
            removed: vec![],
        }
    }

    /// Remove offers from the slab and produce the matching delta.
    fn remove(slab: &mut OfferSlab, group: u64, ids: Vec<u64>) -> GroupUpdate {
        let removed = ids
            .into_iter()
            .map(|id| slab.remove(FlexOfferId(id)).expect("offer in slab"))
            .collect();
        GroupUpdate::Upsert {
            group: GroupId(group),
            added: vec![],
            removed,
        }
    }

    fn upsert_sizes(out: &[SubgroupUpdate]) -> Vec<usize> {
        out.iter()
            .filter_map(|u| match u {
                SubgroupUpdate::Upsert { added, .. } => Some(added.len()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn member_bound_splits_groups() {
        let mut slab = OfferSlab::new();
        let mut bp = BinPacker::new(BinPackerConfig::max_members(3));
        let members: Vec<FlexOffer> = (0..10).map(|i| offer(i, 1.0)).collect();
        let u = upsert(&mut slab, 1, members);
        let out = bp.apply(vec![u], &slab);
        assert_eq!(upsert_sizes(&out), vec![3, 3, 3, 1]);
    }

    #[test]
    fn energy_bound_respected() {
        let mut slab = OfferSlab::new();
        let mut bp = BinPacker::new(BinPackerConfig::max_energy(5.0));
        let u = upsert(
            &mut slab,
            1,
            vec![offer(1, 3.0), offer(2, 3.0), offer(3, 1.0)],
        );
        let out = bp.apply(vec![u], &slab);
        for u in &out {
            if let SubgroupUpdate::Upsert { added, .. } = u {
                let total: f64 = added
                    .iter()
                    .map(|id| slab.get(*id).unwrap().profile().max_total_energy().kwh())
                    .sum();
                assert!(total <= 5.0 + 1e-9, "bin energy {total}");
            }
        }
        // first-fit: [3.0, 1.0] and [3.0]
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn oversized_single_offer_still_packed() {
        let mut slab = OfferSlab::new();
        let mut bp = BinPacker::new(BinPackerConfig::max_energy(1.0));
        let u = upsert(&mut slab, 1, vec![offer(1, 50.0)]);
        let out = bp.apply(vec![u], &slab);
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0], SubgroupUpdate::Upsert { added, .. } if added.len() == 1));
    }

    #[test]
    fn removal_touches_only_its_bin() {
        let mut slab = OfferSlab::new();
        let mut bp = BinPacker::new(BinPackerConfig::max_members(2));
        let u = upsert(&mut slab, 1, (0..6).map(|i| offer(i, 1.0)).collect());
        bp.apply(vec![u], &slab); // bins [0,1] [2,3] [4,5]
        let u = remove(&mut slab, 1, vec![3]);
        let out = bp.apply(vec![u], &slab);
        // only bin 1 emits an update
        assert_eq!(out.len(), 1);
        match &out[0] {
            SubgroupUpdate::Upsert {
                subgroup, removed, ..
            } => {
                assert_eq!(subgroup.index, 1);
                assert_eq!(removed.len(), 1);
                assert_eq!(removed[0].id(), FlexOfferId(3));
            }
            other => panic!("expected upsert, got {other:?}"),
        }
    }

    #[test]
    fn emptied_bin_is_removed_and_reused() {
        let mut slab = OfferSlab::new();
        let mut bp = BinPacker::new(BinPackerConfig::max_members(1));
        let u = upsert(&mut slab, 1, vec![offer(1, 1.0), offer(2, 1.0)]);
        bp.apply(vec![u], &slab); // bins [1] [2]
        let u = remove(&mut slab, 1, vec![1]);
        let out = bp.apply(vec![u], &slab);
        assert!(
            matches!(&out[0], SubgroupUpdate::Removed { subgroup } if subgroup.index == 0),
            "got {out:?}"
        );
        // a new offer first-fits into the freed bin 0, not a fresh bin 2
        let u = upsert(&mut slab, 1, vec![offer(3, 1.0)]);
        let out = bp.apply(vec![u], &slab);
        assert!(
            matches!(&out[0], SubgroupUpdate::Upsert { subgroup, .. } if subgroup.index == 0),
            "got {out:?}"
        );
    }

    #[test]
    fn batch_removal_of_same_bin_members_does_not_panic() {
        // Regression: deleting several members of ONE bin in a single
        // flush must not look the already-slab-removed members up
        // during the bin-energy re-sum.
        let mut slab = OfferSlab::new();
        let mut bp = BinPacker::new(BinPackerConfig::max_members(3));
        let u = upsert(
            &mut slab,
            1,
            vec![offer(1, 1.0), offer(2, 2.0), offer(3, 4.0)],
        );
        bp.apply(vec![u], &slab); // one bin [1,2,3]
        let u = remove(&mut slab, 1, vec![1, 2]);
        let out = bp.apply(vec![u], &slab);
        assert_eq!(out.len(), 1);
        match &out[0] {
            SubgroupUpdate::Upsert {
                subgroup, removed, ..
            } => {
                assert_eq!(subgroup.index, 0);
                assert_eq!(removed.len(), 2);
            }
            other => panic!("expected upsert, got {other:?}"),
        }
        // The surviving bin's running energy equals offer 3's.
        let u = upsert(&mut slab, 1, vec![offer(4, 1.0)]);
        bp.apply(vec![u], &slab);
        let entry = bp.groups.get(&GroupId(1)).unwrap();
        assert_eq!(entry.bins[0].members.len(), 2);
        assert!((entry.bins[0].energy - 5.0).abs() < 1e-12);
    }

    #[test]
    fn group_removal_cascades() {
        let mut slab = OfferSlab::new();
        let mut bp = BinPacker::new(BinPackerConfig::max_members(1));
        let u = upsert(&mut slab, 7, vec![offer(1, 1.0), offer(2, 1.0)]);
        bp.apply(vec![u], &slab);
        let out = bp.apply(vec![GroupUpdate::Removed { group: GroupId(7) }], &slab);
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .all(|u| matches!(u, SubgroupUpdate::Removed { .. })));
    }

    #[test]
    fn unbounded_config_keeps_one_bin() {
        let mut slab = OfferSlab::new();
        let mut bp = BinPacker::new(BinPackerConfig::default());
        let u = upsert(&mut slab, 1, (0..100).map(|i| offer(i, 1.0)).collect());
        let out = bp.apply(vec![u], &slab);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn passthrough_maps_one_to_one() {
        let out = BinPacker::passthrough(vec![
            GroupUpdate::Upsert {
                group: GroupId(1),
                added: vec![FlexOfferId(1)],
                removed: vec![],
            },
            GroupUpdate::Removed { group: GroupId(2) },
        ]);
        assert_eq!(out.len(), 2);
        assert!(matches!(&out[0], SubgroupUpdate::Upsert { subgroup, .. } if subgroup.index == 0));
        assert!(
            matches!(&out[1], SubgroupUpdate::Removed { subgroup } if subgroup.group == GroupId(2))
        );
    }
}
