//! The bin-packer (paper §4): bounds on aggregate size.
//!
//! "The aggregation parameters might not be sufficient when aggregating a
//! large number of identical flex-offers. In such a case, all identical
//! flex-offer\[s\] will be aggregated into a single aggregated flex-offer
//! thus losing the flexibility to schedule them individually. To prevent
//! this, a so called bin-packer is designed. … It should be noticed that
//! this bin-packer is an optional feature and can be turned off."
//!
//! The packer consumes group updates and splits each group's members into
//! bounded sub-groups (first-fit in stable member order). It remembers the
//! sub-group count per group so shrinking groups emit `Removed` updates
//! for vanished sub-groups.

use crate::config::BinPackerConfig;
use crate::update::{GroupUpdate, SubgroupId, SubgroupUpdate};
use mirabel_core::{FlexOffer, GroupId};
use std::collections::HashMap;

/// Splits similarity groups into bounds-satisfying sub-groups.
#[derive(Debug)]
pub struct BinPacker {
    config: BinPackerConfig,
    /// Sub-group count previously emitted per group.
    emitted: HashMap<GroupId, u32>,
}

impl BinPacker {
    /// Packer with the given bounds.
    pub fn new(config: BinPackerConfig) -> BinPacker {
        BinPacker {
            config,
            emitted: HashMap::new(),
        }
    }

    /// The bounds in use.
    pub fn config(&self) -> &BinPackerConfig {
        &self.config
    }

    /// Partition members by first-fit under the configured bounds.
    fn partition(&self, members: &[FlexOffer]) -> Vec<Vec<FlexOffer>> {
        let mut bins: Vec<Vec<FlexOffer>> = Vec::new();
        let mut bin_energy: Vec<f64> = Vec::new();
        for offer in members {
            let e = offer.profile().max_total_energy().kwh();
            let fits = |i: usize, bins: &[Vec<FlexOffer>], bin_energy: &[f64]| -> bool {
                if let Some(mm) = self.config.max_members {
                    if bins[i].len() >= mm {
                        return false;
                    }
                }
                if let Some(me) = self.config.max_energy_kwh {
                    // A bin accepts an offer if empty (oversized single
                    // offers still get a bin) or if the energy bound holds.
                    if !bins[i].is_empty() && bin_energy[i] + e > me {
                        return false;
                    }
                }
                true
            };
            let slot = (0..bins.len()).find(|&i| fits(i, &bins, &bin_energy));
            match slot {
                Some(i) => {
                    bins[i].push(offer.clone());
                    bin_energy[i] += e;
                }
                None => {
                    bins.push(vec![offer.clone()]);
                    bin_energy.push(e);
                }
            }
        }
        bins
    }

    /// Consume group updates, emit sub-group updates.
    pub fn apply(&mut self, updates: Vec<GroupUpdate>) -> Vec<SubgroupUpdate> {
        let mut out = Vec::new();
        for u in updates {
            match u {
                GroupUpdate::Removed { group } => {
                    let n = self.emitted.remove(&group).unwrap_or(0);
                    for index in 0..n {
                        out.push(SubgroupUpdate::Removed {
                            subgroup: SubgroupId { group, index },
                        });
                    }
                }
                GroupUpdate::Upsert { group, members } => {
                    let bins = self.partition(&members);
                    let new_n = bins.len() as u32;
                    let old_n = self.emitted.insert(group, new_n).unwrap_or(0);
                    for (i, bin) in bins.into_iter().enumerate() {
                        out.push(SubgroupUpdate::Upsert {
                            subgroup: SubgroupId {
                                group,
                                index: i as u32,
                            },
                            members: bin,
                        });
                    }
                    for index in new_n..old_n {
                        out.push(SubgroupUpdate::Removed {
                            subgroup: SubgroupId { group, index },
                        });
                    }
                }
            }
        }
        out
    }

    /// Pass-through used when the bin-packer is disabled: each group maps
    /// to exactly one sub-group (index 0).
    pub fn passthrough(updates: Vec<GroupUpdate>) -> Vec<SubgroupUpdate> {
        updates
            .into_iter()
            .map(|u| match u {
                GroupUpdate::Upsert { group, members } => SubgroupUpdate::Upsert {
                    subgroup: SubgroupId { group, index: 0 },
                    members,
                },
                GroupUpdate::Removed { group } => SubgroupUpdate::Removed {
                    subgroup: SubgroupId { group, index: 0 },
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{EnergyRange, Profile, TimeSlot};

    fn offer(id: u64, max_kwh: f64) -> FlexOffer {
        FlexOffer::builder(id, 1)
            .earliest_start(TimeSlot(10))
            .profile(Profile::uniform(1, EnergyRange::new(0.0, max_kwh).unwrap()))
            .build()
            .unwrap()
    }

    fn upsert(group: u64, members: Vec<FlexOffer>) -> GroupUpdate {
        GroupUpdate::Upsert {
            group: GroupId(group),
            members,
        }
    }

    #[test]
    fn member_bound_splits_groups() {
        let mut bp = BinPacker::new(BinPackerConfig::max_members(3));
        let members: Vec<FlexOffer> = (0..10).map(|i| offer(i, 1.0)).collect();
        let out = bp.apply(vec![upsert(1, members)]);
        let upserts: Vec<_> = out
            .iter()
            .filter_map(|u| match u {
                SubgroupUpdate::Upsert { members, .. } => Some(members.len()),
                _ => None,
            })
            .collect();
        assert_eq!(upserts, vec![3, 3, 3, 1]);
    }

    #[test]
    fn energy_bound_respected() {
        let mut bp = BinPacker::new(BinPackerConfig::max_energy(5.0));
        let members = vec![offer(1, 3.0), offer(2, 3.0), offer(3, 1.0)];
        let out = bp.apply(vec![upsert(1, members)]);
        for u in &out {
            if let SubgroupUpdate::Upsert { members, .. } = u {
                let total: f64 = members
                    .iter()
                    .map(|o| o.profile().max_total_energy().kwh())
                    .sum();
                assert!(total <= 5.0 + 1e-9, "bin energy {total}");
            }
        }
        // first-fit: [3.0, 1.0] and [3.0]
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn oversized_single_offer_still_packed() {
        let mut bp = BinPacker::new(BinPackerConfig::max_energy(1.0));
        let out = bp.apply(vec![upsert(1, vec![offer(1, 50.0)])]);
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0], SubgroupUpdate::Upsert { members, .. } if members.len() == 1));
    }

    #[test]
    fn shrinking_group_removes_stale_subgroups() {
        let mut bp = BinPacker::new(BinPackerConfig::max_members(2));
        bp.apply(vec![upsert(1, (0..6).map(|i| offer(i, 1.0)).collect())]); // 3 bins
        let out = bp.apply(vec![upsert(1, (0..2).map(|i| offer(i, 1.0)).collect())]); // 1 bin
        let removed: Vec<u32> = out
            .iter()
            .filter_map(|u| match u {
                SubgroupUpdate::Removed { subgroup } => Some(subgroup.index),
                _ => None,
            })
            .collect();
        assert_eq!(removed, vec![1, 2]);
    }

    #[test]
    fn group_removal_cascades() {
        let mut bp = BinPacker::new(BinPackerConfig::max_members(1));
        bp.apply(vec![upsert(7, vec![offer(1, 1.0), offer(2, 1.0)])]);
        let out = bp.apply(vec![GroupUpdate::Removed { group: GroupId(7) }]);
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .all(|u| matches!(u, SubgroupUpdate::Removed { .. })));
    }

    #[test]
    fn unbounded_config_keeps_one_bin() {
        let mut bp = BinPacker::new(BinPackerConfig::default());
        let out = bp.apply(vec![upsert(1, (0..100).map(|i| offer(i, 1.0)).collect())]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn passthrough_maps_one_to_one() {
        let out = BinPacker::passthrough(vec![
            upsert(1, vec![offer(1, 1.0)]),
            GroupUpdate::Removed { group: GroupId(2) },
        ]);
        assert_eq!(out.len(), 2);
        assert!(matches!(&out[0], SubgroupUpdate::Upsert { subgroup, .. } if subgroup.index == 0));
        assert!(
            matches!(&out[1], SubgroupUpdate::Removed { subgroup } if subgroup.group == GroupId(2))
        );
    }
}
