//! Single-copy flex-offer storage for the aggregation pipeline.
//!
//! The paper's trader node ingests more than 10⁶ micro flex-offers per
//! day. The original pipeline cloned every offer through each update
//! stream (group-builder → bin-packer → n-to-1 aggregator), so one
//! trickle insert into a 1 000-member group copied a thousand offers.
//! [`OfferSlab`] stores each offer exactly once; the stages exchange
//! [`FlexOfferId`]s (additions) or the displaced owned value (removals)
//! and resolve ids against the slab when they need attributes.
//!
//! Internally the slab is a slot vector with a free list, plus an
//! id → slot index so lookups stay O(1) for the arbitrary (sparse,
//! externally assigned) offer ids the EDMS produces.

use mirabel_core::{FlexOffer, FlexOfferId};
use std::collections::HashMap;

/// Id-indexed, single-copy offer store shared by the pipeline stages.
#[derive(Debug, Default)]
pub struct OfferSlab {
    slots: Vec<Option<FlexOffer>>,
    free: Vec<u32>,
    index: HashMap<FlexOfferId, u32>,
}

impl OfferSlab {
    /// Empty slab.
    pub fn new() -> OfferSlab {
        OfferSlab::default()
    }

    /// Slab with room for `n` offers before reallocating.
    pub fn with_capacity(n: usize) -> OfferSlab {
        OfferSlab {
            slots: Vec::with_capacity(n),
            free: Vec::new(),
            index: HashMap::with_capacity(n),
        }
    }

    /// Number of stored offers.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the slab is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `id` is stored.
    pub fn contains(&self, id: FlexOfferId) -> bool {
        self.index.contains_key(&id)
    }

    /// Insert (or replace) an offer, keyed by its own id. Returns the
    /// displaced value when the id was already present — the displaced
    /// offer is what downstream delta-folds subtract, so ownership moves
    /// to the caller instead of being cloned.
    pub fn insert(&mut self, offer: FlexOffer) -> Option<FlexOffer> {
        match self.index.entry(offer.id()) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let slot = *e.get() as usize;
                self.slots[slot].replace(offer)
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                let slot = match self.free.pop() {
                    Some(s) => {
                        self.slots[s as usize] = Some(offer);
                        s
                    }
                    None => {
                        self.slots.push(Some(offer));
                        (self.slots.len() - 1) as u32
                    }
                };
                e.insert(slot);
                None
            }
        }
    }

    /// Remove an offer, returning the owned value (for downstream
    /// subtraction) when present.
    pub fn remove(&mut self, id: FlexOfferId) -> Option<FlexOffer> {
        let slot = self.index.remove(&id)?;
        self.free.push(slot);
        self.slots[slot as usize].take()
    }

    /// Look up an offer by id.
    pub fn get(&self, id: FlexOfferId) -> Option<&FlexOffer> {
        let slot = *self.index.get(&id)?;
        self.slots[slot as usize].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{EnergyRange, Profile, TimeSlot};

    fn offer(id: u64, start: i64) -> FlexOffer {
        FlexOffer::builder(id, 1)
            .earliest_start(TimeSlot(start))
            .profile(Profile::uniform(2, EnergyRange::new(1.0, 2.0).unwrap()))
            .build()
            .unwrap()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = OfferSlab::new();
        assert!(slab.is_empty());
        assert!(slab.insert(offer(1, 10)).is_none());
        assert!(slab.insert(offer(2, 20)).is_none());
        assert_eq!(slab.len(), 2);
        assert!(slab.contains(FlexOfferId(1)));
        assert_eq!(
            slab.get(FlexOfferId(2)).unwrap().earliest_start(),
            TimeSlot(20)
        );
        let removed = slab.remove(FlexOfferId(1)).unwrap();
        assert_eq!(removed.id(), FlexOfferId(1));
        assert_eq!(slab.len(), 1);
        assert!(slab.get(FlexOfferId(1)).is_none());
        assert!(slab.remove(FlexOfferId(1)).is_none());
    }

    #[test]
    fn replace_returns_displaced_value() {
        let mut slab = OfferSlab::new();
        slab.insert(offer(7, 10));
        let displaced = slab.insert(offer(7, 99)).unwrap();
        assert_eq!(displaced.earliest_start(), TimeSlot(10));
        assert_eq!(slab.len(), 1);
        assert_eq!(
            slab.get(FlexOfferId(7)).unwrap().earliest_start(),
            TimeSlot(99)
        );
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut slab = OfferSlab::new();
        for i in 0..10 {
            slab.insert(offer(i, i as i64));
        }
        for i in 0..10 {
            slab.remove(FlexOfferId(i));
        }
        for i in 10..20 {
            slab.insert(offer(i, i as i64));
        }
        assert_eq!(slab.len(), 10);
        // slot vector did not grow past the original ten entries
        assert!(slab.slots.len() <= 10);
    }
}
