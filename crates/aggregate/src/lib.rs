//! # mirabel-aggregate
//!
//! Flex-offer aggregation and disaggregation (paper §4).
//!
//! The trader's node receives more than 10⁶ micro flex-offers per day —
//! far too many to schedule individually — so similar offers are
//! aggregated into *macro* flex-offers first. The paper's component is a
//! chain of three sub-components, reproduced here one module each:
//!
//! 1. [`group::GroupBuilder`] — partitions offers into similarity groups
//!    controlled by user-defined *aggregation thresholds* (start-after
//!    tolerance, time-flexibility tolerance, …);
//! 2. [`binpack::BinPacker`] — optional; splits groups into bounded
//!    sub-groups (member count / energy bounds);
//! 3. [`nto1::NToOneAggregator`] — folds each (sub-)group into a single
//!    [`AggregatedFlexOffer`] and performs disaggregation of scheduled
//!    aggregates back into micro schedules.
//!
//! The sub-components communicate through explicit update streams
//! ([`update`]) so the whole pipeline is *incremental*: processing a batch
//! of offer inserts/deletes touches only the affected groups and
//! aggregates ("aggregated flex-offers can be incrementally updated to
//! avoid a from-scratch re-computation").
//!
//! ## The four requirements (§4)
//!
//! * **Disaggregation requirement** (hard): any schedule of the aggregate
//!   maps to valid schedules of the members. Guaranteed by conservative
//!   construction: the aggregate's time flexibility is the *minimum*
//!   member flexibility and its per-slot energy bounds are Minkowski sums
//!   of member bounds. Property-tested in [`nto1`].
//! * **Compression / flexibility / efficiency** (soft, conflicting):
//!   measured by [`metrics::AggregationReport`] and explored in the
//!   Figure 5 experiment.
//!
//! ```
//! use mirabel_aggregate::{AggregationParams, AggregationPipeline, FlexOfferUpdate};
//! use mirabel_core::{FlexOfferGenerator, GeneratorConfig};
//!
//! let offers: Vec<_> = FlexOfferGenerator::with_seed(1).take(1000).collect();
//! let mut pipeline = AggregationPipeline::new(AggregationParams::p3(16, 16), None);
//! pipeline.apply(offers.iter().cloned().map(FlexOfferUpdate::Insert).collect::<Vec<_>>());
//! let report = pipeline.report();
//! assert!(report.compression_ratio() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod binpack;
pub mod config;
pub mod group;
pub mod metrics;
pub mod nto1;
pub mod pipeline;
pub mod update;

pub use aggregate::AggregatedFlexOffer;
pub use binpack::BinPacker;
pub use config::{AggregationParams, BinPackerConfig};
pub use group::GroupBuilder;
pub use metrics::AggregationReport;
pub use nto1::{DisaggregationError, NToOneAggregator};
pub use pipeline::AggregationPipeline;
pub use update::{AggregateUpdate, FlexOfferUpdate, GroupUpdate, SubgroupId, SubgroupUpdate};
