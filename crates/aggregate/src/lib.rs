//! # mirabel-aggregate
//!
//! Flex-offer aggregation and disaggregation (paper §4).
//!
//! The trader's node receives more than 10⁶ micro flex-offers per day —
//! far too many to schedule individually — so similar offers are
//! aggregated into *macro* flex-offers first. The paper's component is a
//! chain of three sub-components, reproduced here one module each:
//!
//! 1. [`group::GroupBuilder`] — partitions offers into similarity groups
//!    controlled by user-defined *aggregation thresholds* (start-after
//!    tolerance, time-flexibility tolerance, …);
//! 2. [`binpack::BinPacker`] — optional; splits groups into bounded
//!    sub-groups (member count / energy bounds), maintained
//!    incrementally per bin;
//! 3. [`nto1::NToOneAggregator`] — folds each (sub-)group into a single
//!    [`AggregatedFlexOffer`] and performs disaggregation of scheduled
//!    aggregates back into micro schedules.
//!
//! ## Delta streams, single-copy storage, shard-parallel flush
//!
//! Three design decisions make the pipeline sustain the paper's 10⁶
//! offers/day at trickle latency independent of group size:
//!
//! * **Delta update streams** ([`update`]): group and sub-group updates
//!   carry membership *deltas* — `added` offer ids plus the **owned** old
//!   values of `removed` offers — never full member snapshots. A
//!   single-offer insert into a 1 000-member group moves O(1) data
//!   between stages.
//! * **Single-copy offer storage** ([`slab::OfferSlab`]): the pipeline
//!   stores each [`FlexOffer`](mirabel_core::FlexOffer) exactly once;
//!   stages resolve ids against the slab and removals travel by moving
//!   the displaced value down the stream, so steady-state operation
//!   clones no offers at all.
//! * **Delta-folded aggregates** ([`nto1`]): each aggregate keeps value
//!   multisets for its min-folded attributes and the per-slot Minkowski
//!   energy sums, so applying a delta costs O(changed members × profile
//!   length). Float drift is squashed by a periodic exact re-fold, and
//!   debug builds cross-check every emitted aggregate against
//!   [`AggregatedFlexOffer::build`] — the same pattern as the
//!   scheduler's `DeltaEvaluator` vs `cost::evaluate`.
//!   Flushes shard the fold by group hash across the lanes of a shared
//!   persistent worker pool ([`mirabel_core::exec::Pool`], wired via
//!   [`AggregationPipeline::set_flush_pool`]; the process-wide global
//!   pool by default, so a trickle flush wakes parked workers instead
//!   of spawning threads) and merge in sorted sub-group order, so the
//!   emitted stream — fresh aggregate ids included — is identical for
//!   any pool width.
//!
//! The `aggregation_scale` bench tracks the resulting throughput:
//! 100 k/1 M-offer from-scratch builds, trickle updates whose cost is
//! flat in the group size, and the multi-thread flush speedup.
//!
//! ## The four requirements (§4)
//!
//! * **Disaggregation requirement** (hard): any schedule of the aggregate
//!   maps to valid schedules of the members. Guaranteed by conservative
//!   construction: the aggregate's time flexibility is the *minimum*
//!   member flexibility and its per-slot energy bounds are Minkowski sums
//!   of member bounds. Property-tested in [`nto1`].
//! * **Compression / flexibility / efficiency** (soft, conflicting):
//!   measured by [`metrics::AggregationReport`] and explored in the
//!   Figure 5 experiment; [`metrics::DeltaStats`] additionally counts the
//!   delta-fold work and re-folds.
//!
//! ```
//! use mirabel_aggregate::{AggregationParams, AggregationPipeline, FlexOfferUpdate};
//! use mirabel_core::{FlexOfferGenerator, GeneratorConfig};
//!
//! let offers: Vec<_> = FlexOfferGenerator::with_seed(1).take(1000).collect();
//! let mut pipeline = AggregationPipeline::new(AggregationParams::p3(16, 16), None);
//! pipeline.apply(offers.iter().cloned().map(FlexOfferUpdate::Insert).collect::<Vec<_>>());
//! let report = pipeline.report();
//! assert!(report.compression_ratio() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod binpack;
pub mod config;
pub mod group;
pub mod members;
pub mod metrics;
pub mod nto1;
pub mod pipeline;
pub mod slab;
pub mod update;

pub use aggregate::AggregatedFlexOffer;
pub use binpack::BinPacker;
pub use config::{AggregationParams, BinPackerConfig};
pub use group::GroupBuilder;
pub use members::MemberIds;
pub use metrics::{AggregationReport, DeltaStats};
pub use nto1::{DisaggregationError, NToOneAggregator};
pub use pipeline::AggregationPipeline;
pub use slab::OfferSlab;
pub use update::{AggregateUpdate, FlexOfferUpdate, GroupUpdate, SubgroupId, SubgroupUpdate};
