//! The chained aggregation pipeline (paper §4): group-builder →
//! (optional) bin-packer → n-to-1 aggregator, with incremental **delta**
//! updates flowing through all three and every offer value stored once
//! in the pipeline's [`OfferSlab`].

use crate::aggregate::AggregatedFlexOffer;
use crate::binpack::BinPacker;
use crate::config::{AggregationParams, BinPackerConfig};
use crate::group::GroupBuilder;
use crate::metrics::{AggregationReport, DeltaStats};
use crate::nto1::{DisaggregationError, NToOneAggregator};
use crate::slab::OfferSlab;
use crate::update::{AggregateUpdate, FlexOfferUpdate};
use mirabel_core::exec::Pool;
use mirabel_core::{AggregateId, FlexOffer, FlexOfferId, ScheduledFlexOffer};

/// The full aggregation component.
#[derive(Debug)]
pub struct AggregationPipeline {
    slab: OfferSlab,
    groups: GroupBuilder,
    binpacker: Option<BinPacker>,
    aggregator: NToOneAggregator,
}

impl AggregationPipeline {
    /// Pipeline with the given thresholds; `binpacker: None` disables the
    /// bin-packer (as in the Figure 5 experiment).
    pub fn new(params: AggregationParams, binpacker: Option<BinPackerConfig>) -> Self {
        AggregationPipeline {
            slab: OfferSlab::new(),
            groups: GroupBuilder::new(params),
            binpacker: binpacker.map(BinPacker::new),
            aggregator: NToOneAggregator::new(),
        }
    }

    /// Worker pool used by the shard-parallel flush (the n-to-1 fold is
    /// partitioned by group hash, one shard per pool lane). The emitted
    /// update stream is identical for any pool; the default is the
    /// shared [`Pool::global`] executor.
    pub fn set_flush_pool(&mut self, pool: Pool) {
        self.aggregator.set_pool(pool);
    }

    /// Convenience over [`set_flush_pool`](Self::set_flush_pool): flush
    /// on a *dedicated* pool of `threads` lanes. Prefer sharing an
    /// existing pool; this exists for width-pinned benchmarks and tests.
    pub fn set_flush_threads(&mut self, threads: usize) {
        self.aggregator.set_pool(Pool::new(threads));
    }

    /// Run a batch of offer updates through the whole chain; returns the
    /// aggregated flex-offer updates.
    pub fn apply(&mut self, updates: Vec<FlexOfferUpdate>) -> Vec<AggregateUpdate> {
        self.groups.accumulate(updates);
        let group_updates = self.groups.flush(&mut self.slab);
        let subgroup_updates = match &mut self.binpacker {
            Some(bp) => bp.apply(group_updates, &self.slab),
            None => BinPacker::passthrough(group_updates),
        };
        self.aggregator.apply(subgroup_updates, &self.slab)
    }

    /// Pipeline with the *integrated* bounded group-builder (§4 Research
    /// Directions): grouping and bin-packing happen in a single pass,
    /// every aggregate has at most `member_cap` members, and the separate
    /// bin-packer stage is skipped.
    pub fn new_integrated(params: AggregationParams, member_cap: u32) -> Self {
        AggregationPipeline {
            slab: OfferSlab::new(),
            groups: GroupBuilder::with_member_cap(params, member_cap),
            binpacker: None,
            aggregator: NToOneAggregator::new(),
        }
    }

    /// Convenience: aggregate a whole offer set from scratch.
    pub fn from_scratch(
        params: AggregationParams,
        binpacker: Option<BinPackerConfig>,
        offers: impl IntoIterator<Item = FlexOffer>,
    ) -> AggregationPipeline {
        let mut p = AggregationPipeline::new(params, binpacker);
        p.apply(offers.into_iter().map(FlexOfferUpdate::Insert).collect());
        p
    }

    /// Iterate current aggregates (ascending aggregate id).
    pub fn aggregates(&self) -> impl Iterator<Item = &AggregatedFlexOffer> {
        self.aggregator.aggregates()
    }

    /// Aggregates as plain flex-offers for the scheduler, in stable id
    /// order (schedulers are order-sensitive; the aggregate store
    /// iterates in id order by construction).
    pub fn macro_offers(&self) -> Vec<FlexOffer> {
        self.aggregator
            .aggregates()
            .map(|a| {
                a.to_flex_offer()
                    .expect("aggregates are valid flex-offers by construction")
            })
            .collect()
    }

    /// Look up one aggregate.
    pub fn aggregate(&self, id: AggregateId) -> Option<&AggregatedFlexOffer> {
        self.aggregator.aggregate(id)
    }

    /// Look up one pooled micro offer in the slab.
    pub fn offer(&self, id: FlexOfferId) -> Option<&FlexOffer> {
        self.slab.get(id)
    }

    /// Disaggregate a scheduled aggregate (see
    /// [`NToOneAggregator::disaggregate`]).
    pub fn disaggregate(
        &self,
        id: AggregateId,
        schedule: &ScheduledFlexOffer,
    ) -> Result<Vec<ScheduledFlexOffer>, DisaggregationError> {
        self.aggregator.disaggregate(id, schedule, &self.slab)
    }

    /// Current quality metrics (Figure 5 quantities).
    pub fn report(&self) -> AggregationReport {
        let mut total_tf = 0u64;
        let mut retained = 0u64;
        let mut offers = 0usize;
        for agg in self.aggregator.aggregates() {
            let agg_tf = agg.time_flexibility() as u64;
            let members = self
                .aggregator
                .member_ids(agg.id)
                .expect("aggregate has members");
            offers += members.len();
            for mid in members.iter() {
                let m = self.slab.get(mid).expect("member is in the slab");
                total_tf += m.time_flexibility() as u64;
                retained += agg_tf;
            }
        }
        AggregationReport {
            offer_count: offers,
            aggregate_count: self.aggregator.aggregate_count(),
            total_time_flexibility: total_tf,
            retained_time_flexibility: retained,
        }
    }

    /// Cumulative delta-fold statistics of the n-to-1 stage.
    pub fn delta_stats(&self) -> DeltaStats {
        self.aggregator.stats()
    }

    /// Number of similarity groups currently maintained.
    pub fn group_count(&self) -> usize {
        self.groups.group_count()
    }

    /// Number of offers currently pooled in the slab.
    pub fn offer_count(&self) -> usize {
        self.slab.len()
    }

    /// Number of aggregates currently maintained.
    pub fn aggregate_count(&self) -> usize {
        self.aggregator.aggregate_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{EnergyRange, FlexOfferGenerator, FlexOfferId, Profile, TimeSlot};

    fn offer(id: u64, start: i64, tf: u32) -> FlexOffer {
        FlexOffer::builder(id, 1)
            .earliest_start(TimeSlot(start))
            .time_flexibility(tf)
            .profile(Profile::uniform(2, EnergyRange::new(1.0, 2.0).unwrap()))
            .build()
            .unwrap()
    }

    #[test]
    fn p0_has_zero_flexibility_loss() {
        let offers: Vec<FlexOffer> = FlexOfferGenerator::with_seed(3).take(2000).collect();
        let p = AggregationPipeline::from_scratch(AggregationParams::p0(), None, offers);
        let r = p.report();
        assert_eq!(r.offer_count, 2000);
        assert_eq!(r.time_flexibility_loss(), 0);
        assert!(r.compression_ratio() >= 1.0);
    }

    #[test]
    fn p1_loses_flexibility_p2_does_not() {
        let offers: Vec<FlexOffer> = FlexOfferGenerator::with_seed(3).take(2000).collect();
        let p1 = AggregationPipeline::from_scratch(AggregationParams::p1(16), None, offers.clone());
        let p2 = AggregationPipeline::from_scratch(AggregationParams::p2(16), None, offers);
        assert!(p1.report().time_flexibility_loss() > 0);
        assert_eq!(p2.report().time_flexibility_loss(), 0);
    }

    #[test]
    fn wider_tolerances_compress_more() {
        let offers: Vec<FlexOffer> = FlexOfferGenerator::with_seed(5).take(5000).collect();
        let p0 = AggregationPipeline::from_scratch(AggregationParams::p0(), None, offers.clone());
        let p3 = AggregationPipeline::from_scratch(AggregationParams::p3(32, 32), None, offers);
        assert!(
            p3.report().compression_ratio() > p0.report().compression_ratio(),
            "p3 {} <= p0 {}",
            p3.report().compression_ratio(),
            p0.report().compression_ratio()
        );
    }

    #[test]
    fn incremental_matches_from_scratch() {
        let offers: Vec<FlexOffer> = FlexOfferGenerator::with_seed(7).take(1000).collect();
        let scratch =
            AggregationPipeline::from_scratch(AggregationParams::p3(8, 8), None, offers.clone());
        let mut incremental = AggregationPipeline::new(AggregationParams::p3(8, 8), None);
        for chunk in offers.chunks(100) {
            incremental.apply(chunk.iter().cloned().map(FlexOfferUpdate::Insert).collect());
        }
        assert_eq!(scratch.aggregate_count(), incremental.aggregate_count());
        assert_eq!(scratch.report(), incremental.report());
    }

    #[test]
    fn deletes_reverse_inserts() {
        let offers: Vec<FlexOffer> = FlexOfferGenerator::with_seed(9).take(500).collect();
        let mut p = AggregationPipeline::new(AggregationParams::p3(8, 8), None);
        p.apply(
            offers
                .iter()
                .cloned()
                .map(FlexOfferUpdate::Insert)
                .collect(),
        );
        assert!(p.aggregate_count() > 0);
        let stats_before = p.delta_stats();
        assert_eq!(stats_before.folded_in, 500);
        p.apply(
            offers
                .iter()
                .map(|o| FlexOfferUpdate::Delete(o.id()))
                .collect(),
        );
        assert_eq!(p.aggregate_count(), 0);
        assert_eq!(p.group_count(), 0);
        assert_eq!(p.offer_count(), 0);
        assert_eq!(p.report().offer_count, 0);
    }

    #[test]
    fn binpacker_bounds_aggregate_sizes() {
        // 100 identical offers: without the bin-packer one aggregate,
        // with max_members=10 exactly ten.
        let offers: Vec<FlexOffer> = (0..100).map(|i| offer(i, 10, 4)).collect();
        let without =
            AggregationPipeline::from_scratch(AggregationParams::p0(), None, offers.clone());
        assert_eq!(without.aggregate_count(), 1);
        let with = AggregationPipeline::from_scratch(
            AggregationParams::p0(),
            Some(BinPackerConfig::max_members(10)),
            offers,
        );
        assert_eq!(with.aggregate_count(), 10);
        for a in with.aggregates() {
            assert!(a.member_count() <= 10);
        }
        // both preserve all offers
        assert_eq!(with.report().offer_count, 100);
    }

    #[test]
    fn integrated_pipeline_matches_chained_binpacker_bounds() {
        let offers: Vec<FlexOffer> = (0..100).map(|i| offer(i, 10, 4)).collect();
        let chained = AggregationPipeline::from_scratch(
            AggregationParams::p0(),
            Some(BinPackerConfig::max_members(10)),
            offers.clone(),
        );
        let mut integrated = AggregationPipeline::new_integrated(AggregationParams::p0(), 10);
        integrated.apply(
            offers
                .iter()
                .cloned()
                .map(FlexOfferUpdate::Insert)
                .collect(),
        );
        assert_eq!(chained.aggregate_count(), 10);
        assert_eq!(integrated.aggregate_count(), 10);
        for a in integrated.aggregates() {
            assert!(a.member_count() <= 10);
        }
        assert_eq!(integrated.report().offer_count, 100);
        // and the round trip still works
        let macros = integrated.macro_offers();
        let schedule = ScheduledFlexOffer::at_fraction(&macros[0], TimeSlot(12), 0.3);
        let micro = integrated
            .disaggregate(AggregateId(macros[0].id().value()), &schedule)
            .unwrap();
        assert_eq!(micro.len(), 10);
    }

    #[test]
    fn scheduling_roundtrip_through_pipeline() {
        let offers: Vec<FlexOffer> = (0..10).map(|i| offer(i, 10, 4)).collect();
        let p = AggregationPipeline::from_scratch(AggregationParams::p0(), None, offers.clone());
        let macros = p.macro_offers();
        assert_eq!(macros.len(), 1);
        let schedule = ScheduledFlexOffer::at_fraction(&macros[0], TimeSlot(12), 0.5);
        let agg_id = AggregateId(macros[0].id().value());
        let micro = p.disaggregate(agg_id, &schedule).unwrap();
        assert_eq!(micro.len(), 10);
        for s in &micro {
            let m = offers.iter().find(|o| o.id() == s.offer_id).unwrap();
            s.validate_against(m, 1e-9).unwrap();
        }
    }

    #[test]
    fn update_of_existing_offer_replaces_it() {
        let mut p = AggregationPipeline::new(AggregationParams::p0(), None);
        p.apply(vec![FlexOfferUpdate::Insert(offer(1, 10, 4))]);
        // the same offer id arrives again with new attributes
        p.apply(vec![FlexOfferUpdate::Insert(offer(1, 50, 8))]);
        assert_eq!(p.report().offer_count, 1);
        let aggs: Vec<_> = p.aggregates().collect();
        assert_eq!(aggs.len(), 1);
        assert_eq!(aggs[0].earliest_start, TimeSlot(50));
        assert_eq!(
            p.offer(FlexOfferId(1)).unwrap().earliest_start(),
            TimeSlot(50)
        );
    }

    #[test]
    fn flush_threads_do_not_change_results() {
        let offers: Vec<FlexOffer> = FlexOfferGenerator::with_seed(11).take(2000).collect();
        let run = |threads: usize| {
            let mut p = AggregationPipeline::new(AggregationParams::p3(8, 8), None);
            p.set_flush_threads(threads);
            let mut streams = Vec::new();
            for chunk in offers.chunks(500) {
                streams.push(p.apply(chunk.iter().cloned().map(FlexOfferUpdate::Insert).collect()));
            }
            let aggregates: Vec<AggregatedFlexOffer> = p.aggregates().cloned().collect();
            (streams, aggregates)
        };
        assert_eq!(run(1), run(4));
    }
}
