//! The group-builder (paper §4): partitions flex-offers into disjoint
//! similarity groups based on the aggregation thresholds.
//!
//! Offers are bucketed on a grid over (kind, earliest start, time
//! flexibility, optionally duration); a tolerance of `t` slots yields
//! buckets of width `t + 1`, so attribute values within one group deviate
//! by at most `t`. Updates are accumulated and, when flushed, the offer
//! values move into the pipeline's [`OfferSlab`] and the group changes
//! are emitted as **member deltas** (`added` ids / `removed` owned
//! values) for the bin-packer / aggregator — a flush touching one offer
//! emits O(1) delta entries, never a member snapshot.

use crate::config::AggregationParams;
use crate::slab::OfferSlab;
use crate::update::{FlexOfferUpdate, GroupUpdate};
use mirabel_core::{FlexOffer, FlexOfferId, GroupId, OfferKind};
use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap};

/// Bucketed similarity key. `cell` is 0 unless the integrated member cap
/// is active, in which case it sub-partitions an attribute bucket into
/// bounded cells (the one-pass bin-packing integration of §4 Research
/// Directions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct GroupKey {
    kind_production: bool,
    start_bucket: i64,
    tf_bucket: u32,
    duration_bucket: Option<u32>,
    cell: u32,
}

/// Occupancy of the bounded cells of one attribute bucket.
#[derive(Debug, Default)]
struct CellDirectory {
    counts: Vec<u32>,
    first_open: usize,
}

impl CellDirectory {
    /// Allocate a slot: the first cell with room, appending a new cell if
    /// every existing one is full.
    fn allocate(&mut self, cap: u32) -> u32 {
        while self.first_open < self.counts.len() && self.counts[self.first_open] >= cap {
            self.first_open += 1;
        }
        if self.first_open == self.counts.len() {
            self.counts.push(0);
        }
        self.counts[self.first_open] += 1;
        self.first_open as u32
    }

    fn release(&mut self, cell: u32) {
        let c = cell as usize;
        if c < self.counts.len() && self.counts[c] > 0 {
            self.counts[c] -= 1;
            self.first_open = self.first_open.min(c);
        }
    }
}

/// Per-flush membership delta of one group.
#[derive(Debug, Default)]
struct DeltaAcc {
    added: BTreeSet<FlexOfferId>,
    removed: Vec<FlexOffer>,
}

/// Incremental similarity grouping.
#[derive(Debug)]
pub struct GroupBuilder {
    params: AggregationParams,
    /// Group id and current member ids (values live in the slab).
    groups: HashMap<GroupKey, (GroupId, BTreeSet<FlexOfferId>)>,
    /// Reverse index: offer → its group key.
    index: HashMap<FlexOfferId, GroupKey>,
    /// Updates accumulated since the last flush.
    pending: Vec<FlexOfferUpdate>,
    next_group: u64,
    /// Integrated member cap: when set, attribute buckets are split into
    /// cells of at most this many members during grouping itself, so no
    /// separate bin-packing pass is needed.
    member_cap: Option<u32>,
    cells: HashMap<GroupKey, CellDirectory>,
}

impl GroupBuilder {
    /// Empty builder with the given thresholds.
    pub fn new(params: AggregationParams) -> GroupBuilder {
        GroupBuilder {
            params,
            groups: HashMap::new(),
            index: HashMap::new(),
            pending: Vec::new(),
            next_group: 0,
            member_cap: None,
            cells: HashMap::new(),
        }
    }

    /// Builder with the integrated member cap (§4 Research Directions:
    /// "it is a challenge to integrate the bin-packer with a
    /// group-builder" — this partitions in one pass, bounding every
    /// emitted group to `cap` members).
    pub fn with_member_cap(params: AggregationParams, cap: u32) -> GroupBuilder {
        assert!(cap >= 1, "member cap must be at least 1");
        let mut gb = GroupBuilder::new(params);
        gb.member_cap = Some(cap);
        gb
    }

    /// The thresholds in use.
    pub fn params(&self) -> &AggregationParams {
        &self.params
    }

    fn key_of(&self, offer: &FlexOffer) -> GroupKey {
        let sa_w = self.params.start_after_tolerance as i64 + 1;
        let tf_w = self.params.time_flexibility_tolerance + 1;
        GroupKey {
            kind_production: offer.kind() == OfferKind::Production,
            start_bucket: offer.earliest_start().index().div_euclid(sa_w),
            tf_bucket: offer.time_flexibility() / tf_w,
            duration_bucket: self
                .params
                .duration_tolerance
                .map(|t| offer.duration() / (t + 1)),
            cell: 0,
        }
    }

    /// Queue updates without processing ("flex-offer updates are
    /// accumulated within the group-builder until their further processing
    /// is invoked").
    pub fn accumulate(&mut self, updates: impl IntoIterator<Item = FlexOfferUpdate>) {
        self.pending.extend(updates);
    }

    /// Number of queued, unprocessed updates.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Process all queued updates, moving offer values into `slab`, and
    /// emit the per-group membership deltas in deterministic (sorted
    /// group key) order.
    pub fn flush(&mut self, slab: &mut OfferSlab) -> Vec<GroupUpdate> {
        let pending = std::mem::take(&mut self.pending);
        let mut acc: HashMap<GroupKey, DeltaAcc> = HashMap::new();
        for u in pending {
            match u {
                FlexOfferUpdate::Insert(offer) => self.insert(offer, slab, &mut acc),
                FlexOfferUpdate::Delete(id) => self.delete(id, slab, &mut acc),
            }
        }

        // Deterministic emission order: group ids and downstream aggregate
        // ids must not depend on hash iteration order.
        let mut touched: Vec<GroupKey> = acc.keys().copied().collect();
        touched.sort_unstable();
        let mut out = Vec::with_capacity(touched.len());
        for key in touched {
            let delta = acc.remove(&key).expect("key from acc");
            let Some((gid, members)) = self.groups.get(&key) else {
                continue;
            };
            if members.is_empty() {
                let gid = *gid;
                self.groups.remove(&key);
                out.push(GroupUpdate::Removed { group: gid });
            } else if !(delta.added.is_empty() && delta.removed.is_empty()) {
                let mut removed = delta.removed;
                removed.sort_by_key(|o| o.id());
                out.push(GroupUpdate::Upsert {
                    group: *gid,
                    added: delta.added.into_iter().collect(),
                    removed,
                });
            }
        }
        out
    }

    fn insert(
        &mut self,
        offer: FlexOffer,
        slab: &mut OfferSlab,
        acc: &mut HashMap<GroupKey, DeltaAcc>,
    ) {
        let id = offer.id();
        let mut key = self.key_of(&offer);
        // Integrated bin-packing: place the offer into the first
        // attribute-bucket cell with room. Re-inserting the same id into
        // the same bucket keeps its cell (membership is replaced, not
        // duplicated).
        if let Some(cap) = self.member_cap {
            match self.index.get(&id).copied() {
                Some(old) if GroupKey { cell: 0, ..old } == key => {
                    key.cell = old.cell;
                }
                _ => {
                    key.cell = self.cells.entry(key).or_default().allocate(cap);
                }
            }
        }
        let displaced = slab.insert(offer);
        match self.index.insert(id, key) {
            Some(old) if old != key => {
                // Moved between groups: leave the old one…
                if let Some((_, members)) = self.groups.get_mut(&old) {
                    members.remove(&id);
                }
                let old_acc = acc.entry(old).or_default();
                if !old_acc.added.remove(&id) {
                    // The old value was folded into the old group before
                    // this flush — downstream must subtract it.
                    old_acc
                        .removed
                        .push(displaced.expect("indexed offer is in the slab"));
                }
                if self.member_cap.is_some() {
                    if let Some(dir) = self.cells.get_mut(&GroupKey { cell: 0, ..old }) {
                        dir.release(old.cell);
                    }
                }
                self.join(id, key, acc);
            }
            Some(_) => {
                // Same group, new attribute values: old value out, new
                // value in (unless the old value was itself added this
                // flush and never left the builder).
                let a = acc.entry(key).or_default();
                if !a.added.contains(&id) {
                    a.removed
                        .push(displaced.expect("indexed offer is in the slab"));
                }
                a.added.insert(id);
            }
            None => {
                debug_assert!(displaced.is_none(), "unindexed offer was in the slab");
                self.join(id, key, acc);
            }
        }
    }

    /// Register `id` as a member of the group at `key`, creating the
    /// group on first use.
    fn join(&mut self, id: FlexOfferId, key: GroupKey, acc: &mut HashMap<GroupKey, DeltaAcc>) {
        let (_, members) = match self.groups.entry(key) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                let gid = GroupId(self.next_group);
                self.next_group += 1;
                e.insert((gid, BTreeSet::new()))
            }
        };
        members.insert(id);
        acc.entry(key).or_default().added.insert(id);
    }

    fn delete(
        &mut self,
        id: FlexOfferId,
        slab: &mut OfferSlab,
        acc: &mut HashMap<GroupKey, DeltaAcc>,
    ) {
        let Some(key) = self.index.remove(&id) else {
            return;
        };
        if let Some((_, members)) = self.groups.get_mut(&key) {
            members.remove(&id);
        }
        let removed = slab.remove(id).expect("indexed offer is in the slab");
        let a = acc.entry(key).or_default();
        if !a.added.remove(&id) {
            a.removed.push(removed);
        }
        if self.member_cap.is_some() {
            if let Some(dir) = self.cells.get_mut(&GroupKey { cell: 0, ..key }) {
                dir.release(key.cell);
            }
        }
    }

    /// Current number of non-empty groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total offers currently grouped.
    pub fn offer_count(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{EnergyRange, Profile, TimeSlot};

    fn offer(id: u64, start: i64, tf: u32) -> FlexOffer {
        FlexOffer::builder(id, 1)
            .earliest_start(TimeSlot(start))
            .time_flexibility(tf)
            .profile(Profile::uniform(2, EnergyRange::new(1.0, 2.0).unwrap()))
            .build()
            .unwrap()
    }

    fn inserts(offers: Vec<FlexOffer>) -> Vec<FlexOfferUpdate> {
        offers.into_iter().map(FlexOfferUpdate::Insert).collect()
    }

    /// Collected (added ids, removed ids) across all upserts of a flush.
    fn delta_ids(updates: &[GroupUpdate]) -> (Vec<u64>, Vec<u64>) {
        let mut added = Vec::new();
        let mut removed = Vec::new();
        for u in updates {
            if let GroupUpdate::Upsert {
                added: a,
                removed: r,
                ..
            } = u
            {
                added.extend(a.iter().map(|id| id.value()));
                removed.extend(r.iter().map(|o| o.id().value()));
            }
        }
        added.sort_unstable();
        removed.sort_unstable();
        (added, removed)
    }

    #[test]
    fn p0_groups_only_identical_attributes() {
        let mut slab = OfferSlab::new();
        let mut gb = GroupBuilder::new(AggregationParams::p0());
        gb.accumulate(inserts(vec![
            offer(1, 10, 4),
            offer(2, 10, 4),
            offer(3, 10, 5), // different TF
            offer(4, 11, 4), // different start
        ]));
        let updates = gb.flush(&mut slab);
        assert_eq!(gb.group_count(), 3);
        assert_eq!(updates.len(), 3);
        assert_eq!(gb.offer_count(), 4);
        assert_eq!(slab.len(), 4);
    }

    #[test]
    fn tolerances_widen_buckets() {
        let mut slab = OfferSlab::new();
        let mut gb = GroupBuilder::new(AggregationParams::p3(4, 4));
        gb.accumulate(inserts(vec![
            offer(1, 10, 4),
            offer(2, 12, 6), // within ±4 of both
        ]));
        gb.flush(&mut slab);
        // bucket width 5: starts 10,12 both in bucket 2; tf 4,6 — 4/5=0, 6/5=1.
        // tf values land in different buckets here, so choose values that share one:
        assert_eq!(gb.group_count(), 2);
        let mut slab2 = OfferSlab::new();
        let mut gb2 = GroupBuilder::new(AggregationParams::p3(4, 4));
        gb2.accumulate(inserts(vec![offer(1, 10, 5), offer(2, 12, 8)]));
        gb2.flush(&mut slab2);
        assert_eq!(gb2.group_count(), 1);
    }

    #[test]
    fn bucket_deviation_never_exceeds_tolerance() {
        // Property: two offers in the same bucket differ by at most the
        // tolerance in each attribute.
        let params = AggregationParams::p3(7, 3);
        let mut slab = OfferSlab::new();
        let mut gb = GroupBuilder::new(params);
        let offers: Vec<FlexOffer> = (0..500)
            .map(|i| offer(i, (i % 97) as i64, (i % 13) as u32))
            .collect();
        gb.accumulate(inserts(offers));
        for u in gb.flush(&mut slab) {
            if let GroupUpdate::Upsert { added, .. } = u {
                let members: Vec<&FlexOffer> =
                    added.iter().map(|id| slab.get(*id).unwrap()).collect();
                for a in &members {
                    for b in &members {
                        assert!(
                            (a.earliest_start() - b.earliest_start()).unsigned_abs()
                                <= params.start_after_tolerance as u64
                        );
                        assert!(
                            a.time_flexibility().abs_diff(b.time_flexibility())
                                <= params.time_flexibility_tolerance
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn consumption_production_never_mix() {
        let mut slab = OfferSlab::new();
        let mut gb = GroupBuilder::new(AggregationParams::p3(1000, 1000));
        let cons = offer(1, 10, 4);
        let prod = FlexOffer::builder(2, 1)
            .kind(OfferKind::Production)
            .earliest_start(TimeSlot(10))
            .time_flexibility(4)
            .profile(Profile::uniform(2, EnergyRange::new(1.0, 2.0).unwrap()))
            .build()
            .unwrap();
        gb.accumulate(inserts(vec![cons]));
        gb.accumulate(vec![FlexOfferUpdate::Insert(prod)]);
        gb.flush(&mut slab);
        assert_eq!(gb.group_count(), 2);
    }

    #[test]
    fn delete_emits_owned_value_and_removes_empty_groups() {
        let mut slab = OfferSlab::new();
        let mut gb = GroupBuilder::new(AggregationParams::p0());
        gb.accumulate(inserts(vec![offer(1, 5, 2), offer(2, 5, 2)]));
        gb.flush(&mut slab);
        assert_eq!(gb.group_count(), 1);

        gb.accumulate(vec![FlexOfferUpdate::Delete(FlexOfferId(1))]);
        let u1 = gb.flush(&mut slab);
        assert_eq!(u1.len(), 1);
        match &u1[0] {
            GroupUpdate::Upsert { added, removed, .. } => {
                assert!(added.is_empty());
                assert_eq!(removed.len(), 1);
                assert_eq!(removed[0].id(), FlexOfferId(1));
                assert_eq!(removed[0].earliest_start(), TimeSlot(5));
            }
            other => panic!("expected upsert, got {other:?}"),
        }
        assert!(!slab.contains(FlexOfferId(1)));

        gb.accumulate(vec![FlexOfferUpdate::Delete(FlexOfferId(2))]);
        let u2 = gb.flush(&mut slab);
        assert!(matches!(&u2[0], GroupUpdate::Removed { .. }));
        assert_eq!(gb.group_count(), 0);
        assert_eq!(gb.offer_count(), 0);
        assert!(slab.is_empty());
    }

    #[test]
    fn delete_unknown_offer_is_noop() {
        let mut slab = OfferSlab::new();
        let mut gb = GroupBuilder::new(AggregationParams::p0());
        gb.accumulate(vec![FlexOfferUpdate::Delete(FlexOfferId(99))]);
        assert!(gb.flush(&mut slab).is_empty());
    }

    #[test]
    fn reinsert_moves_between_groups() {
        let mut slab = OfferSlab::new();
        let mut gb = GroupBuilder::new(AggregationParams::p0());
        gb.accumulate(inserts(vec![offer(1, 5, 2)]));
        gb.flush(&mut slab);
        // same id, different attributes: moves to a new group
        gb.accumulate(inserts(vec![offer(1, 50, 9)]));
        let updates = gb.flush(&mut slab);
        assert_eq!(gb.group_count(), 1);
        assert_eq!(gb.offer_count(), 1);
        assert_eq!(slab.len(), 1);
        // old group removed + new group upserted with the id
        assert_eq!(updates.len(), 2);
        assert!(updates
            .iter()
            .any(|u| matches!(u, GroupUpdate::Removed { .. })));
        let (added, removed) = delta_ids(&updates);
        assert_eq!(added, vec![1]);
        // the old value vanished with its whole group, so no subtraction
        // delta is needed for it
        assert!(removed.is_empty());
    }

    #[test]
    fn replacement_in_same_group_emits_old_value_and_new_id() {
        let mut slab = OfferSlab::new();
        let mut gb = GroupBuilder::new(AggregationParams::p3(100, 100));
        gb.accumulate(inserts(vec![offer(1, 5, 2), offer(2, 6, 3)]));
        gb.flush(&mut slab);
        assert_eq!(gb.group_count(), 1);
        // same id, same bucket, different attribute values
        gb.accumulate(inserts(vec![offer(1, 7, 4)]));
        let updates = gb.flush(&mut slab);
        assert_eq!(updates.len(), 1);
        match &updates[0] {
            GroupUpdate::Upsert { added, removed, .. } => {
                assert_eq!(added, &vec![FlexOfferId(1)]);
                assert_eq!(removed.len(), 1);
                assert_eq!(removed[0].earliest_start(), TimeSlot(5));
            }
            other => panic!("expected upsert, got {other:?}"),
        }
        assert_eq!(
            slab.get(FlexOfferId(1)).unwrap().earliest_start(),
            TimeSlot(7)
        );
    }

    #[test]
    fn insert_then_delete_in_one_flush_cancels_out() {
        let mut slab = OfferSlab::new();
        let mut gb = GroupBuilder::new(AggregationParams::p0());
        gb.accumulate(inserts(vec![offer(1, 5, 2)]));
        gb.flush(&mut slab);
        // Offer 2 joins and leaves within one batch: the group must see
        // no delta for it at all.
        gb.accumulate(vec![
            FlexOfferUpdate::Insert(offer(2, 5, 2)),
            FlexOfferUpdate::Delete(FlexOfferId(2)),
        ]);
        let updates = gb.flush(&mut slab);
        assert!(updates.is_empty(), "got {updates:?}");
        assert_eq!(gb.offer_count(), 1);
        assert!(!slab.contains(FlexOfferId(2)));
    }

    #[test]
    fn accumulate_defers_processing() {
        let mut slab = OfferSlab::new();
        let mut gb = GroupBuilder::new(AggregationParams::p0());
        gb.accumulate(inserts(vec![offer(1, 5, 2)]));
        assert_eq!(gb.pending_len(), 1);
        assert_eq!(gb.group_count(), 0); // not yet processed
        gb.flush(&mut slab);
        assert_eq!(gb.pending_len(), 0);
        assert_eq!(gb.group_count(), 1);
    }

    #[test]
    fn flush_batches_touch_each_group_once() {
        let mut slab = OfferSlab::new();
        let mut gb = GroupBuilder::new(AggregationParams::p0());
        gb.accumulate(inserts((0..100).map(|i| offer(i, 5, 2)).collect()));
        let updates = gb.flush(&mut slab);
        assert_eq!(updates.len(), 1); // all in one group, one update
        let (added, removed) = delta_ids(&updates);
        assert_eq!(added.len(), 100);
        assert!(removed.is_empty());
    }

    #[test]
    fn integrated_cap_bounds_group_sizes() {
        let mut slab = OfferSlab::new();
        let mut gb = GroupBuilder::with_member_cap(AggregationParams::p0(), 3);
        gb.accumulate(inserts((0..10).map(|i| offer(i, 5, 2)).collect()));
        let updates = gb.flush(&mut slab);
        // 10 identical offers, cap 3 → 4 groups (3+3+3+1)
        assert_eq!(gb.group_count(), 4);
        let mut sizes: Vec<usize> = updates
            .iter()
            .filter_map(|u| match u {
                GroupUpdate::Upsert { added, .. } => Some(added.len()),
                _ => None,
            })
            .collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3, 3, 3]);
    }

    #[test]
    fn integrated_cap_reuses_freed_cells() {
        let mut slab = OfferSlab::new();
        let mut gb = GroupBuilder::with_member_cap(AggregationParams::p0(), 2);
        gb.accumulate(inserts(vec![
            offer(1, 5, 2),
            offer(2, 5, 2),
            offer(3, 5, 2),
        ]));
        gb.flush(&mut slab);
        assert_eq!(gb.group_count(), 2); // cells [2, 1]

        // Delete one of the first cell, insert a new offer: it must fill
        // the freed slot instead of opening a third cell.
        gb.accumulate(vec![FlexOfferUpdate::Delete(FlexOfferId(1))]);
        gb.flush(&mut slab);
        gb.accumulate(inserts(vec![offer(4, 5, 2)]));
        gb.flush(&mut slab);
        assert_eq!(gb.group_count(), 2);
        assert_eq!(gb.offer_count(), 3);
    }

    #[test]
    fn integrated_cap_reinsert_same_bucket_keeps_cell() {
        let mut slab = OfferSlab::new();
        let mut gb = GroupBuilder::with_member_cap(AggregationParams::p0(), 2);
        gb.accumulate(inserts(vec![offer(1, 5, 2), offer(2, 5, 2)]));
        gb.flush(&mut slab);
        assert_eq!(gb.group_count(), 1);
        // re-insert offer 1 with identical attributes: stays in its cell,
        // no phantom occupancy
        gb.accumulate(inserts(vec![offer(1, 5, 2)]));
        gb.flush(&mut slab);
        assert_eq!(gb.group_count(), 1);
        assert_eq!(gb.offer_count(), 2);
        // the group still has room for nobody (cap 2) — a third offer
        // opens a second cell
        gb.accumulate(inserts(vec![offer(3, 5, 2)]));
        gb.flush(&mut slab);
        assert_eq!(gb.group_count(), 2);
    }

    #[test]
    fn integrated_cap_reinsert_other_bucket_releases_cell() {
        let mut slab = OfferSlab::new();
        let mut gb = GroupBuilder::with_member_cap(AggregationParams::p0(), 1);
        gb.accumulate(inserts(vec![offer(1, 5, 2)]));
        gb.flush(&mut slab);
        // move offer 1 to a different attribute bucket
        gb.accumulate(inserts(vec![offer(1, 50, 9)]));
        gb.flush(&mut slab);
        assert_eq!(gb.offer_count(), 1);
        // the old bucket's cell was released: a new offer at (5,2) fits
        // into cell 0 again
        gb.accumulate(inserts(vec![offer(2, 5, 2)]));
        gb.flush(&mut slab);
        assert_eq!(gb.group_count(), 2);
    }

    #[test]
    fn duration_tolerance_optional_dimension() {
        let mut params = AggregationParams::p0();
        params.duration_tolerance = Some(0);
        let mut slab = OfferSlab::new();
        let mut gb = GroupBuilder::new(params);
        let mut long = offer(2, 10, 4);
        // Rebuild with a longer profile.
        long = FlexOffer::builder(long.id().value(), 1)
            .earliest_start(TimeSlot(10))
            .time_flexibility(4)
            .profile(Profile::uniform(5, EnergyRange::new(1.0, 2.0).unwrap()))
            .build()
            .unwrap();
        gb.accumulate(inserts(vec![offer(1, 10, 4), long]));
        gb.flush(&mut slab);
        assert_eq!(gb.group_count(), 2); // durations 2 vs 5 split
    }
}
