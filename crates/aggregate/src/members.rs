//! Chunked, structurally-shared member-id sets.
//!
//! Every emitted [`AggregatedFlexOffer`](crate::AggregatedFlexOffer)
//! carries the ids of its members. PR 3 made that list an `Arc<Vec<_>>`
//! so *cloning* an emitted aggregate stopped copying ids — but the
//! aggregator still had to materialize a fresh `Vec` (one O(members)
//! memcpy) on **every** emission, because the entry's mutable member
//! list and the immutable snapshot could not share storage.
//!
//! [`MemberIds`] closes that gap: ids live in sorted chunks of at most
//! `CHUNK` (512) entries, each behind its own `Arc`. A membership delta of
//! Δ ids touches O(Δ) chunks (copy-on-write via `Arc::make_mut`, O(CHUNK)
//! per touched chunk), and producing the emission snapshot is a clone of
//! the chunk *table* — O(members ⁄ CHUNK) pointer bumps, never an id
//! copy. A 10 000-member group's trickle emission thus shares ~9 999
//! ids with the previous snapshot instead of re-copying all of them.

use mirabel_core::FlexOfferId;
use std::sync::Arc;

/// Maximum ids per chunk. Oversized chunks split in half, so steady-state
/// chunks hold between `CHUNK / 2` and `CHUNK` ids.
const CHUNK: usize = 512;

/// A sorted set of member ids with chunk-level structural sharing.
///
/// Cloning is O(chunks); inserting or removing one id is
/// O(log chunks + CHUNK) and leaves all untouched chunks shared with
/// every previously taken clone.
#[derive(Debug, Clone, Default)]
pub struct MemberIds {
    /// Non-empty sorted chunks in ascending id order.
    chunks: Vec<Arc<Vec<FlexOfferId>>>,
    len: usize,
}

impl MemberIds {
    /// Empty set.
    pub fn new() -> MemberIds {
        MemberIds::default()
    }

    /// Number of ids.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = FlexOfferId> + '_ {
        self.chunks.iter().flat_map(|c| c.iter().copied())
    }

    /// Whether `id` is present.
    pub fn contains(&self, id: FlexOfferId) -> bool {
        let k = self.chunk_for(id);
        k < self.chunks.len() && self.chunks[k].binary_search(&id).is_ok()
    }

    /// Collect into a plain vector (ascending).
    pub fn to_vec(&self) -> Vec<FlexOfferId> {
        self.iter().collect()
    }

    /// Index of the chunk that contains (or would contain) `id`: the
    /// first chunk whose last element is `>= id`, clamped to the final
    /// chunk for ids beyond every element.
    fn chunk_for(&self, id: FlexOfferId) -> usize {
        let k = self
            .chunks
            .partition_point(|c| *c.last().expect("chunks are non-empty") < id);
        k.min(self.chunks.len().saturating_sub(1))
    }

    /// Insert `id`, keeping the set sorted.
    ///
    /// # Panics
    /// Panics if `id` is already present (aggregate membership deltas
    /// never re-add a live member).
    pub fn insert(&mut self, id: FlexOfferId) {
        if self.chunks.is_empty() {
            self.chunks.push(Arc::new(vec![id]));
            self.len = 1;
            return;
        }
        let k = self.chunk_for(id);
        let chunk = Arc::make_mut(&mut self.chunks[k]);
        let pos = chunk
            .binary_search(&id)
            .expect_err("member id already present");
        chunk.insert(pos, id);
        if chunk.len() > CHUNK {
            let tail = chunk.split_off(chunk.len() / 2);
            self.chunks.insert(k + 1, Arc::new(tail));
        }
        self.len += 1;
    }

    /// Remove `id`.
    ///
    /// # Panics
    /// Panics if `id` is absent (removal deltas always name a live
    /// member).
    pub fn remove(&mut self, id: FlexOfferId) {
        assert!(!self.chunks.is_empty(), "removed member present");
        let k = self.chunk_for(id);
        let chunk = Arc::make_mut(&mut self.chunks[k]);
        let pos = chunk.binary_search(&id).expect("removed member present");
        chunk.remove(pos);
        if chunk.is_empty() {
            self.chunks.remove(k);
        }
        self.len -= 1;
    }

    /// Number of internal chunks (sharing granularity; exposed for
    /// tests and benches).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

impl FromIterator<FlexOfferId> for MemberIds {
    /// Build from an **ascending** id sequence (duplicates forbidden).
    fn from_iter<T: IntoIterator<Item = FlexOfferId>>(iter: T) -> MemberIds {
        let mut chunks: Vec<Arc<Vec<FlexOfferId>>> = Vec::new();
        let mut cur: Vec<FlexOfferId> = Vec::new();
        let mut len = 0usize;
        for id in iter {
            debug_assert!(
                cur.last().is_none_or(|last| *last < id)
                    && chunks
                        .last()
                        .is_none_or(|c| *c.last().expect("non-empty") < id),
                "MemberIds::from_iter input must be strictly ascending"
            );
            cur.push(id);
            len += 1;
            if cur.len() == CHUNK {
                chunks.push(Arc::new(std::mem::take(&mut cur)));
            }
        }
        if !cur.is_empty() {
            chunks.push(Arc::new(cur));
        }
        MemberIds { chunks, len }
    }
}

impl PartialEq for MemberIds {
    /// Logical equality: same ids in the same order, regardless of how
    /// they are chunked.
    fn eq(&self, other: &MemberIds) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for MemberIds {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: impl IntoIterator<Item = u64>) -> Vec<FlexOfferId> {
        v.into_iter().map(FlexOfferId).collect()
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut m = MemberIds::new();
        for i in [5u64, 1, 9, 3, 7] {
            m.insert(FlexOfferId(i));
        }
        assert_eq!(m.len(), 5);
        assert_eq!(m.to_vec(), ids([1, 3, 5, 7, 9]));
        assert!(m.contains(FlexOfferId(7)));
        assert!(!m.contains(FlexOfferId(2)));
        m.remove(FlexOfferId(5));
        m.remove(FlexOfferId(1));
        assert_eq!(m.to_vec(), ids([3, 7, 9]));
        m.remove(FlexOfferId(3));
        m.remove(FlexOfferId(7));
        m.remove(FlexOfferId(9));
        assert!(m.is_empty());
        assert_eq!(m.chunk_count(), 0);
    }

    #[test]
    fn from_iter_matches_inserts() {
        let built: MemberIds = (0..2_000).map(FlexOfferId).collect();
        let mut inserted = MemberIds::new();
        for i in 0..2_000 {
            inserted.insert(FlexOfferId(i));
        }
        assert_eq!(built, inserted);
        assert_eq!(built.len(), 2_000);
        assert!(built.chunk_count() >= 2_000 / CHUNK);
    }

    #[test]
    fn chunks_split_and_stay_bounded() {
        let mut m = MemberIds::new();
        // Insert in descending order to stress the first chunk.
        for i in (0..5_000u64).rev() {
            m.insert(FlexOfferId(i));
        }
        assert_eq!(m.len(), 5_000);
        assert_eq!(m.to_vec(), ids(0..5_000));
        assert!(m.chunk_count() >= 5_000 / CHUNK);
    }

    #[test]
    fn clone_shares_untouched_chunks() {
        let mut m: MemberIds = (0..4 * CHUNK as u64).map(FlexOfferId).collect();
        let snapshot = m.clone();
        m.insert(FlexOfferId(4 * CHUNK as u64 + 10));
        // The snapshot still sees the old contents…
        assert_eq!(snapshot.len(), 4 * CHUNK);
        assert!(!snapshot.contains(FlexOfferId(4 * CHUNK as u64 + 10)));
        // …and all but the touched chunk are the same allocation.
        let shared = m
            .chunks
            .iter()
            .filter(|c| snapshot.chunks.iter().any(|s| Arc::ptr_eq(c, s)))
            .count();
        assert!(shared >= m.chunk_count() - 2, "shared {shared}");
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_insert_panics() {
        let mut m = MemberIds::new();
        m.insert(FlexOfferId(1));
        m.insert(FlexOfferId(1));
    }

    #[test]
    #[should_panic(expected = "removed member present")]
    fn missing_remove_panics() {
        let mut m = MemberIds::new();
        m.insert(FlexOfferId(1));
        m.remove(FlexOfferId(2));
    }
}
