//! The n-to-1 aggregator (paper §4): maintains one [`AggregatedFlexOffer`]
//! per sub-group and disaggregates scheduled aggregates back into micro
//! schedules.
//!
//! ## Delta-folding
//!
//! The aggregator no longer re-folds a sub-group's full member list on
//! every change. Each internal `AggregateEntry` keeps incremental state — value
//! multisets for the min-folded attributes (earliest start, time
//! flexibility, assignment deadline, profile end), the per-slot Minkowski
//! energy sums, and the running price/energy totals — so applying a
//! member delta costs O(changed members × profile length + log group),
//! independent of the group size. Float drift from repeated add/subtract
//! is bounded by a periodic exact re-fold (every `REFOLD_OPS` member
//! operations the entry is rebuilt from the slab), and every emitted
//! aggregate is cross-checked against [`AggregatedFlexOffer::build`] in
//! debug builds — the same trust-but-verify pattern as the scheduler's
//! `DeltaEvaluator` vs `cost::evaluate`.
//!
//! ## Shard-parallel flush
//!
//! Sub-group deltas of one flush are independent across groups, so
//! [`NToOneAggregator::apply`] partitions them by group-id hash into
//! one shard per lane of the shared worker pool
//! ([`mirabel_core::exec::Pool`] — the same persistent executor behind
//! `incremental::repair_parallel` and `forecast::parallel`, so a
//! trickle flush wakes parked workers instead of spawning threads) and
//! merges the folded results in sorted sub-group order. Fresh aggregate
//! ids are assigned during the sorted merge, so the emitted update
//! stream — ids included — is identical for any pool width.

use crate::aggregate::AggregatedFlexOffer;
use crate::members::MemberIds;
use crate::metrics::DeltaStats;
use crate::slab::OfferSlab;
use crate::update::{AggregateUpdate, SubgroupId, SubgroupUpdate};
use mirabel_core::exec::Pool;
use mirabel_core::{
    AggregateId, DomainError, EnergyRange, FlexOffer, FlexOfferId, OfferKind, Price, Profile,
    ScheduledFlexOffer, TimeSlot,
};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Member operations (adds + removes) an entry absorbs before the next
/// exact re-fold squashes accumulated float drift.
const REFOLD_OPS: u32 = 4096;

/// Errors from disaggregation.
#[derive(Debug, Clone, PartialEq)]
pub enum DisaggregationError {
    /// No aggregate with that id is maintained.
    UnknownAggregate(AggregateId),
    /// The schedule violates the aggregate's constraints.
    InvalidSchedule(DomainError),
}

impl std::fmt::Display for DisaggregationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DisaggregationError::UnknownAggregate(id) => write!(f, "unknown aggregate {id}"),
            DisaggregationError::InvalidSchedule(e) => write!(f, "invalid schedule: {e}"),
        }
    }
}

impl std::error::Error for DisaggregationError {}

/// Insert `v` into a value multiset.
fn multi_insert<K: Ord>(set: &mut BTreeMap<K, u32>, v: K) {
    *set.entry(v).or_insert(0) += 1;
}

/// Remove `v` from a value multiset.
fn multi_remove<K: Ord + std::fmt::Debug>(set: &mut BTreeMap<K, u32>, v: K) {
    match set.get_mut(&v) {
        Some(n) if *n > 1 => *n -= 1,
        Some(_) => {
            set.remove(&v);
        }
        None => panic!("value {v:?} not in multiset"),
    }
}

/// Incrementally folded state of one aggregate.
#[derive(Debug, Clone)]
struct AggregateEntry {
    kind: OfferKind,
    /// Member ids, ascending (chunked; emission snapshots share chunks).
    members: MemberIds,
    /// Multiset of member earliest starts (min = aggregate start).
    starts: BTreeMap<i64, u32>,
    /// Multiset of member time flexibilities (min = aggregate TF).
    flexes: BTreeMap<u32, u32>,
    /// Multiset of member assignment deadlines (min = aggregate's).
    deadlines: BTreeMap<i64, u32>,
    /// Multiset of member profile end slots (max = aggregate span end).
    ends: BTreeMap<i64, u32>,
    /// Slot of `lo[0]`/`hi[0]`; `<=` the current aggregate start.
    base: i64,
    /// Per-slot Minkowski minimum energies relative to `base`.
    lo: Vec<f64>,
    /// Per-slot Minkowski maximum energies relative to `base`.
    hi: Vec<f64>,
    /// Σ member max total energy (price weighting denominator).
    energy: f64,
    /// Σ member max total energy × unit price.
    weighted_price: f64,
    /// Member operations since the last exact re-fold.
    ops: u32,
    /// Snapshot emitted for (and after) the last delta application.
    aggregate: AggregatedFlexOffer,
}

impl AggregateEntry {
    fn empty() -> AggregateEntry {
        AggregateEntry {
            kind: OfferKind::Consumption,
            members: MemberIds::new(),
            starts: BTreeMap::new(),
            flexes: BTreeMap::new(),
            deadlines: BTreeMap::new(),
            ends: BTreeMap::new(),
            base: 0,
            lo: Vec::new(),
            hi: Vec::new(),
            energy: 0.0,
            weighted_price: 0.0,
            ops: 0,
            aggregate: AggregatedFlexOffer {
                id: AggregateId(0),
                kind: OfferKind::Consumption,
                earliest_start: TimeSlot(0),
                latest_start: TimeSlot(0),
                assignment_before: TimeSlot(0),
                profile: Profile::uniform(1, EnergyRange::ZERO),
                unit_price: Price::ZERO,
                member_ids: MemberIds::new(),
            },
        }
    }

    /// Fold one member in: O(profile length + log group).
    fn add(&mut self, o: &FlexOffer) {
        if self.members.is_empty() {
            self.kind = o.kind();
            self.base = o.earliest_start().index();
        }
        debug_assert_eq!(o.kind(), self.kind, "aggregate must not mix kinds");
        let es = o.earliest_start().index();
        multi_insert(&mut self.starts, es);
        multi_insert(&mut self.flexes, o.time_flexibility());
        multi_insert(&mut self.deadlines, o.assignment_before().index());
        multi_insert(&mut self.ends, es + o.duration() as i64);

        if es < self.base {
            let pad = (self.base - es) as usize;
            self.lo.splice(0..0, std::iter::repeat_n(0.0, pad));
            self.hi.splice(0..0, std::iter::repeat_n(0.0, pad));
            self.base = es;
        }
        let offset = (es - self.base) as usize;
        let need = offset + o.duration() as usize;
        if self.lo.len() < need {
            self.lo.resize(need, 0.0);
            self.hi.resize(need, 0.0);
        }
        for (k, r) in o.profile().slot_ranges().enumerate() {
            self.lo[offset + k] += r.min().kwh();
            self.hi[offset + k] += r.max().kwh();
        }

        let e = o.profile().max_total_energy().kwh();
        self.energy += e;
        self.weighted_price += e * o.unit_price().eur();

        self.members.insert(o.id()); // panics if already present
        self.ops += 1;
    }

    /// Fold one member out: the exact inverse of [`add`](Self::add).
    fn remove(&mut self, o: &FlexOffer) {
        let es = o.earliest_start().index();
        multi_remove(&mut self.starts, es);
        multi_remove(&mut self.flexes, o.time_flexibility());
        multi_remove(&mut self.deadlines, o.assignment_before().index());
        multi_remove(&mut self.ends, es + o.duration() as i64);

        let offset = (es - self.base) as usize;
        for (k, r) in o.profile().slot_ranges().enumerate() {
            self.lo[offset + k] -= r.min().kwh();
            self.hi[offset + k] -= r.max().kwh();
        }

        let e = o.profile().max_total_energy().kwh();
        self.energy -= e;
        self.weighted_price -= e * o.unit_price().eur();

        self.members.remove(o.id()); // panics if absent
        self.ops += 1;
    }

    /// Drop the (≈ zero) slots outside the surviving members' span so the
    /// emitted profile starts at the aggregate's earliest start.
    fn compact(&mut self) {
        let es = *self.starts.keys().next().expect("non-empty aggregate");
        if es > self.base {
            let cut = (es - self.base) as usize;
            self.lo.drain(0..cut);
            self.hi.drain(0..cut);
            self.base = es;
        }
        let end = *self.ends.keys().next_back().expect("non-empty aggregate");
        let span = (end - self.base) as usize;
        self.lo.truncate(span);
        self.hi.truncate(span);
    }

    /// Rebuild the folded state exactly from the member values in `slab`
    /// (drift squash; costs the same as a from-scratch fold).
    fn refold(&mut self, slab: &OfferSlab) {
        let members = std::mem::take(&mut self.members);
        let snapshot = self.aggregate.clone();
        *self = AggregateEntry::empty();
        self.aggregate = snapshot;
        for id in members.iter() {
            self.add(slab.get(id).expect("member is in the slab"));
        }
        self.ops = 0;
    }

    /// Refresh the emitted snapshot from the folded state.
    fn refresh(&mut self, id: AggregateId) {
        let earliest = *self.starts.keys().next().expect("non-empty aggregate");
        let flex = *self.flexes.keys().next().expect("non-empty aggregate");
        let deadline = *self.deadlines.keys().next().expect("non-empty aggregate");
        let ranges: Vec<EnergyRange> = self
            .lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| {
                // Repeated subtraction can invert a degenerate range by a
                // few ulps; clamp instead of failing.
                EnergyRange::new(l.min(h), h).expect("folded bounds are ordered")
            })
            .collect();
        let profile = Profile::from_slot_ranges(ranges)
            .expect("span >= 1")
            .normalize();
        let unit_price = if self.energy > 0.0 {
            Price(self.weighted_price / self.energy)
        } else {
            Price::ZERO
        };
        self.aggregate = AggregatedFlexOffer {
            id,
            kind: self.kind,
            earliest_start: TimeSlot(earliest),
            latest_start: TimeSlot(earliest) + flex,
            assignment_before: TimeSlot(deadline),
            profile,
            unit_price,
            // Chunk-table clone: O(members ⁄ chunk) pointer bumps, so a
            // trickle emission never re-copies a huge group's id list.
            member_ids: self.members.clone(),
        };
    }

    /// Debug-build cross-check: the delta-folded snapshot must agree with
    /// the reference from-scratch fold (same pattern as `DeltaEvaluator`
    /// vs `cost::evaluate`).
    #[cfg(debug_assertions)]
    fn assert_matches_build(&self, slab: &OfferSlab) {
        let members: Vec<FlexOffer> = self
            .members
            .iter()
            .map(|id| slab.get(id).expect("member is in the slab").clone())
            .collect();
        let reference = AggregatedFlexOffer::build(self.aggregate.id, &members);
        let a = &self.aggregate;
        debug_assert_eq!(a.kind, reference.kind);
        debug_assert_eq!(a.earliest_start, reference.earliest_start);
        debug_assert_eq!(a.latest_start, reference.latest_start);
        debug_assert_eq!(a.assignment_before, reference.assignment_before);
        debug_assert_eq!(a.member_ids, reference.member_ids);
        debug_assert_eq!(
            a.profile.total_duration(),
            reference.profile.total_duration()
        );
        for (k, (ours, theirs)) in a
            .profile
            .slot_ranges()
            .zip(reference.profile.slot_ranges())
            .enumerate()
        {
            let tol = 1e-6 * theirs.max().kwh().abs().max(1.0);
            debug_assert!(
                (ours.min() - theirs.min()).kwh().abs() <= tol
                    && (ours.max() - theirs.max()).kwh().abs() <= tol,
                "slot {k}: folded {ours} diverged from reference {theirs}"
            );
        }
        let tol = 1e-6 * reference.unit_price.eur().abs().max(1.0);
        debug_assert!(
            (a.unit_price.eur() - reference.unit_price.eur()).abs() <= tol,
            "price {} diverged from reference {}",
            a.unit_price,
            reference.unit_price
        );
    }
}

/// Result of folding one sub-group's delta on a worker.
#[derive(Debug)]
enum Outcome {
    Upsert {
        entry: Box<AggregateEntry>,
        stats: DeltaStats,
    },
    Removed,
}

/// Maintains aggregates per sub-group; performs disaggregation.
#[derive(Debug)]
pub struct NToOneAggregator {
    by_subgroup: BTreeMap<SubgroupId, AggregateId>,
    store: BTreeMap<AggregateId, AggregateEntry>,
    next_id: u64,
    pool: Pool,
    stats: DeltaStats,
}

impl Default for NToOneAggregator {
    fn default() -> NToOneAggregator {
        NToOneAggregator::new()
    }
}

impl NToOneAggregator {
    /// Empty aggregator, flushing on the shared global worker pool.
    pub fn new() -> NToOneAggregator {
        NToOneAggregator {
            by_subgroup: BTreeMap::new(),
            store: BTreeMap::new(),
            next_id: 0,
            pool: Pool::global().clone(),
            stats: DeltaStats::default(),
        }
    }

    /// Worker pool the flush fold is dispatched onto (one shard per
    /// lane; ignored below 2 touched groups). The emitted update stream
    /// is identical for any pool width.
    pub fn set_pool(&mut self, pool: Pool) {
        self.pool = pool;
    }

    /// Cumulative delta-fold statistics.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// Fold one sub-group delta into `entry`.
    fn fold(
        entry: &mut AggregateEntry,
        id: AggregateId,
        added: Vec<FlexOfferId>,
        removed: Vec<FlexOffer>,
        slab: &OfferSlab,
    ) -> DeltaStats {
        let mut stats = DeltaStats {
            folded_out: removed.len() as u64,
            folded_in: added.len() as u64,
            emitted: 1,
            refolds: 0,
        };
        for offer in &removed {
            entry.remove(offer);
        }
        for id in added {
            entry.add(slab.get(id).expect("added offer is in the slab"));
        }
        debug_assert!(
            !entry.members.is_empty(),
            "sub-group upserts are never empty"
        );
        if entry.ops >= REFOLD_OPS {
            entry.refold(slab);
            stats.refolds += 1;
        }
        entry.compact();
        entry.refresh(id);
        #[cfg(debug_assertions)]
        entry.assert_matches_build(slab);
        stats
    }

    /// Consume sub-group deltas; maintain aggregates; emit aggregate
    /// updates. Folding is partitioned by group-id hash across the
    /// lanes of [`set_pool`](Self::set_pool)'s worker pool; results are
    /// merged (and fresh aggregate ids assigned) in sorted sub-group
    /// order, so the output is deterministic for any pool width.
    pub fn apply(
        &mut self,
        updates: Vec<SubgroupUpdate>,
        slab: &OfferSlab,
    ) -> Vec<AggregateUpdate> {
        // Take each touched sub-group's entry out of the store so the
        // workers own them exclusively.
        struct Work {
            subgroup: SubgroupId,
            id: Option<AggregateId>,
            entry: Box<AggregateEntry>,
            added: Vec<FlexOfferId>,
            removed: Vec<FlexOffer>,
        }
        let mut outcomes: Vec<(SubgroupId, Option<AggregateId>, Outcome)> = Vec::new();
        let mut work: Vec<Work> = Vec::new();
        for u in updates {
            match u {
                SubgroupUpdate::Removed { subgroup } => {
                    let id = self.by_subgroup.get(&subgroup).copied();
                    outcomes.push((subgroup, id, Outcome::Removed));
                }
                SubgroupUpdate::Upsert {
                    subgroup,
                    added,
                    removed,
                } => {
                    let id = self.by_subgroup.get(&subgroup).copied();
                    let entry = id
                        .and_then(|i| self.store.remove(&i))
                        .map(Box::new)
                        .unwrap_or_else(|| Box::new(AggregateEntry::empty()));
                    work.push(Work {
                        subgroup,
                        id,
                        entry,
                        added,
                        removed,
                    });
                }
            }
        }

        let lanes = self.pool.width().min(work.len()).max(1);
        if lanes <= 1 {
            for w in work {
                let mut entry = w.entry;
                let stats = Self::fold(
                    &mut entry,
                    w.id.unwrap_or(AggregateId(0)),
                    w.added,
                    w.removed,
                    slab,
                );
                outcomes.push((w.subgroup, w.id, Outcome::Upsert { entry, stats }));
            }
        } else {
            // Shard by group-id hash; all sub-groups of one group land
            // on one lane, preserving their relative order. Each shard
            // sits behind a mutex only so the lane that claims task `i`
            // can take ownership of shard `i`; there is no contention.
            let mut shards: Vec<Vec<Work>> = (0..lanes).map(|_| Vec::new()).collect();
            for w in work {
                let h = w.subgroup.group.value().wrapping_mul(0x9e37_79b9_7f4a_7c15);
                shards[(h >> 32) as usize % lanes].push(w);
            }
            let shards: Vec<Mutex<Vec<Work>>> = shards.into_iter().map(Mutex::new).collect();
            let folded: Vec<Vec<(SubgroupId, Option<AggregateId>, Outcome)>> =
                self.pool.run(lanes, |i| {
                    let shard = std::mem::take(&mut *shards[i].lock().expect("unpoisoned"));
                    shard
                        .into_iter()
                        .map(|w| {
                            let mut entry = w.entry;
                            let stats = Self::fold(
                                &mut entry,
                                w.id.unwrap_or(AggregateId(0)),
                                w.added,
                                w.removed,
                                slab,
                            );
                            (w.subgroup, w.id, Outcome::Upsert { entry, stats })
                        })
                        .collect()
                });
            outcomes.extend(folded.into_iter().flatten());
        }

        // Deterministic merge: sorted sub-group order fixes both the
        // emission order and the allocation order of fresh aggregate ids.
        outcomes.sort_by_key(|(sg, _, _)| *sg);
        let mut out = Vec::with_capacity(outcomes.len());
        for (subgroup, id, outcome) in outcomes {
            match outcome {
                Outcome::Removed => {
                    if let Some(id) = id {
                        self.by_subgroup.remove(&subgroup);
                        self.store.remove(&id);
                        out.push(AggregateUpdate::Removed(id));
                    }
                }
                Outcome::Upsert { mut entry, stats } => {
                    let id = id.unwrap_or_else(|| {
                        let id = AggregateId(self.next_id);
                        self.next_id += 1;
                        self.by_subgroup.insert(subgroup, id);
                        id
                    });
                    entry.aggregate.id = id;
                    self.stats.absorb(stats);
                    out.push(AggregateUpdate::Upsert(entry.aggregate.clone()));
                    self.store.insert(id, *entry);
                }
            }
        }
        out
    }

    /// Iterate the maintained aggregates in ascending id order.
    pub fn aggregates(&self) -> impl Iterator<Item = &AggregatedFlexOffer> {
        self.store.values().map(|e| &e.aggregate)
    }

    /// Look up one aggregate.
    pub fn aggregate(&self, id: AggregateId) -> Option<&AggregatedFlexOffer> {
        self.store.get(&id).map(|e| &e.aggregate)
    }

    /// The member ids of one aggregate, ascending. Resolve values against
    /// the pipeline's offer slab.
    pub fn member_ids(&self, id: AggregateId) -> Option<&MemberIds> {
        self.store.get(&id).map(|e| &e.members)
    }

    /// Number of maintained aggregates.
    pub fn aggregate_count(&self) -> usize {
        self.store.len()
    }

    /// Disaggregate a scheduled aggregate into scheduled micro
    /// flex-offers (paper: "quite straightforward" because the
    /// disaggregation requirement holds by construction).
    ///
    /// The aggregate-level start shift `δ = schedule.start −
    /// aggregate.earliest_start` is applied to every member; per aggregate
    /// slot, the scheduled energy is positioned at the same fraction of
    /// each member's `[min, max]` range as it is within the aggregate's
    /// summed range.
    pub fn disaggregate(
        &self,
        id: AggregateId,
        schedule: &ScheduledFlexOffer,
        slab: &OfferSlab,
    ) -> Result<Vec<ScheduledFlexOffer>, DisaggregationError> {
        let entry = self
            .store
            .get(&id)
            .ok_or(DisaggregationError::UnknownAggregate(id))?;
        let agg = &entry.aggregate;
        let as_offer = agg
            .to_flex_offer()
            .map_err(DisaggregationError::InvalidSchedule)?;
        schedule
            .validate_against(&as_offer, 1e-6)
            .map_err(DisaggregationError::InvalidSchedule)?;

        let delta = (schedule.start - agg.earliest_start) as u32;
        // Per-aggregate-slot fill fraction.
        let fractions: Vec<f64> = agg
            .profile
            .slot_ranges()
            .zip(&schedule.slot_energies)
            .map(|(range, &e)| range.fraction_of(e))
            .collect();

        let mut out = Vec::with_capacity(entry.members.len());
        for mid in entry.members.iter() {
            let m = slab.get(mid).expect("member is in the slab");
            let offset = (m.earliest_start() - agg.earliest_start) as usize;
            let start = m.earliest_start() + delta;
            let slot_energies = m
                .profile()
                .slot_ranges()
                .enumerate()
                .map(|(k, r)| r.lerp(fractions[offset + k]))
                .collect();
            let s = ScheduledFlexOffer {
                offer_id: m.id(),
                start,
                slot_energies,
            };
            debug_assert!(s.validate_against(m, 1e-6).is_ok());
            out.push(s);
        }
        Ok(out)
    }

    /// Disaggregate with the aggregate start shift only, all members at
    /// minimum energy — used by the open-contract fallback paths.
    pub fn disaggregate_at_min(
        &self,
        id: AggregateId,
        start: TimeSlot,
        slab: &OfferSlab,
    ) -> Result<Vec<ScheduledFlexOffer>, DisaggregationError> {
        let entry = self
            .store
            .get(&id)
            .ok_or(DisaggregationError::UnknownAggregate(id))?;
        let agg = &entry.aggregate;
        let as_offer = agg
            .to_flex_offer()
            .map_err(DisaggregationError::InvalidSchedule)?;
        let schedule = ScheduledFlexOffer::at_min(&as_offer, start);
        self.disaggregate(id, &schedule, slab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{Energy, EnergyRange, GroupId};
    use proptest::prelude::*;

    fn member(id: u64, start: i64, tf: u32, slots: u32, lo: f64, hi: f64) -> FlexOffer {
        FlexOffer::builder(id, 1)
            .earliest_start(TimeSlot(start))
            .time_flexibility(tf)
            .profile(Profile::uniform(slots, EnergyRange::new(lo, hi).unwrap()))
            .build()
            .unwrap()
    }

    fn sg(g: u64, i: u32) -> SubgroupId {
        SubgroupId {
            group: GroupId(g),
            index: i,
        }
    }

    /// Stock the slab and produce the add-only delta for one sub-group.
    fn add_update(
        slab: &mut OfferSlab,
        subgroup: SubgroupId,
        members: Vec<FlexOffer>,
    ) -> SubgroupUpdate {
        let added = members.iter().map(|o| o.id()).collect();
        for o in members {
            slab.insert(o);
        }
        SubgroupUpdate::Upsert {
            subgroup,
            added,
            removed: vec![],
        }
    }

    fn aggregator_with(members: Vec<FlexOffer>) -> (NToOneAggregator, OfferSlab, AggregateId) {
        let mut slab = OfferSlab::new();
        let mut agg = NToOneAggregator::new();
        let u = add_update(&mut slab, sg(0, 0), members);
        let updates = agg.apply(vec![u], &slab);
        let id = match &updates[0] {
            AggregateUpdate::Upsert(a) => a.id,
            _ => panic!("expected upsert"),
        };
        (agg, slab, id)
    }

    #[test]
    fn incremental_add_reuses_aggregate_id() {
        let mut slab = OfferSlab::new();
        let mut agg = NToOneAggregator::new();
        let u = add_update(&mut slab, sg(0, 0), vec![member(1, 10, 4, 2, 1.0, 2.0)]);
        let u1 = agg.apply(vec![u], &slab);
        let u = add_update(&mut slab, sg(0, 0), vec![member(2, 10, 4, 2, 1.0, 2.0)]);
        let u2 = agg.apply(vec![u], &slab);
        let id1 = match &u1[0] {
            AggregateUpdate::Upsert(a) => a.id,
            _ => panic!(),
        };
        let id2 = match &u2[0] {
            AggregateUpdate::Upsert(a) => a.id,
            _ => panic!(),
        };
        assert_eq!(id1, id2);
        assert_eq!(agg.aggregate_count(), 1);
        assert_eq!(agg.aggregate(id1).unwrap().member_count(), 2);
    }

    #[test]
    fn removal_emits_removed() {
        let mut slab = OfferSlab::new();
        let mut agg = NToOneAggregator::new();
        let u = add_update(&mut slab, sg(0, 0), vec![member(1, 10, 4, 2, 1.0, 2.0)]);
        agg.apply(vec![u], &slab);
        let out = agg.apply(vec![SubgroupUpdate::Removed { subgroup: sg(0, 0) }], &slab);
        assert!(matches!(out[0], AggregateUpdate::Removed(_)));
        assert_eq!(agg.aggregate_count(), 0);
        // double removal is a no-op
        let out2 = agg.apply(vec![SubgroupUpdate::Removed { subgroup: sg(0, 0) }], &slab);
        assert!(out2.is_empty());
    }

    #[test]
    fn delta_remove_matches_rebuild() {
        // Fold three members in, remove the one that defines every min:
        // the delta-folded result must match a fresh build of the rest.
        let a = member(1, 8, 2, 4, 0.5, 3.0); // earliest start + min TF
        let b = member(2, 10, 6, 2, 1.0, 2.0);
        let c = member(3, 12, 9, 3, 0.0, 1.5);
        let (mut agg, mut slab, id) = aggregator_with(vec![a.clone(), b.clone(), c.clone()]);
        let removed = slab.remove(a.id()).unwrap();
        let out = agg.apply(
            vec![SubgroupUpdate::Upsert {
                subgroup: sg(0, 0),
                added: vec![],
                removed: vec![removed],
            }],
            &slab,
        );
        let folded = match &out[0] {
            AggregateUpdate::Upsert(a) => a.clone(),
            _ => panic!("expected upsert"),
        };
        let reference = AggregatedFlexOffer::build(id, &[b, c]);
        assert_eq!(folded.earliest_start, reference.earliest_start);
        assert_eq!(folded.latest_start, reference.latest_start);
        assert_eq!(folded.member_ids, reference.member_ids);
        assert_eq!(folded.duration(), reference.duration());
        for (x, y) in folded
            .profile
            .slot_ranges()
            .zip(reference.profile.slot_ranges())
        {
            assert!(x.min().approx_eq(y.min(), 1e-9) && x.max().approx_eq(y.max(), 1e-9));
        }
    }

    #[test]
    fn pool_width_does_not_change_the_stream() {
        let mk = |width: usize| {
            let mut slab = OfferSlab::new();
            let mut agg = NToOneAggregator::new();
            agg.set_pool(Pool::new(width));
            let mut streams = Vec::new();
            // Ten groups, three rounds of updates.
            for round in 0..3u64 {
                let updates: Vec<SubgroupUpdate> = (0..10u64)
                    .map(|g| {
                        add_update(
                            &mut slab,
                            sg(g, 0),
                            vec![member(
                                1000 * round + g,
                                (10 + g) as i64,
                                4,
                                2,
                                1.0,
                                2.0 + round as f64,
                            )],
                        )
                    })
                    .collect();
                streams.push(agg.apply(updates, &slab));
            }
            streams
        };
        // Serial (width 1) is the reference; 2 and 8 lanes must emit a
        // bit-identical stream, fresh aggregate ids included.
        let reference = mk(1);
        assert_eq!(reference, mk(2));
        assert_eq!(reference, mk(8));
    }

    #[test]
    fn disaggregate_identical_members_splits_energy() {
        let (agg, slab, id) = aggregator_with(vec![
            member(1, 10, 4, 2, 1.0, 2.0),
            member(2, 10, 4, 2, 1.0, 2.0),
        ]);
        let macro_offer = agg.aggregate(id).unwrap().to_flex_offer().unwrap();
        // schedule at δ=2, all slots at 3.0 (i.e. fraction 0.5 of [2,4])
        let schedule = ScheduledFlexOffer {
            offer_id: macro_offer.id(),
            start: TimeSlot(12),
            slot_energies: vec![Energy::from_kwh(3.0); 2],
        };
        let micro = agg.disaggregate(id, &schedule, &slab).unwrap();
        assert_eq!(micro.len(), 2);
        for s in &micro {
            assert_eq!(s.start, TimeSlot(12));
            for e in &s.slot_energies {
                assert!(e.approx_eq(Energy::from_kwh(1.5), 1e-9));
            }
        }
    }

    #[test]
    fn disaggregate_respects_member_windows() {
        // members at different earliest starts (P2-style group)
        let (agg, slab, id) = aggregator_with(vec![
            member(1, 10, 4, 2, 1.0, 1.0),
            member(2, 12, 4, 2, 2.0, 2.0),
        ]);
        let a = agg.aggregate(id).unwrap();
        assert_eq!(a.earliest_start, TimeSlot(10));
        let macro_offer = a.to_flex_offer().unwrap();
        let schedule = ScheduledFlexOffer::at_min(&macro_offer, TimeSlot(13)); // δ=3
        let micro = agg.disaggregate(id, &schedule, &slab).unwrap();
        assert_eq!(micro[0].start, TimeSlot(13)); // 10 + 3
        assert_eq!(micro[1].start, TimeSlot(15)); // 12 + 3
        for (s, mid) in micro.iter().zip(agg.member_ids(id).unwrap().iter()) {
            s.validate_against(slab.get(mid).unwrap(), 1e-9).unwrap();
        }
    }

    #[test]
    fn disaggregate_rejects_bad_schedule() {
        let (agg, slab, id) = aggregator_with(vec![member(1, 10, 4, 2, 1.0, 2.0)]);
        let macro_offer = agg.aggregate(id).unwrap().to_flex_offer().unwrap();
        let bad_start = ScheduledFlexOffer::at_min(&macro_offer, TimeSlot(99));
        assert!(matches!(
            agg.disaggregate(id, &bad_start, &slab),
            Err(DisaggregationError::InvalidSchedule(_))
        ));
        let unknown = agg.disaggregate(AggregateId(999), &bad_start, &slab);
        assert!(matches!(
            unknown,
            Err(DisaggregationError::UnknownAggregate(_))
        ));
    }

    #[test]
    fn disaggregate_at_min_validates_members() {
        let (agg, slab, id) = aggregator_with(vec![
            member(1, 10, 6, 3, 0.5, 1.5),
            member(2, 11, 8, 2, 1.0, 4.0),
        ]);
        let micro = agg.disaggregate_at_min(id, TimeSlot(14), &slab).unwrap();
        for (s, mid) in micro.iter().zip(agg.member_ids(id).unwrap().iter()) {
            let m = slab.get(mid).unwrap();
            s.validate_against(m, 1e-9).unwrap();
            assert!(s
                .total_energy()
                .approx_eq(m.profile().min_total_energy(), 1e-9));
        }
    }

    proptest! {
        /// The disaggregation requirement (paper §4): for ANY valid
        /// schedule of the aggregate, disaggregation yields valid member
        /// schedules whose per-slot energies sum to the aggregate's.
        #[test]
        fn disaggregation_requirement_holds(
            starts in proptest::collection::vec(0i64..20, 1..6),
            tfs in proptest::collection::vec(0u32..12, 6),
            durs in proptest::collection::vec(1u32..5, 6),
            los in proptest::collection::vec(0.0f64..3.0, 6),
            widths in proptest::collection::vec(0.0f64..2.0, 6),
            delta_frac in 0.0f64..1.0,
            fill in 0.0f64..1.0,
        ) {
            let members: Vec<FlexOffer> = starts
                .iter()
                .enumerate()
                .map(|(i, &s)| member(
                    i as u64,
                    s,
                    tfs[i],
                    durs[i],
                    los[i],
                    los[i] + widths[i],
                ))
                .collect();
            let (agg, slab, id) = aggregator_with(members.clone());
            let a = agg.aggregate(id).unwrap();
            let macro_offer = a.to_flex_offer().unwrap();

            let delta = (a.time_flexibility() as f64 * delta_frac).floor() as u32;
            let start = a.earliest_start + delta;
            let schedule = ScheduledFlexOffer::at_fraction(&macro_offer, start, fill);
            schedule.validate_against(&macro_offer, 1e-9).unwrap();

            let micro = agg.disaggregate(id, &schedule, &slab).unwrap();
            prop_assert_eq!(micro.len(), members.len());

            // every member schedule valid
            for s in &micro {
                let m = members.iter().find(|m| m.id() == s.offer_id).unwrap();
                prop_assert!(s.validate_against(m, 1e-6).is_ok());
            }

            // per-slot energy conservation
            for (k, &agg_e) in schedule.slot_energies.iter().enumerate() {
                let t = schedule.start + k as u32;
                let sum: Energy = micro.iter().map(|s| s.energy_at(t)).sum();
                prop_assert!(
                    sum.approx_eq(agg_e, 1e-6),
                    "slot {} sum {} != aggregate {}", k, sum, agg_e
                );
            }
        }
    }
}
