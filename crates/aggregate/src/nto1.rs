//! The n-to-1 aggregator (paper §4): maintains one [`AggregatedFlexOffer`]
//! per sub-group and disaggregates scheduled aggregates back into micro
//! schedules.

use crate::aggregate::AggregatedFlexOffer;
use crate::update::{AggregateUpdate, SubgroupId, SubgroupUpdate};
use mirabel_core::{AggregateId, DomainError, FlexOffer, ScheduledFlexOffer, TimeSlot};
use std::collections::HashMap;

/// Errors from disaggregation.
#[derive(Debug, Clone, PartialEq)]
pub enum DisaggregationError {
    /// No aggregate with that id is maintained.
    UnknownAggregate(AggregateId),
    /// The schedule violates the aggregate's constraints.
    InvalidSchedule(DomainError),
}

impl std::fmt::Display for DisaggregationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DisaggregationError::UnknownAggregate(id) => write!(f, "unknown aggregate {id}"),
            DisaggregationError::InvalidSchedule(e) => write!(f, "invalid schedule: {e}"),
        }
    }
}

impl std::error::Error for DisaggregationError {}

#[derive(Debug, Clone)]
struct AggregateEntry {
    aggregate: AggregatedFlexOffer,
    members: Vec<FlexOffer>,
}

/// Maintains aggregates per sub-group; performs disaggregation.
#[derive(Debug, Default)]
pub struct NToOneAggregator {
    by_subgroup: HashMap<SubgroupId, AggregateId>,
    store: HashMap<AggregateId, AggregateEntry>,
    next_id: u64,
}

impl NToOneAggregator {
    /// Empty aggregator.
    pub fn new() -> NToOneAggregator {
        NToOneAggregator::default()
    }

    /// Consume sub-group updates; maintain aggregates; emit aggregate
    /// updates.
    pub fn apply(&mut self, updates: Vec<SubgroupUpdate>) -> Vec<AggregateUpdate> {
        let mut out = Vec::with_capacity(updates.len());
        for u in updates {
            match u {
                SubgroupUpdate::Upsert { subgroup, members } => {
                    let id = *self.by_subgroup.entry(subgroup).or_insert_with(|| {
                        let id = AggregateId(self.next_id);
                        self.next_id += 1;
                        id
                    });
                    let aggregate = AggregatedFlexOffer::build(id, &members);
                    out.push(AggregateUpdate::Upsert(aggregate.clone()));
                    self.store.insert(id, AggregateEntry { aggregate, members });
                }
                SubgroupUpdate::Removed { subgroup } => {
                    if let Some(id) = self.by_subgroup.remove(&subgroup) {
                        self.store.remove(&id);
                        out.push(AggregateUpdate::Removed(id));
                    }
                }
            }
        }
        out
    }

    /// Iterate the maintained aggregates.
    pub fn aggregates(&self) -> impl Iterator<Item = &AggregatedFlexOffer> {
        self.store.values().map(|e| &e.aggregate)
    }

    /// Look up one aggregate.
    pub fn aggregate(&self, id: AggregateId) -> Option<&AggregatedFlexOffer> {
        self.store.get(&id).map(|e| &e.aggregate)
    }

    /// The members of one aggregate.
    pub fn members(&self, id: AggregateId) -> Option<&[FlexOffer]> {
        self.store.get(&id).map(|e| e.members.as_slice())
    }

    /// Number of maintained aggregates.
    pub fn aggregate_count(&self) -> usize {
        self.store.len()
    }

    /// Disaggregate a scheduled aggregate into scheduled micro
    /// flex-offers (paper: "quite straightforward" because the
    /// disaggregation requirement holds by construction).
    ///
    /// The aggregate-level start shift `δ = schedule.start −
    /// aggregate.earliest_start` is applied to every member; per aggregate
    /// slot, the scheduled energy is positioned at the same fraction of
    /// each member's `[min, max]` range as it is within the aggregate's
    /// summed range.
    pub fn disaggregate(
        &self,
        id: AggregateId,
        schedule: &ScheduledFlexOffer,
    ) -> Result<Vec<ScheduledFlexOffer>, DisaggregationError> {
        let entry = self
            .store
            .get(&id)
            .ok_or(DisaggregationError::UnknownAggregate(id))?;
        let agg = &entry.aggregate;
        let as_offer = agg
            .to_flex_offer()
            .map_err(DisaggregationError::InvalidSchedule)?;
        schedule
            .validate_against(&as_offer, 1e-6)
            .map_err(DisaggregationError::InvalidSchedule)?;

        let delta = (schedule.start - agg.earliest_start) as u32;
        // Per-aggregate-slot fill fraction.
        let fractions: Vec<f64> = agg
            .profile
            .slot_ranges()
            .zip(&schedule.slot_energies)
            .map(|(range, &e)| range.fraction_of(e))
            .collect();

        let mut out = Vec::with_capacity(entry.members.len());
        for m in &entry.members {
            let offset = (m.earliest_start() - agg.earliest_start) as usize;
            let start = m.earliest_start() + delta;
            let slot_energies = m
                .profile()
                .slot_ranges()
                .enumerate()
                .map(|(k, r)| r.lerp(fractions[offset + k]))
                .collect();
            let s = ScheduledFlexOffer {
                offer_id: m.id(),
                start,
                slot_energies,
            };
            debug_assert!(s.validate_against(m, 1e-6).is_ok());
            out.push(s);
        }
        Ok(out)
    }

    /// Disaggregate with the aggregate start shift only, all members at
    /// minimum energy — used by the open-contract fallback paths.
    pub fn disaggregate_at_min(
        &self,
        id: AggregateId,
        start: TimeSlot,
    ) -> Result<Vec<ScheduledFlexOffer>, DisaggregationError> {
        let entry = self
            .store
            .get(&id)
            .ok_or(DisaggregationError::UnknownAggregate(id))?;
        let agg = &entry.aggregate;
        let as_offer = agg
            .to_flex_offer()
            .map_err(DisaggregationError::InvalidSchedule)?;
        let schedule = ScheduledFlexOffer::at_min(&as_offer, start);
        self.disaggregate(id, &schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{Energy, EnergyRange, GroupId, Profile};
    use proptest::prelude::*;

    fn member(id: u64, start: i64, tf: u32, slots: u32, lo: f64, hi: f64) -> FlexOffer {
        FlexOffer::builder(id, 1)
            .earliest_start(TimeSlot(start))
            .time_flexibility(tf)
            .profile(Profile::uniform(slots, EnergyRange::new(lo, hi).unwrap()))
            .build()
            .unwrap()
    }

    fn sg(g: u64, i: u32) -> SubgroupId {
        SubgroupId {
            group: GroupId(g),
            index: i,
        }
    }

    fn aggregator_with(members: Vec<FlexOffer>) -> (NToOneAggregator, AggregateId) {
        let mut agg = NToOneAggregator::new();
        let updates = agg.apply(vec![SubgroupUpdate::Upsert {
            subgroup: sg(0, 0),
            members,
        }]);
        let id = match &updates[0] {
            AggregateUpdate::Upsert(a) => a.id,
            _ => panic!("expected upsert"),
        };
        (agg, id)
    }

    #[test]
    fn upsert_reuses_aggregate_id() {
        let mut agg = NToOneAggregator::new();
        let u1 = agg.apply(vec![SubgroupUpdate::Upsert {
            subgroup: sg(0, 0),
            members: vec![member(1, 10, 4, 2, 1.0, 2.0)],
        }]);
        let u2 = agg.apply(vec![SubgroupUpdate::Upsert {
            subgroup: sg(0, 0),
            members: vec![member(1, 10, 4, 2, 1.0, 2.0), member(2, 10, 4, 2, 1.0, 2.0)],
        }]);
        let id1 = match &u1[0] {
            AggregateUpdate::Upsert(a) => a.id,
            _ => panic!(),
        };
        let id2 = match &u2[0] {
            AggregateUpdate::Upsert(a) => a.id,
            _ => panic!(),
        };
        assert_eq!(id1, id2);
        assert_eq!(agg.aggregate_count(), 1);
        assert_eq!(agg.aggregate(id1).unwrap().member_count(), 2);
    }

    #[test]
    fn removal_emits_removed() {
        let mut agg = NToOneAggregator::new();
        agg.apply(vec![SubgroupUpdate::Upsert {
            subgroup: sg(0, 0),
            members: vec![member(1, 10, 4, 2, 1.0, 2.0)],
        }]);
        let out = agg.apply(vec![SubgroupUpdate::Removed { subgroup: sg(0, 0) }]);
        assert!(matches!(out[0], AggregateUpdate::Removed(_)));
        assert_eq!(agg.aggregate_count(), 0);
        // double removal is a no-op
        let out2 = agg.apply(vec![SubgroupUpdate::Removed { subgroup: sg(0, 0) }]);
        assert!(out2.is_empty());
    }

    #[test]
    fn disaggregate_identical_members_splits_energy() {
        let (agg, id) = aggregator_with(vec![
            member(1, 10, 4, 2, 1.0, 2.0),
            member(2, 10, 4, 2, 1.0, 2.0),
        ]);
        let macro_offer = agg.aggregate(id).unwrap().to_flex_offer().unwrap();
        // schedule at δ=2, all slots at 3.0 (i.e. fraction 0.5 of [2,4])
        let schedule = ScheduledFlexOffer {
            offer_id: macro_offer.id(),
            start: TimeSlot(12),
            slot_energies: vec![Energy::from_kwh(3.0); 2],
        };
        let micro = agg.disaggregate(id, &schedule).unwrap();
        assert_eq!(micro.len(), 2);
        for s in &micro {
            assert_eq!(s.start, TimeSlot(12));
            for e in &s.slot_energies {
                assert!(e.approx_eq(Energy::from_kwh(1.5), 1e-9));
            }
        }
    }

    #[test]
    fn disaggregate_respects_member_windows() {
        // members at different earliest starts (P2-style group)
        let (agg, id) = aggregator_with(vec![
            member(1, 10, 4, 2, 1.0, 1.0),
            member(2, 12, 4, 2, 2.0, 2.0),
        ]);
        let a = agg.aggregate(id).unwrap();
        assert_eq!(a.earliest_start, TimeSlot(10));
        let macro_offer = a.to_flex_offer().unwrap();
        let schedule = ScheduledFlexOffer::at_min(&macro_offer, TimeSlot(13)); // δ=3
        let micro = agg.disaggregate(id, &schedule).unwrap();
        assert_eq!(micro[0].start, TimeSlot(13)); // 10 + 3
        assert_eq!(micro[1].start, TimeSlot(15)); // 12 + 3
        for (s, m) in micro.iter().zip(agg.members(id).unwrap()) {
            s.validate_against(m, 1e-9).unwrap();
        }
    }

    #[test]
    fn disaggregate_rejects_bad_schedule() {
        let (agg, id) = aggregator_with(vec![member(1, 10, 4, 2, 1.0, 2.0)]);
        let macro_offer = agg.aggregate(id).unwrap().to_flex_offer().unwrap();
        let bad_start = ScheduledFlexOffer::at_min(&macro_offer, TimeSlot(99));
        assert!(matches!(
            agg.disaggregate(id, &bad_start),
            Err(DisaggregationError::InvalidSchedule(_))
        ));
        let unknown = agg.disaggregate(AggregateId(999), &bad_start);
        assert!(matches!(
            unknown,
            Err(DisaggregationError::UnknownAggregate(_))
        ));
    }

    #[test]
    fn disaggregate_at_min_validates_members() {
        let (agg, id) = aggregator_with(vec![
            member(1, 10, 6, 3, 0.5, 1.5),
            member(2, 11, 8, 2, 1.0, 4.0),
        ]);
        let micro = agg.disaggregate_at_min(id, TimeSlot(14)).unwrap();
        for (s, m) in micro.iter().zip(agg.members(id).unwrap()) {
            s.validate_against(m, 1e-9).unwrap();
            assert!(s
                .total_energy()
                .approx_eq(m.profile().min_total_energy(), 1e-9));
        }
    }

    proptest! {
        /// The disaggregation requirement (paper §4): for ANY valid
        /// schedule of the aggregate, disaggregation yields valid member
        /// schedules whose per-slot energies sum to the aggregate's.
        #[test]
        fn disaggregation_requirement_holds(
            starts in proptest::collection::vec(0i64..20, 1..6),
            tfs in proptest::collection::vec(0u32..12, 6),
            durs in proptest::collection::vec(1u32..5, 6),
            los in proptest::collection::vec(0.0f64..3.0, 6),
            widths in proptest::collection::vec(0.0f64..2.0, 6),
            delta_frac in 0.0f64..1.0,
            fill in 0.0f64..1.0,
        ) {
            let members: Vec<FlexOffer> = starts
                .iter()
                .enumerate()
                .map(|(i, &s)| member(
                    i as u64,
                    s,
                    tfs[i],
                    durs[i],
                    los[i],
                    los[i] + widths[i],
                ))
                .collect();
            let (agg, id) = aggregator_with(members.clone());
            let a = agg.aggregate(id).unwrap();
            let macro_offer = a.to_flex_offer().unwrap();

            let delta = (a.time_flexibility() as f64 * delta_frac).floor() as u32;
            let start = a.earliest_start + delta;
            let schedule = ScheduledFlexOffer::at_fraction(&macro_offer, start, fill);
            schedule.validate_against(&macro_offer, 1e-9).unwrap();

            let micro = agg.disaggregate(id, &schedule).unwrap();
            prop_assert_eq!(micro.len(), members.len());

            // every member schedule valid
            for s in &micro {
                let m = members.iter().find(|m| m.id() == s.offer_id).unwrap();
                prop_assert!(s.validate_against(m, 1e-6).is_ok());
            }

            // per-slot energy conservation
            for (k, &agg_e) in schedule.slot_energies.iter().enumerate() {
                let t = schedule.start + k as u32;
                let sum: Energy = micro.iter().map(|s| s.energy_at(t)).sum();
                prop_assert!(
                    sum.approx_eq(agg_e, 1e-6),
                    "slot {} sum {} != aggregate {}", k, sum, agg_e
                );
            }
        }
    }
}
