//! The aggregated (macro) flex-offer and its conservative construction.
//!
//! "All internal constraints of an aggregated flex-offer are
//! conservatively produced so that (1) all profiles of the underlying
//! flex-offers can always be shifted in the time flexibility range of the
//! aggregated flex-offer; (2) energy values in the aggregated flex-offer
//! profile are computed by summing the values from the underlying
//! flex-offers profiles." (paper §4)
//!
//! Concretely, members are aligned at their *own* earliest start times;
//! the aggregate starts at the minimum member earliest start and its time
//! flexibility is the **minimum** member time flexibility. Any aggregate
//! start shift `δ` therefore maps to the per-member shift `δ`, which every
//! member admits — the disaggregation requirement holds by construction.

use crate::members::MemberIds;
use mirabel_core::{
    AggregateId, DomainError, EnergyRange, FlexOffer, FlexOfferId, OfferKind, Price, Profile,
    SlotSpan, TimeSlot,
};
use serde::{Deserialize, Serialize};

/// A macro flex-offer produced by the n-to-1 aggregator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregatedFlexOffer {
    /// Aggregate identifier.
    pub id: AggregateId,
    /// Consumption or production (members never mix kinds).
    pub kind: OfferKind,
    /// Minimum member earliest start.
    pub earliest_start: TimeSlot,
    /// `earliest_start` + minimum member time flexibility.
    pub latest_start: TimeSlot,
    /// Minimum member assignment deadline.
    pub assignment_before: TimeSlot,
    /// Per-slot Minkowski sum of member profiles at their relative
    /// offsets.
    pub profile: Profile,
    /// Energy-weighted mean member activation price.
    pub unit_price: Price,
    /// Members folded into this aggregate, ascending. Chunked with
    /// per-chunk structural sharing ([`MemberIds`]), so both cloning an
    /// emitted aggregate *and* producing the emission snapshot after a
    /// trickle delta are O(members ⁄ chunk) pointer work — never an
    /// O(members) id copy.
    pub member_ids: MemberIds,
}

impl AggregatedFlexOffer {
    /// Conservatively aggregate `members` into one macro offer.
    ///
    /// # Panics
    /// Panics if `members` is empty or mixes consumption and production
    /// (the group-builder never produces such inputs).
    pub fn build(id: AggregateId, members: &[FlexOffer]) -> AggregatedFlexOffer {
        assert!(!members.is_empty(), "aggregate needs at least one member");
        let kind = members[0].kind();
        assert!(
            members.iter().all(|m| m.kind() == kind),
            "aggregate must not mix consumption and production"
        );

        let earliest_start = members
            .iter()
            .map(|m| m.earliest_start())
            .min()
            .expect("non-empty");
        let time_flex = members
            .iter()
            .map(|m| m.time_flexibility())
            .min()
            .expect("non-empty");
        let assignment_before = members
            .iter()
            .map(|m| m.assignment_before())
            .min()
            .expect("non-empty");

        // Aggregate profile span: alignment at each member's own earliest
        // start, offsets relative to the aggregate's earliest start.
        let span = members
            .iter()
            .map(|m| (m.earliest_start() - earliest_start) as usize + m.duration() as usize)
            .max()
            .expect("non-empty");
        let mut ranges = vec![EnergyRange::ZERO; span];
        for m in members {
            let offset = (m.earliest_start() - earliest_start) as usize;
            for (k, r) in m.profile().slot_ranges().enumerate() {
                ranges[offset + k] = ranges[offset + k].sum(&r);
            }
        }
        let profile = Profile::from_slot_ranges(ranges)
            .expect("span >= 1")
            .normalize();

        // Energy-weighted mean price: what the BRP pays on average per kWh
        // dispatched through this aggregate.
        let mut energy = 0.0;
        let mut weighted = 0.0;
        for m in members {
            let e = m.profile().max_total_energy().kwh();
            energy += e;
            weighted += e * m.unit_price().eur();
        }
        let unit_price = if energy > 0.0 {
            Price(weighted / energy)
        } else {
            Price::ZERO
        };

        let mut member_ids: Vec<FlexOfferId> = members.iter().map(|m| m.id()).collect();
        member_ids.sort_unstable();

        AggregatedFlexOffer {
            id,
            kind,
            earliest_start,
            latest_start: earliest_start + time_flex,
            assignment_before,
            profile,
            unit_price,
            member_ids: member_ids.into_iter().collect(),
        }
    }

    /// Time flexibility of the aggregate in slots.
    pub fn time_flexibility(&self) -> SlotSpan {
        (self.latest_start - self.earliest_start) as SlotSpan
    }

    /// Number of members.
    pub fn member_count(&self) -> usize {
        self.member_ids.len()
    }

    /// Aggregate duration in slots.
    pub fn duration(&self) -> SlotSpan {
        self.profile.total_duration()
    }

    /// View the aggregate as a plain [`FlexOffer`] so the scheduler can
    /// treat micro and macro offers uniformly. The flex-offer id reuses
    /// the aggregate's numeric id (the scheduler round-trips it).
    pub fn to_flex_offer(&self) -> Result<FlexOffer, DomainError> {
        self.to_flex_offer_as(self.id.value(), 0)
    }

    /// Like [`to_flex_offer`](Self::to_flex_offer), but under a caller-
    /// chosen id and owner — what a BRP uses to export this aggregate
    /// up the hierarchy in a globally-unique id space. Both views apply
    /// the same constraint mapping (including the assignment-deadline
    /// clamp), so the exported wire value can never diverge from what
    /// local consumers derive.
    pub fn to_flex_offer_as(&self, id: u64, owner: u64) -> Result<FlexOffer, DomainError> {
        FlexOffer::builder(id, owner)
            .kind(self.kind)
            .earliest_start(self.earliest_start)
            .latest_start(self.latest_start)
            .assignment_before(self.assignment_before.min(self.earliest_start))
            .profile(self.profile.clone())
            .unit_price(self.unit_price)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::Energy;

    fn member(id: u64, start: i64, tf: u32, slots: u32, lo: f64, hi: f64) -> FlexOffer {
        FlexOffer::builder(id, 1)
            .earliest_start(TimeSlot(start))
            .time_flexibility(tf)
            .assignment_before(TimeSlot(start - 2))
            .profile(Profile::uniform(slots, EnergyRange::new(lo, hi).unwrap()))
            .unit_price(Price(0.05))
            .build()
            .unwrap()
    }

    #[test]
    fn identical_members_sum_profiles() {
        let a = member(1, 10, 4, 2, 1.0, 2.0);
        let b = member(2, 10, 4, 2, 1.0, 2.0);
        let agg = AggregatedFlexOffer::build(AggregateId(0), &[a, b]);
        assert_eq!(agg.earliest_start, TimeSlot(10));
        assert_eq!(agg.time_flexibility(), 4);
        assert_eq!(agg.duration(), 2);
        assert!(agg
            .profile
            .min_total_energy()
            .approx_eq(Energy::from_kwh(4.0), 1e-12));
        assert!(agg
            .profile
            .max_total_energy()
            .approx_eq(Energy::from_kwh(8.0), 1e-12));
        assert_eq!(agg.member_count(), 2);
    }

    #[test]
    fn time_flexibility_is_minimum() {
        let a = member(1, 10, 8, 2, 1.0, 2.0);
        let b = member(2, 10, 3, 2, 1.0, 2.0);
        let agg = AggregatedFlexOffer::build(AggregateId(0), &[a, b]);
        assert_eq!(agg.time_flexibility(), 3);
    }

    #[test]
    fn offset_members_widen_profile() {
        // starts 10 and 12, both 2 slots: aggregate spans 4 slots.
        let a = member(1, 10, 4, 2, 1.0, 1.0);
        let b = member(2, 12, 4, 2, 2.0, 2.0);
        let agg = AggregatedFlexOffer::build(AggregateId(0), &[a, b]);
        assert_eq!(agg.duration(), 4);
        let flat: Vec<EnergyRange> = agg.profile.slot_ranges().collect();
        assert_eq!(flat[0], EnergyRange::fixed(1.0));
        assert_eq!(flat[1], EnergyRange::fixed(1.0));
        assert_eq!(flat[2], EnergyRange::fixed(2.0));
        assert_eq!(flat[3], EnergyRange::fixed(2.0));
    }

    #[test]
    fn overlapping_offsets_sum_ranges() {
        let a = member(1, 10, 4, 3, 1.0, 2.0); // slots 10,11,12
        let b = member(2, 11, 4, 1, 5.0, 7.0); // slot 11
        let agg = AggregatedFlexOffer::build(AggregateId(0), &[a, b]);
        let flat: Vec<EnergyRange> = agg.profile.slot_ranges().collect();
        assert_eq!(flat.len(), 3);
        assert_eq!(flat[1], EnergyRange::new(6.0, 9.0).unwrap());
    }

    #[test]
    fn assignment_deadline_is_minimum() {
        let a = member(1, 10, 4, 2, 1.0, 2.0); // ab = 8
        let b = member(2, 20, 4, 2, 1.0, 2.0); // ab = 18
        let agg = AggregatedFlexOffer::build(AggregateId(0), &[a, b]);
        assert_eq!(agg.assignment_before, TimeSlot(8));
    }

    #[test]
    fn price_is_energy_weighted() {
        let a = FlexOffer::builder(1, 1)
            .earliest_start(TimeSlot(10))
            .time_flexibility(4)
            .profile(Profile::uniform(1, EnergyRange::fixed(1.0)))
            .unit_price(Price(0.10))
            .build()
            .unwrap();
        let b = FlexOffer::builder(2, 1)
            .earliest_start(TimeSlot(10))
            .time_flexibility(4)
            .profile(Profile::uniform(1, EnergyRange::fixed(3.0)))
            .unit_price(Price(0.02))
            .build()
            .unwrap();
        let agg = AggregatedFlexOffer::build(AggregateId(0), &[a, b]);
        // (1*0.10 + 3*0.02) / 4 = 0.04
        assert!(agg.unit_price.approx_eq(Price(0.04), 1e-12));
    }

    #[test]
    fn to_flex_offer_roundtrip() {
        let a = member(1, 10, 4, 2, 1.0, 2.0);
        let b = member(2, 12, 6, 3, 0.5, 0.5);
        let agg = AggregatedFlexOffer::build(AggregateId(7), &[a, b]);
        let fo = agg.to_flex_offer().unwrap();
        assert_eq!(fo.id().value(), 7);
        assert_eq!(fo.earliest_start(), agg.earliest_start);
        assert_eq!(fo.time_flexibility(), agg.time_flexibility());
        assert_eq!(fo.duration(), agg.duration());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_members_panics() {
        AggregatedFlexOffer::build(AggregateId(0), &[]);
    }

    #[test]
    #[should_panic(expected = "must not mix")]
    fn mixed_kinds_panic() {
        let a = member(1, 10, 4, 2, 1.0, 2.0);
        let b = FlexOffer::builder(2, 1)
            .kind(OfferKind::Production)
            .earliest_start(TimeSlot(10))
            .profile(Profile::uniform(1, EnergyRange::fixed(1.0)))
            .build()
            .unwrap();
        AggregatedFlexOffer::build(AggregateId(0), &[a, b]);
    }

    #[test]
    fn profile_is_normalized() {
        let a = member(1, 10, 4, 2, 1.0, 2.0);
        let b = member(2, 10, 4, 2, 1.0, 2.0);
        let agg = AggregatedFlexOffer::build(AggregateId(0), &[a, b]);
        // identical per-slot ranges merge into one slice
        assert_eq!(agg.profile.slice_count(), 1);
    }
}
