//! Update streams between the aggregation sub-components (paper §4).
//!
//! "It accepts a set of flex-offer updates … and produces a set of
//! aggregated flex-offer updates. … the group-builder internally maintains
//! similar flex-offer groups and produces group-updates … the bin-packer
//! … produce\[s\] sub-group updates … the produced sub-group updates are
//! issued to the n-to-1 aggregator."
//!
//! ## Delta streams
//!
//! Group and sub-group updates carry member **deltas**, not member
//! snapshots: `added` lists the ids of offers that joined (their values
//! live in the pipeline's [`OfferSlab`](crate::slab::OfferSlab)), and
//! `removed` carries the **owned** previous values of offers that left —
//! ownership moves down the stream, so a removal is never cloned, and the
//! n-to-1 aggregator has the exact old value it must subtract from its
//! delta-folded bounds. An offer whose attributes changed in place
//! appears in both lists (old value out, new id in).

use crate::aggregate::AggregatedFlexOffer;
use mirabel_core::codec::{CodecError, Wire};
use mirabel_core::{FlexOffer, FlexOfferId, GroupId};
use serde::{Deserialize, Serialize};

/// Input to the pipeline: offer arrivals and removals (accepted or
/// expiring offers — "those with approaching assignment before time").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlexOfferUpdate {
    /// A new offer entered the pool.
    Insert(FlexOffer),
    /// An offer left the pool (expired, withdrawn, or executed).
    Delete(FlexOfferId),
}

impl Wire for FlexOfferUpdate {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            FlexOfferUpdate::Insert(offer) => {
                out.push(0);
                offer.encode(out);
            }
            FlexOfferUpdate::Delete(id) => {
                out.push(1);
                id.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = buf.split_first().ok_or(CodecError::UnexpectedEof)?;
        *buf = rest;
        match tag {
            0 => Ok(FlexOfferUpdate::Insert(FlexOffer::decode(buf)?)),
            1 => Ok(FlexOfferUpdate::Delete(FlexOfferId::decode(buf)?)),
            other => Err(CodecError::InvalidTag {
                what: "FlexOfferUpdate",
                tag: u64::from(other),
            }),
        }
    }
}

/// Output of the group-builder: which similarity groups changed, as
/// member deltas.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupUpdate {
    /// A group was created or its membership changed.
    Upsert {
        /// The group.
        group: GroupId,
        /// Offers that joined, in ascending id order; resolve against the
        /// pipeline's offer slab.
        added: Vec<FlexOfferId>,
        /// Previous values of offers that left (owned, in ascending id
        /// order) — what downstream delta-folds subtract.
        removed: Vec<FlexOffer>,
    },
    /// A group became empty and was removed.
    Removed {
        /// The group.
        group: GroupId,
    },
}

/// Identifier of a bin-packed sub-group: the parent group plus an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubgroupId {
    /// Parent similarity group.
    pub group: GroupId,
    /// Sub-group index within the parent.
    pub index: u32,
}

impl std::fmt::Display for SubgroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.group, self.index)
    }
}

/// Output of the bin-packer: which bounded sub-groups changed, as member
/// deltas (same conventions as [`GroupUpdate`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SubgroupUpdate {
    /// A sub-group was created or changed.
    Upsert {
        /// The sub-group.
        subgroup: SubgroupId,
        /// Ids of offers that joined this sub-group.
        added: Vec<FlexOfferId>,
        /// Previous values of offers that left this sub-group.
        removed: Vec<FlexOffer>,
    },
    /// A sub-group disappeared.
    Removed {
        /// The sub-group.
        subgroup: SubgroupId,
    },
}

/// Output of the n-to-1 aggregator: created/changed/deleted aggregates.
#[derive(Debug, Clone, PartialEq)]
pub enum AggregateUpdate {
    /// Aggregate created or recomputed.
    Upsert(AggregatedFlexOffer),
    /// Aggregate removed.
    Removed(mirabel_core::AggregateId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flex_offer_update_wire_roundtrip() {
        use mirabel_core::{EnergyRange, Profile, TimeSlot};
        let offer = FlexOffer::builder(5, 2)
            .earliest_start(TimeSlot(100))
            .time_flexibility(8)
            .assignment_before(TimeSlot(90))
            .profile(Profile::uniform(4, EnergyRange::new(1.0, 2.0).unwrap()))
            .build()
            .unwrap();
        for u in [
            FlexOfferUpdate::Insert(offer),
            FlexOfferUpdate::Delete(FlexOfferId(77)),
        ] {
            let back = FlexOfferUpdate::from_bytes(&u.to_bytes()).unwrap();
            assert_eq!(back, u);
        }
        assert!(FlexOfferUpdate::from_bytes(&[9]).is_err());
    }

    #[test]
    fn subgroup_id_display() {
        let id = SubgroupId {
            group: GroupId(3),
            index: 2,
        };
        assert_eq!(id.to_string(), "grp3#2");
    }

    #[test]
    fn subgroup_id_ordering() {
        let a = SubgroupId {
            group: GroupId(1),
            index: 5,
        };
        let b = SubgroupId {
            group: GroupId(2),
            index: 0,
        };
        assert!(a < b);
    }
}
