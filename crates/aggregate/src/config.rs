//! Aggregation thresholds and bin-packer bounds (paper §4).

use serde::{Deserialize, Serialize};

/// User-defined aggregation thresholds: "two flex-offers are allowed to be
/// aggregated together only if their attribute values (e.g., duration,
/// start after time) deviate by no more than user-specified thresholds."
///
/// A tolerance of `t` slots means attribute values are bucketed into
/// cells of width `t + 1`, so any two offers in the same group deviate by
/// at most `t` slots in that attribute.
///
/// The presets `p0`…`p3` are the four parameter combinations of the
/// Figure 5 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregationParams {
    /// Maximum deviation of *earliest start* ("Start After Time") within a
    /// group, in slots.
    pub start_after_tolerance: u32,
    /// Maximum deviation of *time flexibility* within a group, in slots.
    pub time_flexibility_tolerance: u32,
    /// Optional maximum deviation of profile duration within a group;
    /// `None` leaves duration unconstrained.
    pub duration_tolerance: Option<u32>,
}

impl AggregationParams {
    /// P0: Start After Time and Time Flexibility must be equal.
    pub fn p0() -> AggregationParams {
        AggregationParams {
            start_after_tolerance: 0,
            time_flexibility_tolerance: 0,
            duration_tolerance: None,
        }
    }

    /// P1: small Time Flexibility variation allowed, identical Start After
    /// Time required.
    pub fn p1(tf_tolerance: u32) -> AggregationParams {
        AggregationParams {
            start_after_tolerance: 0,
            time_flexibility_tolerance: tf_tolerance,
            duration_tolerance: None,
        }
    }

    /// P2: small Start After Time variation allowed, identical Time
    /// Flexibility required.
    pub fn p2(sa_tolerance: u32) -> AggregationParams {
        AggregationParams {
            start_after_tolerance: sa_tolerance,
            time_flexibility_tolerance: 0,
            duration_tolerance: None,
        }
    }

    /// P3: small variation of both attributes allowed.
    pub fn p3(sa_tolerance: u32, tf_tolerance: u32) -> AggregationParams {
        AggregationParams {
            start_after_tolerance: sa_tolerance,
            time_flexibility_tolerance: tf_tolerance,
            duration_tolerance: None,
        }
    }
}

impl Default for AggregationParams {
    fn default() -> AggregationParams {
        AggregationParams::p0()
    }
}

/// Bin-packer bounds (paper §4): "lower and upper bounds on one of the
/// following aggregated flex-offer properties: (1) the number of
/// flex-offers included into a single aggregate, (2) the amount of energy
/// (or time flexibility) an aggregated flex-offer has to offer".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct BinPackerConfig {
    /// Maximum members per aggregate.
    pub max_members: Option<usize>,
    /// Minimum members per aggregate (smaller remainders are still
    /// emitted, flagged as underfull, so no offer is dropped).
    pub min_members: Option<usize>,
    /// Maximum total maximum-energy (kWh) per aggregate.
    pub max_energy_kwh: Option<f64>,
}

impl BinPackerConfig {
    /// Bound only the member count.
    pub fn max_members(n: usize) -> BinPackerConfig {
        BinPackerConfig {
            max_members: Some(n),
            ..BinPackerConfig::default()
        }
    }

    /// Bound only the aggregate energy.
    pub fn max_energy(kwh: f64) -> BinPackerConfig {
        BinPackerConfig {
            max_energy_kwh: Some(kwh),
            ..BinPackerConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_semantics() {
        assert_eq!(AggregationParams::p0().start_after_tolerance, 0);
        assert_eq!(AggregationParams::p0().time_flexibility_tolerance, 0);
        let p1 = AggregationParams::p1(8);
        assert_eq!(p1.start_after_tolerance, 0);
        assert_eq!(p1.time_flexibility_tolerance, 8);
        let p2 = AggregationParams::p2(8);
        assert_eq!(p2.start_after_tolerance, 8);
        assert_eq!(p2.time_flexibility_tolerance, 0);
        let p3 = AggregationParams::p3(4, 8);
        assert_eq!(p3.start_after_tolerance, 4);
        assert_eq!(p3.time_flexibility_tolerance, 8);
    }

    #[test]
    fn binpacker_builders() {
        let c = BinPackerConfig::max_members(100);
        assert_eq!(c.max_members, Some(100));
        assert_eq!(c.max_energy_kwh, None);
        let e = BinPackerConfig::max_energy(500.0);
        assert_eq!(e.max_energy_kwh, Some(500.0));
    }
}
