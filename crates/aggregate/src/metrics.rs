//! Aggregation quality metrics: the quantities plotted in Figure 5.

use serde::{Deserialize, Serialize};

/// Snapshot of the aggregation state quality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregationReport {
    /// Micro flex-offers currently aggregated.
    pub offer_count: usize,
    /// Macro (aggregated) flex-offers maintained.
    pub aggregate_count: usize,
    /// Sum of member time flexibilities before aggregation (slots).
    pub total_time_flexibility: u64,
    /// Sum over members of the time flexibility they retain inside their
    /// aggregate (the aggregate's minimum-member flexibility).
    pub retained_time_flexibility: u64,
}

impl AggregationReport {
    /// Compression ratio: micro offers per macro offer (Figure 5(a)).
    pub fn compression_ratio(&self) -> f64 {
        if self.aggregate_count == 0 {
            if self.offer_count == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.offer_count as f64 / self.aggregate_count as f64
        }
    }

    /// Total time flexibility lost to aggregation, in slots.
    pub fn time_flexibility_loss(&self) -> u64 {
        self.total_time_flexibility
            .saturating_sub(self.retained_time_flexibility)
    }

    /// Loss of time flexibility per flex-offer (Figure 5(c)).
    pub fn loss_per_offer(&self) -> f64 {
        if self.offer_count == 0 {
            0.0
        } else {
            self.time_flexibility_loss() as f64 / self.offer_count as f64
        }
    }

    /// Fraction of the original time flexibility retained.
    pub fn retention(&self) -> f64 {
        if self.total_time_flexibility == 0 {
            1.0
        } else {
            self.retained_time_flexibility as f64 / self.total_time_flexibility as f64
        }
    }
}

/// Counters of the n-to-1 aggregator's delta-fold machinery: how much
/// work the incremental path did and how often the drift-bounding exact
/// re-fold kicked in. Cheap observability for the 10⁶-offer ingest path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DeltaStats {
    /// Members folded *into* aggregates by delta updates.
    pub folded_in: u64,
    /// Members folded *out of* aggregates by delta updates.
    pub folded_out: u64,
    /// Exact re-folds performed to squash accumulated float drift.
    pub refolds: u64,
    /// Aggregate snapshots emitted.
    pub emitted: u64,
}

impl DeltaStats {
    /// Merge another counter set into this one.
    pub fn absorb(&mut self, other: DeltaStats) {
        self.folded_in += other.folded_in;
        self.folded_out += other.folded_out;
        self.refolds += other.refolds;
        self.emitted += other.emitted;
    }

    /// Total member operations delta-folded.
    pub fn delta_ops(&self) -> u64 {
        self.folded_in + self.folded_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_stats_absorb() {
        let mut a = DeltaStats {
            folded_in: 3,
            folded_out: 1,
            refolds: 0,
            emitted: 2,
        };
        a.absorb(DeltaStats {
            folded_in: 2,
            folded_out: 2,
            refolds: 1,
            emitted: 1,
        });
        assert_eq!(a.folded_in, 5);
        assert_eq!(a.folded_out, 3);
        assert_eq!(a.refolds, 1);
        assert_eq!(a.emitted, 3);
        assert_eq!(a.delta_ops(), 8);
    }

    #[test]
    fn ratios() {
        let r = AggregationReport {
            offer_count: 100,
            aggregate_count: 25,
            total_time_flexibility: 1000,
            retained_time_flexibility: 900,
        };
        assert_eq!(r.compression_ratio(), 4.0);
        assert_eq!(r.time_flexibility_loss(), 100);
        assert_eq!(r.loss_per_offer(), 1.0);
        assert!((r.retention() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_state() {
        let r = AggregationReport {
            offer_count: 0,
            aggregate_count: 0,
            total_time_flexibility: 0,
            retained_time_flexibility: 0,
        };
        assert_eq!(r.compression_ratio(), 1.0);
        assert_eq!(r.loss_per_offer(), 0.0);
        assert_eq!(r.retention(), 1.0);
    }

    #[test]
    fn saturating_loss() {
        // retained can never exceed total in practice; guard anyway
        let r = AggregationReport {
            offer_count: 1,
            aggregate_count: 1,
            total_time_flexibility: 5,
            retained_time_flexibility: 7,
        };
        assert_eq!(r.time_flexibility_loss(), 0);
    }
}
