//! Release-mode throughput smoke tests, run in CI via
//! `cargo test --release -- --ignored`.
//!
//! Wall-clock assertions only fire in release builds (debug builds
//! cross-check every emitted aggregate against the reference fold,
//! which is exactly the overhead these tests exist to avoid timing).

use mirabel_aggregate::{
    AggregatedFlexOffer, AggregationParams, AggregationPipeline, FlexOfferUpdate,
};
use mirabel_core::exec::Pool;
use mirabel_core::{AggregateId, EnergyRange, FlexOffer, FlexOfferGenerator, Profile, TimeSlot};
use std::time::{Duration, Instant};

fn identical_offer(id: u64) -> FlexOffer {
    FlexOffer::builder(id, 1)
        .earliest_start(TimeSlot(10))
        .time_flexibility(8)
        .profile(Profile::uniform(4, EnergyRange::new(0.5, 2.0).unwrap()))
        .build()
        .unwrap()
}

/// Median wall-clock of `reps` executions of `f`.
fn median_time(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

#[test]
#[ignore = "throughput smoke; run with cargo test --release -- --ignored"]
fn hundred_k_offers_aggregate_under_wall_clock_bound() {
    let t0 = Instant::now();
    let pipeline = AggregationPipeline::from_scratch(
        AggregationParams::p3(16, 16),
        None,
        FlexOfferGenerator::with_seed(7).take(100_000),
    );
    let elapsed = t0.elapsed();
    let report = pipeline.report();
    assert_eq!(report.offer_count, 100_000);
    assert!(report.compression_ratio() > 1.0);
    println!(
        "100k from-scratch: {elapsed:?}, {} aggregates, stats {:?}",
        report.aggregate_count,
        pipeline.delta_stats()
    );
    // Generous bound: the build runs in well under a second in release;
    // 60 s only catches catastrophic regressions (and stays green on
    // slow shared CI runners).
    #[cfg(not(debug_assertions))]
    assert!(elapsed < Duration::from_secs(60), "took {elapsed:?}");
}

#[test]
#[ignore = "throughput smoke; run with cargo test --release -- --ignored"]
fn trickle_update_beats_full_refold_tenfold_on_1k_group() {
    const N: u64 = 1_000;
    // One p0 group of 1 000 identical offers → a single 1 000-member
    // aggregate.
    let members: Vec<FlexOffer> = (0..N).map(identical_offer).collect();
    let mut pipeline =
        AggregationPipeline::from_scratch(AggregationParams::p0(), None, members.iter().cloned());
    assert_eq!(pipeline.aggregate_count(), 1);

    // Delta path: one insert + one delete per iteration (the group
    // returns to 1 000 members, so every sample sees the same size).
    let mut next = N;
    let trickle = median_time(64, || {
        pipeline.apply(vec![FlexOfferUpdate::Insert(identical_offer(next))]);
        pipeline.apply(vec![FlexOfferUpdate::Delete(mirabel_core::FlexOfferId(
            next,
        ))]);
        next += 1;
    });

    // Re-fold path: what the pre-delta pipeline paid per trickle update —
    // clone the full member list through the update stream and fold it
    // from scratch.
    let refold = median_time(64, || {
        let cloned = members.to_vec();
        std::hint::black_box(AggregatedFlexOffer::build(AggregateId(0), &cloned));
    });

    println!("trickle(insert+delete) {trickle:?} vs refold {refold:?}");
    #[cfg(not(debug_assertions))]
    assert!(
        refold >= trickle * 10,
        "delta-fold must beat the full re-fold ≥10×: trickle {trickle:?}, refold {refold:?}"
    );
}

#[test]
#[ignore = "throughput smoke; run with cargo test --release -- --ignored"]
fn shared_pool_trickle_flush_no_worse_than_spawned_workers_on_1k_groups() {
    // The chatty-caller case the shared executor exists for: a trickle
    // batch touching 8 live 1 000-member groups per flush. The baseline
    // re-creates the flush pool every apply — the spawn/join cost
    // profile of the old per-flush `std::thread::scope` workers. The
    // persistent pool must be no worse (in practice it wins by the
    // whole spawn/join cost; the 1.5× margin only absorbs CI jitter).
    //
    // The `simulation_throughput` bench (crates/bench) times this same
    // churn scenario; if the workload shape changes here, change it
    // there too so the CI assertion and the bench numbers agree.
    const GROUPS: u64 = 8;
    const MEMBERS: u64 = 1_000;
    const WIDTH: usize = 4;
    let member = |id: u64, g: u64| {
        FlexOffer::builder(id, 1)
            .earliest_start(TimeSlot(10 + (g * 100) as i64))
            .time_flexibility(8)
            .profile(Profile::uniform(4, EnergyRange::new(0.5, 2.0).unwrap()))
            .build()
            .unwrap()
    };
    let seeded = || {
        let mut p = AggregationPipeline::new(AggregationParams::p0(), None);
        p.apply(
            (0..GROUPS)
                .flat_map(|g| {
                    (0..MEMBERS).map(move |k| FlexOfferUpdate::Insert(member(g * 1_000_000 + k, g)))
                })
                .collect(),
        );
        assert_eq!(p.aggregate_count(), GROUPS as usize);
        p
    };
    // One churn round: a fresh member into every group, last round's
    // extra back out — each flush fans out across all 8 groups.
    let churn = |p: &mut AggregationPipeline, i: u64| {
        let mut batch = Vec::with_capacity(2 * GROUPS as usize);
        for g in 0..GROUPS {
            let base = g * 1_000_000 + 500_000;
            if i > 0 {
                batch.push(FlexOfferUpdate::Delete(mirabel_core::FlexOfferId(
                    base + i - 1,
                )));
            }
            batch.push(FlexOfferUpdate::Insert(member(base + i, g)));
        }
        std::hint::black_box(p.apply(batch).len());
    };

    let mut shared = seeded();
    shared.set_flush_pool(Pool::new(WIDTH));
    let mut i = 0u64;
    let pooled = median_time(64, || {
        churn(&mut shared, i);
        i += 1;
    });

    let mut respawned = seeded();
    let mut j = 0u64;
    let spawned = median_time(64, || {
        respawned.set_flush_pool(Pool::new(WIDTH));
        churn(&mut respawned, j);
        j += 1;
    });

    println!("trickle flush: shared pool {pooled:?} vs per-flush spawn {spawned:?}");
    #[cfg(not(debug_assertions))]
    assert!(
        pooled <= spawned + spawned / 2,
        "persistent pool must not lose to per-flush worker spawning: \
         pooled {pooled:?}, spawned {spawned:?}"
    );
}
