//! Delta-fold correctness: replaying random insert/delete/re-insert
//! sequences through the incremental pipeline must leave exactly the
//! aggregates a from-scratch rebuild of the surviving offer set
//! produces — member sets identical, folded bounds within float
//! tolerance — and the shard-parallel flush must emit the same update
//! stream for any thread count.

use mirabel_aggregate::{
    AggregatedFlexOffer, AggregationParams, AggregationPipeline, FlexOfferUpdate,
};
use mirabel_core::{EnergyRange, FlexOffer, FlexOfferGenerator, FlexOfferId, Profile, TimeSlot};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn offer(id: u64, es: i64, tf: u32, dur: u32, lo: f64, width: f64) -> FlexOffer {
    FlexOffer::builder(id, 1)
        .earliest_start(TimeSlot(es))
        .time_flexibility(tf)
        .profile(Profile::uniform(
            dur,
            EnergyRange::new(lo, lo + width).unwrap(),
        ))
        .build()
        .unwrap()
}

/// Index the current aggregates by their (sorted) member-id sets.
/// Aggregate ids differ between pipelines with different histories, but
/// with the bin-packer disabled the *membership partition* is a pure
/// function of the surviving offer set, so keying on it aligns the two.
fn by_members(p: &AggregationPipeline) -> BTreeMap<Vec<FlexOfferId>, AggregatedFlexOffer> {
    p.aggregates()
        .map(|a| (a.member_ids.to_vec(), a.clone()))
        .collect()
}

fn assert_aggregates_match(incremental: &AggregationPipeline, scratch: &AggregationPipeline) {
    let inc = by_members(incremental);
    let scr = by_members(scratch);
    assert_eq!(
        inc.keys().collect::<Vec<_>>(),
        scr.keys().collect::<Vec<_>>(),
        "member-set partitions differ"
    );
    for (members, a) in &inc {
        let b = &scr[members];
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.earliest_start, b.earliest_start);
        assert_eq!(a.latest_start, b.latest_start);
        assert_eq!(a.assignment_before, b.assignment_before);
        assert_eq!(a.duration(), b.duration());
        for (k, (x, y)) in a
            .profile
            .slot_ranges()
            .zip(b.profile.slot_ranges())
            .enumerate()
        {
            let tol = 1e-6 * y.max().kwh().abs().max(1.0);
            assert!(
                (x.min() - y.min()).kwh().abs() <= tol && (x.max() - y.max()).kwh().abs() <= tol,
                "slot {k} of {members:?}: delta {x} vs scratch {y}"
            );
        }
        let tol = 1e-6 * b.unit_price.eur().abs().max(1.0);
        assert!((a.unit_price.eur() - b.unit_price.eur()).abs() <= tol);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random insert/delete/re-insert sequences: after every batch the
    /// delta-folded pipeline equals a from-scratch rebuild of the
    /// surviving offer set.
    #[test]
    fn delta_fold_equals_from_scratch(
        ops in proptest::collection::vec(
            // (id, earliest start, time flexibility, duration, lo, width, insert?)
            (0u64..20, 0i64..40, 0u32..12, 1u32..5, 0.0f64..3.0, 0.0f64..2.0, any::<bool>()),
            1..60,
        ),
        sat in 0u32..6,
        tft in 0u32..6,
        batch in 1usize..8,
    ) {
        let params = AggregationParams::p3(sat, tft);
        let mut incremental = AggregationPipeline::new(params, None);
        let mut live: BTreeMap<u64, FlexOffer> = BTreeMap::new();

        for chunk in ops.chunks(batch) {
            let mut updates = Vec::new();
            for &(id, es, tf, dur, lo, w, insert) in chunk {
                if insert {
                    let o = offer(id, es, tf, dur, lo, w);
                    live.insert(id, o.clone());
                    updates.push(FlexOfferUpdate::Insert(o));
                } else {
                    live.remove(&id);
                    updates.push(FlexOfferUpdate::Delete(FlexOfferId(id)));
                }
            }
            incremental.apply(updates);
        }

        let scratch = AggregationPipeline::from_scratch(params, None, live.values().cloned());
        prop_assert_eq!(incremental.report().offer_count, live.len());
        assert_aggregates_match(&incremental, &scratch);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The bin-packed pipeline under the same random churn: bin
    /// assignments are history-dependent, so instead of comparing the
    /// partition against a from-scratch build, assert the structural
    /// invariants — no offer lost, caps respected, and every aggregate's
    /// delta-folded bounds exactly match a reference fold of its
    /// resolved members. Batches with several same-bin deletes are the
    /// regression surface here (the BRP batches a whole round's deletes
    /// into one apply).
    #[test]
    fn binpacked_delta_fold_keeps_invariants(
        ops in proptest::collection::vec(
            (0u64..16, 0i64..20, 0u32..8, 1u32..4, 0.0f64..3.0, 0.0f64..2.0, any::<bool>()),
            1..60,
        ),
        cap in 1usize..5,
        batch in 1usize..10,
    ) {
        use mirabel_aggregate::{AggregatedFlexOffer as Agg, BinPackerConfig};
        use mirabel_core::AggregateId;
        let mut p = AggregationPipeline::new(
            AggregationParams::p3(4, 4),
            Some(BinPackerConfig::max_members(cap)),
        );
        let mut live: BTreeMap<u64, FlexOffer> = BTreeMap::new();
        for chunk in ops.chunks(batch) {
            let mut updates = Vec::new();
            for &(id, es, tf, dur, lo, w, insert) in chunk {
                if insert {
                    let o = offer(id, es, tf, dur, lo, w);
                    live.insert(id, o.clone());
                    updates.push(FlexOfferUpdate::Insert(o));
                } else {
                    live.remove(&id);
                    updates.push(FlexOfferUpdate::Delete(FlexOfferId(id)));
                }
            }
            p.apply(updates);
        }
        prop_assert_eq!(p.report().offer_count, live.len());
        let mut seen: Vec<u64> = Vec::new();
        for a in p.aggregates() {
            prop_assert!(a.member_count() <= cap, "cap {} exceeded", cap);
            seen.extend(a.member_ids.iter().map(|id| id.value()));
            // Delta-folded bounds equal a reference fold of the members.
            let members: Vec<FlexOffer> = a
                .member_ids
                .iter()
                .map(|id| p.offer(id).expect("member in slab").clone())
                .collect();
            let reference = Agg::build(AggregateId(a.id.value()), &members);
            prop_assert_eq!(a.earliest_start, reference.earliest_start);
            prop_assert_eq!(a.latest_start, reference.latest_start);
            for (x, y) in a.profile.slot_ranges().zip(reference.profile.slot_ranges()) {
                prop_assert!(
                    (x.min() - y.min()).kwh().abs() <= 1e-6
                        && (x.max() - y.max()).kwh().abs() <= 1e-6
                );
            }
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, live.keys().copied().collect::<Vec<u64>>());
    }
}

/// 1-thread and N-thread flushes must emit byte-identical update
/// streams (ids included) and leave identical aggregate state: the
/// shard-parallel fold merges in sorted sub-group order and allocates
/// fresh aggregate ids during the merge, never on the workers.
#[test]
fn parallel_flush_is_deterministic() {
    let offers: Vec<FlexOffer> = FlexOfferGenerator::with_seed(23).take(3000).collect();
    let run = |threads: usize| {
        let mut p = AggregationPipeline::new(AggregationParams::p3(8, 8), None);
        p.set_flush_threads(threads);
        let mut streams = Vec::new();
        // Insert in batches, then delete a third, then re-insert some
        // with mutated attributes.
        for chunk in offers.chunks(400) {
            streams.push(p.apply(chunk.iter().cloned().map(FlexOfferUpdate::Insert).collect()));
        }
        streams.push(
            p.apply(
                offers
                    .iter()
                    .step_by(3)
                    .map(|o| FlexOfferUpdate::Delete(o.id()))
                    .collect(),
            ),
        );
        streams.push(
            p.apply(
                offers
                    .iter()
                    .step_by(7)
                    .map(|o| {
                        let mutated = FlexOffer::builder(o.id().value(), 1)
                            .kind(o.kind())
                            .earliest_start(o.earliest_start() + 2u32)
                            .time_flexibility(o.time_flexibility())
                            .profile(o.profile().clone())
                            .unit_price(o.unit_price())
                            .build()
                            .unwrap();
                        FlexOfferUpdate::Insert(mutated)
                    })
                    .collect(),
            ),
        );
        let finals: Vec<AggregatedFlexOffer> = p.aggregates().cloned().collect();
        (streams, finals)
    };
    let single = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            single,
            run(threads),
            "thread count {threads} changed the stream"
        );
    }
}
