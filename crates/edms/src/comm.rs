//! The Communication component: an in-process network between nodes with
//! failure injection.
//!
//! The paper's data-management challenges include "managing very
//! large-scale wide-area distributed systems, providing high availability
//! and fault tolerance" — and its answer is graceful degradation: lost
//! messages only mean flexibilities time out and prosumers fall back to
//! the open contract. The [`FailureModel`] lets tests and the simulation
//! inject exactly those losses and delays.

use crate::message::Envelope;
use mirabel_core::{NodeId, TimeSlot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};

/// Message-loss and delay injection.
///
/// Build with the fluent constructors instead of struct literals:
///
/// ```
/// use mirabel_edms::FailureModel;
///
/// let lossy = FailureModel::drop(0.4);
/// let slow = FailureModel::delay(3);
/// let both = FailureModel::drop(0.1).delayed_by(2);
/// assert_eq!(both.drop_probability, 0.1);
/// assert_eq!(both.delay_slots, 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FailureModel {
    /// Probability that a message is silently dropped.
    pub drop_probability: f64,
    /// Fixed delivery delay in slots.
    pub delay_slots: u32,
}

impl Default for FailureModel {
    fn default() -> FailureModel {
        FailureModel::reliable()
    }
}

impl FailureModel {
    /// Lossless, instant delivery.
    pub fn reliable() -> FailureModel {
        FailureModel {
            drop_probability: 0.0,
            delay_slots: 0,
        }
    }

    /// Drop each message with probability `p` (clamped to `[0, 1]` at
    /// send time).
    pub fn drop(p: f64) -> FailureModel {
        FailureModel {
            drop_probability: p,
            delay_slots: 0,
        }
    }

    /// Delay every delivered message by `slots`.
    pub fn delay(slots: u32) -> FailureModel {
        FailureModel::reliable().delayed_by(slots)
    }

    /// Builder step: add a fixed delivery delay to this model.
    pub fn delayed_by(mut self, slots: u32) -> FailureModel {
        self.delay_slots = slots;
        self
    }
}

/// Delivery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered into an inbox.
    pub delivered: u64,
    /// Messages dropped by failure injection.
    pub dropped: u64,
    /// Messages addressed to unregistered nodes.
    pub dead_lettered: u64,
}

/// The in-process message network.
#[derive(Debug)]
pub struct Network {
    /// Per-node inboxes, keyed in sorted `NodeId` order so any walk over
    /// the map (now or future) is deterministic across runs — `HashMap`
    /// iteration order would vary per process.
    inboxes: BTreeMap<NodeId, VecDeque<(TimeSlot, Envelope)>>,
    failure: FailureModel,
    rng: StdRng,
    stats: NetworkStats,
}

impl Network {
    /// Reliable network.
    pub fn reliable() -> Network {
        Network::new(FailureModel::reliable(), 0)
    }

    /// Network with the given failure model and RNG seed.
    pub fn new(failure: FailureModel, seed: u64) -> Network {
        Network {
            inboxes: BTreeMap::new(),
            failure,
            rng: StdRng::seed_from_u64(seed),
            stats: NetworkStats::default(),
        }
    }

    /// Register a node so it can receive messages.
    pub fn register(&mut self, node: NodeId) {
        self.inboxes.entry(node).or_default();
    }

    /// Send one message; it becomes visible to the recipient
    /// `delay_slots` after `sent_at` (or never, if dropped).
    pub fn send(&mut self, envelope: Envelope) {
        self.stats.sent += 1;
        if self.failure.drop_probability > 0.0
            && self
                .rng
                .gen_bool(self.failure.drop_probability.clamp(0.0, 1.0))
        {
            self.stats.dropped += 1;
            return;
        }
        let available = envelope.sent_at + self.failure.delay_slots;
        match self.inboxes.get_mut(&envelope.to) {
            Some(q) => {
                q.push_back((available, envelope));
                self.stats.delivered += 1;
            }
            None => {
                self.stats.dead_lettered += 1;
            }
        }
    }

    /// Send many messages.
    pub fn send_all(&mut self, envelopes: impl IntoIterator<Item = Envelope>) {
        for e in envelopes {
            self.send(e);
        }
    }

    /// Drain the messages available to `node` at time `now`.
    pub fn drain(&mut self, node: NodeId, now: TimeSlot) -> Vec<Envelope> {
        let Some(q) = self.inboxes.get_mut(&node) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut rest = VecDeque::new();
        while let Some((available, env)) = q.pop_front() {
            if available <= now {
                out.push(env);
            } else {
                rest.push_back((available, env));
            }
        }
        *q = rest;
        out
    }

    /// Number of undelivered messages queued for `node`.
    pub fn pending(&self, node: NodeId) -> usize {
        self.inboxes.get(&node).map_or(0, |q| q.len())
    }

    /// Delivery counters.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use mirabel_core::FlexOfferId;

    fn env(to: u64, at: i64) -> Envelope {
        Envelope::new(
            NodeId(0),
            NodeId(to),
            TimeSlot(at),
            Message::OfferRejected {
                offer: FlexOfferId(1),
            },
        )
    }

    #[test]
    fn reliable_delivery() {
        let mut n = Network::reliable();
        n.register(NodeId(1));
        n.send(env(1, 0));
        let got = n.drain(NodeId(1), TimeSlot(0));
        assert_eq!(got.len(), 1);
        assert_eq!(n.stats().delivered, 1);
        assert!(n.drain(NodeId(1), TimeSlot(0)).is_empty());
    }

    #[test]
    fn unregistered_recipient_dead_letters() {
        let mut n = Network::reliable();
        n.send(env(42, 0));
        assert_eq!(n.stats().dead_lettered, 1);
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let mut n = Network::new(FailureModel::drop(1.0), 1);
        n.register(NodeId(1));
        for _ in 0..10 {
            n.send(env(1, 0));
        }
        assert_eq!(n.stats().dropped, 10);
        assert!(n.drain(NodeId(1), TimeSlot(100)).is_empty());
    }

    #[test]
    fn partial_drop_rate() {
        let mut n = Network::new(FailureModel::drop(0.5), 7);
        n.register(NodeId(1));
        for _ in 0..200 {
            n.send(env(1, 0));
        }
        let s = n.stats();
        assert_eq!(s.dropped + s.delivered, 200);
        assert!(s.dropped > 50 && s.dropped < 150, "dropped {}", s.dropped);
    }

    #[test]
    fn delayed_delivery() {
        let mut n = Network::new(FailureModel::delay(3), 1);
        n.register(NodeId(1));
        n.send(env(1, 10));
        assert!(n.drain(NodeId(1), TimeSlot(12)).is_empty());
        assert_eq!(n.pending(NodeId(1)), 1);
        assert_eq!(n.drain(NodeId(1), TimeSlot(13)).len(), 1);
    }

    #[test]
    fn drain_preserves_undue_messages() {
        let mut n = Network::new(FailureModel::delay(5), 1);
        n.register(NodeId(1));
        n.send(env(1, 0)); // due at 5
        n.send(env(1, 10)); // due at 15
        assert_eq!(n.drain(NodeId(1), TimeSlot(5)).len(), 1);
        assert_eq!(n.pending(NodeId(1)), 1);
        assert_eq!(n.drain(NodeId(1), TimeSlot(15)).len(), 1);
    }
}
