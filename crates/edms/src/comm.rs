//! The Communication component: an in-process network between nodes with
//! failure injection.
//!
//! The paper's data-management challenges include "managing very
//! large-scale wide-area distributed systems, providing high availability
//! and fault tolerance" — and its answer is graceful degradation: lost
//! messages only mean flexibilities time out and prosumers fall back to
//! the open contract. The [`FailureModel`] lets tests and the simulation
//! inject exactly those losses and delays.

use crate::message::Envelope;
use mirabel_core::{NodeId, TimeSlot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Message-loss and delay injection.
///
/// Build with the fluent constructors instead of struct literals:
///
/// ```
/// use mirabel_edms::FailureModel;
///
/// let lossy = FailureModel::drop(0.4);
/// let slow = FailureModel::delay(3);
/// let both = FailureModel::drop(0.1).delayed_by(2);
/// assert_eq!(both.drop_probability, 0.1);
/// assert_eq!(both.delay_slots, 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FailureModel {
    /// Probability that a message is silently dropped.
    pub drop_probability: f64,
    /// Fixed delivery delay in slots.
    pub delay_slots: u32,
}

impl Default for FailureModel {
    fn default() -> FailureModel {
        FailureModel::reliable()
    }
}

impl FailureModel {
    /// Lossless, instant delivery.
    pub fn reliable() -> FailureModel {
        FailureModel {
            drop_probability: 0.0,
            delay_slots: 0,
        }
    }

    /// Drop each message with probability `p` (clamped to `[0, 1]` at
    /// send time).
    pub fn drop(p: f64) -> FailureModel {
        FailureModel {
            drop_probability: p,
            delay_slots: 0,
        }
    }

    /// Delay every delivered message by `slots`.
    pub fn delay(slots: u32) -> FailureModel {
        FailureModel::reliable().delayed_by(slots)
    }

    /// Builder step: add a fixed delivery delay to this model.
    pub fn delayed_by(mut self, slots: u32) -> FailureModel {
        self.delay_slots = slots;
        self
    }
}

/// Delivery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered into an inbox.
    pub delivered: u64,
    /// Messages dropped by failure injection.
    pub dropped: u64,
    /// Messages addressed to unregistered nodes.
    pub dead_lettered: u64,
}

/// One queued message with its delivery metadata.
#[derive(Debug)]
struct InFlight {
    /// First slot at which the message can be drained.
    available: TimeSlot,
    /// Global send sequence number — the tie-breaker that makes
    /// delayed-delivery ordering total.
    seq: u64,
    envelope: Envelope,
}

/// The in-process message network.
#[derive(Debug)]
pub struct Network {
    /// Per-node inboxes, keyed in sorted `NodeId` order so any walk over
    /// the map (now or future) is deterministic across runs — `HashMap`
    /// iteration order would vary per process.
    inboxes: BTreeMap<NodeId, Vec<InFlight>>,
    failure: FailureModel,
    rng: StdRng,
    stats: NetworkStats,
    next_seq: u64,
}

impl Network {
    /// Reliable network.
    pub fn reliable() -> Network {
        Network::new(FailureModel::reliable(), 0)
    }

    /// Network with the given failure model and RNG seed.
    pub fn new(failure: FailureModel, seed: u64) -> Network {
        Network {
            inboxes: BTreeMap::new(),
            failure,
            rng: StdRng::seed_from_u64(seed),
            stats: NetworkStats::default(),
            next_seq: 0,
        }
    }

    /// Register a node so it can receive messages.
    pub fn register(&mut self, node: NodeId) {
        self.inboxes.entry(node).or_default();
    }

    /// Route one message into the network; it becomes visible to the
    /// recipient `delay_slots` after `sent_at` (or never, if dropped).
    pub fn route(&mut self, envelope: Envelope) {
        self.stats.sent += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.failure.drop_probability > 0.0
            && self
                .rng
                .gen_bool(self.failure.drop_probability.clamp(0.0, 1.0))
        {
            self.stats.dropped += 1;
            return;
        }
        let available = envelope.sent_at + self.failure.delay_slots;
        match self.inboxes.get_mut(&envelope.to) {
            Some(q) => {
                q.push(InFlight {
                    available,
                    seq,
                    envelope,
                });
                self.stats.delivered += 1;
            }
            None => {
                self.stats.dead_lettered += 1;
            }
        }
    }

    /// Route many messages.
    pub fn send_all(&mut self, envelopes: impl IntoIterator<Item = Envelope>) {
        for e in envelopes {
            self.route(e);
        }
    }

    /// Drain the messages available to `node` at time `now`.
    ///
    /// Delivery order within one drain is explicitly deterministic:
    /// messages are handed over sorted by `(sent_at, from, seq)`. Under
    /// a delay model, several sends can mature in the same slot — the
    /// sort guarantees their relative order never depends on inbox
    /// insertion history.
    pub fn drain(&mut self, node: NodeId, now: TimeSlot) -> Vec<Envelope> {
        let Some(q) = self.inboxes.get_mut(&node) else {
            return Vec::new();
        };
        let (mut due, rest): (Vec<InFlight>, Vec<InFlight>) = std::mem::take(q)
            .into_iter()
            .partition(|m| m.available <= now);
        *q = rest;
        due.sort_by_key(|m| (m.envelope.sent_at, m.envelope.from, m.seq));
        due.into_iter().map(|m| m.envelope).collect()
    }

    /// Number of undelivered messages queued for `node`.
    pub fn pending(&self, node: NodeId) -> usize {
        self.inboxes.get(&node).map_or(0, |q| q.len())
    }

    /// Delivery counters.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use mirabel_core::FlexOfferId;

    fn env(to: u64, at: i64) -> Envelope {
        Envelope::new(
            NodeId(0),
            NodeId(to),
            TimeSlot(at),
            Message::OfferRejected {
                offer: FlexOfferId(1),
            },
        )
    }

    #[test]
    fn reliable_delivery() {
        let mut n = Network::reliable();
        n.register(NodeId(1));
        n.route(env(1, 0));
        let got = n.drain(NodeId(1), TimeSlot(0));
        assert_eq!(got.len(), 1);
        assert_eq!(n.stats().delivered, 1);
        assert!(n.drain(NodeId(1), TimeSlot(0)).is_empty());
    }

    #[test]
    fn unregistered_recipient_dead_letters() {
        let mut n = Network::reliable();
        n.route(env(42, 0));
        assert_eq!(n.stats().dead_lettered, 1);
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let mut n = Network::new(FailureModel::drop(1.0), 1);
        n.register(NodeId(1));
        for _ in 0..10 {
            n.route(env(1, 0));
        }
        assert_eq!(n.stats().dropped, 10);
        assert!(n.drain(NodeId(1), TimeSlot(100)).is_empty());
    }

    #[test]
    fn partial_drop_rate() {
        let mut n = Network::new(FailureModel::drop(0.5), 7);
        n.register(NodeId(1));
        for _ in 0..200 {
            n.route(env(1, 0));
        }
        let s = n.stats();
        assert_eq!(s.dropped + s.delivered, 200);
        assert!(s.dropped > 50 && s.dropped < 150, "dropped {}", s.dropped);
    }

    #[test]
    fn delayed_delivery() {
        let mut n = Network::new(FailureModel::delay(3), 1);
        n.register(NodeId(1));
        n.route(env(1, 10));
        assert!(n.drain(NodeId(1), TimeSlot(12)).is_empty());
        assert_eq!(n.pending(NodeId(1)), 1);
        assert_eq!(n.drain(NodeId(1), TimeSlot(13)).len(), 1);
    }

    #[test]
    fn delayed_delivery_order_is_sent_at_from_seq() {
        // Three messages from different senders, sent out of (sent_at,
        // from) order, all maturing before the same drain: the handover
        // must sort by (sent_at, from, seq) — never by insertion order.
        let mut n = Network::new(FailureModel::delay(5), 1);
        n.register(NodeId(1));
        let from = |f: u64, at: i64| {
            Envelope::new(
                NodeId(f),
                NodeId(1),
                TimeSlot(at),
                Message::OfferRejected {
                    offer: FlexOfferId(f),
                },
            )
        };
        n.route(from(9, 2));
        n.route(from(5, 1));
        n.route(from(5, 1)); // same (sent_at, from): seq breaks the tie
        n.route(from(3, 1));
        let got = n.drain(NodeId(1), TimeSlot(100));
        let order: Vec<(i64, u64)> = got
            .iter()
            .map(|e| (e.sent_at.index(), e.from.value()))
            .collect();
        assert_eq!(order, vec![(1, 3), (1, 5), (1, 5), (2, 9)]);
        // Replaying the same sequence yields the identical order.
        let mut m = Network::new(FailureModel::delay(5), 1);
        m.register(NodeId(1));
        m.route(from(9, 2));
        m.route(from(5, 1));
        m.route(from(5, 1));
        m.route(from(3, 1));
        assert_eq!(m.drain(NodeId(1), TimeSlot(100)), got);
    }

    #[test]
    fn drain_preserves_undue_messages() {
        let mut n = Network::new(FailureModel::delay(5), 1);
        n.register(NodeId(1));
        n.route(env(1, 0)); // due at 5
        n.route(env(1, 10)); // due at 15
        assert_eq!(n.drain(NodeId(1), TimeSlot(5)).len(), 1);
        assert_eq!(n.pending(NodeId(1)), 1);
        assert_eq!(n.drain(NodeId(1), TimeSlot(15)).len(), 1);
    }
}
