//! The Communication component: an in-process network between nodes with
//! failure injection, chaos schedules, and a self-healing wire.
//!
//! The paper's data-management challenges include "managing very
//! large-scale wide-area distributed systems, providing high availability
//! and fault tolerance" — and its answer is graceful degradation: lost
//! messages only mean flexibilities time out and prosumers fall back to
//! the open contract. This module supplies both halves of that story:
//!
//! * **Failure injection.** A [`FailureModel`] drops, delays, jitters
//!   (reorders), and duplicates messages; a [`ChaosPlan`] schedules
//!   time-phased models and per-link partitions (loss storms, delay
//!   bursts, partition-then-heal) that [`Network::advance`] applies as
//!   simulated time passes.
//! * **The sequenced wire.** [`Network::route`] stamps every envelope
//!   with a per-`(from, to)` stream sequence number *before* rolling for
//!   failures, so a dropped envelope still consumes its slot and the
//!   receiver can detect the gap (see [`crate::wire`] for the
//!   receiver-side guards and the resync protocol they drive).
//! * **Dead letters.** Envelopes that cannot be delivered — recipient
//!   unregistered, or the link partitioned — are retained in a
//!   [`DeadLetterQueue`] and replayed when the partition heals or the
//!   node (re-)registers, rather than silently discarded. Randomly
//!   *dropped* envelopes are **not** retained: healing those is the
//!   resync protocol's job, and a real lossy link keeps no copies.
//!
//! Delivery accounting distinguishes [`NetworkStats::enqueued`] (the
//! envelope entered an inbox at route time) from
//! [`NetworkStats::delivered`] (the recipient actually drained it), so
//! chaos reports don't overcount messages still stuck behind a partition
//! or a delay at the end of a run.

use crate::message::Envelope;
use mirabel_core::codec::Wire;
use mirabel_core::{NodeId, RegionId, TimeSlot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::BuildHasherDefault;

/// Multiply-fold hasher for the network's internal integer-keyed maps
/// (interned link keys, per-sender guard tables). The keys are node ids
/// the simulation itself assigns — SipHash's flood resistance buys
/// nothing here, and its per-probe cost lands on every routed message.
#[derive(Debug, Default)]
pub(crate) struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the integer keys below).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = splitmix(n);
    }

    fn write_u128(&mut self, n: u128) {
        self.0 = splitmix((n as u64).rotate_left(32) ^ (n >> 64) as u64);
    }
}

/// The splitmix64 finalizer — full-avalanche, so `HashMap`'s low-bit
/// bucket masking sees well-mixed values. Also the federation's region
/// seed derivation primitive (each region's RNG stream is a splitmix of
/// the base seed and the region id).
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash-map state for maps keyed by simulation-assigned ids.
pub(crate) type IdHashBuilder = BuildHasherDefault<IdHasher>;

/// Message-loss, delay, jitter, and duplication injection.
///
/// Build with the fluent constructors instead of struct literals:
///
/// ```
/// use mirabel_edms::FailureModel;
///
/// let lossy = FailureModel::drop(0.4);
/// let slow = FailureModel::delay(3);
/// let chaotic = FailureModel::drop(0.1).delayed_by(2).jittered_by(4).duplicated(0.05);
/// assert_eq!(chaotic.drop_probability, 0.1);
/// assert_eq!(chaotic.delay_slots, 2);
/// assert_eq!(chaotic.jitter_slots, 4);
/// assert_eq!(chaotic.duplicate_probability, 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Probability that a message is silently dropped.
    pub drop_probability: f64,
    /// Fixed delivery delay in slots.
    pub delay_slots: u32,
    /// Random *extra* delay in `0..=jitter_slots`, rolled per envelope.
    /// Non-zero jitter reorders messages across drains: a later send can
    /// mature before an earlier one.
    pub jitter_slots: u32,
    /// Probability that a delivered message is enqueued twice (same
    /// stream sequence number — a true network duplicate).
    pub duplicate_probability: f64,
}

impl Default for FailureModel {
    fn default() -> FailureModel {
        FailureModel::reliable()
    }
}

impl FailureModel {
    /// Lossless, instant, exactly-once delivery.
    pub fn reliable() -> FailureModel {
        FailureModel {
            drop_probability: 0.0,
            delay_slots: 0,
            jitter_slots: 0,
            duplicate_probability: 0.0,
        }
    }

    /// Drop each message with probability `p` (clamped to `[0, 1]` at
    /// send time).
    pub fn drop(p: f64) -> FailureModel {
        FailureModel {
            drop_probability: p,
            ..FailureModel::reliable()
        }
    }

    /// Delay every delivered message by `slots`.
    pub fn delay(slots: u32) -> FailureModel {
        FailureModel::reliable().delayed_by(slots)
    }

    /// Builder step: add a fixed delivery delay to this model.
    pub fn delayed_by(mut self, slots: u32) -> FailureModel {
        self.delay_slots = slots;
        self
    }

    /// Builder step: add up to `slots` of random extra delay (reorder).
    pub fn jittered_by(mut self, slots: u32) -> FailureModel {
        self.jitter_slots = slots;
        self
    }

    /// Builder step: duplicate each delivered message with probability
    /// `p`.
    pub fn duplicated(mut self, p: f64) -> FailureModel {
        self.duplicate_probability = p;
        self
    }

    /// Whether this model never consults the RNG (the reliable fast
    /// path).
    fn is_deterministic(&self) -> bool {
        self.drop_probability <= 0.0 && self.jitter_slots == 0 && self.duplicate_probability <= 0.0
    }
}

/// One timed phase of a [`ChaosPlan`]: while `start <= now < end`, the
/// network injects `failure` and severs every link in `partitions`
/// (bidirectionally); at `start` the harness crash-restarts every node
/// in `crashes`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPhase {
    /// First slot (inclusive) at which the phase is active.
    pub start: TimeSlot,
    /// First slot after the phase (exclusive).
    pub end: TimeSlot,
    /// Failure model injected while the phase is active.
    pub failure: FailureModel,
    /// Node pairs whose links (both directions) are cut while the phase
    /// is active. Envelopes routed across a cut link are dead-lettered
    /// and replayed when the partition heals.
    pub partitions: Vec<(NodeId, NodeId)>,
    /// Nodes whose in-memory state is destroyed when the phase begins.
    /// The network itself ignores this field — it is a schedule for the
    /// simulation harness, which deregisters the node, rebuilds it from
    /// its WAL (snapshot + tail replay) and re-registers it (replaying
    /// dead letters accumulated while it was down).
    pub crashes: Vec<NodeId>,
}

impl ChaosPhase {
    /// A phase injecting `failure` on every link over `[start, end)`.
    pub fn new(start: TimeSlot, end: TimeSlot, failure: FailureModel) -> ChaosPhase {
        ChaosPhase {
            start,
            end,
            failure,
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Builder step: also cut these links while the phase is active.
    pub fn with_partitions(mut self, partitions: Vec<(NodeId, NodeId)>) -> ChaosPhase {
        self.partitions = partitions;
        self
    }

    /// Builder step: also crash-restart these nodes when the phase
    /// begins.
    pub fn with_crashes(mut self, crashes: Vec<NodeId>) -> ChaosPhase {
        self.crashes = crashes;
        self
    }
}

/// A time-phased schedule of failure models and partitions. Outside any
/// phase the network falls back to its baseline model (reliable unless
/// overridden). Phases are matched in order; the first phase containing
/// `now` wins.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosPlan {
    /// The scheduled phases.
    pub phases: Vec<ChaosPhase>,
    /// Federation scoping: `None` storms every region the plan is handed
    /// to (and the whole network in a single-hierarchy run); `Some(r)`
    /// restricts the storm to region `r` — the federation gives every
    /// other region a [`ChaosPlan::reliable`] plan instead, which is how
    /// fault isolation between regions is proven.
    pub region: Option<RegionId>,
}

impl ChaosPlan {
    /// No chaos: the network stays on its baseline model throughout.
    pub fn reliable() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Builder step: append a phase.
    pub fn phase(mut self, phase: ChaosPhase) -> ChaosPlan {
        self.phases.push(phase);
        self
    }

    /// Builder step: scope the whole plan to one federation region.
    pub fn in_region(mut self, region: RegionId) -> ChaosPlan {
        self.region = Some(region);
        self
    }

    /// Whether this plan storms the given region (unscoped plans storm
    /// every region).
    pub fn applies_to(&self, region: RegionId) -> bool {
        self.region.is_none_or(|r| r == region)
    }

    /// The phase active at `now`, if any.
    fn active(&self, now: TimeSlot) -> Option<&ChaosPhase> {
        self.phases.iter().find(|p| p.start <= now && now < p.end)
    }

    /// Whether the plan injects any failures at all.
    pub fn is_reliable(&self) -> bool {
        self.phases.is_empty()
    }

    /// Nodes scheduled to crash in `[from, to)`: every node listed by a
    /// phase whose window *starts* in that range, phase order preserved,
    /// duplicates removed. The simulation queries this once per cycle
    /// and executes the crash-restarts before pumping the round.
    pub fn crashes_between(&self, from: TimeSlot, to: TimeSlot) -> Vec<NodeId> {
        let mut out = Vec::new();
        for phase in &self.phases {
            if from <= phase.start && phase.start < to {
                for &node in &phase.crashes {
                    if !out.contains(&node) {
                        out.push(node);
                    }
                }
            }
        }
        out
    }
}

/// Per-link delivery counters (also the shape of the global roll-up).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Envelopes handed to the network.
    pub sent: u64,
    /// Envelopes that entered an inbox at route time.
    pub enqueued: u64,
    /// Envelopes actually drained by their recipient.
    pub delivered: u64,
    /// Envelopes dropped by failure injection.
    pub dropped: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Envelopes retained in the dead-letter queue (recipient
    /// unregistered or link partitioned).
    pub dead_lettered: u64,
    /// Dead letters re-enqueued after a partition healed or the node
    /// (re-)registered.
    pub replayed: u64,
    /// Dead letters evicted (oldest first) because their link exceeded
    /// the queue's per-link retention cap — bounded memory under a
    /// never-healing partition costs the oldest retained envelopes.
    pub dropped_dead_letters: u64,
    /// Encoded wire bytes offered to the network (counted at route time,
    /// before failure injection). Zero unless byte metering is enabled
    /// ([`Network::set_metering`]) — metering encodes every envelope and
    /// is off by default to keep the reliable hot path allocation-lean.
    /// The federation uses it to prove cross-border exchange traffic is
    /// a vanishing fraction of intra-region traffic.
    pub bytes_sent: u64,
}

/// Why an envelope landed in the [`DeadLetterQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadLetterReason {
    /// The recipient has no inbox (never registered, or deregistered
    /// with messages still queued).
    Unregistered,
    /// The `(from, to)` link was cut by a partition.
    Partitioned,
}

/// One retained undeliverable envelope.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    /// The envelope, stream sequence number already stamped.
    pub envelope: Envelope,
    /// Why it could not be delivered.
    pub reason: DeadLetterReason,
    /// Interned index of the `(from, to)` link, so replay updates the
    /// link's stats without a map lookup.
    link: u32,
}

/// Retention queue for undeliverable envelopes, replayed on recovery
/// ([`Network::advance`] after a partition heals, [`Network::register`]
/// when a node comes back).
///
/// Retention is **bounded per link**: once a `(from, to)` link holds
/// [`DeadLetterQueue::per_link_cap`] letters, pushing another evicts
/// that link's oldest (counted in
/// [`NetworkStats::dropped_dead_letters`]). A partition that never
/// heals therefore costs bounded memory, and the freshest traffic —
/// the part a resync snapshot cannot reconstruct from — is what
/// survives to replay.
#[derive(Debug)]
pub struct DeadLetterQueue {
    letters: Vec<DeadLetter>,
    per_link_cap: usize,
}

impl Default for DeadLetterQueue {
    fn default() -> DeadLetterQueue {
        DeadLetterQueue {
            letters: Vec::new(),
            per_link_cap: DeadLetterQueue::DEFAULT_PER_LINK_CAP,
        }
    }
}

impl DeadLetterQueue {
    /// Default per-link retention bound.
    pub const DEFAULT_PER_LINK_CAP: usize = 1024;

    /// Retained envelopes, oldest first.
    pub fn letters(&self) -> &[DeadLetter] {
        &self.letters
    }

    /// Number of retained envelopes.
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }

    /// The per-link retention bound.
    pub fn per_link_cap(&self) -> usize {
        self.per_link_cap
    }

    /// Retain a letter; if its link is at the cap, evict and return that
    /// link's oldest letter (the caller accounts the drop).
    fn push(&mut self, letter: DeadLetter) -> Option<DeadLetter> {
        let link = letter.link;
        let evicted = if self.letters.iter().filter(|l| l.link == link).count() >= self.per_link_cap
        {
            let oldest = self
                .letters
                .iter()
                .position(|l| l.link == link)
                .expect("cap >= 1, so at least one letter on the link");
            Some(self.letters.remove(oldest))
        } else {
            None
        };
        self.letters.push(letter);
        evicted
    }

    /// Remove and return every letter `pred` selects, preserving order.
    fn take_if(&mut self, mut pred: impl FnMut(&DeadLetter) -> bool) -> Vec<DeadLetter> {
        let (taken, kept) = std::mem::take(&mut self.letters)
            .into_iter()
            .partition(|l| pred(l));
        self.letters = kept;
        taken
    }
}

/// One queued message with its delivery metadata.
#[derive(Debug)]
struct InFlight {
    /// First slot at which the message can be drained.
    available: TimeSlot,
    /// Global arrival number — the tie-breaker that makes
    /// delayed-delivery ordering total (duplicates get fresh numbers;
    /// the per-link *stream* number lives in `envelope.seq`).
    arrival: u64,
    /// Interned index of the `(from, to)` link, so drain-time stats
    /// need no map lookup.
    link: u32,
    envelope: Envelope,
}

/// Per-link bookkeeping: the stream sequence counter and the link's
/// delivery stats.
#[derive(Debug, Default)]
struct LinkState {
    next_seq: u64,
    stats: NetworkStats,
}

/// The in-process message network.
#[derive(Debug)]
pub struct Network {
    /// Per-node inboxes, keyed in sorted `NodeId` order so any walk over
    /// the map (now or future) is deterministic across runs — `HashMap`
    /// iteration order would vary per process.
    inboxes: BTreeMap<NodeId, Vec<InFlight>>,
    /// Per-`(from, to)` link interning, keyed by the packed pair. The
    /// hot paths resolve a link to its dense index exactly once per
    /// [`Network::route`]; everything downstream (enqueue, drain,
    /// dead-letter replay) carries the index and touches `link_states`
    /// by position — the sequenced wire's only structural cost on the
    /// reliable path is this one lookup. A `HashMap` is safe here:
    /// the map is never iterated, only probed by key, so its
    /// process-random order can never leak into results.
    links: HashMap<u128, u32, IdHashBuilder>,
    /// Stream counters and stats, indexed by interned link id.
    link_states: Vec<LinkState>,
    /// Baseline model, active outside any chaos phase.
    baseline: FailureModel,
    /// The model currently in force (baseline or an active phase's).
    failure: FailureModel,
    /// Time-phased chaos schedule applied by [`Network::advance`].
    chaos: ChaosPlan,
    /// Links cut by explicit [`Network::cut`] calls (stored both ways).
    manual_cuts: BTreeSet<(NodeId, NodeId)>,
    /// Links cut by the currently active chaos phase (stored both ways).
    phase_cuts: BTreeSet<(NodeId, NodeId)>,
    dead_letters: DeadLetterQueue,
    rng: StdRng,
    stats: NetworkStats,
    next_arrival: u64,
    /// Reusable [`Network::drain`] partition buffers (due / not-yet-due).
    /// Drain runs once per node per wave — at 10k+ prosumers that is
    /// tens of thousands of calls per cycle, and allocating two fresh
    /// partition vectors each time dominated the pump's flat cost. The
    /// buffers swap with the drained inbox, so after warm-up the whole
    /// partition-and-sort is allocation-free.
    drain_due: Vec<InFlight>,
    drain_keep: Vec<InFlight>,
    /// The federation region this network belongs to; stamped onto every
    /// routed envelope. [`RegionId::DEFAULT`] for single-hierarchy runs.
    region: RegionId,
    /// Whether [`Network::route`] encodes each envelope to count its
    /// wire bytes ([`NetworkStats::bytes_sent`]). Off by default.
    metering: bool,
    /// Reusable encode scratch for metering, so a metered network costs
    /// one encode per envelope but no per-envelope allocation.
    meter_buf: Vec<u8>,
}

impl Network {
    /// Reliable network.
    pub fn reliable() -> Network {
        Network::new(FailureModel::reliable(), 0)
    }

    /// Network with the given baseline failure model and RNG seed.
    pub fn new(failure: FailureModel, seed: u64) -> Network {
        Network {
            inboxes: BTreeMap::new(),
            links: HashMap::default(),
            link_states: Vec::new(),
            baseline: failure,
            failure,
            chaos: ChaosPlan::reliable(),
            manual_cuts: BTreeSet::new(),
            phase_cuts: BTreeSet::new(),
            dead_letters: DeadLetterQueue::default(),
            rng: StdRng::seed_from_u64(seed),
            stats: NetworkStats::default(),
            next_arrival: 0,
            drain_due: Vec::new(),
            drain_keep: Vec::new(),
            region: RegionId::DEFAULT,
            metering: false,
            meter_buf: Vec::new(),
        }
    }

    /// Assign the network to a federation region: every envelope routed
    /// from here on is stamped with `region` (tenant-registry pattern),
    /// so it carries its tenant through the wire, the WAL and recovery.
    pub fn set_region(&mut self, region: RegionId) {
        self.region = region;
    }

    /// The federation region this network routes for.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Toggle wire-byte metering ([`NetworkStats::bytes_sent`]). Costs
    /// one codec encode per routed envelope while enabled.
    pub fn set_metering(&mut self, on: bool) {
        self.metering = on;
    }

    /// Install a time-phased chaos schedule; call [`Network::advance`]
    /// as simulated time passes to apply it.
    pub fn set_chaos(&mut self, plan: ChaosPlan) {
        self.chaos = plan;
    }

    /// Apply the chaos schedule for slot `now`: switch the active
    /// failure model, update phase partitions, and replay dead letters
    /// whose links have healed. Call once per simulation step (or
    /// whenever `now` advances).
    pub fn advance(&mut self, now: TimeSlot) {
        let (failure, cuts) = match self.chaos.active(now) {
            Some(phase) => {
                let mut cuts = BTreeSet::new();
                for &(a, b) in &phase.partitions {
                    cuts.insert((a, b));
                    cuts.insert((b, a));
                }
                (phase.failure, cuts)
            }
            None => (self.baseline, BTreeSet::new()),
        };
        self.failure = failure;
        self.phase_cuts = cuts;
        self.replay_healed(now);
    }

    /// Register a node so it can receive messages. Dead letters
    /// addressed to it are replayed into its fresh inbox (delivered from
    /// their original `sent_at`).
    pub fn register(&mut self, node: NodeId) {
        self.inboxes.entry(node).or_default();
        let letters = self
            .dead_letters
            .take_if(|l| l.reason == DeadLetterReason::Unregistered && l.envelope.to == node);
        for letter in letters {
            let available = letter.envelope.sent_at;
            self.replay(letter.envelope, available, letter.link);
        }
    }

    /// Remove a node from the network (prosumer churn, crash). Its
    /// queued in-flight messages move to the dead-letter queue and are
    /// replayed if it re-registers.
    pub fn deregister(&mut self, node: NodeId) {
        let Some(q) = self.inboxes.remove(&node) else {
            return;
        };
        for m in q {
            self.stats.dead_lettered += 1;
            self.link_states[m.link as usize].stats.dead_lettered += 1;
            self.dead_letter(DeadLetter {
                envelope: m.envelope,
                reason: DeadLetterReason::Unregistered,
                link: m.link,
            });
        }
    }

    /// Retain a dead letter, accounting the eviction if its link was at
    /// the retention cap.
    fn dead_letter(&mut self, letter: DeadLetter) {
        if let Some(evicted) = self.dead_letters.push(letter) {
            self.stats.dropped_dead_letters += 1;
            self.link_states[evicted.link as usize]
                .stats
                .dropped_dead_letters += 1;
        }
    }

    /// Override the dead-letter queue's per-link retention bound (0 is
    /// clamped to 1 — the queue always keeps a link's freshest letter).
    pub fn set_dead_letter_cap(&mut self, cap: usize) {
        self.dead_letters.per_link_cap = cap.max(1);
    }

    /// Whether `node` currently has an inbox.
    pub fn is_registered(&self, node: NodeId) -> bool {
        self.inboxes.contains_key(&node)
    }

    /// Manually cut the `a ↔ b` link (both directions) until
    /// [`Network::heal`].
    pub fn cut(&mut self, a: NodeId, b: NodeId) {
        self.manual_cuts.insert((a, b));
        self.manual_cuts.insert((b, a));
    }

    /// Heal a manual cut; retained envelopes replay on the next
    /// [`Network::advance`].
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.manual_cuts.remove(&(a, b));
        self.manual_cuts.remove(&(b, a));
    }

    fn is_cut(&self, from: NodeId, to: NodeId) -> bool {
        self.manual_cuts.contains(&(from, to)) || self.phase_cuts.contains(&(from, to))
    }

    /// Pack a directed link into the interning key.
    fn link_key(from: NodeId, to: NodeId) -> u128 {
        ((from.value() as u128) << 64) | to.value() as u128
    }

    /// Intern the `(from, to)` link, returning its dense index.
    fn link_idx(&mut self, from: NodeId, to: NodeId) -> u32 {
        let next = self.link_states.len() as u32;
        let idx = *self.links.entry(Self::link_key(from, to)).or_insert(next);
        if idx == next {
            self.link_states.push(LinkState::default());
        }
        idx
    }

    /// Route one message into the network; it becomes visible to the
    /// recipient after the active model's delay (or never, if dropped).
    ///
    /// The envelope's per-`(from, to)` stream sequence number is stamped
    /// **before** any failure roll, so drops and partitions still
    /// consume their slot and the receiver's [`crate::wire::SequencedRx`]
    /// can detect the gap.
    pub fn route(&mut self, mut envelope: Envelope) {
        self.stats.sent += 1;
        envelope.region = self.region;
        let link = self.link_idx(envelope.from, envelope.to);
        let ls = &mut self.link_states[link as usize];
        ls.stats.sent += 1;
        envelope.seq = Some(ls.next_seq);
        ls.next_seq += 1;
        if self.metering {
            self.meter_buf.clear();
            envelope.encode(&mut self.meter_buf);
            let bytes = self.meter_buf.len() as u64;
            self.stats.bytes_sent += bytes;
            self.link_states[link as usize].stats.bytes_sent += bytes;
        }

        if self.is_cut(envelope.from, envelope.to) {
            self.stats.dead_lettered += 1;
            self.link_states[link as usize].stats.dead_lettered += 1;
            self.dead_letter(DeadLetter {
                envelope,
                reason: DeadLetterReason::Partitioned,
                link,
            });
            return;
        }
        if self.failure.drop_probability > 0.0
            && self
                .rng
                .gen_bool(self.failure.drop_probability.clamp(0.0, 1.0))
        {
            self.stats.dropped += 1;
            self.link_states[link as usize].stats.dropped += 1;
            return;
        }
        let duplicate = self.failure.duplicate_probability > 0.0
            && self
                .rng
                .gen_bool(self.failure.duplicate_probability.clamp(0.0, 1.0));
        if duplicate {
            self.stats.duplicated += 1;
            self.link_states[link as usize].stats.duplicated += 1;
            let copy = envelope.clone();
            self.enqueue(copy, link);
        }
        self.enqueue(envelope, link);
    }

    /// Enqueue one (surviving) envelope with the active model's delay
    /// and jitter.
    fn enqueue(&mut self, envelope: Envelope, link: u32) {
        let mut delay = self.failure.delay_slots;
        if self.failure.jitter_slots > 0 {
            delay += self.rng.gen_range(0..=self.failure.jitter_slots);
        }
        let available = envelope.sent_at + delay;
        let arrival = self.next_arrival;
        self.next_arrival += 1;
        match self.inboxes.get_mut(&envelope.to) {
            Some(q) => {
                q.push(InFlight {
                    available,
                    arrival,
                    link,
                    envelope,
                });
                self.stats.enqueued += 1;
                self.link_states[link as usize].stats.enqueued += 1;
            }
            None => {
                self.stats.dead_lettered += 1;
                self.link_states[link as usize].stats.dead_lettered += 1;
                self.dead_letter(DeadLetter {
                    envelope,
                    reason: DeadLetterReason::Unregistered,
                    link,
                });
            }
        }
    }

    /// Re-enqueue one dead letter, deliverable from `available`. Replays
    /// bypass failure injection: the envelope already survived routing
    /// once.
    fn replay(&mut self, envelope: Envelope, available: TimeSlot, link: u32) {
        let Some(q) = self.inboxes.get_mut(&envelope.to) else {
            // Recipient still gone: keep waiting.
            self.dead_letter(DeadLetter {
                envelope,
                reason: DeadLetterReason::Unregistered,
                link,
            });
            return;
        };
        self.stats.replayed += 1;
        self.stats.enqueued += 1;
        let arrival = self.next_arrival;
        self.next_arrival += 1;
        q.push(InFlight {
            available,
            arrival,
            link,
            envelope,
        });
        let ls = &mut self.link_states[link as usize];
        ls.stats.replayed += 1;
        ls.stats.enqueued += 1;
    }

    /// Replay every partitioned dead letter whose link is clear again.
    fn replay_healed(&mut self, now: TimeSlot) {
        let healed = {
            let manual = &self.manual_cuts;
            let phase = &self.phase_cuts;
            self.dead_letters.take_if(|l| {
                l.reason == DeadLetterReason::Partitioned
                    && !manual.contains(&(l.envelope.from, l.envelope.to))
                    && !phase.contains(&(l.envelope.from, l.envelope.to))
            })
        };
        for letter in healed {
            self.replay(letter.envelope, now, letter.link);
        }
    }

    /// Route many messages.
    pub fn send_all(&mut self, envelopes: impl IntoIterator<Item = Envelope>) {
        for e in envelopes {
            self.route(e);
        }
    }

    /// Drain the messages available to `node` at time `now`.
    ///
    /// Delivery order within one drain is explicitly deterministic:
    /// messages are handed over sorted by `(sent_at, from, arrival)`.
    /// Under a delay model, several sends can mature in the same slot —
    /// the sort guarantees their relative order never depends on inbox
    /// insertion history. (Jitter still reorders *across* drains: a
    /// later send can mature in an earlier slot.)
    pub fn drain(&mut self, node: NodeId, now: TimeSlot) -> Vec<Envelope> {
        let Some(q) = self.inboxes.get_mut(&node) else {
            return Vec::new();
        };
        if q.is_empty() {
            return Vec::new();
        }
        // Partition into the reusable scratch buffers, preserving the
        // relative order of both halves. The not-yet-due residual order
        // is load-bearing: `deregister` dead-letters the inbox in that
        // order and replays stamp fresh `arrival` numbers, which are the
        // delivery tie-breaker for same-`(sent_at, from)` messages.
        let due = &mut self.drain_due;
        let keep = &mut self.drain_keep;
        due.clear();
        keep.clear();
        for m in q.drain(..) {
            if m.available <= now {
                due.push(m);
            } else {
                keep.push(m);
            }
        }
        // The kept residual becomes the inbox again; the inbox's drained
        // buffer becomes next call's scratch. No allocation once warm.
        std::mem::swap(q, keep);
        if due.is_empty() {
            return Vec::new();
        }
        // `arrival` is globally unique, so the key is total and an
        // unstable sort is deterministic.
        due.sort_unstable_by_key(|m| (m.envelope.sent_at, m.envelope.from, m.arrival));
        self.stats.delivered += due.len() as u64;
        for m in due.iter() {
            self.link_states[m.link as usize].stats.delivered += 1;
        }
        due.drain(..).map(|m| m.envelope).collect()
    }

    /// Number of undelivered messages queued for `node`.
    pub fn pending(&self, node: NodeId) -> usize {
        self.inboxes.get(&node).map_or(0, |q| q.len())
    }

    /// Global delivery counters.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Delivery counters for the directed `from → to` link (zeros if the
    /// link never carried a message).
    pub fn link_stats(&self, from: NodeId, to: NodeId) -> NetworkStats {
        self.links
            .get(&Self::link_key(from, to))
            .map_or(NetworkStats::default(), |&i| {
                self.link_states[i as usize].stats
            })
    }

    /// The retained undeliverable envelopes.
    pub fn dead_letters(&self) -> &DeadLetterQueue {
        &self.dead_letters
    }

    /// Whether the active failure model and cut set make delivery
    /// deterministic right now (no RNG consulted on route).
    pub fn is_reliable_now(&self) -> bool {
        self.failure.is_deterministic() && self.manual_cuts.is_empty() && self.phase_cuts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use mirabel_core::FlexOfferId;

    fn env(to: u64, at: i64) -> Envelope {
        Envelope::new(
            NodeId(0),
            NodeId(to),
            TimeSlot(at),
            Message::OfferRejected {
                offer: FlexOfferId(1),
            },
        )
    }

    #[test]
    fn reliable_delivery() {
        let mut n = Network::reliable();
        n.register(NodeId(1));
        n.route(env(1, 0));
        let got = n.drain(NodeId(1), TimeSlot(0));
        assert_eq!(got.len(), 1);
        assert_eq!(n.stats().enqueued, 1);
        assert_eq!(n.stats().delivered, 1);
        assert!(n.drain(NodeId(1), TimeSlot(0)).is_empty());
    }

    #[test]
    fn route_stamps_region() {
        let mut n = Network::reliable();
        n.set_region(RegionId(7));
        n.register(NodeId(1));
        // Sender claims a bogus region; the network overrides with its
        // own — the stamp is routing metadata, not sender-controlled.
        n.route(env(1, 0).in_region(RegionId(99)));
        let got = n.drain(NodeId(1), TimeSlot(0));
        assert_eq!(got[0].region, RegionId(7));
        assert_eq!(n.region(), RegionId(7));
    }

    #[test]
    fn metering_counts_wire_bytes() {
        let mut n = Network::reliable();
        n.register(NodeId(1));
        n.route(env(1, 0));
        assert_eq!(n.stats().bytes_sent, 0, "metering is off by default");
        n.set_metering(true);
        n.route(env(1, 0));
        // Same envelope the network routed: seq 1 on the 0→1 link,
        // default region.
        let expected = env(1, 0).with_seq(1).to_bytes().len() as u64;
        assert_eq!(n.stats().bytes_sent, expected);
        assert_eq!(n.link_stats(NodeId(0), NodeId(1)).bytes_sent, expected);
    }

    #[test]
    fn chaos_plan_region_scoping() {
        let plan = ChaosPlan::reliable().phase(ChaosPhase::new(
            TimeSlot(0),
            TimeSlot(4),
            FailureModel::drop(1.0),
        ));
        assert!(plan.applies_to(RegionId(0)), "unscoped plans storm all");
        assert!(plan.applies_to(RegionId(3)));
        let scoped = plan.in_region(RegionId(3));
        assert!(!scoped.applies_to(RegionId(0)));
        assert!(scoped.applies_to(RegionId(3)));
    }

    #[test]
    fn route_stamps_per_link_stream_sequence() {
        let mut n = Network::reliable();
        n.register(NodeId(1));
        n.register(NodeId(2));
        n.route(env(1, 0));
        n.route(env(2, 0)); // different link: its own stream
        n.route(env(1, 0));
        let to1 = n.drain(NodeId(1), TimeSlot(0));
        let to2 = n.drain(NodeId(2), TimeSlot(0));
        assert_eq!(
            to1.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![Some(0), Some(1)]
        );
        assert_eq!(to2[0].seq, Some(0));
    }

    #[test]
    fn dropped_envelope_still_consumes_its_stream_slot() {
        let mut n = Network::new(FailureModel::drop(1.0), 1);
        n.register(NodeId(1));
        n.route(env(1, 0)); // seq 0, dropped
        n.set_chaos(ChaosPlan::reliable());
        // Switch to reliable mid-stream (baseline stays lossy, so force
        // it off via a plan-free advance after replacing the baseline).
        n.failure = FailureModel::reliable();
        n.route(env(1, 0));
        let got = n.drain(NodeId(1), TimeSlot(0));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, Some(1), "the drop consumed seq 0");
    }

    #[test]
    fn unregistered_recipient_dead_letters_and_replays_on_register() {
        let mut n = Network::reliable();
        n.route(env(42, 0));
        assert_eq!(n.stats().dead_lettered, 1);
        assert_eq!(n.dead_letters().len(), 1);
        // The node comes up: the letter replays into its inbox.
        n.register(NodeId(42));
        assert_eq!(n.stats().replayed, 1);
        assert!(n.dead_letters().is_empty());
        assert_eq!(n.drain(NodeId(42), TimeSlot(0)).len(), 1);
    }

    #[test]
    fn deregister_dead_letters_queued_messages() {
        let mut n = Network::reliable();
        n.register(NodeId(1));
        n.route(env(1, 0));
        n.deregister(NodeId(1));
        assert!(!n.is_registered(NodeId(1)));
        assert_eq!(n.dead_letters().len(), 1);
        // Messages routed while it is gone also dead-letter.
        n.route(env(1, 1));
        assert_eq!(n.dead_letters().len(), 2);
        // Re-register: both replay, original order preserved by
        // (sent_at, from, arrival).
        n.register(NodeId(1));
        let got = n.drain(NodeId(1), TimeSlot(10));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].sent_at, TimeSlot(0));
        assert_eq!(got[1].sent_at, TimeSlot(1));
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let mut n = Network::new(FailureModel::drop(1.0), 1);
        n.register(NodeId(1));
        for _ in 0..10 {
            n.route(env(1, 0));
        }
        assert_eq!(n.stats().dropped, 10);
        assert!(n.drain(NodeId(1), TimeSlot(100)).is_empty());
    }

    #[test]
    fn partial_drop_rate() {
        let mut n = Network::new(FailureModel::drop(0.5), 7);
        n.register(NodeId(1));
        for _ in 0..200 {
            n.route(env(1, 0));
        }
        let s = n.stats();
        assert_eq!(s.dropped + s.enqueued, 200);
        assert!(s.dropped > 50 && s.dropped < 150, "dropped {}", s.dropped);
    }

    #[test]
    fn duplication_enqueues_same_stream_seq_twice() {
        let mut n = Network::new(FailureModel::reliable().duplicated(1.0), 1);
        n.register(NodeId(1));
        n.route(env(1, 0));
        let got = n.drain(NodeId(1), TimeSlot(0));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].seq, got[1].seq, "a duplicate is the same envelope");
        assert_eq!(n.stats().duplicated, 1);
        assert_eq!(n.stats().enqueued, 2);
    }

    #[test]
    fn delayed_delivery() {
        let mut n = Network::new(FailureModel::delay(3), 1);
        n.register(NodeId(1));
        n.route(env(1, 10));
        assert!(n.drain(NodeId(1), TimeSlot(12)).is_empty());
        assert_eq!(n.pending(NodeId(1)), 1);
        assert_eq!(n.drain(NodeId(1), TimeSlot(13)).len(), 1);
    }

    #[test]
    fn jitter_reorders_across_drains() {
        // With jitter up to 8 slots, some pair of consecutive sends
        // matures out of order for this seed.
        let mut n = Network::new(FailureModel::reliable().jittered_by(8), 3);
        n.register(NodeId(1));
        for at in 0..20 {
            n.route(env(1, at));
        }
        let mut arrival_order = Vec::new();
        for now in 0..40 {
            for e in n.drain(NodeId(1), TimeSlot(now)) {
                arrival_order.push(e.seq.unwrap());
            }
        }
        assert_eq!(arrival_order.len(), 20);
        let mut sorted = arrival_order.clone();
        sorted.sort_unstable();
        assert_ne!(arrival_order, sorted, "jitter should reorder the stream");
    }

    #[test]
    fn delayed_delivery_order_is_sent_at_from_arrival() {
        // Three messages from different senders, sent out of (sent_at,
        // from) order, all maturing before the same drain: the handover
        // must sort by (sent_at, from, arrival) — never by insertion
        // order.
        let mut n = Network::new(FailureModel::delay(5), 1);
        n.register(NodeId(1));
        let from = |f: u64, at: i64| {
            Envelope::new(
                NodeId(f),
                NodeId(1),
                TimeSlot(at),
                Message::OfferRejected {
                    offer: FlexOfferId(f),
                },
            )
        };
        n.route(from(9, 2));
        n.route(from(5, 1));
        n.route(from(5, 1)); // same (sent_at, from): arrival breaks the tie
        n.route(from(3, 1));
        let got = n.drain(NodeId(1), TimeSlot(100));
        let order: Vec<(i64, u64)> = got
            .iter()
            .map(|e| (e.sent_at.index(), e.from.value()))
            .collect();
        assert_eq!(order, vec![(1, 3), (1, 5), (1, 5), (2, 9)]);
        // Replaying the same sequence yields the identical order.
        let mut m = Network::new(FailureModel::delay(5), 1);
        m.register(NodeId(1));
        m.route(from(9, 2));
        m.route(from(5, 1));
        m.route(from(5, 1));
        m.route(from(3, 1));
        assert_eq!(m.drain(NodeId(1), TimeSlot(100)), got);
    }

    #[test]
    fn drain_preserves_undue_messages() {
        let mut n = Network::new(FailureModel::delay(5), 1);
        n.register(NodeId(1));
        n.route(env(1, 0)); // due at 5
        n.route(env(1, 10)); // due at 15
        assert_eq!(n.drain(NodeId(1), TimeSlot(5)).len(), 1);
        assert_eq!(n.pending(NodeId(1)), 1);
        assert_eq!(n.drain(NodeId(1), TimeSlot(15)).len(), 1);
    }

    #[test]
    fn partition_dead_letters_then_heals_and_replays() {
        let mut n = Network::reliable();
        n.register(NodeId(1));
        n.cut(NodeId(0), NodeId(1));
        n.route(env(1, 0));
        n.route(env(1, 1));
        assert_eq!(n.stats().dead_lettered, 2);
        assert!(n.drain(NodeId(1), TimeSlot(5)).is_empty());
        // Heal: the retained envelopes replay, deliverable from `now`.
        n.heal(NodeId(0), NodeId(1));
        n.advance(TimeSlot(6));
        assert_eq!(n.stats().replayed, 2);
        let got = n.drain(NodeId(1), TimeSlot(6));
        assert_eq!(got.len(), 2);
        // Stream seq was stamped at original route time, in order.
        assert_eq!(got[0].seq, Some(0));
        assert_eq!(got[1].seq, Some(1));
    }

    #[test]
    fn chaos_plan_phases_switch_models_and_partitions() {
        let storm = ChaosPhase::new(TimeSlot(10), TimeSlot(20), FailureModel::drop(1.0));
        let split = ChaosPhase::new(TimeSlot(20), TimeSlot(30), FailureModel::reliable())
            .with_partitions(vec![(NodeId(0), NodeId(1))]);
        let mut n = Network::reliable();
        n.register(NodeId(1));
        n.set_chaos(ChaosPlan::reliable().phase(storm).phase(split));

        // Before the storm: reliable.
        n.advance(TimeSlot(0));
        n.route(env(1, 0));
        assert_eq!(n.drain(NodeId(1), TimeSlot(0)).len(), 1);

        // Storm: everything drops.
        n.advance(TimeSlot(10));
        n.route(env(1, 10));
        assert_eq!(n.stats().dropped, 1);

        // Partition phase: dead-lettered instead.
        n.advance(TimeSlot(20));
        n.route(env(1, 20));
        assert_eq!(n.stats().dead_lettered, 1);
        assert!(n.drain(NodeId(1), TimeSlot(25)).is_empty());

        // After the plan: heal + replay.
        n.advance(TimeSlot(30));
        assert_eq!(n.stats().replayed, 1);
        assert_eq!(n.drain(NodeId(1), TimeSlot(30)).len(), 1);
        assert!(n.is_reliable_now());
    }

    #[test]
    fn dead_letter_cap_evicts_oldest_per_link() {
        let mut n = Network::reliable();
        n.set_dead_letter_cap(3);
        n.register(NodeId(1));
        n.cut(NodeId(0), NodeId(1));
        for at in 0..5 {
            n.route(env(1, at));
        }
        // Cap 3: the two oldest letters on the 0→1 link were evicted.
        assert_eq!(n.dead_letters().len(), 3);
        assert_eq!(n.stats().dropped_dead_letters, 2);
        assert_eq!(
            n.link_stats(NodeId(0), NodeId(1)).dropped_dead_letters,
            2,
            "evictions are accounted on the evicted letter's link"
        );
        // Another link is unaffected by the first link's pressure.
        n.register(NodeId(2));
        n.cut(NodeId(0), NodeId(2));
        n.route(env(2, 0));
        assert_eq!(n.dead_letters().len(), 4);
        assert_eq!(n.stats().dropped_dead_letters, 2);
        // Heal: only the freshest three replay — their stream sequence
        // numbers show the oldest two are gone for good (the receiver's
        // resync protocol reconstructs what they carried).
        n.heal(NodeId(0), NodeId(1));
        n.advance(TimeSlot(10));
        let got = n.drain(NodeId(1), TimeSlot(10));
        assert_eq!(
            got.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![Some(2), Some(3), Some(4)]
        );
    }

    #[test]
    fn chaos_plan_schedules_crashes() {
        let plan = ChaosPlan::reliable()
            .phase(
                ChaosPhase::new(TimeSlot(10), TimeSlot(12), FailureModel::reliable())
                    .with_crashes(vec![NodeId(5), NodeId(7)]),
            )
            .phase(
                ChaosPhase::new(TimeSlot(11), TimeSlot(13), FailureModel::reliable())
                    .with_crashes(vec![NodeId(7), NodeId(9)]),
            );
        assert!(!plan.is_reliable());
        assert!(plan.crashes_between(TimeSlot(0), TimeSlot(10)).is_empty());
        assert_eq!(
            plan.crashes_between(TimeSlot(10), TimeSlot(11)),
            vec![NodeId(5), NodeId(7)]
        );
        assert_eq!(
            plan.crashes_between(TimeSlot(10), TimeSlot(20)),
            vec![NodeId(5), NodeId(7), NodeId(9)],
            "duplicates collapse, phase order preserved"
        );
    }

    #[test]
    fn per_link_stats_are_tracked() {
        let mut n = Network::reliable();
        n.register(NodeId(1));
        n.register(NodeId(2));
        n.route(env(1, 0));
        n.route(env(1, 0));
        n.route(env(2, 0));
        n.drain(NodeId(1), TimeSlot(0));
        let link1 = n.link_stats(NodeId(0), NodeId(1));
        assert_eq!(link1.sent, 2);
        assert_eq!(link1.enqueued, 2);
        assert_eq!(link1.delivered, 2);
        let link2 = n.link_stats(NodeId(0), NodeId(2));
        assert_eq!(link2.sent, 1);
        assert_eq!(link2.delivered, 0, "routed but not yet drained");
        assert_eq!(n.link_stats(NodeId(5), NodeId(6)), NetworkStats::default());
    }
}
