//! Receiver-side guards for the sequenced delta wire.
//!
//! Since PR 4 the BRP → TSO wire carries *stateful* delta streams: a
//! single lost `MacroOfferDeltas` envelope silently diverges the
//! receiver's pool until deadline expiry papers over it. The network
//! stamps every routed envelope with a per-`(from, to)` sequence number
//! ([`crate::Envelope::seq`]); this module holds the two receiver-side
//! disciplines built on it:
//!
//! * [`SequencedRx`] — exactly-once, **in-order** delivery for stateful
//!   streams. Duplicates are dropped, out-of-order envelopes are
//!   buffered until the gap closes, and a detected gap asks the caller
//!   to request a resync from the sender (the sender answers with a
//!   bounded state snapshot, turning a lost delta into one extra
//!   round-trip instead of silent divergence).
//! * [`DedupRx`] — an at-most-once filter for streams whose messages are
//!   self-contained (submissions, assignments): duplicates injected by
//!   the network are dropped, gaps are let through — a lost submission
//!   is a negotiation-level loss the deadline fallback already covers.
//!
//! Both guards treat unsequenced envelopes (`seq == None`, i.e. handed
//! to the node directly without a network) as deliverable, so direct
//! unit-test hand-offs keep working unchecked.

use crate::message::Envelope;
use std::collections::{BTreeMap, BTreeSet};

/// Counters kept by a [`SequencedRx`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Envelopes delivered in order (including buffered ones released
    /// when their gap closed).
    pub delivered: u64,
    /// Duplicate envelopes dropped.
    pub duplicates: u64,
    /// Envelopes that arrived ahead of a gap and were buffered.
    pub buffered: u64,
    /// Resync requests the guard asked the caller to send.
    pub resyncs_requested: u64,
    /// Snapshots accepted (stream re-anchored).
    pub resyncs_applied: u64,
    /// Buffered out-of-order envelopes discarded because the buffer hit
    /// its cap (the stream then re-anchors on a resync snapshot).
    pub overflow_dropped: u64,
}

impl StreamStats {
    /// Accumulate another guard's counters. Rollups (a TSO's per-BRP
    /// streams, a federation gateway's per-peer streams) sum into one
    /// row with this instead of exposing every link.
    pub fn absorb(&mut self, other: &StreamStats) {
        self.delivered += other.delivered;
        self.duplicates += other.duplicates;
        self.buffered += other.buffered;
        self.resyncs_requested += other.resyncs_requested;
        self.resyncs_applied += other.resyncs_applied;
        self.overflow_dropped += other.overflow_dropped;
    }
}

/// Default cap on a [`SequencedRx`]'s out-of-order buffer. Beyond this
/// many parked envelopes the guard stops buffering, drops what it
/// parked, and relies on the (already requested) resync snapshot to
/// re-anchor — bounding memory during long partitions.
pub const DEFAULT_BUFFER_CAP: usize = 1024;

/// In-order, exactly-once delivery guard for one inbound stateful
/// stream (one sender).
#[derive(Debug)]
pub struct SequencedRx {
    /// The next sequence number that can be delivered.
    next_expected: u64,
    /// Out-of-order envelopes parked until the gap below them closes or
    /// a snapshot supersedes them.
    buffer: BTreeMap<u64, Envelope>,
    /// Most envelopes the buffer may park before overflow discards them
    /// in favour of a resync snapshot.
    buffer_cap: usize,
    /// Whether a resync request is believed to be in flight. Kept for
    /// reporting; the guard still re-requests on every gapped arrival,
    /// because the request itself can be lost on the same bad link.
    resync_pending: bool,
    stats: StreamStats,
}

impl Default for SequencedRx {
    fn default() -> SequencedRx {
        SequencedRx {
            next_expected: 0,
            buffer: BTreeMap::new(),
            buffer_cap: DEFAULT_BUFFER_CAP,
            resync_pending: false,
            stats: StreamStats::default(),
        }
    }
}

impl SequencedRx {
    /// A guard with a custom out-of-order buffer cap (≥ 1).
    pub fn with_buffer_cap(cap: usize) -> SequencedRx {
        SequencedRx {
            buffer_cap: cap.max(1),
            ..SequencedRx::default()
        }
    }
    /// Offer one envelope to the guard. Returns the envelopes now
    /// deliverable **in stream order** (possibly empty) plus whether the
    /// caller should send a resync request to the stream's sender.
    ///
    /// A gapped arrival always asks for a resync — even while one is
    /// already pending — since requests travel the same lossy link as
    /// the deltas; the sender's snapshot answer is idempotent.
    pub fn receive(&mut self, envelope: Envelope) -> (Vec<Envelope>, bool) {
        let Some(seq) = envelope.seq else {
            // Unsequenced: direct hand-off, deliver unchecked.
            self.stats.delivered += 1;
            return (vec![envelope], false);
        };
        if seq < self.next_expected || self.buffer.contains_key(&seq) {
            self.stats.duplicates += 1;
            return (Vec::new(), false);
        }
        if seq > self.next_expected {
            if self.buffer.len() >= self.buffer_cap {
                // Overflow: a long gap has parked more than the cap.
                // Everything buffered (and this arrival) is discarded —
                // the resync snapshot the caller sends for supersedes
                // all of it — so memory stays bounded during long
                // partitions instead of growing with the backlog.
                self.stats.overflow_dropped += self.buffer.len() as u64 + 1;
                self.buffer.clear();
                self.stats.resyncs_requested += 1;
                self.resync_pending = true;
                return (Vec::new(), true);
            }
            self.buffer.insert(seq, envelope);
            self.stats.buffered += 1;
            self.stats.resyncs_requested += 1;
            self.resync_pending = true;
            return (Vec::new(), true);
        }
        // In order: deliver it plus every buffered successor that is now
        // consecutive.
        let mut out = vec![envelope];
        self.next_expected += 1;
        while let Some(e) = self.buffer.remove(&self.next_expected) {
            out.push(e);
            self.next_expected += 1;
        }
        if self.buffer.is_empty() {
            // The gap (if any) closed by late arrival; nothing is parked.
            self.resync_pending = false;
        }
        self.stats.delivered += out.len() as u64;
        (out, false)
    }

    /// Re-anchor the stream on a snapshot that carried sequence number
    /// `seq`: everything at or below it is superseded by the snapshot,
    /// buffered successors are released in order. Returns the released
    /// envelopes. Pass `None` for an unsequenced (direct) snapshot; the
    /// guard then resets to the highest buffered position.
    pub fn resynced(&mut self, seq: Option<u64>) -> Vec<Envelope> {
        self.stats.resyncs_applied += 1;
        self.resync_pending = false;
        let anchor = match seq {
            Some(s) => s,
            // Unsequenced snapshot: it reflects the sender's current
            // state, so everything buffered so far is superseded.
            None => match self.buffer.keys().next_back() {
                Some(&max) => max,
                None => return Vec::new(),
            },
        };
        self.next_expected = self.next_expected.max(anchor + 1);
        // Superseded by the snapshot.
        self.buffer = self.buffer.split_off(&self.next_expected);
        let mut out = Vec::new();
        while let Some(e) = self.buffer.remove(&self.next_expected) {
            out.push(e);
            self.next_expected += 1;
        }
        self.stats.delivered += out.len() as u64;
        out
    }

    /// Whether a resync request is currently believed to be in flight.
    pub fn resync_pending(&self) -> bool {
        self.resync_pending
    }

    /// Envelopes parked behind a gap.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Delivery counters.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }
}

/// Sequence numbers remembered per stream before compaction kicks in.
/// Old duplicates below the compacted watermark are re-delivered instead
/// of dropped — harmless, since [`DedupRx`] only guards handlers that
/// are idempotent anyway.
const DEDUP_WINDOW: usize = 1024;

/// At-most-once filter for one inbound stream of self-contained
/// messages: drops network-injected duplicates, lets gaps through.
#[derive(Debug, Default)]
pub struct DedupRx {
    /// Every sequence number below this has been delivered (or
    /// compacted away).
    delivered_below: u64,
    /// Delivered sequence numbers at or above the watermark.
    seen: BTreeSet<u64>,
    /// Duplicates dropped.
    pub duplicates: u64,
}

impl DedupRx {
    /// Whether an envelope with this sequence number should be
    /// delivered. Unsequenced envelopes always deliver.
    pub fn accept(&mut self, seq: Option<u64>) -> bool {
        let Some(seq) = seq else {
            return true;
        };
        // In-order fast path (the reliable wire): nothing is parked, so
        // delivery is a watermark bump — no tree operations at all.
        if seq == self.delivered_below && self.seen.is_empty() {
            self.delivered_below += 1;
            return true;
        }
        if seq < self.delivered_below || !self.seen.insert(seq) {
            self.duplicates += 1;
            return false;
        }
        // Advance the watermark over any now-contiguous prefix.
        while self.seen.remove(&self.delivered_below) {
            self.delivered_below += 1;
        }
        // Bound memory under permanent gaps (a lost envelope's slot
        // never fills): compact the oldest remembered numbers away.
        while self.seen.len() > DEDUP_WINDOW {
            if let Some(&min) = self.seen.iter().next() {
                self.seen.remove(&min);
                self.delivered_below = self.delivered_below.max(min + 1);
            }
        }
        true
    }

    /// Export the filter state for a WAL snapshot:
    /// `(delivered_below, seen, duplicates)`.
    pub fn export_state(&self) -> (u64, Vec<u64>, u64) {
        (
            self.delivered_below,
            self.seen.iter().copied().collect(),
            self.duplicates,
        )
    }

    /// Rebuild a filter from snapshot state produced by
    /// [`export_state`](Self::export_state) — recovery resumes exactly
    /// where the crashed node's duplicate window stood.
    pub fn from_state(delivered_below: u64, seen: Vec<u64>, duplicates: u64) -> DedupRx {
        DedupRx {
            delivered_below,
            seen: seen.into_iter().collect(),
            duplicates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use mirabel_core::{FlexOfferId, NodeId, TimeSlot};

    fn env(seq: u64) -> Envelope {
        Envelope::new(
            NodeId(1),
            NodeId(2),
            TimeSlot(0),
            Message::OfferRejected {
                offer: FlexOfferId(seq),
            },
        )
        .with_seq(seq)
    }

    fn seqs(envelopes: &[Envelope]) -> Vec<u64> {
        envelopes.iter().map(|e| e.seq.unwrap()).collect()
    }

    #[test]
    fn in_order_stream_delivers_immediately() {
        let mut rx = SequencedRx::default();
        for s in 0..5 {
            let (out, resync) = rx.receive(env(s));
            assert_eq!(seqs(&out), vec![s]);
            assert!(!resync);
        }
        assert_eq!(rx.stats().delivered, 5);
        assert_eq!(rx.stats().resyncs_requested, 0);
    }

    #[test]
    fn duplicate_is_dropped() {
        let mut rx = SequencedRx::default();
        rx.receive(env(0));
        let (out, resync) = rx.receive(env(0));
        assert!(out.is_empty());
        assert!(!resync);
        assert_eq!(rx.stats().duplicates, 1);
    }

    #[test]
    fn gap_buffers_and_requests_resync_until_closed() {
        let mut rx = SequencedRx::default();
        rx.receive(env(0));
        // 1 is lost; 2 and 3 arrive.
        let (out, resync) = rx.receive(env(2));
        assert!(out.is_empty());
        assert!(resync, "gap must request a resync");
        // Still gapped: re-request (the first request may be lost too).
        let (out, resync) = rx.receive(env(3));
        assert!(out.is_empty());
        assert!(resync);
        assert!(rx.resync_pending());
        assert_eq!(rx.buffered(), 2);
        // The lost envelope finally arrives late: the whole run drains
        // in order.
        let (out, resync) = rx.receive(env(1));
        assert_eq!(seqs(&out), vec![1, 2, 3]);
        assert!(!resync);
        assert!(!rx.resync_pending());
    }

    #[test]
    fn snapshot_supersedes_gap_and_releases_successors() {
        let mut rx = SequencedRx::default();
        rx.receive(env(0));
        rx.receive(env(2)); // gap at 1
        rx.receive(env(4)); // gap at 3
                            // Snapshot stamped seq 5: 1–4 are superseded (their effect is in
                            // the snapshot), nothing is buffered beyond it.
        let released = rx.resynced(Some(5));
        assert!(released.is_empty());
        assert!(!rx.resync_pending());
        assert_eq!(rx.buffered(), 0);
        // The stream continues cleanly at 6.
        let (out, resync) = rx.receive(env(6));
        assert_eq!(seqs(&out), vec![6]);
        assert!(!resync);
        // Late duplicates of superseded envelopes are dropped.
        let (out, _) = rx.receive(env(2));
        assert!(out.is_empty());
    }

    #[test]
    fn snapshot_releases_buffered_beyond_it() {
        let mut rx = SequencedRx::default();
        rx.receive(env(0));
        rx.receive(env(3)); // gaps at 1, 2
        rx.receive(env(4));
        // Snapshot stamped 2 (sent after deltas 1 and 2, before 3): the
        // buffered 3 and 4 apply on top, in order.
        let released = rx.resynced(Some(2));
        assert_eq!(seqs(&released), vec![3, 4]);
        assert_eq!(rx.buffered(), 0);
    }

    #[test]
    fn unsequenced_envelopes_bypass_the_guard() {
        let mut rx = SequencedRx::default();
        let direct = Envelope::new(NodeId(1), NodeId(2), TimeSlot(0), Message::ResyncRequest);
        let (out, resync) = rx.receive(direct);
        assert_eq!(out.len(), 1);
        assert!(!resync);
    }

    #[test]
    fn dedup_drops_duplicates_lets_gaps_through() {
        let mut rx = DedupRx::default();
        assert!(rx.accept(Some(0)));
        assert!(!rx.accept(Some(0)));
        // Gap: 1 is lost, 2 delivers anyway.
        assert!(rx.accept(Some(2)));
        assert!(!rx.accept(Some(2)));
        // The late 1 is not a duplicate.
        assert!(rx.accept(Some(1)));
        assert!(!rx.accept(Some(1)));
        assert_eq!(rx.duplicates, 3);
        assert!(rx.accept(None), "unsequenced always delivers");
    }

    #[test]
    fn buffer_overflow_drops_and_forces_resync() {
        let mut rx = SequencedRx::with_buffer_cap(3);
        rx.receive(env(0));
        // Seq 1 lost; 2, 3, 4 park (cap reached), 5 overflows.
        for s in 2..=4 {
            let (out, resync) = rx.receive(env(s));
            assert!(out.is_empty());
            assert!(resync);
        }
        assert_eq!(rx.buffered(), 3);
        let (out, resync) = rx.receive(env(5));
        assert!(out.is_empty());
        assert!(resync, "overflow still asks for a resync");
        assert_eq!(rx.buffered(), 0, "parked envelopes were discarded");
        assert_eq!(rx.stats().overflow_dropped, 4);
        // The snapshot (stamped 5) re-anchors the stream; 6 flows.
        let released = rx.resynced(Some(5));
        assert!(released.is_empty());
        let (out, resync) = rx.receive(env(6));
        assert_eq!(seqs(&out), vec![6]);
        assert!(!resync);
    }

    #[test]
    fn dedup_state_export_restore_roundtrip() {
        let mut rx = DedupRx::default();
        for s in [0u64, 1, 3, 7] {
            rx.accept(Some(s));
        }
        rx.accept(Some(3)); // one duplicate
        let (below, seen, dups) = rx.export_state();
        let mut restored = DedupRx::from_state(below, seen, dups);
        // Same acceptance behaviour as the original going forward.
        assert!(!restored.accept(Some(7)), "remembered as delivered");
        assert!(restored.accept(Some(2)), "gap slot still deliverable");
        assert_eq!(restored.duplicates, dups + 1);
    }

    #[test]
    fn dedup_window_is_bounded_under_permanent_gaps() {
        let mut rx = DedupRx::default();
        // Seq 0 never arrives: every later number stays in `seen` until
        // compaction bounds it.
        for s in 1..(DEDUP_WINDOW as u64 + 100) {
            assert!(rx.accept(Some(s)));
        }
        assert!(rx.seen.len() <= DEDUP_WINDOW);
    }
}
