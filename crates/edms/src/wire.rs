//! Receiver-side guards for the sequenced delta wire, plus the link
//! failure detector behind degraded (islanded) operation.
//!
//! Since PR 4 the BRP → TSO wire carries *stateful* delta streams: a
//! single lost `MacroOfferDeltas` envelope silently diverges the
//! receiver's pool until deadline expiry papers over it. The network
//! stamps every routed envelope with a per-`(from, to)` sequence number
//! ([`crate::Envelope::seq`]); this module holds the receiver-side
//! disciplines built on it:
//!
//! * [`SequencedRx`] — exactly-once, **in-order** delivery for stateful
//!   streams. Duplicates are dropped, out-of-order envelopes are
//!   buffered until the gap closes, and a detected gap asks the caller
//!   to request a resync from the sender (the sender answers with a
//!   bounded state snapshot, turning a lost delta into one extra
//!   round-trip instead of silent divergence).
//! * [`DedupRx`] — an at-most-once filter for streams whose messages are
//!   self-contained (submissions, assignments): duplicates injected by
//!   the network are dropped, gaps are let through — a lost submission
//!   is a negotiation-level loss the deadline fallback already covers.
//!
//! Both guards treat unsequenced envelopes (`seq == None`, i.e. handed
//! to the node directly without a network) as deliverable, so direct
//! unit-test hand-offs keep working unchecked.
//!
//! PR 10 adds the **detect → island → recover → reconcile** robustness
//! loop, whose detection half lives here:
//!
//! * **detect** — [`LinkHealth`] is a deterministic, slot-clocked
//!   failure detector for one link: heartbeats
//!   ([`Message::Heartbeat`](crate::message::Message::Heartbeat))
//!   piggyback on the existing sequenced streams, and silence drives
//!   the `Up → Suspect → Down` edge of the state machine while renewed
//!   traffic drives `Down → Recovering → Up`. [`RetransmitTracker`]
//!   pairs with it: the heartbeat's cumulative `seen` counter acts as a
//!   piggybacked ack for outbox flushes, and an unacked flush is
//!   retransmitted — as an idempotent resync *snapshot*, never a
//!   replayed delta batch — under exponential backoff with a bounded
//!   attempt budget.
//! * **island** — a BRP whose TSO link is `Down` plans its own pool
//!   locally (see [`crate::brp`]), stamping assignments provisional.
//! * **recover** — both node roles rebuild from their WAL
//!   ([`crate::wal`]); [`SequencedRx::export_state`] /
//!   [`SequencedRx::from_state`] let a crashed TSO freeze and restore
//!   its per-BRP stream guards bit-for-bit.
//! * **reconcile** — on heal the rejoining BRP ships its provisional
//!   assignments
//!   ([`Message::ProvisionalReport`](crate::message::Message::ProvisionalReport))
//!   and an unsolicited snapshot; the TSO adopts or supersedes through
//!   the normal delta-splice.

use crate::message::Envelope;
use mirabel_core::codec::{CodecError, Wire};
use mirabel_core::TimeSlot;
use std::collections::{BTreeMap, BTreeSet};

/// Counters kept by a [`SequencedRx`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Envelopes delivered in order (including buffered ones released
    /// when their gap closed).
    pub delivered: u64,
    /// Duplicate envelopes dropped.
    pub duplicates: u64,
    /// Envelopes that arrived ahead of a gap and were buffered.
    pub buffered: u64,
    /// Resync requests the guard asked the caller to send.
    pub resyncs_requested: u64,
    /// Snapshots accepted (stream re-anchored).
    pub resyncs_applied: u64,
    /// Buffered out-of-order envelopes discarded because the buffer hit
    /// its cap (the stream then re-anchors on a resync snapshot).
    pub overflow_dropped: u64,
}

impl StreamStats {
    /// Accumulate another guard's counters. Rollups (a TSO's per-BRP
    /// streams, a federation gateway's per-peer streams) sum into one
    /// row with this instead of exposing every link.
    pub fn absorb(&mut self, other: &StreamStats) {
        self.delivered += other.delivered;
        self.duplicates += other.duplicates;
        self.buffered += other.buffered;
        self.resyncs_requested += other.resyncs_requested;
        self.resyncs_applied += other.resyncs_applied;
        self.overflow_dropped += other.overflow_dropped;
    }
}

/// Default cap on a [`SequencedRx`]'s out-of-order buffer. Beyond this
/// many parked envelopes the guard stops buffering, drops what it
/// parked, and relies on the (already requested) resync snapshot to
/// re-anchor — bounding memory during long partitions.
pub const DEFAULT_BUFFER_CAP: usize = 1024;

/// In-order, exactly-once delivery guard for one inbound stateful
/// stream (one sender).
#[derive(Debug)]
pub struct SequencedRx {
    /// The next sequence number that can be delivered.
    next_expected: u64,
    /// Out-of-order envelopes parked until the gap below them closes or
    /// a snapshot supersedes them.
    buffer: BTreeMap<u64, Envelope>,
    /// Most envelopes the buffer may park before overflow discards them
    /// in favour of a resync snapshot.
    buffer_cap: usize,
    /// Whether a resync request is believed to be in flight. Kept for
    /// reporting; the guard still re-requests on every gapped arrival,
    /// because the request itself can be lost on the same bad link.
    resync_pending: bool,
    stats: StreamStats,
}

impl Default for SequencedRx {
    fn default() -> SequencedRx {
        SequencedRx {
            next_expected: 0,
            buffer: BTreeMap::new(),
            buffer_cap: DEFAULT_BUFFER_CAP,
            resync_pending: false,
            stats: StreamStats::default(),
        }
    }
}

impl SequencedRx {
    /// A guard with a custom out-of-order buffer cap (≥ 1).
    pub fn with_buffer_cap(cap: usize) -> SequencedRx {
        SequencedRx {
            buffer_cap: cap.max(1),
            ..SequencedRx::default()
        }
    }
    /// Offer one envelope to the guard. Returns the envelopes now
    /// deliverable **in stream order** (possibly empty) plus whether the
    /// caller should send a resync request to the stream's sender.
    ///
    /// A gapped arrival always asks for a resync — even while one is
    /// already pending — since requests travel the same lossy link as
    /// the deltas; the sender's snapshot answer is idempotent.
    pub fn receive(&mut self, envelope: Envelope) -> (Vec<Envelope>, bool) {
        let Some(seq) = envelope.seq else {
            // Unsequenced: direct hand-off, deliver unchecked.
            self.stats.delivered += 1;
            return (vec![envelope], false);
        };
        if seq < self.next_expected || self.buffer.contains_key(&seq) {
            self.stats.duplicates += 1;
            return (Vec::new(), false);
        }
        if seq > self.next_expected {
            if self.buffer.len() >= self.buffer_cap {
                // Overflow: a long gap has parked more than the cap.
                // Everything buffered (and this arrival) is discarded —
                // the resync snapshot the caller sends for supersedes
                // all of it — so memory stays bounded during long
                // partitions instead of growing with the backlog.
                self.stats.overflow_dropped += self.buffer.len() as u64 + 1;
                self.buffer.clear();
                self.stats.resyncs_requested += 1;
                self.resync_pending = true;
                return (Vec::new(), true);
            }
            self.buffer.insert(seq, envelope);
            self.stats.buffered += 1;
            self.stats.resyncs_requested += 1;
            self.resync_pending = true;
            return (Vec::new(), true);
        }
        // In order: deliver it plus every buffered successor that is now
        // consecutive.
        let mut out = vec![envelope];
        self.next_expected += 1;
        while let Some(e) = self.buffer.remove(&self.next_expected) {
            out.push(e);
            self.next_expected += 1;
        }
        if self.buffer.is_empty() {
            // The gap (if any) closed by late arrival; nothing is parked.
            self.resync_pending = false;
        }
        self.stats.delivered += out.len() as u64;
        (out, false)
    }

    /// Re-anchor the stream on a snapshot that carried sequence number
    /// `seq`: everything at or below it is superseded by the snapshot,
    /// buffered successors are released in order. Returns the released
    /// envelopes. Pass `None` for an unsequenced (direct) snapshot; the
    /// guard then resets to the highest buffered position.
    pub fn resynced(&mut self, seq: Option<u64>) -> Vec<Envelope> {
        self.stats.resyncs_applied += 1;
        self.resync_pending = false;
        let anchor = match seq {
            Some(s) => s,
            // Unsequenced snapshot: it reflects the sender's current
            // state, so everything buffered so far is superseded.
            None => match self.buffer.keys().next_back() {
                Some(&max) => max,
                None => return Vec::new(),
            },
        };
        self.next_expected = self.next_expected.max(anchor + 1);
        // Superseded by the snapshot.
        self.buffer = self.buffer.split_off(&self.next_expected);
        let mut out = Vec::new();
        while let Some(e) = self.buffer.remove(&self.next_expected) {
            out.push(e);
            self.next_expected += 1;
        }
        self.stats.delivered += out.len() as u64;
        out
    }

    /// Whether a resync request is currently believed to be in flight.
    pub fn resync_pending(&self) -> bool {
        self.resync_pending
    }

    /// Envelopes parked behind a gap.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Delivery counters.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Freeze the guard for a WAL snapshot: sequencing cursor, parked
    /// envelopes, pending-resync flag, buffer cap and counters. A
    /// crashed receiver restored via [`from_state`](Self::from_state)
    /// resumes the stream exactly where it stood — no spurious gap, no
    /// double delivery.
    pub fn export_state(&self) -> SequencedRxState {
        SequencedRxState {
            next_expected: self.next_expected,
            buffered: self.buffer.values().cloned().collect(),
            buffer_cap: self.buffer_cap as u64,
            resync_pending: self.resync_pending,
            stats: self.stats,
        }
    }

    /// Rebuild a guard from snapshot state produced by
    /// [`export_state`](Self::export_state). Buffered envelopes without
    /// a sequence number (impossible for a guard that parked them, but
    /// representable on the wire) are dropped rather than trusted.
    pub fn from_state(state: SequencedRxState) -> SequencedRx {
        let mut buffer = BTreeMap::new();
        for env in state.buffered {
            if let Some(seq) = env.seq {
                buffer.insert(seq, env);
            }
        }
        SequencedRx {
            next_expected: state.next_expected,
            buffer,
            buffer_cap: (state.buffer_cap as usize).max(1),
            resync_pending: state.resync_pending,
            stats: state.stats,
        }
    }
}

/// Serializable freeze-frame of a [`SequencedRx`] — what a TSO's WAL
/// snapshot stores per BRP stream so crash-restart recovery resumes
/// in-order delivery without re-anchoring every link from scratch.
#[derive(Debug, Clone, PartialEq)]
pub struct SequencedRxState {
    /// The next sequence number the guard would deliver.
    pub next_expected: u64,
    /// Envelopes parked behind a gap (in sequence order).
    pub buffered: Vec<Envelope>,
    /// The guard's out-of-order buffer cap.
    pub buffer_cap: u64,
    /// Whether a resync request was believed in flight.
    pub resync_pending: bool,
    /// Delivery counters at freeze time.
    pub stats: StreamStats,
}

impl Wire for StreamStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.delivered.encode(out);
        self.duplicates.encode(out);
        self.buffered.encode(out);
        self.resyncs_requested.encode(out);
        self.resyncs_applied.encode(out);
        self.overflow_dropped.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(StreamStats {
            delivered: u64::decode(buf)?,
            duplicates: u64::decode(buf)?,
            buffered: u64::decode(buf)?,
            resyncs_requested: u64::decode(buf)?,
            resyncs_applied: u64::decode(buf)?,
            overflow_dropped: u64::decode(buf)?,
        })
    }
}

impl Wire for SequencedRxState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.next_expected.encode(out);
        self.buffered.encode(out);
        self.buffer_cap.encode(out);
        self.resync_pending.encode(out);
        self.stats.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(SequencedRxState {
            next_expected: u64::decode(buf)?,
            buffered: Vec::<Envelope>::decode(buf)?,
            buffer_cap: u64::decode(buf)?,
            resync_pending: bool::decode(buf)?,
            stats: StreamStats::decode(buf)?,
        })
    }
}

/// Health of one monitored link, as seen by the failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkState {
    /// Traffic is fresh; the peer is presumed alive.
    Up,
    /// Silence exceeded [`LinkHealthConfig::suspect_after`]; the peer
    /// may be slow, partitioned, or dead.
    Suspect,
    /// Silence exceeded [`LinkHealthConfig::down_after`]; the peer is
    /// presumed unreachable and the node may island itself.
    Down,
    /// Traffic resumed after `Down`; the node runs its reconciliation
    /// handshake before trusting the link again.
    Recovering,
}

/// Tuning knobs for [`LinkHealth`] and [`RetransmitTracker`]. All
/// horizons are in slots (the deterministic simulation clock), so
/// detection behaviour is bit-identical at any worker-pool width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkHealthConfig {
    /// Slots of silence before `Up` degrades to `Suspect`.
    pub suspect_after: i64,
    /// Slots of silence before `Suspect` degrades to `Down`
    /// (must be ≥ `suspect_after`).
    pub down_after: i64,
    /// Backoff base for unacked-flush retransmits: attempt `n` waits
    /// `retransmit_base << n` slots before firing.
    pub retransmit_base: i64,
    /// Retransmit attempts per unacked frontier before giving up and
    /// leaving recovery to the resync path.
    pub max_retransmits: u32,
}

impl Default for LinkHealthConfig {
    fn default() -> LinkHealthConfig {
        // A healthy hierarchy exchanges heartbeats roughly once per
        // 96-slot day cycle, so ~2 silent cycles is suspicious and ~3
        // is presumed dead.
        LinkHealthConfig {
            suspect_after: 200,
            down_after: 300,
            retransmit_base: 192,
            max_retransmits: 3,
        }
    }
}

/// Counters kept by a [`LinkHealth`] detector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkHealthStats {
    /// `Up → Suspect` transitions observed.
    pub suspects: u64,
    /// `* → Down` transitions observed.
    pub downs: u64,
    /// `Recovering → Up` transitions observed (completed heals).
    pub recoveries: u64,
    /// Heartbeat envelopes processed on this link.
    pub heartbeats_seen: u64,
    /// Unacked-flush retransmits fired on this link.
    pub retransmits: u64,
}

impl LinkHealthStats {
    /// Accumulate another detector's counters (per-region rollups).
    pub fn absorb(&mut self, other: &LinkHealthStats) {
        self.suspects += other.suspects;
        self.downs += other.downs;
        self.recoveries += other.recoveries;
        self.heartbeats_seen += other.heartbeats_seen;
        self.retransmits += other.retransmits;
    }
}

/// Deterministic ack-timeout failure detector for one link.
///
/// Purely slot-clocked: [`heard`](Self::heard) records peer traffic,
/// [`tick`](Self::tick) advances the state machine against the silence
/// horizon. No wall clock, no randomness — the same schedule of calls
/// always produces the same transition sequence, which is what lets the
/// chaos campaigns compare islanded runs bit-for-bit across pool
/// widths.
#[derive(Debug, Clone)]
pub struct LinkHealth {
    state: LinkState,
    /// Last slot at which the peer was heard; `None` until first
    /// traffic or first tick (the detector starts its silence clock at
    /// whichever comes first, so a node booted into a dead link still
    /// detects it, just counted from boot).
    last_heard: Option<TimeSlot>,
    config: LinkHealthConfig,
    stats: LinkHealthStats,
}

impl LinkHealth {
    /// A detector in `Up` with the given horizons.
    pub fn new(config: LinkHealthConfig) -> LinkHealth {
        LinkHealth {
            state: LinkState::Up,
            last_heard: None,
            config,
            stats: LinkHealthStats::default(),
        }
    }

    /// Record peer traffic at `now`. `Suspect` heals straight back to
    /// `Up`; `Down` only advances to `Recovering` — the owning node
    /// must run its reconciliation handshake and let the next
    /// [`tick`](Self::tick) confirm the heal.
    pub fn heard(&mut self, now: TimeSlot) {
        self.last_heard = Some(match self.last_heard {
            Some(prev) if prev.0 > now.0 => prev,
            _ => now,
        });
        match self.state {
            LinkState::Suspect => self.state = LinkState::Up,
            LinkState::Down => self.state = LinkState::Recovering,
            LinkState::Up | LinkState::Recovering => {}
        }
    }

    /// Record a heartbeat (also counts as traffic).
    pub fn heard_heartbeat(&mut self, now: TimeSlot) {
        self.stats.heartbeats_seen += 1;
        self.heard(now);
    }

    /// Advance the detector to `now` and return the current state.
    pub fn tick(&mut self, now: TimeSlot) -> LinkState {
        let since = match self.last_heard {
            Some(at) => now.0.saturating_sub(at.0),
            None => {
                // First observation: start the silence clock here.
                self.last_heard = Some(now);
                0
            }
        };
        match self.state {
            LinkState::Up | LinkState::Suspect => {
                if since >= self.config.down_after {
                    self.state = LinkState::Down;
                    self.stats.downs += 1;
                } else if since >= self.config.suspect_after {
                    if self.state == LinkState::Up {
                        self.stats.suspects += 1;
                    }
                    self.state = LinkState::Suspect;
                }
            }
            LinkState::Recovering => {
                if since >= self.config.down_after {
                    // The heal did not stick.
                    self.state = LinkState::Down;
                    self.stats.downs += 1;
                } else if since <= self.config.suspect_after {
                    self.state = LinkState::Up;
                    self.stats.recoveries += 1;
                }
            }
            LinkState::Down => {}
        }
        self.state
    }

    /// Current state without advancing the clock.
    pub fn state(&self) -> LinkState {
        self.state
    }

    /// Whether the owning node should operate islanded (link presumed
    /// unreachable).
    pub fn is_down(&self) -> bool {
        self.state == LinkState::Down
    }

    /// Detector counters.
    pub fn stats(&self) -> LinkHealthStats {
        self.stats
    }

    /// The detector's horizons.
    pub fn config(&self) -> LinkHealthConfig {
        self.config
    }

    /// Count a retransmit fired on this link.
    pub fn note_retransmit(&mut self) {
        self.stats.retransmits += 1;
    }
}

/// Piggybacked-ack bookkeeping for one link's outbox flushes.
///
/// The sender counts flushes; the peer's heartbeats carry its
/// cumulative applied count ([`Message::Heartbeat`]'s `seen`). When the
/// frontier stays unacked past an exponentially backed-off deadline,
/// [`should_retransmit`](Self::should_retransmit) fires — at most
/// [`LinkHealthConfig::max_retransmits`] times per frontier. The
/// retransmit payload is the sender's idempotent state *snapshot*
/// (`ResyncSnapshot`), never a replayed delta batch: a re-sent batch
/// would take a fresh sequence number and could regress newer state.
///
/// [`Message::Heartbeat`]: crate::message::Message::Heartbeat
#[derive(Debug, Clone, Default)]
pub struct RetransmitTracker {
    /// Flushes sent on this link so far.
    flushes_sent: u64,
    /// Highest cumulative applied count acked by the peer.
    acked: u64,
    /// Slot the current unacked frontier started waiting at.
    pending_since: Option<TimeSlot>,
    /// Retransmit attempts fired for the current frontier.
    attempts: u32,
}

impl RetransmitTracker {
    /// Record one outbox flush at `now`.
    pub fn on_flush(&mut self, now: TimeSlot) {
        self.flushes_sent += 1;
        if self.pending_since.is_none() {
            self.pending_since = Some(now);
            self.attempts = 0;
        }
    }

    /// Record the peer's cumulative applied count from a heartbeat.
    /// Returns whether the current frontier is now fully acked.
    pub fn on_ack(&mut self, seen: u64) -> bool {
        self.acked = self.acked.max(seen);
        if self.acked >= self.flushes_sent {
            self.pending_since = None;
            self.attempts = 0;
            true
        } else {
            false
        }
    }

    /// Whether an unacked frontier has outwaited its backoff deadline.
    /// Firing consumes one attempt and restarts the (doubled) backoff
    /// clock; after the attempt budget is spent the tracker stays quiet
    /// and leaves recovery to the resync path.
    pub fn should_retransmit(&mut self, now: TimeSlot, config: &LinkHealthConfig) -> bool {
        let Some(since) = self.pending_since else {
            return false;
        };
        if self.attempts >= config.max_retransmits {
            return false;
        }
        let wait = config.retransmit_base << self.attempts.min(31);
        if now.0.saturating_sub(since.0) >= wait {
            self.attempts += 1;
            self.pending_since = Some(now);
            true
        } else {
            false
        }
    }

    /// Flushes sent on this link so far.
    pub fn flushes_sent(&self) -> u64 {
        self.flushes_sent
    }

    /// Highest cumulative applied count the peer has acked.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Flushes the peer has not acknowledged yet.
    pub fn unacked(&self) -> u64 {
        self.flushes_sent.saturating_sub(self.acked)
    }
}

/// Sequence numbers remembered per stream before compaction kicks in.
/// Old duplicates below the compacted watermark are re-delivered instead
/// of dropped — harmless, since [`DedupRx`] only guards handlers that
/// are idempotent anyway.
const DEDUP_WINDOW: usize = 1024;

/// At-most-once filter for one inbound stream of self-contained
/// messages: drops network-injected duplicates, lets gaps through.
#[derive(Debug, Default)]
pub struct DedupRx {
    /// Every sequence number below this has been delivered (or
    /// compacted away).
    delivered_below: u64,
    /// Delivered sequence numbers at or above the watermark.
    seen: BTreeSet<u64>,
    /// Duplicates dropped.
    pub duplicates: u64,
}

impl DedupRx {
    /// Whether an envelope with this sequence number should be
    /// delivered. Unsequenced envelopes always deliver.
    pub fn accept(&mut self, seq: Option<u64>) -> bool {
        let Some(seq) = seq else {
            return true;
        };
        // In-order fast path (the reliable wire): nothing is parked, so
        // delivery is a watermark bump — no tree operations at all.
        if seq == self.delivered_below && self.seen.is_empty() {
            self.delivered_below += 1;
            return true;
        }
        if seq < self.delivered_below || !self.seen.insert(seq) {
            self.duplicates += 1;
            return false;
        }
        // Advance the watermark over any now-contiguous prefix.
        while self.seen.remove(&self.delivered_below) {
            self.delivered_below += 1;
        }
        // Bound memory under permanent gaps (a lost envelope's slot
        // never fills): compact the oldest remembered numbers away.
        while self.seen.len() > DEDUP_WINDOW {
            if let Some(&min) = self.seen.iter().next() {
                self.seen.remove(&min);
                self.delivered_below = self.delivered_below.max(min + 1);
            }
        }
        true
    }

    /// Export the filter state for a WAL snapshot:
    /// `(delivered_below, seen, duplicates)`.
    pub fn export_state(&self) -> (u64, Vec<u64>, u64) {
        (
            self.delivered_below,
            self.seen.iter().copied().collect(),
            self.duplicates,
        )
    }

    /// Rebuild a filter from snapshot state produced by
    /// [`export_state`](Self::export_state) — recovery resumes exactly
    /// where the crashed node's duplicate window stood.
    pub fn from_state(delivered_below: u64, seen: Vec<u64>, duplicates: u64) -> DedupRx {
        DedupRx {
            delivered_below,
            seen: seen.into_iter().collect(),
            duplicates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use mirabel_core::{FlexOfferId, NodeId, TimeSlot};

    fn env(seq: u64) -> Envelope {
        Envelope::new(
            NodeId(1),
            NodeId(2),
            TimeSlot(0),
            Message::OfferRejected {
                offer: FlexOfferId(seq),
            },
        )
        .with_seq(seq)
    }

    fn seqs(envelopes: &[Envelope]) -> Vec<u64> {
        envelopes.iter().map(|e| e.seq.unwrap()).collect()
    }

    #[test]
    fn in_order_stream_delivers_immediately() {
        let mut rx = SequencedRx::default();
        for s in 0..5 {
            let (out, resync) = rx.receive(env(s));
            assert_eq!(seqs(&out), vec![s]);
            assert!(!resync);
        }
        assert_eq!(rx.stats().delivered, 5);
        assert_eq!(rx.stats().resyncs_requested, 0);
    }

    #[test]
    fn duplicate_is_dropped() {
        let mut rx = SequencedRx::default();
        rx.receive(env(0));
        let (out, resync) = rx.receive(env(0));
        assert!(out.is_empty());
        assert!(!resync);
        assert_eq!(rx.stats().duplicates, 1);
    }

    #[test]
    fn gap_buffers_and_requests_resync_until_closed() {
        let mut rx = SequencedRx::default();
        rx.receive(env(0));
        // 1 is lost; 2 and 3 arrive.
        let (out, resync) = rx.receive(env(2));
        assert!(out.is_empty());
        assert!(resync, "gap must request a resync");
        // Still gapped: re-request (the first request may be lost too).
        let (out, resync) = rx.receive(env(3));
        assert!(out.is_empty());
        assert!(resync);
        assert!(rx.resync_pending());
        assert_eq!(rx.buffered(), 2);
        // The lost envelope finally arrives late: the whole run drains
        // in order.
        let (out, resync) = rx.receive(env(1));
        assert_eq!(seqs(&out), vec![1, 2, 3]);
        assert!(!resync);
        assert!(!rx.resync_pending());
    }

    #[test]
    fn snapshot_supersedes_gap_and_releases_successors() {
        let mut rx = SequencedRx::default();
        rx.receive(env(0));
        rx.receive(env(2)); // gap at 1
        rx.receive(env(4)); // gap at 3
                            // Snapshot stamped seq 5: 1–4 are superseded (their effect is in
                            // the snapshot), nothing is buffered beyond it.
        let released = rx.resynced(Some(5));
        assert!(released.is_empty());
        assert!(!rx.resync_pending());
        assert_eq!(rx.buffered(), 0);
        // The stream continues cleanly at 6.
        let (out, resync) = rx.receive(env(6));
        assert_eq!(seqs(&out), vec![6]);
        assert!(!resync);
        // Late duplicates of superseded envelopes are dropped.
        let (out, _) = rx.receive(env(2));
        assert!(out.is_empty());
    }

    #[test]
    fn snapshot_releases_buffered_beyond_it() {
        let mut rx = SequencedRx::default();
        rx.receive(env(0));
        rx.receive(env(3)); // gaps at 1, 2
        rx.receive(env(4));
        // Snapshot stamped 2 (sent after deltas 1 and 2, before 3): the
        // buffered 3 and 4 apply on top, in order.
        let released = rx.resynced(Some(2));
        assert_eq!(seqs(&released), vec![3, 4]);
        assert_eq!(rx.buffered(), 0);
    }

    #[test]
    fn unsequenced_envelopes_bypass_the_guard() {
        let mut rx = SequencedRx::default();
        let direct = Envelope::new(NodeId(1), NodeId(2), TimeSlot(0), Message::ResyncRequest);
        let (out, resync) = rx.receive(direct);
        assert_eq!(out.len(), 1);
        assert!(!resync);
    }

    #[test]
    fn dedup_drops_duplicates_lets_gaps_through() {
        let mut rx = DedupRx::default();
        assert!(rx.accept(Some(0)));
        assert!(!rx.accept(Some(0)));
        // Gap: 1 is lost, 2 delivers anyway.
        assert!(rx.accept(Some(2)));
        assert!(!rx.accept(Some(2)));
        // The late 1 is not a duplicate.
        assert!(rx.accept(Some(1)));
        assert!(!rx.accept(Some(1)));
        assert_eq!(rx.duplicates, 3);
        assert!(rx.accept(None), "unsequenced always delivers");
    }

    #[test]
    fn buffer_overflow_drops_and_forces_resync() {
        let mut rx = SequencedRx::with_buffer_cap(3);
        rx.receive(env(0));
        // Seq 1 lost; 2, 3, 4 park (cap reached), 5 overflows.
        for s in 2..=4 {
            let (out, resync) = rx.receive(env(s));
            assert!(out.is_empty());
            assert!(resync);
        }
        assert_eq!(rx.buffered(), 3);
        let (out, resync) = rx.receive(env(5));
        assert!(out.is_empty());
        assert!(resync, "overflow still asks for a resync");
        assert_eq!(rx.buffered(), 0, "parked envelopes were discarded");
        assert_eq!(rx.stats().overflow_dropped, 4);
        // The snapshot (stamped 5) re-anchors the stream; 6 flows.
        let released = rx.resynced(Some(5));
        assert!(released.is_empty());
        let (out, resync) = rx.receive(env(6));
        assert_eq!(seqs(&out), vec![6]);
        assert!(!resync);
    }

    #[test]
    fn dedup_state_export_restore_roundtrip() {
        let mut rx = DedupRx::default();
        for s in [0u64, 1, 3, 7] {
            rx.accept(Some(s));
        }
        rx.accept(Some(3)); // one duplicate
        let (below, seen, dups) = rx.export_state();
        let mut restored = DedupRx::from_state(below, seen, dups);
        // Same acceptance behaviour as the original going forward.
        assert!(!restored.accept(Some(7)), "remembered as delivered");
        assert!(restored.accept(Some(2)), "gap slot still deliverable");
        assert_eq!(restored.duplicates, dups + 1);
    }

    #[test]
    fn dedup_window_is_bounded_under_permanent_gaps() {
        let mut rx = DedupRx::default();
        // Seq 0 never arrives: every later number stays in `seen` until
        // compaction bounds it.
        for s in 1..(DEDUP_WINDOW as u64 + 100) {
            assert!(rx.accept(Some(s)));
        }
        assert!(rx.seen.len() <= DEDUP_WINDOW);
    }

    #[test]
    fn sequenced_rx_state_freezes_and_restores_mid_gap() {
        let mut rx = SequencedRx::with_buffer_cap(8);
        rx.receive(env(0));
        rx.receive(env(2)); // gap at 1 parks seq 2
        let state = rx.export_state();
        assert_eq!(state.next_expected, 1);
        assert_eq!(state.buffered.len(), 1);
        assert!(state.resync_pending);
        // Wire roundtrip, then resume: the late 1 still drains 1 and 2.
        let back = SequencedRxState::from_bytes(&state.to_bytes()).unwrap();
        assert_eq!(back, state);
        let mut restored = SequencedRx::from_state(back);
        let (out, resync) = restored.receive(env(1));
        assert_eq!(seqs(&out), vec![1, 2]);
        assert!(!resync);
        assert_eq!(restored.stats().delivered, rx.stats().delivered + 2);
    }

    #[test]
    fn link_health_walks_up_suspect_down_recovering_up() {
        let config = LinkHealthConfig {
            suspect_after: 10,
            down_after: 20,
            ..LinkHealthConfig::default()
        };
        let mut health = LinkHealth::new(config);
        assert_eq!(health.tick(TimeSlot(0)), LinkState::Up);
        assert_eq!(health.tick(TimeSlot(9)), LinkState::Up);
        assert_eq!(health.tick(TimeSlot(10)), LinkState::Suspect);
        // Fresh traffic heals Suspect straight back to Up.
        health.heard(TimeSlot(11));
        assert_eq!(health.tick(TimeSlot(12)), LinkState::Up);
        // Silence past the down horizon islands the link.
        assert_eq!(health.tick(TimeSlot(31)), LinkState::Down);
        assert_eq!(health.tick(TimeSlot(99)), LinkState::Down, "Down is sticky");
        // Traffic resumes: Recovering first, Up once the next tick
        // confirms the traffic is fresh.
        health.heard_heartbeat(TimeSlot(100));
        assert_eq!(health.state(), LinkState::Recovering);
        assert_eq!(health.tick(TimeSlot(101)), LinkState::Up);
        let stats = health.stats();
        assert_eq!(stats.suspects, 1);
        assert_eq!(stats.downs, 1);
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.heartbeats_seen, 1);
    }

    #[test]
    fn link_health_recovering_can_relapse_to_down() {
        let config = LinkHealthConfig {
            suspect_after: 10,
            down_after: 20,
            ..LinkHealthConfig::default()
        };
        let mut health = LinkHealth::new(config);
        health.tick(TimeSlot(0));
        assert_eq!(health.tick(TimeSlot(25)), LinkState::Down);
        health.heard(TimeSlot(26));
        assert_eq!(health.state(), LinkState::Recovering);
        // No further traffic: the heal did not stick.
        assert_eq!(health.tick(TimeSlot(50)), LinkState::Down);
        assert_eq!(health.stats().downs, 2);
        assert_eq!(health.stats().recoveries, 0);
    }

    #[test]
    fn retransmit_tracker_backs_off_exponentially_and_is_bounded() {
        let config = LinkHealthConfig {
            retransmit_base: 4,
            max_retransmits: 2,
            ..LinkHealthConfig::default()
        };
        let mut tracker = RetransmitTracker::default();
        tracker.on_flush(TimeSlot(0));
        assert_eq!(tracker.unacked(), 1);
        assert!(!tracker.should_retransmit(TimeSlot(3), &config));
        // First deadline: base << 0 = 4 slots.
        assert!(tracker.should_retransmit(TimeSlot(4), &config));
        // Second deadline doubles: base << 1 = 8 slots after the retry.
        assert!(!tracker.should_retransmit(TimeSlot(11), &config));
        assert!(tracker.should_retransmit(TimeSlot(12), &config));
        // Attempt budget spent: the tracker stays quiet forever after.
        assert!(!tracker.should_retransmit(TimeSlot(10_000), &config));
        // A full ack clears the frontier and re-arms the tracker.
        assert!(tracker.on_ack(1));
        tracker.on_flush(TimeSlot(10_100));
        assert!(tracker.should_retransmit(TimeSlot(10_104), &config));
        // Partial acks do not clear the frontier.
        tracker.on_flush(TimeSlot(10_105));
        assert!(!tracker.on_ack(2));
        assert_eq!(tracker.unacked(), 1);
    }
}
