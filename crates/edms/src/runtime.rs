//! The unified node runtime: one prepare → replan → commit life-cycle
//! for every planning level of the hierarchy.
//!
//! The paper's EDMS repeats the same aggregate → schedule → disaggregate
//! cycle at every level ("the process is essentially repeated at a
//! higher level", §2). PR 2 grew the *incremental, event-driven* version
//! of that cycle inside the BRP; this module extracts it so the TSO (and
//! any future level) runs the identical machinery:
//!
//! * [`PlanEngine`] owns a node's aggregation pipeline plus the **live
//!   plan** — a [`DeltaEvaluator`] that survives between scheduling and
//!   commitment. It implements the three phases:
//!   1. [`PlanEngine::prepare`] — schedule the window-eligible macro
//!      offers (parallel best-of-K restarts) and keep the search state
//!      alive instead of throwing it away;
//!   2. [`PlanEngine::on_forecast_event`] — rebase the live evaluator on
//!      exactly the slots a typed pub/sub forecast event moved
//!      (lineage-guarded), then run a scoped parallel multi-start
//!      repair — O(changed), never a problem reconstruction; its
//!      sibling [`PlanEngine::apply_offer_updates`] runs pool deltas
//!      through the aggregation pipeline *and folds the resulting
//!      aggregate changes into the live plan*: new/updated macro offers
//!      are spliced into the evaluator at O(offer duration) each
//!      ([`DeltaEvaluator::insert_offer`] / `remove_offer`), followed by
//!      a repair scoped to the touched slots — a trickle offer change
//!      replans in time proportional to the *trickle*, not the pool;
//!   3. [`PlanEngine::commit`] — hand the (possibly repaired) problem +
//!      solution back for node-specific disaggregation.
//! * [`Node`] is the minimal message-handling surface the simulation's
//!   generic event pump drains — every hierarchy level implements it;
//! * [`NodeRuntime`] extends [`Node`] with the planning life-cycle —
//!   levels 2 (BRP) and 3 (TSO) implement it, so the simulation drives
//!   the whole hierarchy as one list of planners instead of hand-ordered
//!   per-level calls.
//!
//! One `NodeRuntime` level list is one **region**. The multi-region
//! [`Federation`](crate::federation::Federation) instantiates N of
//! these hierarchies — each with its own network, WAL namespace and
//! derived RNG stream — drives them in parallel (`Pool::run_each`; the
//! trees share no mutable state), and splices only their TSOs' macro
//! exports together at the top, so everything in this module stays
//! region-oblivious.

use crate::message::Envelope;
use mirabel_aggregate::{AggregateUpdate, AggregationPipeline, FlexOfferUpdate};
use mirabel_core::exec::Pool;
use mirabel_core::{FlexOffer, FlexOfferId, NodeId, TimeSlot};
use mirabel_forecast::ForecastEvent;
use mirabel_schedule::{
    multi_start, offer_reach, repair_parallel, repair_scope, Budget, DeltaEvaluator,
    EvolutionaryScheduler, GreedyScheduler, HybridScheduler, MarketPrices, Placement, RepairConfig,
    SchedulingProblem, Solution,
};
use std::collections::BTreeMap;

/// Which metaheuristic a planning node runs (paper §6 provides two; the
/// hybrid is the future-work extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Randomized greedy search.
    Greedy,
    /// Evolutionary algorithm.
    Evolutionary,
    /// Greedy-seeded EA.
    Hybrid,
}

/// Scheduling/replanning knobs shared by every [`PlanEngine`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Scheduling algorithm for the initial plan.
    pub scheduler: SchedulerKind,
    /// Cost-evaluation budget per planning run.
    pub budget_evaluations: usize,
    /// Parallel best-of-K restarts of the *initial* scheduler run (1 =
    /// single start; chain 0 always reproduces the single-start result).
    pub initial_starts: usize,
    /// Parallel multi-start chains (K) per incremental repair.
    pub repair_chains: usize,
    /// Proposed moves per repair chain.
    pub repair_moves: usize,
    /// Worker pool every parallel path of this engine dispatches onto —
    /// initial-start chains, repair chains, and the aggregation
    /// pipeline's shard-parallel flush. Handles are cheap `Arc` clones;
    /// the default is the process-wide [`Pool::global`], so a whole
    /// hierarchy of nodes shares one set of parked workers instead of
    /// re-spawning threads per node per round. Output never depends on
    /// the pool width.
    pub pool: Pool,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        let repair = RepairConfig::default();
        RuntimeConfig {
            scheduler: SchedulerKind::Greedy,
            budget_evaluations: 20_000,
            initial_starts: 1,
            repair_chains: repair.chains,
            repair_moves: repair.moves_per_chain,
            pool: Pool::global().clone(),
        }
    }
}

/// Outcome of one planning run ([`NodeRuntime::prepare_plan`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanReport {
    /// Offers expired (assignment deadline passed) and dropped.
    pub expired: usize,
    /// Macro offers eligible for the window.
    pub eligible_macro: usize,
    /// Macro-offer deltas forwarded to the parent node.
    pub forwarded: usize,
    /// Micro assignments produced.
    pub assignments: usize,
    /// Total schedule cost, when scheduled locally.
    pub cost: Option<f64>,
}

/// Outcome of one incremental replan after a forecast event
/// ([`NodeRuntime::on_forecast_event`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanReport {
    /// Slots whose forecast moved (and were re-priced by the rebase).
    pub changed_slots: usize,
    /// Offers inside the repair scope.
    pub scoped_offers: usize,
    /// Total cost right after the rebase, before repair.
    pub cost_before: f64,
    /// Total cost after the parallel multi-start repair.
    pub cost_after: f64,
}

/// Outcome of folding a batch of offer-pool deltas into a live plan
/// ([`PlanEngine::apply_offer_updates`] while a plan is live).
#[derive(Debug, Clone, PartialEq)]
pub struct OfferDeltaReport {
    /// Macro offers newly spliced into the live problem.
    pub inserted: usize,
    /// Macro offers removed from the live problem.
    pub removed: usize,
    /// Macro offers whose value changed in place (remove + re-insert).
    pub replaced: usize,
    /// Offers inside the post-splice repair scope.
    pub scoped_offers: usize,
    /// Total cost right after the splices, before repair.
    pub cost_before: f64,
    /// Total cost after the scoped repair.
    pub cost_after: f64,
}

impl OfferDeltaReport {
    /// Whether the deltas actually touched the live problem.
    pub fn touched(&self) -> bool {
        self.inserted + self.removed + self.replaced > 0
    }
}

/// The live planning state kept between `prepare` and `commit`: the
/// evaluator owns its problem, so forecast events rebase it in place and
/// offer deltas splice into it — no problem reconstruction, no resync.
#[derive(Debug)]
struct LivePlan {
    eval: DeltaEvaluator<'static>,
    window_start: TimeSlot,
    /// Offer id → index in the live problem. Maintained across
    /// `swap_remove`s so a pool delta finds its offer in O(log n).
    index: BTreeMap<FlexOfferId, usize>,
}

/// The shared planning core of a hierarchy node: aggregation pipeline +
/// live delta evaluator + the prepare/replan/commit life-cycle.
#[derive(Debug)]
pub struct PlanEngine {
    pipeline: AggregationPipeline,
    cfg: RuntimeConfig,
    live: Option<LivePlan>,
    /// The engine's identity seed, fixed at construction.
    base_seed: u64,
    /// The current window's running seed, re-derived from
    /// `(base_seed, window_start)` at every [`PlanEngine::prepare`] and
    /// bumped per stochastic use within the window. Deriving it from the
    /// window — not from a running history counter — means two runs that
    /// agree on a window's inputs plan it identically *even if their
    /// histories differ* (e.g. a chaos run that needed extra resync
    /// repairs earlier converges back to the no-chaos run's plans).
    seed: u64,
}

/// Mix a window start into an engine's base seed (splitmix64 finalizer).
fn window_seed(base: u64, window_start: TimeSlot) -> u64 {
    let mut z = base ^ (window_start.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl PlanEngine {
    /// Engine around an aggregation pipeline. The pipeline's flush is
    /// rewired onto the config's shared worker pool, so aggregation and
    /// scheduling run on the same executor.
    pub fn new(mut pipeline: AggregationPipeline, cfg: RuntimeConfig, seed: u64) -> PlanEngine {
        pipeline.set_flush_pool(cfg.pool.clone());
        PlanEngine {
            pipeline,
            cfg,
            live: None,
            base_seed: seed,
            seed,
        }
    }

    /// The aggregation pipeline (read-only; mutate through
    /// [`apply_offer_updates`](Self::apply_offer_updates) so live plans
    /// stay in sync).
    pub fn pipeline(&self) -> &AggregationPipeline {
        &self.pipeline
    }

    /// The shared worker pool this engine dispatches onto.
    pub fn pool(&self) -> &Pool {
        &self.cfg.pool
    }

    /// Window start of the live plan, if one is pending commitment.
    pub fn live_window(&self) -> Option<TimeSlot> {
        self.live.as_ref().map(|l| l.window_start)
    }

    /// Drop the live plan without committing it (a new planning round is
    /// starting; pool deltas must not be folded into the stale window).
    pub fn abandon(&mut self) {
        self.live = None;
    }

    /// The live plan's problem, if one is pending commitment.
    pub fn live_problem(&self) -> Option<&SchedulingProblem> {
        self.live.as_ref().map(|l| l.eval.problem())
    }

    /// The live plan's current solution.
    pub fn live_solution(&self) -> Option<&Solution> {
        self.live.as_ref().map(|l| l.eval.solution())
    }

    /// The live plan's current total cost.
    pub fn live_cost(&self) -> Option<f64> {
        self.live.as_ref().map(|l| l.eval.total())
    }

    /// Macro offers that fit entirely inside `[start, start+horizon)`.
    pub fn eligible_macros(&self, start: TimeSlot, horizon: usize) -> Vec<FlexOffer> {
        let end = start + horizon as u32;
        self.pipeline
            .macro_offers()
            .into_iter()
            .filter(|m| m.earliest_start() >= start && m.latest_end() <= end)
            .collect()
    }

    /// Number of window-eligible macro offers, counted straight off the
    /// aggregate store — no `FlexOffer` materialization (reporting-only
    /// callers must not pay O(aggregates × profile) clones).
    pub fn eligible_count(&self, start: TimeSlot, horizon: usize) -> usize {
        let end = start + horizon as u32;
        self.pipeline
            .aggregates()
            .filter(|a| a.earliest_start >= start && a.latest_start + a.duration() <= end)
            .count()
    }

    /// Phase 1: schedule the eligible macro offers against `baseline`
    /// and keep the result as a live evaluator. Returns the number of
    /// eligible macros and, when any were scheduled, the plan cost. Any
    /// previous live plan is discarded.
    pub fn prepare(
        &mut self,
        window_start: TimeSlot,
        baseline: Vec<f64>,
        prices: MarketPrices,
        penalties: Vec<f64>,
    ) -> (usize, Option<f64>) {
        self.live = None;
        // Reset the stochastic stream for this window even if nothing
        // ends up eligible — later windows must not see a seed offset
        // that depends on how many empty windows preceded them.
        self.seed = window_seed(self.base_seed, window_start);
        let horizon = baseline.len();
        let macros = self.eligible_macros(window_start, horizon);
        let eligible = macros.len();
        if macros.is_empty() {
            return (0, None);
        }
        let problem = SchedulingProblem::new(window_start, baseline, macros, prices, penalties)
            .expect("eligible macros fit the window");
        let budget = Budget::evaluations(self.cfg.budget_evaluations);
        let seed = self.seed;
        let starts = self.cfg.initial_starts.max(1);
        let pool = &self.cfg.pool;
        let result = match self.cfg.scheduler {
            SchedulerKind::Greedy => multi_start(starts, seed, pool, |s| {
                GreedyScheduler.run(&problem, budget, s)
            }),
            SchedulerKind::Evolutionary => multi_start(starts, seed, pool, |s| {
                EvolutionaryScheduler::default().run(&problem, budget, s)
            }),
            SchedulerKind::Hybrid => multi_start(starts, seed, pool, |s| {
                HybridScheduler::default().run(&problem, budget, s)
            }),
        };
        let cost = result.cost.total();
        let index = problem
            .offers
            .iter()
            .enumerate()
            .map(|(j, o)| (o.id(), j))
            .collect();
        self.live = Some(LivePlan {
            eval: DeltaEvaluator::new_owned(problem, result.solution),
            window_start,
            index,
        });
        (eligible, Some(cost))
    }

    /// Phase 2: react to a typed forecast change event on the live plan:
    /// rebase the evaluator to the event's forecast (re-pricing only the
    /// changed slots), then run a parallel multi-start repair restricted
    /// to the offers that can reach them. Returns `None` when there is
    /// no live plan or the event does not match its horizon.
    ///
    /// The event's ranges are relative to the *hub's* last delivery; if
    /// the live baseline has diverged from that lineage (e.g. the plan
    /// was prepared from a post-processed forecast), the extra differing
    /// slots are detected by an O(horizon) scan and folded into the
    /// rebase, so the result is always exact.
    pub fn on_forecast_event(&mut self, event: &ForecastEvent) -> Option<ReplanReport> {
        let live = self.live.as_mut()?;
        let horizon = live.eval.problem().horizon();
        if event.forecast.len() != horizon {
            return None;
        }
        let mut touched = vec![false; horizon];
        for t in event.changed_slots() {
            if t < horizon {
                touched[t] = true;
            }
        }
        for (i, (new, old)) in event
            .forecast
            .iter()
            .zip(&live.eval.problem().baseline_imbalance)
            .enumerate()
        {
            if new != old {
                touched[i] = true;
            }
        }
        let changed: Vec<usize> = touched
            .iter()
            .enumerate()
            .filter(|(_, &t)| t)
            .map(|(i, _)| i)
            .collect();
        let cost_before = live.eval.rebase(&event.forecast, &changed);
        let scope = repair_scope(live.eval.problem(), &changed);
        self.seed = self.seed.wrapping_add(1);
        let cost_after = repair_parallel(
            &mut live.eval,
            &scope,
            RepairConfig {
                chains: self.cfg.repair_chains,
                moves_per_chain: self.cfg.repair_moves,
                seed: self.seed,
            },
            &self.cfg.pool,
        );
        Some(ReplanReport {
            changed_slots: changed.len(),
            scoped_offers: scope.len(),
            cost_before,
            cost_after,
        })
    }

    /// Phase 2b: run a batch of offer-pool deltas through the
    /// aggregation pipeline, and — when a plan is live — fold the
    /// emitted aggregate changes straight into the live evaluator:
    /// removed aggregates leave the problem (O(duration) withdrawal),
    /// new or updated window-eligible aggregates are spliced in at their
    /// baseline placement, and a parallel repair scoped to the touched
    /// slots re-optimizes. Cost is proportional to the delta, never to
    /// the pool.
    ///
    /// Returns the pipeline's aggregate update stream (for forwarding up
    /// the hierarchy) plus the live-plan fold report, when one applied.
    pub fn apply_offer_updates(
        &mut self,
        updates: Vec<FlexOfferUpdate>,
    ) -> (Vec<AggregateUpdate>, Option<OfferDeltaReport>) {
        let agg_updates = self.pipeline.apply(updates);
        let report = self.fold_into_live(&agg_updates);
        (agg_updates, report)
    }

    /// Splice a stream of aggregate updates into the live plan.
    fn fold_into_live(&mut self, updates: &[AggregateUpdate]) -> Option<OfferDeltaReport> {
        if updates.is_empty() {
            return None;
        }
        let live = self.live.as_mut()?;
        let horizon = live.eval.problem().horizon();
        let end = live.window_start + horizon as u32;
        let cost_before_splice = live.eval.total();
        let mut touched_slots: Vec<usize> = Vec::new();
        let mut report = OfferDeltaReport {
            inserted: 0,
            removed: 0,
            replaced: 0,
            scoped_offers: 0,
            cost_before: cost_before_splice,
            cost_after: cost_before_splice,
        };
        for u in updates {
            match u {
                AggregateUpdate::Removed(agg_id) => {
                    let fid = FlexOfferId(agg_id.value());
                    if remove_live_offer(live, fid, &mut touched_slots) {
                        report.removed += 1;
                    }
                }
                AggregateUpdate::Upsert(agg) => {
                    let offer = agg
                        .to_flex_offer()
                        .expect("aggregates are valid flex-offers by construction");
                    let fid = offer.id();
                    let eligible =
                        offer.earliest_start() >= live.window_start && offer.latest_end() <= end;
                    let was_live = live.index.contains_key(&fid);
                    match (was_live, eligible) {
                        (true, true) => {
                            remove_live_offer(live, fid, &mut touched_slots);
                            insert_live_offer(live, offer, &mut touched_slots);
                            report.replaced += 1;
                        }
                        (true, false) => {
                            remove_live_offer(live, fid, &mut touched_slots);
                            report.removed += 1;
                        }
                        (false, true) => {
                            insert_live_offer(live, offer, &mut touched_slots);
                            report.inserted += 1;
                        }
                        (false, false) => {}
                    }
                }
            }
        }
        if !report.touched() {
            return Some(report);
        }
        report.cost_before = live.eval.total();
        let scope = repair_scope(live.eval.problem(), &touched_slots);
        report.scoped_offers = scope.len();
        self.seed = self.seed.wrapping_add(1);
        report.cost_after = repair_parallel(
            &mut live.eval,
            &scope,
            RepairConfig {
                chains: self.cfg.repair_chains,
                moves_per_chain: self.cfg.repair_moves,
                seed: self.seed,
            },
            &self.cfg.pool,
        );
        Some(report)
    }

    /// Phase 3: take the live plan for commitment. Returns the problem,
    /// the (possibly repaired) solution and its total cost; the caller
    /// disaggregates and performs its node-specific bookkeeping.
    pub fn commit(&mut self) -> Option<(SchedulingProblem, Solution, f64)> {
        let live = self.live.take()?;
        let cost = live.eval.total();
        let (problem, solution) = live.eval.into_problem_and_solution();
        Some((problem, solution, cost))
    }
}

/// Remove the live offer with id `fid`, recording its reachable slots
/// and re-homing the index entry `swap_remove` displaced. Returns
/// whether the offer was live.
fn remove_live_offer(live: &mut LivePlan, fid: FlexOfferId, touched: &mut Vec<usize>) -> bool {
    let Some(j) = live.index.remove(&fid) else {
        return false;
    };
    let p = live.eval.problem();
    touched.extend(offer_reach(p, &p.offers[j]));
    live.eval.remove_offer(j);
    if j < live.eval.problem().offers.len() {
        let moved = live.eval.problem().offers[j].id();
        live.index.insert(moved, j);
    }
    true
}

/// Splice `offer` into the live problem at its baseline placement,
/// recording its reachable slots.
fn insert_live_offer(live: &mut LivePlan, offer: FlexOffer, touched: &mut Vec<usize>) {
    let placement = Placement::baseline(&offer);
    let fid = offer.id();
    let j = live.eval.insert_offer(offer, placement);
    let p = live.eval.problem();
    touched.extend(offer_reach(p, &p.offers[j]));
    live.index.insert(fid, j);
}

/// The minimal message surface of a hierarchy node: what the generic
/// event pump needs to drain an inbox.
pub trait Node {
    /// This node's network id.
    fn node_id(&self) -> NodeId;
    /// Handle one routed message; returns reply envelopes.
    fn handle(&mut self, envelope: Envelope, now: TimeSlot) -> Vec<Envelope>;
}

/// A planning node (hierarchy level 2 or 3): the full
/// prepare → replan → commit life-cycle on top of [`Node`].
pub trait NodeRuntime: Node {
    /// Plan the window against a baseline forecast, keeping the result
    /// live; returns upward-bound envelopes (e.g. macro-offer deltas)
    /// plus the report.
    fn prepare_plan(
        &mut self,
        now: TimeSlot,
        window_start: TimeSlot,
        baseline: Vec<f64>,
        prices: MarketPrices,
        penalties: Vec<f64>,
    ) -> (Vec<Envelope>, PlanReport);

    /// Incrementally replan the live plan after a forecast change event.
    fn on_forecast_event(&mut self, event: &ForecastEvent) -> Option<ReplanReport>;

    /// Commit the live plan: disaggregate into assignments for the
    /// level below. Empty when no plan is live.
    fn commit_plan(&mut self, now: TimeSlot) -> Vec<Envelope>;

    /// Window start of the live plan, if one is pending commitment.
    fn live_window(&self) -> Option<TimeSlot>;
}
