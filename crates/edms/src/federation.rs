//! Multi-region federation: sharded TSO hierarchies with cross-border
//! macro-offer exchange.
//!
//! One [`Federation`] owns `N` regions. Each region is a complete,
//! self-contained [`RegionSim`] — its own [`Network`], node-id space,
//! WAL namespace and RNG streams (the per-region seed is a splitmix
//! derivation of the base seed and the region id, so regions are
//! statistically independent shards of the same configured population).
//! On top sits a single **exchange layer**: every regional TSO owns an
//! [`ExchangeGateway`] that publishes its net exportable surplus as
//! bounded [`Message::ExchangeOfferDeltas`] batches — the same
//! delta-wire contract the intra-region macro-offer stream uses, in
//! the TSO's export-id space — onto an inter-regional bus with its own
//! sequenced-stream guards and resync path.
//!
//! ## Parallelism and determinism
//!
//! Regions share **no mutable state**, so [`Federation::run_cycle`]
//! hands each region's entire intra-region wave to the pool as one
//! `run_each` task: whole regions plan concurrently, and within each
//! region the usual level waves parallelize on the same lanes (nested
//! `run_each`). Only the exchange splice at the top is serial, and it
//! walks regions in region order — so every report stays bit-identical
//! at any pool width *and* any region count split of the same
//! population.
//!
//! ## The exchange is advisory netting
//!
//! Imported macro offers never enter a region's planning state: the
//! exchange *observes* each region's pre-flexibility residual
//! ([`RegionSim::cycle_residual`]) and the published surplus, and
//! settles the matchable energy at federation level
//! ([`ExchangeReport::matched_kwh`]). This is deliberate — it keeps a
//! region inside a federation byte-for-byte identical to the same
//! region simulated solo (the fault-isolation proof in
//! [`run_federation_campaign`](crate::chaos::run_federation_campaign)
//! depends on it). Binding cross-border assignment — feeding imported
//! offers into the importing TSO's scheduling pipeline — is future
//! work and would trade that isolation for coupling.
//!
//! [`Message::ExchangeOfferDeltas`]: crate::message::Message::ExchangeOfferDeltas

use crate::comm::{splitmix, ChaosPlan, FailureModel, Network, NetworkStats};
use crate::message::{Envelope, Message};
use crate::simulation::{RegionSim, SimulationConfig, SimulationReport};
use crate::wire::{LinkHealthStats, SequencedRx, StreamStats};
use mirabel_aggregate::FlexOfferUpdate;
use mirabel_core::exec::Task;
use mirabel_core::{FlexOffer, FlexOfferId, NodeId, RegionId, TimeSlot, SLOTS_PER_DAY};
use std::collections::BTreeMap;

/// Upper bound on exchange pump rounds per cycle: publish, then at most
/// three request/snapshot round-trips. The bus is drained to quiescence
/// within the bound or left to self-heal next cycle (deadline expiry
/// cleans stale imports either way).
const EXCHANGE_ROUNDS: usize = 4;

/// A regional TSO's cross-border endpoint: publishes the region's
/// exportable surplus as deltas, maintains a sequenced, resyncable view
/// of every peer's exports.
///
/// The gateway speaks the exact PR 4 delta-wire contract —
/// [`Message::ExchangeOfferDeltas`] batches guarded per peer by a
/// [`SequencedRx`], gaps answered with [`Message::ResyncRequest`],
/// snapshots replacing the imported view — so the exchange inherits the
/// intra-region wire's self-healing story unchanged.
///
/// [`Message::ExchangeOfferDeltas`]: crate::message::Message::ExchangeOfferDeltas
/// [`Message::ResyncRequest`]: crate::message::Message::ResyncRequest
#[derive(Debug)]
pub struct ExchangeGateway {
    region: RegionId,
    endpoint: NodeId,
    /// What this gateway last published, by export id — the diff base.
    exports: BTreeMap<FlexOfferId, FlexOffer>,
    /// Per-peer sequenced-stream guards over the bus.
    rx: BTreeMap<NodeId, SequencedRx>,
    /// Per-peer imported view: peer endpoint → its published offers.
    /// Offers stay in the *exporter's* id space; keeping one map per
    /// peer is what makes id collisions across regions impossible.
    imports: BTreeMap<NodeId, BTreeMap<FlexOfferId, FlexOffer>>,
    /// Delta envelopes published onto the bus.
    pub deltas_published: u64,
    /// Resync snapshots served to peers.
    pub snapshots_served: u64,
}

impl ExchangeGateway {
    /// A gateway for `region`, reachable on the bus as `endpoint`.
    pub fn new(region: RegionId, endpoint: NodeId) -> ExchangeGateway {
        ExchangeGateway {
            region,
            endpoint,
            exports: BTreeMap::new(),
            rx: BTreeMap::new(),
            imports: BTreeMap::new(),
            deltas_published: 0,
            snapshots_served: 0,
        }
    }

    /// The region this gateway exports for.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// The gateway's bus address.
    pub fn endpoint(&self) -> NodeId {
        self.endpoint
    }

    /// Publish the region's current exportable set: diff `current`
    /// against the last published view — deletes first, then inserts,
    /// both ascending by id — and address one identical
    /// `ExchangeOfferDeltas` envelope to every peer. An unchanged set
    /// publishes nothing (the steady-state cost of the exchange is zero
    /// envelopes, exactly like the intra-region delta wire).
    pub fn publish(
        &mut self,
        current: &[FlexOffer],
        peers: &[NodeId],
        now: TimeSlot,
    ) -> Vec<Envelope> {
        let next: BTreeMap<FlexOfferId, FlexOffer> =
            current.iter().map(|o| (o.id(), o.clone())).collect();

        let mut diff: Vec<FlexOfferUpdate> = self
            .exports
            .keys()
            .filter(|id| !next.contains_key(id))
            .map(|id| FlexOfferUpdate::Delete(*id))
            .collect();
        for (id, offer) in &next {
            if self.exports.get(id) != Some(offer) {
                diff.push(FlexOfferUpdate::Insert(offer.clone()));
            }
        }
        if diff.is_empty() {
            return Vec::new();
        }

        self.exports = next;
        self.deltas_published += peers.len() as u64;
        peers
            .iter()
            .map(|&peer| {
                Envelope::new(
                    self.endpoint,
                    peer,
                    now,
                    Message::ExchangeOfferDeltas(diff.clone()),
                )
            })
            .collect()
    }

    /// Handle one bus envelope; returns protocol replies (resync
    /// requests, served snapshots) to route back. Mirrors
    /// [`TsoNode::handle`](crate::tso::TsoNode::handle): deltas run
    /// through the per-peer guard, a gap answers with a resync request,
    /// and a snapshot replaces that peer's imported view before the
    /// buffered tail re-applies.
    pub fn handle(&mut self, envelope: Envelope, now: TimeSlot) -> Vec<Envelope> {
        match &envelope.message {
            Message::ExchangeOfferDeltas(_) => {
                let from = envelope.from;
                let (deliverable, request_resync) =
                    self.rx.entry(from).or_default().receive(envelope);
                for env in deliverable {
                    if let Message::ExchangeOfferDeltas(updates) = env.message {
                        self.apply_deltas(env.from, updates);
                    }
                }
                if request_resync {
                    return vec![Envelope::new(
                        self.endpoint,
                        from,
                        now,
                        Message::ResyncRequest,
                    )];
                }
                Vec::new()
            }
            Message::ResyncRequest => {
                self.snapshots_served += 1;
                vec![Envelope::new(
                    self.endpoint,
                    envelope.from,
                    now,
                    Message::ResyncSnapshot {
                        offers: self.exports.values().cloned().collect(),
                    },
                )]
            }
            Message::ResyncSnapshot { .. } => {
                let from = envelope.from;
                let seq = envelope.seq;
                let Message::ResyncSnapshot { offers } = envelope.message else {
                    unreachable!("matched above");
                };
                // A snapshot is authoritative: replace the peer's view
                // wholesale, then apply the buffered tail on top.
                self.imports
                    .insert(from, offers.into_iter().map(|o| (o.id(), o)).collect());
                let released = self.rx.entry(from).or_default().resynced(seq);
                for env in released {
                    if let Message::ExchangeOfferDeltas(updates) = env.message {
                        self.apply_deltas(env.from, updates);
                    }
                }
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn apply_deltas(&mut self, from: NodeId, updates: Vec<FlexOfferUpdate>) {
        let view = self.imports.entry(from).or_default();
        for u in updates {
            match u {
                FlexOfferUpdate::Insert(offer) => {
                    view.insert(offer.id(), offer);
                }
                FlexOfferUpdate::Delete(id) => {
                    view.remove(&id);
                }
            }
        }
    }

    /// This gateway's current published exports (ascending id).
    pub fn exports(&self) -> impl Iterator<Item = &FlexOffer> {
        self.exports.values()
    }

    /// The imported view of `peer`'s exports (empty if it never
    /// published).
    pub fn imports_from(&self, peer: NodeId) -> Vec<&FlexOffer> {
        self.imports
            .get(&peer)
            .map(|m| m.values().collect())
            .unwrap_or_default()
    }

    /// Total imported macro offers across all peers.
    pub fn imported_count(&self) -> usize {
        self.imports.values().map(BTreeMap::len).sum()
    }

    /// Sum of the per-peer sequenced-stream counters.
    pub fn stream_rollup(&self) -> StreamStats {
        let mut total = StreamStats::default();
        for rx in self.rx.values() {
            total.absorb(&rx.stats());
        }
        total
    }

    /// Whether this gateway's imported view of `peer` equals `exports`
    /// — the convergence probe.
    fn in_sync_with(&self, peer: NodeId, exports: &BTreeMap<FlexOfferId, FlexOffer>) -> bool {
        static EMPTY: BTreeMap<FlexOfferId, FlexOffer> = BTreeMap::new();
        self.imports.get(&peer).unwrap_or(&EMPTY) == exports
    }
}

/// Federation parameters: `regions` copies of the `sim` shape, glued by
/// the exchange layer.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Number of regions. Each gets the full `sim` population
    /// (`sim.brps × sim.prosumers_per_brp` prosumers), so splitting a
    /// fixed population across more regions means shrinking `sim`.
    pub regions: usize,
    /// The per-region simulation shape. `sim.seed` is the **base**
    /// seed: region `r` runs with
    /// [`Federation::region_seed`]`(sim.seed, r)`. `sim.chaos` may be
    /// scoped with [`ChaosPlan::in_region`]; unscoped plans hit every
    /// region.
    pub sim: SimulationConfig,
    /// Macro offers a region may export per cycle (bounds the exchange
    /// batch, and with it cross-border traffic).
    pub exchange_cap: usize,
    /// Failure injection on the inter-regional bus.
    pub exchange_failure: FailureModel,
    /// Time-phased chaos on the bus alone (storms that hit only the
    /// cross-border links, leaving every region internally healthy).
    pub exchange_chaos: ChaosPlan,
    /// Meter wire bytes on every region network (the bus is always
    /// metered). Off by default: metering changes `NetworkStats` and
    /// therefore full-report equality against unmetered twins, so only
    /// the throughput bench turns it on.
    pub meter_bytes: bool,
}

impl Default for FederationConfig {
    fn default() -> FederationConfig {
        FederationConfig {
            regions: 2,
            sim: SimulationConfig::default(),
            exchange_cap: 64,
            exchange_failure: FailureModel::reliable(),
            exchange_chaos: ChaosPlan::reliable(),
            meter_bytes: false,
        }
    }
}

/// Cross-border exchange outcome, accumulated over the run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExchangeReport {
    /// Delta envelopes published onto the bus (all gateways).
    pub deltas_published: u64,
    /// Resync snapshots served (all gateways).
    pub snapshots_served: u64,
    /// Energy matched by the federation-level advisory netting: per
    /// cycle, `min(Σ regional baseline deficit, Σ exported surplus
    /// energy)`, summed over cycles.
    pub matched_kwh: f64,
    /// Macro offers held in imported views at the end of the run.
    pub imported_offers: usize,
    /// Bus delivery counters. `bytes_sent` is always metered — the
    /// exchange-traffic ratio is the federation's headline bound.
    pub bus: NetworkStats,
    /// Sum of every gateway's per-peer sequenced-stream counters.
    pub streams: StreamStats,
    /// Whether every gateway's imported views matched every peer's
    /// exports when the run ended.
    pub converged: bool,
}

/// Per-region row of [`FederationStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegionStats {
    /// The region.
    pub region: RegionId,
    /// The region network's global delivery counters.
    pub network: NetworkStats,
    /// Envelopes currently retained in the region's dead-letter queue.
    pub dead_letters: usize,
    /// The region TSO's per-BRP sequenced-stream rollup.
    pub streams: StreamStats,
    /// Duplicates dropped by the region's BRP dedup filters.
    pub dedup_duplicates: u64,
    /// The region BRPs' TSO-link failure-detector counters, summed.
    pub link_health: LinkHealthStats,
    /// Outbox flushes the region's BRPs have sent but not yet seen
    /// acked by a TSO heartbeat.
    pub unacked_flushes: u64,
}

/// Point-in-time federation health rollup: one row per region plus the
/// cross-region exchange row.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationStats {
    /// Per-region rows, region-ordered.
    pub regions: Vec<RegionStats>,
    /// The inter-regional bus's delivery counters.
    pub exchange_bus: NetworkStats,
    /// All gateways' sequenced-stream counters, summed.
    pub exchange_streams: StreamStats,
}

/// Final federation outcome: every region's full [`SimulationReport`]
/// plus the exchange accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationReport {
    /// Per-region reports, region-ordered. Region `r` here is
    /// bit-identical to `simulate(Federation::region_config(&cfg, r))`
    /// run solo — the federation adds observation, never interference.
    pub regions: Vec<SimulationReport>,
    /// The cross-border exchange accounting.
    pub exchange: ExchangeReport,
}

impl FederationReport {
    /// Wire bytes routed inside regions (requires
    /// [`FederationConfig::meter_bytes`]; zero otherwise).
    pub fn intra_region_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.network.bytes_sent).sum()
    }

    /// Cross-border bytes as a fraction of intra-region bytes — the
    /// headline bound (< 1% at the 4 × 250k configuration). `NaN`-free:
    /// returns 0.0 when nothing was metered.
    pub fn exchange_byte_ratio(&self) -> f64 {
        let intra = self.intra_region_bytes();
        if intra == 0 {
            return 0.0;
        }
        self.exchange.bus.bytes_sent as f64 / intra as f64
    }
}

/// `N` sharded TSO hierarchies under one exchange layer.
pub struct Federation {
    cfg: FederationConfig,
    sims: Vec<RegionSim>,
    gateways: Vec<ExchangeGateway>,
    bus: Network,
    matched_kwh: f64,
}

impl Federation {
    /// Derive region `r`'s RNG seed from the base seed: a double
    /// splitmix keeps the per-region streams statistically independent
    /// even for adjacent region ids and small base seeds.
    pub fn region_seed(base: u64, region: RegionId) -> u64 {
        splitmix(base ^ splitmix(0x9e37_79b9_7f4a_7c15u64.wrapping_add(region.value())))
    }

    /// The exact [`SimulationConfig`] region `r` runs under: the shared
    /// shape with the region-derived seed, and the chaos plan only if
    /// it targets this region ([`ChaosPlan::applies_to`]). Public so
    /// campaigns and tests can construct a region's **solo twin** —
    /// `simulate(Federation::region_config(&cfg, r))` reproduces the
    /// federation's region `r` byte-for-byte.
    pub fn region_config(cfg: &FederationConfig, region: RegionId) -> SimulationConfig {
        let mut sim = cfg.sim.clone();
        sim.seed = Federation::region_seed(cfg.sim.seed, region);
        if !sim.chaos.applies_to(region) {
            sim.chaos = ChaosPlan::reliable();
        }
        sim
    }

    /// Build the federation: `regions` hierarchies plus the bus. Bus
    /// endpoints are `NodeId(1 + r)` — they live in the bus's own
    /// address space, disjoint from every region network.
    pub fn new(cfg: FederationConfig) -> Federation {
        assert!(cfg.regions > 0, "a federation needs at least one region");
        let mut bus = Network::new(cfg.exchange_failure, splitmix(cfg.sim.seed ^ 0x0b05));
        bus.set_chaos(cfg.exchange_chaos.clone());
        // The ratio bound is the exchange's contract; the bus is always
        // metered so it holds without opting the whole run in.
        bus.set_metering(true);

        let mut sims = Vec::with_capacity(cfg.regions);
        let mut gateways = Vec::with_capacity(cfg.regions);
        for r in 0..cfg.regions {
            let region = RegionId(r as u64);
            let mut sim = RegionSim::new(Federation::region_config(&cfg, region), region);
            if cfg.meter_bytes {
                sim.network_mut().set_metering(true);
            }
            let endpoint = NodeId(1 + r as u64);
            bus.register(endpoint);
            gateways.push(ExchangeGateway::new(region, endpoint));
            sims.push(sim);
        }

        Federation {
            cfg,
            sims,
            gateways,
            bus,
            matched_kwh: 0.0,
        }
    }

    /// The configuration the federation was built from.
    pub fn config(&self) -> &FederationConfig {
        &self.cfg
    }

    /// The region simulations, region-ordered.
    pub fn regions(&self) -> &[RegionSim] {
        &self.sims
    }

    /// The exchange gateways, region-ordered.
    pub fn gateways(&self) -> &[ExchangeGateway] {
        &self.gateways
    }

    /// Run one federated cycle: every region's full intra-region wave
    /// in parallel (one `run_each` task per region — regions share no
    /// mutable state), then the serial, region-ordered exchange splice.
    pub fn run_cycle(&mut self, c: usize) {
        let tasks: Vec<Task<'_, ()>> = self
            .sims
            .iter_mut()
            .map(|sim| Box::new(move || sim.run_cycle(c)) as Task<'_, ()>)
            .collect();
        self.cfg.sim.pool.run_each(tasks);

        self.exchange_splice(c);
    }

    /// The serial exchange splice: at `t0 + 22` (after the cycle's
    /// final prosumer pump, before the next cycle's submissions) each
    /// gateway publishes its TSO's exportable surplus, the bus pumps to
    /// quiescence (bounded rounds), and the federation settles the
    /// advisory netting for the cycle.
    fn exchange_splice(&mut self, c: usize) {
        let now = TimeSlot((c as i64) * SLOTS_PER_DAY as i64 + 22);
        self.bus.advance(now);

        let endpoints: Vec<NodeId> = self
            .gateways
            .iter()
            .map(ExchangeGateway::endpoint)
            .collect();
        for round in 0..EXCHANGE_ROUNDS {
            let mut activity = false;
            for r in 0..self.sims.len() {
                // Publishing is idempotent within the splice: after the
                // first round the diff against `exports` is empty, so
                // later rounds only pump resync traffic.
                let surplus = self.sims[r].exportable_surplus(now, self.cfg.exchange_cap);
                let peers: Vec<NodeId> = endpoints
                    .iter()
                    .copied()
                    .filter(|&p| p != endpoints[r])
                    .collect();
                let published = self.gateways[r].publish(&surplus, &peers, now);
                activity |= !published.is_empty();
                self.bus.send_all(published);

                let inbox = self.bus.drain(endpoints[r], now);
                activity |= !inbox.is_empty();
                for env in inbox {
                    let replies = self.gateways[r].handle(env, now);
                    activity |= !replies.is_empty();
                    self.bus.send_all(replies);
                }
            }
            if !activity && round > 0 {
                break;
            }
        }

        // Advisory settlement: the energy the federation could shift
        // across borders this cycle — capped both by what regions are
        // short (baseline deficit) and by what was actually exported.
        let deficit: f64 = self.sims.iter().map(|sim| sim.cycle_residual(c).0).sum();
        let offered: f64 = self
            .gateways
            .iter()
            .flat_map(|g| g.exports())
            .map(offered_energy)
            .sum();
        self.matched_kwh += deficit.min(offered);
    }

    /// Whether every gateway's imported view of every peer matches that
    /// peer's current exports — the bus has fully propagated.
    pub fn exchange_converged(&self) -> bool {
        self.gateways.iter().enumerate().all(|(i, g)| {
            self.gateways
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .all(|(_, peer)| g.in_sync_with(peer.endpoint, &peer.exports))
        })
    }

    /// Point-in-time health rollup: one row per region plus the
    /// exchange row.
    pub fn stats(&self) -> FederationStats {
        FederationStats {
            regions: self
                .sims
                .iter()
                .map(|sim| RegionStats {
                    region: sim.region(),
                    network: sim.network().stats(),
                    dead_letters: sim.network().dead_letters().len(),
                    streams: sim.stream_rollup(),
                    dedup_duplicates: sim.dedup_duplicates(),
                    link_health: sim.link_health_rollup(),
                    unacked_flushes: sim.unacked_flushes(),
                })
                .collect(),
            exchange_bus: self.bus.stats(),
            exchange_streams: self
                .gateways
                .iter()
                .map(ExchangeGateway::stream_rollup)
                .fold(StreamStats::default(), |mut acc, s| {
                    acc.absorb(&s);
                    acc
                }),
        }
    }

    /// Close every region and assemble the federation report.
    pub fn finish(self) -> FederationReport {
        let converged = self.exchange_converged();
        let exchange = ExchangeReport {
            deltas_published: self.gateways.iter().map(|g| g.deltas_published).sum(),
            snapshots_served: self.gateways.iter().map(|g| g.snapshots_served).sum(),
            matched_kwh: self.matched_kwh,
            imported_offers: self
                .gateways
                .iter()
                .map(ExchangeGateway::imported_count)
                .sum(),
            bus: self.bus.stats(),
            streams: self
                .gateways
                .iter()
                .map(ExchangeGateway::stream_rollup)
                .fold(StreamStats::default(), |mut acc, s| {
                    acc.absorb(&s);
                    acc
                }),
            converged,
        };
        FederationReport {
            regions: self.sims.into_iter().map(RegionSim::finish).collect(),
            exchange,
        }
    }

    /// Run a full federation: every cycle, then the report.
    pub fn run(cfg: FederationConfig) -> FederationReport {
        let cycles = cfg.sim.cycles;
        let mut fed = Federation::new(cfg);
        for c in 0..cycles {
            fed.run_cycle(c);
        }
        fed.finish()
    }
}

/// The energy a published macro offer puts on the table: its
/// total-energy cap when constrained, else the profile's maximum.
fn offered_energy(offer: &FlexOffer) -> f64 {
    offer
        .total_energy()
        .map(|r| r.max())
        .unwrap_or_else(|| offer.profile().max_total_energy())
        .kwh()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brp::SchedulerKind;
    use crate::simulation::simulate;
    use mirabel_core::exec::Pool;

    fn region_shape(cycles: usize) -> SimulationConfig {
        SimulationConfig {
            brps: 2,
            prosumers_per_brp: 4,
            cycles,
            offers_per_prosumer: 1,
            use_tso: true,
            scheduler: SchedulerKind::Greedy,
            budget_evaluations: 2_000,
            seed: 7,
            ..SimulationConfig::default()
        }
    }

    #[test]
    fn region_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..8)
            .map(|r| Federation::region_seed(7, RegionId(r)))
            .collect();
        let unique: std::collections::BTreeSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), seeds.len());
        assert!(!seeds.contains(&7), "derived seeds must not echo the base");
    }

    #[test]
    fn federated_region_equals_solo_twin() {
        let cfg = FederationConfig {
            regions: 3,
            sim: region_shape(3),
            ..FederationConfig::default()
        };
        let report = Federation::run(cfg.clone());
        assert_eq!(report.regions.len(), 3);
        for r in 0..3 {
            let twin = simulate(Federation::region_config(&cfg, RegionId(r as u64)));
            assert_eq!(
                report.regions[r], twin,
                "region {r} inside the federation must equal its solo twin"
            );
        }
    }

    #[test]
    fn exchange_publishes_and_converges_on_reliable_bus() {
        let report = Federation::run(FederationConfig {
            regions: 2,
            sim: region_shape(3),
            ..FederationConfig::default()
        });
        assert!(report.exchange.converged, "reliable bus must converge");
        assert!(
            report.exchange.deltas_published > 0,
            "TSO pools change across cycles — deltas must flow"
        );
        assert!(report.exchange.bus.bytes_sent > 0, "bus is always metered");
        assert_eq!(report.exchange.streams.resyncs_requested, 0);
    }

    #[test]
    fn exchange_self_heals_after_bus_storm() {
        // A loss storm on the bus alone for cycles 1–2, then a quiet
        // tail: the quiet cycles' fresh deltas expose the sequence gaps
        // and the resync snapshots re-anchor every stream. (Convergence
        // under *persistent* tail loss is impossible by construction —
        // a dropped final delta with no traffic after it is
        // undetectable — which is exactly why campaigns storm in
        // phases.)
        let stormy = Federation::run(FederationConfig {
            regions: 2,
            sim: region_shape(5),
            exchange_chaos: ChaosPlan::reliable().phase(crate::chaos::loss_storm(1, 3, 0.6)),
            ..FederationConfig::default()
        });
        assert!(
            stormy.exchange.bus.dropped > 0,
            "the storm must actually drop bus traffic: {:?}",
            stormy.exchange.bus
        );
        assert!(
            stormy.exchange.converged,
            "resync must re-anchor every stormed stream: {:?}",
            stormy.exchange
        );
        // The regions never see the bus storm.
        let clean = Federation::run(FederationConfig {
            regions: 2,
            sim: region_shape(5),
            ..FederationConfig::default()
        });
        assert_eq!(stormy.regions, clean.regions);
    }

    #[test]
    fn gateway_publish_diffs_and_empty_diff_is_silent() {
        let mut g = ExchangeGateway::new(RegionId(0), NodeId(1));
        let offer = FlexOffer::builder(5, 1)
            .earliest_start(TimeSlot(100))
            .latest_start(TimeSlot(110))
            .assignment_before(TimeSlot(99))
            .profile(mirabel_core::Profile::uniform(
                2,
                mirabel_core::EnergyRange::new(0.0, 2.0).unwrap(),
            ))
            .build()
            .unwrap();
        let peers = [NodeId(2)];
        let first = g.publish(std::slice::from_ref(&offer), &peers, TimeSlot(0));
        assert_eq!(first.len(), 1, "one envelope per peer");
        let again = g.publish(std::slice::from_ref(&offer), &peers, TimeSlot(1));
        assert!(again.is_empty(), "unchanged set publishes nothing");
        let retract = g.publish(&[], &peers, TimeSlot(2));
        assert_eq!(retract.len(), 1, "retraction publishes deletes");
        match &retract[0].message {
            Message::ExchangeOfferDeltas(updates) => {
                assert_eq!(updates, &vec![FlexOfferUpdate::Delete(FlexOfferId(5))]);
            }
            other => panic!("expected deltas, got {other:?}"),
        }
    }

    #[test]
    fn width_does_not_change_the_federation_report() {
        let base = FederationConfig {
            regions: 2,
            sim: region_shape(2),
            ..FederationConfig::default()
        };
        let narrow = Federation::run(FederationConfig {
            sim: SimulationConfig {
                pool: Pool::new(1),
                ..base.sim.clone()
            },
            ..base.clone()
        });
        let wide = Federation::run(FederationConfig {
            sim: SimulationConfig {
                pool: Pool::new(8),
                ..base.sim.clone()
            },
            ..base.clone()
        });
        assert_eq!(narrow, wide);
    }
}
