//! End-to-end balancing simulation of a three-level EDMS hierarchy.
//!
//! Reproduces the paper's Figure 1 narrative: flexible demand, aggregated
//! from many prosumers, is shifted into the hours where RES production is
//! available, reducing the absolute residual imbalance compared to the
//! traditional (open-contract) world — while remaining robust to message
//! loss and missed deadlines, which only convert offers back into open
//! contracts.
//!
//! ## The parallel level pump
//!
//! The cycle loop no longer hand-orders per-level calls: every planning
//! node (level-2 BRPs, the level-3 TSO) is a
//! [`NodeRuntime`], and each phase is a *wave* over the planner list.
//! Planning waves run bottom-up (a BRP's macro-offer deltas must reach
//! the TSO before it prepares); commit waves run top-down (the TSO's
//! assignments must reach the BRPs before they disaggregate).
//!
//! Within one wave the nodes of a level are **independent** — they
//! never message each other, only levels above/below and the prosumers
//! — so each wave splits into three phases:
//!
//! 1. **Serial pre-phase**: drain every node's inbox and poll its
//!    forecast subscription, in node-list order. These are the only
//!    steps that need `&mut Network` (or the hub), and they consume no
//!    randomness, so hoisting them out of the node loop is invisible.
//! 2. **Parallel drive**: hand each node one task — handle its drained
//!    envelopes, then run the wave's life-cycle call (`prepare_plan`,
//!    `on_forecast_event`, or `commit_plan`) — to the shared
//!    [`Pool`] via `run_each`. Every BRP plans concurrently; nested
//!    pool use inside a node (repair chains, flush shards) queues
//!    behind the level batch on the same lanes.
//! 3. **Serial post-phase**: join in node-list order and route each
//!    node's out-envelopes (replies first, then the life-cycle
//!    envelopes) through `&mut Network`.
//!
//! Because joins are node-ordered and routing stays serial, the
//! network's per-link sequence numbers, failure rolls, and delivery
//! tie-breaks see **exactly the order the old serial pump produced**:
//! pool width changes wall-clock time, never a message, a plan, or a
//! signature. Prosumer waves parallelize the same way, in fixed-size
//! chunks so the task partition is width-independent too.
//!
//! ## Forecasts are pub/sub all the way up
//!
//! Every planner — **including the TSO** — subscribes to the
//! [`ForecastHub`]. Each cycle publishes a day-ahead baseline; planners
//! prepare from their own polled event. A later intra-day *refinement*
//! (a few slots move, the rest stay put) reaches all levels as a typed
//! [`ForecastEvent`](mirabel_forecast::ForecastEvent), and each level
//! replans with change-proportional work — rebase the live evaluator on
//! exactly the changed slots, repair with parallel multi-start chains —
//! instead of rebuilding and resolving its scheduling problem. Execution
//! and the imbalance accounting use the refined baseline as ground truth.

use crate::brp::{BrpConfig, BrpNode, IslandedRound, SchedulerKind};
use crate::comm::{ChaosPlan, FailureModel, Network, NetworkStats};
use crate::datastore::OfferState;
use crate::message::Envelope;
use crate::prosumer::ProsumerNode;
use crate::runtime::{Node, NodeRuntime, RuntimeConfig};
use crate::tso::TsoNode;
use crate::wal::{NodeWal, WalConfig};
use crate::wire::{LinkHealthConfig, LinkHealthStats, StreamStats};
use mirabel_aggregate::AggregationParams;
use mirabel_core::exec::{Pool, Task};
use mirabel_core::{
    ActorId, EnergyRange, FlexOffer, NodeId, Price, Profile, RegionId, ScheduledFlexOffer, Slice,
    TimeSlot, SLOTS_PER_DAY,
};
use mirabel_forecast::ForecastHub;
use mirabel_schedule::MarketPrices;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::f64::consts::PI;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Number of BRP nodes.
    pub brps: usize,
    /// Prosumers per BRP.
    pub prosumers_per_brp: usize,
    /// Planning cycles (one day each).
    pub cycles: usize,
    /// Flex-offers issued per prosumer per cycle.
    pub offers_per_prosumer: usize,
    /// Baseline network failure injection (active outside chaos phases).
    pub failure: FailureModel,
    /// Time-phased chaos schedule driven through the network as the
    /// simulation clock advances — loss storms, delay bursts,
    /// partition-then-heal. [`ChaosPlan::reliable`] disables it.
    pub chaos: ChaosPlan,
    /// Per-cycle probability that each prosumer toggles between online
    /// and offline right after the submission step (join/leave churn).
    /// Offline prosumers submit nothing; messages addressed to them
    /// dead-letter and replay when they re-register. Churn draws from
    /// its own RNG stream, so the same seed produces the same schedule
    /// whether or not chaos is injected — the basis of the campaigns'
    /// chaos-vs-baseline comparison.
    pub churn_fraction: f64,
    /// RNG seed.
    pub seed: u64,
    /// Route macro offers through a TSO (3-level) instead of scheduling
    /// at the BRPs (2-level).
    pub use_tso: bool,
    /// BRP scheduling algorithm.
    pub scheduler: SchedulerKind,
    /// Scheduling budget (cost evaluations per plan).
    pub budget_evaluations: usize,
    /// Fraction of baseline slots perturbed by the intra-day forecast
    /// refinement each cycle (0.0 disables refinements).
    pub refine_fraction: f64,
    /// Parallel multi-start chains per incremental repair.
    pub repair_chains: usize,
    /// Worker pool shared by every planning node in the hierarchy. The
    /// pool width never changes any result.
    pub pool: Pool,
    /// Attach an in-memory write-ahead log with this configuration to
    /// every BRP. Required for [`ChaosPhase::crashes`] phases to recover
    /// state: a crashed BRP rebuilds from snapshot + tail replay and
    /// resyncs its parent. With `None`, a scheduled crash is total
    /// amnesia — the node restarts cold and only deadline expiry plus
    /// the resync protocol limit the damage.
    ///
    /// [`ChaosPhase::crashes`]: crate::comm::ChaosPhase::crashes
    pub wal: Option<WalConfig>,
    /// Failure-detector horizons every BRP runs against its TSO link.
    /// The default (~2–3 silent day-cycles) never trips in a healthy
    /// hierarchy; islanding campaigns tighten it so a partitioned TSO is
    /// declared `Down` within the partition window.
    pub link_health: LinkHealthConfig,
}

impl Default for SimulationConfig {
    fn default() -> SimulationConfig {
        SimulationConfig {
            brps: 2,
            prosumers_per_brp: 5,
            cycles: 3,
            offers_per_prosumer: 2,
            failure: FailureModel::default(),
            chaos: ChaosPlan::reliable(),
            churn_fraction: 0.0,
            seed: 1,
            use_tso: false,
            scheduler: SchedulerKind::Greedy,
            budget_evaluations: 8_000,
            refine_fraction: 0.1,
            repair_chains: 4,
            pool: Pool::global().clone(),
            wal: None,
            link_health: LinkHealthConfig::default(),
        }
    }
}

/// Simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Flex-offers submitted by prosumers.
    pub offers_submitted: usize,
    /// Offers accepted by BRPs.
    pub accepted: usize,
    /// Offers rejected at acceptance time.
    pub rejected: usize,
    /// Offers executed under a schedule assignment.
    pub assigned: usize,
    /// Offers that fell back to the open contract.
    pub fallbacks: usize,
    /// Incremental replans triggered by forecast refinement events
    /// (across every hierarchy level, TSO included).
    pub replans: usize,
    /// Σ|residual| if every offer had run on the open contract.
    pub imbalance_before: f64,
    /// Σ|residual| with the realized (scheduled + fallback) execution.
    pub imbalance_after: f64,
    /// Network delivery counters.
    pub network: NetworkStats,
    /// Signature of the committed execution per cycle (stable micro
    /// offer ids, assignment flags, starts, per-slot energies).
    /// The chaos campaigns' convergence probe: after a storm plus a
    /// quiet period, these must return to the no-chaos run's values.
    pub plan_signatures: Vec<u64>,
    /// Unexpired offers still pooled at the TSO with no backing BRP
    /// export at the end of the run — stale ghosts a lost delta left
    /// behind that neither expiry nor resync cleaned up.
    pub phantom_offers: usize,
    /// Committed prosumer schedules that violate their originating
    /// offer's energy bounds (must be zero under any chaos).
    pub energy_violations: usize,
    /// Crash-restarts executed by the chaos schedule.
    pub crashes: usize,
    /// Islanded planning rounds the BRPs ran (cycle-then-node order):
    /// windows a BRP balanced locally because its TSO link was `Down`.
    /// Empty unless a fault actually severed a link long enough for the
    /// failure detectors to trip.
    pub islanded: Vec<IslandedRound>,
    /// Provisional macro assignments the TSO adopted at reconciliation
    /// (the islanded BRP's local decision stands).
    pub provisional_adopted: u64,
    /// Provisional macro assignments the TSO superseded (it had already
    /// assigned or dropped the offer on its side of the partition).
    pub provisional_superseded: u64,
}

impl SimulationReport {
    /// Relative imbalance reduction achieved by scheduling.
    pub fn imbalance_reduction(&self) -> f64 {
        if self.imbalance_before <= 0.0 {
            0.0
        } else {
            1.0 - self.imbalance_after / self.imbalance_before
        }
    }
}

/// Ground-truth baseline imbalance for one execution window: evening-
/// peaking non-flexible demand minus a midday RES bump (cf. Figure 1).
fn window_baseline(scale: f64, horizon: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..horizon)
        .map(|i| {
            let x = i as f64 / horizon as f64;
            let demand = 0.6 + 0.4 * (2.0 * PI * (x - 0.80)).cos();
            let res = 1.5 * (-((x - 0.5) * (x - 0.5)) / 0.02).exp();
            scale * (demand - res + rng.gen_range(-0.05..0.05))
        })
        .collect()
}

/// Generate one prosumer offer executing inside `[window, window+S)`.
fn gen_offer(
    id: u64,
    owner: ActorId,
    window: TimeSlot,
    horizon: u32,
    deadline: TimeSlot,
    rng: &mut StdRng,
) -> FlexOffer {
    let dur = rng.gen_range(2..=6u32);
    let base = rng.gen_range(0.5..2.5);
    let width = base * rng.gen_range(0.1..0.4);
    let profile = Profile::new(vec![Slice {
        duration: dur,
        energy: EnergyRange::new(base, base + width).expect("ordered"),
    }])
    .expect("non-empty");
    let es = rng.gen_range(0..(horizon - dur));
    let max_tf = horizon - dur - es;
    let tf = if max_tf == 0 {
        0
    } else {
        rng.gen_range(0..=max_tf)
    };
    FlexOffer::builder(id, owner.value())
        .earliest_start(window + es)
        .time_flexibility(tf)
        .assignment_before(deadline.min(window + es))
        .profile(profile)
        .unit_price(Price(0.02))
        .build()
        .expect("generated offers are valid")
}

/// Drain `node`'s inbox at `now`, handle every message, route replies —
/// the serial single-node pump. The cycle waves use the split
/// drain / parallel-drive / route phases instead (see the module docs);
/// this remains for the closing churn sweep, where re-registration
/// interleaves with pumping per prosumer.
fn pump<N: Node + ?Sized>(network: &mut Network, node: &mut N, now: TimeSlot) {
    for envelope in network.drain(node.node_id(), now) {
        let replies = node.handle(envelope, now);
        network.send_all(replies);
    }
}

/// Prosumers handled per parallel task in the prosumer waves. Fixed (not
/// derived from pool width) so the task partition — and therefore every
/// result — is identical at any width; 64 keeps per-task dispatch cost
/// negligible against hundreds of handled envelopes.
const PROSUMER_CHUNK: usize = 64;

/// One prosumer wave: drain every online prosumer's inbox (serial, in
/// prosumer order), drive the chunks concurrently — handle the drained
/// envelopes, then `on_slot(slot)` if given — and route any replies in
/// prosumer order.
fn pump_prosumers(
    pool: &Pool,
    network: &mut Network,
    prosumers: &mut [ProsumerNode],
    offline: &BTreeSet<usize>,
    now: TimeSlot,
    on_slot_at: Option<TimeSlot>,
) {
    let inboxes: Vec<Vec<Envelope>> = prosumers
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if offline.contains(&i) {
                Vec::new()
            } else {
                network.drain(p.node_id(), now)
            }
        })
        .collect();
    let mut inboxes = inboxes.into_iter();
    let mut tasks: Vec<Task<Vec<Envelope>>> = Vec::new();
    for (ci, chunk) in prosumers.chunks_mut(PROSUMER_CHUNK).enumerate() {
        let chunk_inboxes: Vec<Vec<Envelope>> = inboxes.by_ref().take(chunk.len()).collect();
        let base = ci * PROSUMER_CHUNK;
        tasks.push(Box::new(move || {
            let mut out = Vec::new();
            for (k, (p, inbox)) in chunk.iter_mut().zip(chunk_inboxes).enumerate() {
                if offline.contains(&(base + k)) {
                    continue;
                }
                for envelope in inbox {
                    out.extend(Node::handle(p, envelope, now));
                }
                if let Some(slot) = on_slot_at {
                    p.on_slot(slot);
                }
            }
            out
        }));
    }
    for replies in pool.run_each(tasks) {
        network.send_all(replies);
    }
}

/// Signature of the committed execution of one cycle's window, over the
/// (ordered) prosumer list. Uses the stable sim-assigned micro offer
/// ids, so two runs that converge to the same plans hash equal.
///
/// Mixes whole 64-bit words (multiply-xorshift per word) rather than
/// FNV-ing individual bytes: the signature is an equality probe between
/// twin runs, not a digest, and this sweep over every committed offer
/// runs once per cycle on the simulation's hot path.
fn plan_signature(prosumers: &[ProsumerNode], window: TimeSlot, horizon: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |w: u64| {
        h = (h ^ w).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 29;
    };
    for p in prosumers {
        p.for_each_committed_in_window(
            window,
            window + horizon,
            |id, assigned, start, energies| {
                mix(id.value());
                mix((start.index() as u64) << 1 | assigned as u64);
                for e in energies {
                    mix(e.kwh().to_bits());
                }
            },
        );
    }
    h
}

/// One region's entire hierarchy plus the state its cycle loop carries:
/// the unit a [`Federation`](crate::federation::Federation) drives on
/// its own [`Pool`] lane, and what [`simulate`] runs exactly one of.
///
/// A region owns its own [`Network`], node set, RNG streams and
/// accounting — regions share **no** mutable state, which is why entire
/// intra-region waves can run concurrently across regions and why a
/// region inside a federation is bit-identical to the same region run
/// solo through [`simulate`]. The region id is stamped onto every
/// routed envelope (and thus every WAL record) but never consulted by
/// any planning or randomness decision.
#[derive(Debug)]
pub struct RegionSim {
    cfg: SimulationConfig,
    region: RegionId,
    rng: StdRng,
    churn_rng: StdRng,
    network: Network,
    tso_id: NodeId,
    tso: TsoNode,
    brps: Vec<BrpNode>,
    prosumers: Vec<ProsumerNode>,
    hub: ForecastHub,
    subscriptions: BTreeMap<NodeId, u64>,
    next_offer_id: u64,
    offers_submitted: usize,
    replans: usize,
    crashes: usize,
    /// Shadow open-contract execution of every submitted offer, plus the
    /// ground-truth baseline, per executed window. Ordered map: the
    /// accounting walk must be reproducible byte-for-byte across runs.
    shadow_load: BTreeMap<i64, f64>,
    baselines: Vec<(TimeSlot, Vec<f64>)>,
    plan_signatures: Vec<u64>,
    /// Islanded planning rounds drained from the BRPs, cycle-then-node
    /// ordered.
    islanded: Vec<IslandedRound>,
    /// Prosumer indices currently churned out of the network.
    offline: BTreeSet<usize>,
    scale: f64,
    /// The TSO's pooled macro offers, snapshotted between the planning
    /// and commit waves of the last cycle — the only point in a cycle
    /// where the region's exportable surplus exists (commit consumes
    /// assigned offers, the deadline expires the rest). Read-only
    /// capture: it never feeds back into planning, so a federated
    /// region stays bit-identical to its solo twin.
    export_pool: Vec<FlexOffer>,
}

impl RegionSim {
    /// Build one region's hierarchy. `region` is stamped onto routed
    /// envelopes but has no behavioural effect; `cfg.seed` alone
    /// determines every result (the federation derives a distinct seed
    /// per region before calling this).
    pub fn new(cfg: SimulationConfig, region: RegionId) -> RegionSim {
        let s = SLOTS_PER_DAY;
        let rng = StdRng::seed_from_u64(cfg.seed);
        // Churn draws from its own stream: the join/leave schedule must
        // be a function of the seed alone, identical whether or not
        // chaos is injected, and must not perturb offer generation.
        let churn_rng = StdRng::seed_from_u64(cfg.seed ^ 0x00c0_ffee);
        let mut network = Network::new(cfg.failure, cfg.seed ^ 0xabcd);
        network.set_region(region);
        network.set_chaos(cfg.chaos.clone());

        // --- Topology -------------------------------------------------
        let tso_id = NodeId(9_999);
        let mut tso = TsoNode::with_config(tso_id, AggregationParams::p0(), make_tso_runtime(&cfg));
        if cfg.use_tso {
            network.register(tso_id);
            // The TSO gets the same durability treatment as the BRPs:
            // with a WAL attached, a scheduled TSO crash recovers from
            // snapshot + tail replay and re-anchors every BRP stream.
            if let Some(wal_config) = cfg.wal {
                tso.attach_wal(NodeWal::in_memory(wal_config));
            }
        }

        let brps: Vec<BrpNode> = (0..cfg.brps)
            .map(|b| {
                let id = NodeId(1 + b as u64);
                network.register(id);
                let mut brp =
                    BrpNode::new(id, cfg.use_tso.then_some(tso_id), make_brp_config(&cfg));
                if let Some(wal_config) = cfg.wal {
                    brp.attach_wal(NodeWal::in_memory(wal_config));
                }
                brp
            })
            .collect();

        // Forecast pub/sub: EVERY planner — the BRPs and, in 3-level
        // mode, the TSO — subscribes to baseline updates for the
        // planning horizon; refinements arrive as typed slot-range
        // events.
        let hub = ForecastHub::new();
        let mut subscriptions: BTreeMap<NodeId, u64> = brps
            .iter()
            .map(|b| (b.id, hub.subscribe(s as usize, 0.0)))
            .collect();
        if cfg.use_tso {
            subscriptions.insert(tso_id, hub.subscribe(s as usize, 0.0));
        }

        // Prosumer ids live above 10_000, indexed globally — disjoint
        // from the BRPs (1..=brps) and the TSO (9_999) at ANY scale. The
        // old `1_000 * (1 + b) + k` scheme collided across BRPs beyond
        // 1k prosumers each, and at 125k per BRP a prosumer landed on
        // the TSO's id and silently drained its macro-offer deltas.
        let mut prosumers: Vec<ProsumerNode> = Vec::new();
        for b in 0..cfg.brps {
            for k in 0..cfg.prosumers_per_brp {
                let id = NodeId(10_000 + (b * cfg.prosumers_per_brp + k) as u64);
                network.register(id);
                prosumers.push(ProsumerNode::new(
                    id,
                    ActorId(id.value()),
                    NodeId(1 + b as u64),
                ));
            }
        }

        let total_flex_per_window =
            (cfg.brps * cfg.prosumers_per_brp * cfg.offers_per_prosumer) as f64 * 1.8 * 4.0;
        let scale = (total_flex_per_window / s as f64).max(0.5);
        let cycles = cfg.cycles;

        RegionSim {
            cfg,
            region,
            rng,
            churn_rng,
            network,
            tso_id,
            tso,
            brps,
            prosumers,
            hub,
            subscriptions,
            next_offer_id: 1,
            offers_submitted: 0,
            replans: 0,
            crashes: 0,
            shadow_load: BTreeMap::new(),
            baselines: Vec::new(),
            plan_signatures: Vec::with_capacity(cycles),
            islanded: Vec::new(),
            offline: BTreeSet::new(),
            scale,
            export_pool: Vec::new(),
        }
    }

    /// The region this hierarchy belongs to.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// The region's network (stats rollups, metering toggles).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the region's network (the federation enables
    /// byte metering through this before the first cycle).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Per-cycle committed-execution signatures so far.
    pub fn plan_signatures(&self) -> &[u64] {
        &self.plan_signatures
    }

    /// Sum of the TSO's per-BRP sequenced-stream counters — the
    /// intra-region delta-wire health row of the federation rollup.
    pub fn stream_rollup(&self) -> StreamStats {
        let mut total = StreamStats::default();
        for b in &self.brps {
            total.absorb(&self.tso.stream_stats(b.id));
        }
        total
    }

    /// Network-injected duplicates dropped by the region's BRP dedup
    /// filters.
    pub fn dedup_duplicates(&self) -> u64 {
        self.brps.iter().map(BrpNode::dedup_duplicates).sum()
    }

    /// Sum of the BRPs' TSO-link failure-detector counters — the
    /// degraded-mode health row of the federation's per-region rollup.
    pub fn link_health_rollup(&self) -> LinkHealthStats {
        let mut total = LinkHealthStats::default();
        for b in &self.brps {
            total.absorb(&b.link_health_stats());
        }
        total
    }

    /// Upward flushes the region's BRPs have sent but the TSO has not
    /// yet acknowledged via heartbeat.
    pub fn unacked_flushes(&self) -> u64 {
        self.brps.iter().map(BrpNode::unacked_flushes).sum()
    }

    /// The macro offers this region's TSO can export across the
    /// federation: the pool snapshot taken between the last cycle's
    /// planning and commit waves, minus anything expired by `now`, in
    /// export-id space, ascending id, capped at `cap`. Empty in 2-level
    /// mode (no TSO, nothing pooled to export).
    pub fn exportable_surplus(&self, now: TimeSlot, cap: usize) -> Vec<FlexOffer> {
        if !self.cfg.use_tso {
            return Vec::new();
        }
        self.export_pool
            .iter()
            .filter(|o| !o.is_expired(now))
            .take(cap)
            .cloned()
            .collect()
    }

    /// `(deficit, surplus)` kWh of cycle `c`'s ground-truth baseline:
    /// the pre-flexibility residual the exchange's advisory netting
    /// matches imported macro offers against. Baseline-only by design —
    /// O(slots), no prosumer walk on the serial exchange splice.
    pub fn cycle_residual(&self, c: usize) -> (f64, f64) {
        let Some((_, baseline)) = self.baselines.get(c) else {
            return (0.0, 0.0);
        };
        let mut deficit = 0.0;
        let mut surplus = 0.0;
        for &b in baseline {
            if b > 0.0 {
                deficit += b;
            } else {
                surplus -= b;
            }
        }
        (deficit, surplus)
    }

    /// Run one planning cycle (one simulated day).
    pub fn run_cycle(&mut self, c: usize) {
        let s = SLOTS_PER_DAY;
        let RegionSim {
            cfg,
            rng,
            churn_rng,
            network,
            tso_id,
            tso,
            brps,
            prosumers,
            hub,
            subscriptions,
            next_offer_id,
            offers_submitted,
            replans,
            crashes,
            shadow_load,
            baselines,
            plan_signatures,
            islanded,
            offline,
            scale,
            export_pool,
            ..
        } = self;
        let tso_id = *tso_id;
        let scale = *scale;
        let t0 = TimeSlot((c as i64) * s as i64);
        let window = t0 + s; // next-day execution window
        let deadline = t0 + s / 2;
        network.advance(t0);

        // 1. Prosumers issue offers for the next window. Churned-out
        //    prosumers are gone: they submit nothing.
        for (i, p) in prosumers.iter_mut().enumerate() {
            if offline.contains(&i) {
                continue;
            }
            for _ in 0..cfg.offers_per_prosumer {
                let offer = gen_offer(*next_offer_id, p.actor, window, s, deadline, rng);
                *next_offer_id += 1;
                *offers_submitted += 1;
                // Shadow world: open contract (earliest start, max energy).
                let open = ScheduledFlexOffer::open_contract(&offer);
                for (i, e) in open.slot_energies.iter().enumerate() {
                    *shadow_load
                        .entry(open.start.index() + i as i64)
                        .or_insert(0.0) += offer.demand_sign() * e.kwh();
                }
                let env = p.submit(offer, t0);
                network.route(env);
            }
        }

        // 1b. Join/leave churn, rolled for every prosumer every cycle so
        //     the schedule is a pure function of the seed. A leaver
        //     departs right after submitting — the interesting case:
        //     its accept/reject and assignment messages dead-letter and
        //     replay if it comes back. A joiner re-registers (replaying
        //     its dead letters) and first expires anything that went
        //     stale while it was away, so a replayed late assignment is
        //     ignored identically in chaos and baseline runs.
        if cfg.churn_fraction > 0.0 {
            for (i, p) in prosumers.iter_mut().enumerate() {
                if !churn_rng.gen_bool(cfg.churn_fraction.clamp(0.0, 1.0)) {
                    continue;
                }
                if offline.remove(&i) {
                    network.register(p.id);
                    p.on_slot(t0);
                } else {
                    offline.insert(i);
                    network.deregister(p.id);
                }
            }
        }

        // 1c. Crash-restarts scheduled for this cycle: the BRP's entire
        //     in-memory state is destroyed; only its WAL store (the
        //     "disk") survives. Recovery mirrors real node churn:
        //     deregister (queued messages — including this round's
        //     still-undrained submissions — dead-letter), rebuild from
        //     snapshot + tail replay, re-register (the dead letters
        //     replay into the fresh inbox), and route the recovery
        //     resync snapshot that re-anchors the parent's pooled view.
        for node in cfg.chaos.crashes_between(t0, t0 + s) {
            // The TSO gets the same crash-restart treatment as a BRP:
            // rebuild from its surviving WAL store, then re-anchor every
            // BRP by routing the recovery ResyncRequests (each answered
            // with a full export snapshot that re-seeds the stream).
            if cfg.use_tso && node == tso_id {
                *crashes += 1;
                network.deregister(node);
                let survived_store = tso.take_wal().map(NodeWal::into_store);
                let (rebuilt, recovery_out) = match (survived_store, cfg.wal) {
                    (Some(store), Some(wal_config)) => TsoNode::recover(
                        tso_id,
                        AggregationParams::p0(),
                        make_tso_runtime(cfg),
                        store,
                        wal_config,
                        t0,
                    )
                    .expect("in-memory WAL stores cannot fail"),
                    // No WAL: total amnesia — the cold TSO re-learns the
                    // macro pool only through resyncs and fresh deltas.
                    _ => (
                        TsoNode::with_config(
                            tso_id,
                            AggregationParams::p0(),
                            make_tso_runtime(cfg),
                        ),
                        Vec::new(),
                    ),
                };
                *tso = rebuilt;
                network.register(node);
                network.send_all(recovery_out);
                continue;
            }
            let Some(idx) = brps.iter().position(|b| b.id == node) else {
                continue;
            };
            *crashes += 1;
            network.deregister(node);
            let survived_store = brps[idx].take_wal().map(NodeWal::into_store);
            let (rebuilt, recovery_out) = match (survived_store, cfg.wal) {
                (Some(store), Some(wal_config)) => BrpNode::recover(
                    node,
                    cfg.use_tso.then_some(tso_id),
                    make_brp_config(cfg),
                    store,
                    wal_config,
                    t0,
                )
                .expect("in-memory WAL stores cannot fail"),
                // No WAL attached: the crash is total amnesia and the
                // node restarts cold.
                _ => (
                    BrpNode::new(node, cfg.use_tso.then_some(tso_id), make_brp_config(cfg)),
                    Vec::new(),
                ),
            };
            brps[idx] = rebuilt;
            network.register(node);
            network.send_all(recovery_out);
        }

        // The planner hierarchy, bottom-up. Rebuilt per cycle so the
        // borrow is scoped (and so crash-restarts can replace a BRP
        // wholesale above); the *waves* below are the only traversal.
        // `+ Send` because each level's nodes are driven concurrently on
        // the shared pool.
        let mut levels: Vec<Vec<&mut (dyn NodeRuntime + Send)>> = vec![brps
            .iter_mut()
            .map(|b| b as &mut (dyn NodeRuntime + Send))
            .collect()];
        if cfg.use_tso {
            levels.push(vec![&mut *tso as &mut (dyn NodeRuntime + Send)]);
        }

        // 2. Planning wave, bottom-up: the day-ahead baseline forecast is
        //    published once; each level pumps its inbox (submissions at
        //    level 2, macro-offer deltas at level 3) and prepares a live
        //    plan from its own pub/sub event. A level's upward envelopes
        //    are in flight before the next level pumps.
        let forecast0 = window_baseline(scale, s as usize, rng);
        let prices = MarketPrices::flat(s as usize, 0.09, 0.02, scale * 0.4);
        let penalties = vec![0.2; s as usize];
        hub.publish(&forecast0);
        for (l, level) in levels.iter_mut().enumerate() {
            let now = t0 + 4u32 * (l as u32 + 1);
            network.advance(now);
            // Serial pre-phase: drain inboxes and poll subscriptions in
            // node order (the only `&mut network` / hub steps).
            let inboxes: Vec<Vec<Envelope>> = level
                .iter()
                .map(|node| network.drain(node.node_id(), now))
                .collect();
            let events: Vec<_> = level
                .iter()
                .map(|node| {
                    let sub = subscriptions[&node.node_id()];
                    hub.poll(sub).expect("initial publish always notifies")
                })
                .collect();
            // Parallel drive: every node of the level handles its inbox
            // and prepares its plan concurrently on the shared pool.
            let mut tasks: Vec<Task<Vec<Envelope>>> = Vec::new();
            for ((node, inbox), event) in level.iter_mut().zip(inboxes).zip(events) {
                let node: &mut (dyn NodeRuntime + Send) = &mut **node;
                let prices = prices.clone();
                let penalties = penalties.clone();
                tasks.push(Box::new(move || {
                    let mut out = Vec::new();
                    for envelope in inbox {
                        out.extend(node.handle(envelope, now));
                    }
                    let (envelopes, _report) =
                        node.prepare_plan(now, window, event.forecast, prices, penalties);
                    out.extend(envelopes);
                    out
                }));
            }
            // Serial post-phase: join in node order, route each node's
            // replies-then-deltas — the exact serial-pump send order, so
            // link sequences and failure rolls are width-independent.
            for envelopes in cfg.pool.run_each(tasks) {
                network.send_all(envelopes);
            }
        }

        // 2b. Prosumers see accept/reject decisions.
        let t2 = t0 + 8u32;
        network.advance(t2);
        pump_prosumers(&cfg.pool, network, prosumers, offline, t2, None);

        // 3. Intra-day forecast refinement: a few slots move (RES ramps,
        //    weather fronts), the rest stay put. The refined forecast is
        //    the execution ground truth; every level receives it as a
        //    typed change event and replans incrementally — O(changed),
        //    no problem reconstruction anywhere in the hierarchy.
        let baseline = if cfg.refine_fraction > 0.0 {
            let mut refined = forecast0.clone();
            for v in refined.iter_mut() {
                if rng.gen_bool(cfg.refine_fraction.clamp(0.0, 1.0)) {
                    *v += scale * rng.gen_range(-0.3..0.3);
                }
            }
            hub.publish(&refined);
            // Replans are node-local (no envelopes, no network), so the
            // whole hierarchy repairs concurrently in one batch: poll
            // every subscription serially, then drive every node.
            let events: Vec<_> = levels
                .iter()
                .flat_map(|level| level.iter())
                .map(|node| hub.poll(subscriptions[&node.node_id()]))
                .collect();
            let mut tasks: Vec<Task<bool>> = Vec::new();
            for (node, event) in levels
                .iter_mut()
                .flat_map(|level| level.iter_mut())
                .zip(events)
            {
                let node: &mut (dyn NodeRuntime + Send) = &mut **node;
                tasks.push(Box::new(move || match event {
                    Some(event) => node.on_forecast_event(&event).is_some(),
                    None => false,
                }));
            }
            *replans += cfg
                .pool
                .run_each(tasks)
                .into_iter()
                .filter(|&replanned| replanned)
                .count();
            refined
        } else {
            forecast0
        };
        baselines.push((window, baseline.clone()));

        // 3b. Snapshot the TSO's pooled macro offers for the federation
        //     exchange: this — after planning and refinement, before
        //     commit — is the only point in a cycle where the region's
        //     exportable surplus exists (commit consumes assigned
        //     offers; the deadline expires the rest by cycle end). The
        //     snapshot is read-only and RNG-free: planning never sees
        //     it. Rebuilding `levels` afterwards re-scopes the node
        //     borrows; the wave traversals are unchanged.
        drop(levels);
        export_pool.clear();
        if cfg.use_tso {
            for id in tso.pooled_ids() {
                if let Some(offer) = tso.pooled_offer(id) {
                    export_pool.push(offer.clone());
                }
            }
        }
        let mut levels: Vec<Vec<&mut (dyn NodeRuntime + Send)>> = vec![brps
            .iter_mut()
            .map(|b| b as &mut (dyn NodeRuntime + Send))
            .collect()];
        if cfg.use_tso {
            levels.push(vec![&mut *tso as &mut (dyn NodeRuntime + Send)]);
        }

        // 4. Commit wave, top-down: the TSO disaggregates its (possibly
        //    repaired) plan into per-BRP assignments; each BRP pumps
        //    those into micro assignments and commits its own local plan
        //    (2-level mode) — one generic loop, highest level first.
        let top = levels.len() - 1;
        for (l, level) in levels.iter_mut().enumerate().rev() {
            // Stagger commit times top-down so a level's assignments are
            // deliverable before the level below pumps.
            let now = t0 + 12u32 + 4u32 * (top - l) as u32;
            network.advance(now);
            let inboxes: Vec<Vec<Envelope>> = level
                .iter()
                .map(|node| network.drain(node.node_id(), now))
                .collect();
            let mut tasks: Vec<Task<Vec<Envelope>>> = Vec::new();
            for (node, inbox) in level.iter_mut().zip(inboxes) {
                let node: &mut (dyn NodeRuntime + Send) = &mut **node;
                tasks.push(Box::new(move || {
                    let mut out = Vec::new();
                    for envelope in inbox {
                        out.extend(node.handle(envelope, now));
                    }
                    out.extend(node.commit_plan(now));
                    out
                }));
            }
            for envelopes in cfg.pool.run_each(tasks) {
                network.send_all(envelopes);
            }
        }

        // 5. Prosumers receive assignments; deadline passes at window
        //    start — unassigned offers fall back to the open contract.
        let t5 = t0 + 20u32;
        network.advance(t5);
        pump_prosumers(&cfg.pool, network, prosumers, offline, t5, Some(window));

        plan_signatures.push(plan_signature(prosumers, window, s));

        // 6. Collect this cycle's islanded planning rounds, in BRP
        //    order — the chaos invariant checker audits each window's
        //    committed cost against its local-only optimum.
        for b in brps.iter_mut() {
            islanded.extend(b.take_islanded_rounds());
        }
    }

    /// Close the run and produce its report: bring churned-out
    /// prosumers back for the closing sweep, account imbalances against
    /// the shadow open-contract world, and run the invariant probes.
    pub fn finish(mut self) -> SimulationReport {
        let s = SLOTS_PER_DAY;
        let cfg = &self.cfg;
        let network = &mut self.network;
        let prosumers = &mut self.prosumers;
        let brps = &self.brps;
        let tso = &self.tso;

        // --- Closing sweep (churn only) ---------------------------------
        // Bring every churned-out prosumer back so the run's accounting
        // is closed: replayed dead letters drain, and anything still
        // pending falls back. Without churn this is skipped — nothing is
        // offline.
        if cfg.churn_fraction > 0.0 {
            let end = TimeSlot((cfg.cycles as i64 + 1) * s as i64);
            network.advance(end);
            for (i, p) in prosumers.iter_mut().enumerate() {
                if self.offline.remove(&i) {
                    network.register(p.id);
                }
                p.on_slot(end);
                pump(network, p, end);
            }
        }

        // --- Accounting -------------------------------------------------
        let mut imbalance_before = 0.0;
        let mut imbalance_after = 0.0;
        for (window, baseline) in &self.baselines {
            for (i, &b) in baseline.iter().enumerate() {
                let t = *window + i as u32;
                let open = self.shadow_load.get(&t.index()).copied().unwrap_or(0.0);
                let realized: f64 = prosumers.iter().map(|p| p.flexible_load_at(t)).sum();
                imbalance_before += (b + open).abs();
                imbalance_after += (b + realized).abs();
            }
        }

        let accepted: usize = brps
            .iter()
            .map(|b| {
                b.store.count_in_state(OfferState::Accepted)
                    + b.store.count_in_state(OfferState::Assigned)
                    + b.store.count_in_state(OfferState::Provisional)
                    + b.store.count_in_state(OfferState::Expired)
            })
            .sum();
        let rejected: usize = brps
            .iter()
            .map(|b| b.store.count_in_state(OfferState::Rejected))
            .sum();

        // Invariant probes. Phantom offers: anything still pooled at the
        // TSO that no BRP exports and whose deadline has not already
        // passed (the latter are cleaned by the next expiry sweep by
        // construction).
        let end = TimeSlot((cfg.cycles as i64 + 1) * s as i64);
        let phantom_offers = if cfg.use_tso {
            let exported: BTreeSet<u64> = brps
                .iter()
                .flat_map(|b| b.exported_offer_ids())
                .map(|id| id.value())
                .collect();
            tso.pooled_ids()
                .iter()
                .filter(|id| !exported.contains(&id.value()))
                .filter(|id| tso.pooled_offer(**id).is_some_and(|o| !o.is_expired(end)))
                .count()
        } else {
            0
        };
        let energy_violations = prosumers.iter().map(|p| p.energy_violations(1e-6)).sum();
        let (provisional_adopted, provisional_superseded) = tso.provisional_audit();

        SimulationReport {
            offers_submitted: self.offers_submitted,
            accepted,
            rejected,
            assigned: prosumers.iter().map(|p| p.assigned_count()).sum(),
            fallbacks: prosumers.iter().map(|p| p.fallback_count()).sum(),
            replans: self.replans,
            imbalance_before,
            imbalance_after,
            network: self.network.stats(),
            plan_signatures: self.plan_signatures,
            phantom_offers,
            energy_violations,
            crashes: self.crashes,
            islanded: self.islanded,
            provisional_adopted,
            provisional_superseded,
        }
    }
}

/// One config builder for initial construction AND crash-restarts: a
/// recovered BRP must be configured exactly like the node it replaces.
fn make_brp_config(cfg: &SimulationConfig) -> BrpConfig {
    BrpConfig {
        scheduler: cfg.scheduler,
        budget_evaluations: cfg.budget_evaluations,
        forward_to_tso: cfg.use_tso,
        repair_chains: cfg.repair_chains.max(1),
        pool: cfg.pool.clone(),
        link_health: cfg.link_health,
        ..BrpConfig::default()
    }
}

/// One runtime builder for TSO construction AND crash-restarts: a
/// recovered TSO must be configured exactly like the node it replaces.
fn make_tso_runtime(cfg: &SimulationConfig) -> RuntimeConfig {
    RuntimeConfig {
        budget_evaluations: cfg.budget_evaluations,
        repair_chains: cfg.repair_chains.max(1),
        pool: cfg.pool.clone(),
        ..RuntimeConfig::default()
    }
}

/// Run the simulation: one [`RegionSim`] (the implicit
/// [`RegionId::DEFAULT`] region), every cycle, then the closing report.
pub fn simulate(cfg: SimulationConfig) -> SimulationReport {
    let cycles = cfg.cycles;
    let mut sim = RegionSim::new(cfg, RegionId::DEFAULT);
    for c in 0..cycles {
        sim.run_cycle(c);
    }
    sim.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_scheduling_reduces_imbalance() {
        let report = simulate(SimulationConfig::default());
        assert_eq!(report.offers_submitted, 2 * 5 * 2 * 3);
        assert!(report.assigned > 0, "no assignments: {report:?}");
        assert!(
            report.imbalance_after < report.imbalance_before,
            "after {} >= before {}",
            report.imbalance_after,
            report.imbalance_before
        );
        assert!(report.imbalance_reduction() > 0.0);
    }

    #[test]
    fn three_level_hierarchy_works() {
        let report = simulate(SimulationConfig {
            use_tso: true,
            ..SimulationConfig::default()
        });
        assert!(report.assigned > 0, "TSO path produced no assignments");
        assert!(report.imbalance_after < report.imbalance_before);
    }

    #[test]
    fn three_level_hierarchy_replans_at_the_tso() {
        // In 3-level mode the BRPs forward deltas instead of holding
        // live plans, so every incremental replan happens at the TSO —
        // which subscribes to the hub like any BRP and reacts to each
        // cycle's refinement event.
        let report = simulate(SimulationConfig {
            use_tso: true,
            seed: 9,
            ..SimulationConfig::default()
        });
        assert!(
            report.replans > 0,
            "TSO should replan on refinements: {report:?}"
        );
        assert!(report.assigned > 0);
    }

    #[test]
    fn total_message_loss_degrades_gracefully() {
        let report = simulate(SimulationConfig {
            failure: FailureModel::drop(1.0),
            ..SimulationConfig::default()
        });
        // nothing assigned, everything falls back — but nothing crashes
        assert_eq!(report.assigned, 0);
        assert_eq!(report.fallbacks, report.offers_submitted);
        // realized load equals the open-contract shadow world
        assert!((report.imbalance_after - report.imbalance_before).abs() < 1e-6);
    }

    #[test]
    fn partial_loss_lands_between_extremes() {
        let lossless = simulate(SimulationConfig {
            seed: 11,
            ..SimulationConfig::default()
        });
        let lossy = simulate(SimulationConfig {
            seed: 11,
            failure: FailureModel::drop(0.4),
            ..SimulationConfig::default()
        });
        assert!(lossy.fallbacks > 0);
        assert!(lossy.assigned < lossless.assigned + lossless.fallbacks);
        assert!(lossy.network.dropped > 0);
        // every offer ends in exactly one terminal state
        assert_eq!(
            lossy.assigned + lossy.fallbacks,
            lossy.offers_submitted,
            "offer conservation: {lossy:?}"
        );
    }

    #[test]
    fn offer_conservation_without_failures() {
        let r = simulate(SimulationConfig {
            seed: 23,
            cycles: 2,
            ..SimulationConfig::default()
        });
        assert_eq!(r.assigned + r.fallbacks, r.offers_submitted);
        assert_eq!(r.accepted + r.rejected, r.offers_submitted);
    }

    #[test]
    fn offer_conservation_with_tso_and_loss() {
        // The delta wire self-heals under loss: a dropped MacroOfferDeltas
        // envelope leaves ghost/stale entries in the TSO pool only until
        // their assignment deadline (TSO-side expiry), and every offer
        // still terminates exactly once (assignment or open-contract
        // fallback) — the paper's graceful-degradation guarantee at
        // level 3.
        for drop in [0.2, 0.5] {
            let r = simulate(SimulationConfig {
                seed: 37,
                use_tso: true,
                cycles: 4,
                failure: FailureModel::drop(drop),
                ..SimulationConfig::default()
            });
            assert_eq!(
                r.assigned + r.fallbacks,
                r.offers_submitted,
                "conservation at drop {drop}: {r:?}"
            );
        }
    }

    #[test]
    fn offer_conservation_with_tso_and_delays() {
        let r = simulate(SimulationConfig {
            seed: 29,
            use_tso: true,
            failure: FailureModel::delay(3),
            ..SimulationConfig::default()
        });
        assert_eq!(r.assigned + r.fallbacks, r.offers_submitted);
        assert!(r.assigned > 0, "delayed TSO path assigned nothing: {r:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate(SimulationConfig {
            seed: 5,
            ..SimulationConfig::default()
        });
        let b = simulate(SimulationConfig {
            seed: 5,
            ..SimulationConfig::default()
        });
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_per_seed_with_tso_and_delay() {
        let mk = || {
            simulate(SimulationConfig {
                seed: 31,
                use_tso: true,
                failure: FailureModel::delay(2),
                ..SimulationConfig::default()
            })
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn forecast_refinements_trigger_incremental_replans() {
        let report = simulate(SimulationConfig {
            seed: 7,
            ..SimulationConfig::default()
        });
        assert!(report.replans > 0, "refinements should replan: {report:?}");
        assert!(report.imbalance_after < report.imbalance_before);
    }

    #[test]
    fn disabling_refinement_means_no_replans() {
        let report = simulate(SimulationConfig {
            seed: 7,
            refine_fraction: 0.0,
            ..SimulationConfig::default()
        });
        assert_eq!(report.replans, 0);
        assert!(report.assigned > 0);
    }
}
