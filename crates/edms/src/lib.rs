//! # mirabel-edms
//!
//! The MIRABEL node architecture and hierarchy (paper §2, §3).
//!
//! The EDMS is a hierarchy of homogeneous nodes: prosumers (level 1)
//! issue flex-offers; balance-responsible parties (level 2) accept,
//! aggregate, forecast, schedule, disaggregate and price them; TSOs
//! (level 3) repeat the process over the BRPs' macro flex-offers.
//!
//! Components per the paper's LEDMS description:
//!
//! * [`comm`] — the Communication component: an in-process message
//!   network with failure/delay injection;
//! * [`message`] — the message vocabulary exchanged between nodes;
//! * [`datastore`] — the Data Management component: a multidimensional
//!   star-schema store (dimension + fact tables, \[6\]);
//! * [`prosumer`] / [`brp`] / [`tso`] — the three node roles, wiring the
//!   aggregation, forecasting, scheduling and negotiation crates together
//!   (the Control component is each node's `step`/`plan` method); the
//!   BRP's planning life-cycle (`prepare_plan` → `on_forecast_event` →
//!   `commit_plan`) implements event-driven incremental replanning on a
//!   live delta evaluator;
//! * [`simulation`] — an end-to-end balancing simulation of a full
//!   three-level hierarchy, including pub/sub-driven intra-day forecast
//!   refinements and the open-contract fallback on message loss or
//!   missed deadlines ("the overall system would gracefully behave as in
//!   the traditional setting").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brp;
pub mod comm;
pub mod datastore;
pub mod message;
pub mod prosumer;
pub mod simulation;
pub mod tso;

pub use brp::{BrpConfig, BrpNode, PlanReport, ReplanReport, SchedulerKind};
pub use comm::{FailureModel, Network, NetworkStats};
pub use datastore::{DataStore, OfferState};
pub use message::{Envelope, Message};
pub use prosumer::ProsumerNode;
pub use simulation::{simulate, SimulationConfig, SimulationReport};
pub use tso::TsoNode;
