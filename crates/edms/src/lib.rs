//! # mirabel-edms
//!
//! The MIRABEL node architecture and hierarchy (paper §2, §3).
//!
//! The EDMS is a hierarchy of **homogeneous** nodes — "the process is
//! essentially repeated at a higher level" — and this crate makes that
//! literal: one prepare → replan → commit life-cycle, defined once in
//! [`runtime`], runs at every planning level:
//!
//! * **level 1** — [`prosumer`]s issue flex-offers, execute assignments,
//!   and fall back to the open contract on loss or missed deadlines;
//! * **level 2** — [`brp`]s (balance-responsible parties) accept,
//!   aggregate, forecast, schedule, disaggregate and price those offers,
//!   keeping their plan **live** on a delta evaluator between scheduling
//!   and commitment;
//! * **level 3** — the [`tso`] repeats the identical cycle over the
//!   BRPs' *macro-offer delta streams*: a trickle change at level 1
//!   arrives at level 3 as a trickle
//!   ([`Message::MacroOfferDeltas`](message::Message)),
//!   is spliced into the live level-3 plan in O(changed), and never
//!   forces a problem reconstruction;
//! * **federation** — the same repetition, once more, *above* the
//!   national hierarchies: a [`federation::Federation`] shards the
//!   population into `N` regions — each a complete hierarchy with its
//!   own [`Network`], node-id space, WAL namespace
//!   ([`FileWalStore::open_namespaced`](wal::FileWalStore::open_namespaced))
//!   and splitmix-derived RNG streams — and glues the regional TSOs
//!   with a bounded cross-border *macro-offer exchange* over an
//!   inter-regional bus that reuses the intra-region delta-wire
//!   contract ([`Message::ExchangeOfferDeltas`](message::Message),
//!   [`SequencedRx`] guards, resync snapshots). Regions share no
//!   mutable state, so whole regions run concurrently on the worker
//!   pool; only the region-ordered exchange splice is serial, keeping
//!   every report bit-identical at any pool width and any region
//!   count. Every [`Envelope`] and
//!   [`EventRecord`] carries the [`mirabel_core::RegionId`] it was
//!   routed in (tenant-registry pattern) — pure metadata for
//!   isolation book-keeping, WAL namespacing and region-scoped chaos
//!   ([`ChaosPlan::in_region`](comm::ChaosPlan::in_region)), never an
//!   input to planning.
//!
//! ## Degraded operation: detect → island → recover → reconcile
//!
//! The paper's premise — "the overall system would gracefully behave as
//! in the traditional setting" when coordination fails — is implemented
//! as a four-stage loop that every BRP↔TSO link runs continuously:
//!
//! 1. **detect** — [`wire::LinkHealth`] turns heartbeats piggybacked on
//!    the sequenced delta streams ([`Message::Heartbeat`](message::Message))
//!    plus deterministic ack-timeout tracking into an
//!    `Up → Suspect → Down → Recovering` link-state machine, while
//!    [`wire::RetransmitTracker`] drives bounded exponential-backoff
//!    retransmits of unacked outbox flushes (always as idempotent
//!    resync snapshots, never replayed deltas);
//! 2. **island** — a BRP whose TSO link is `Down` keeps balancing: its
//!    local [`PlanEngine`] runs over the node's own pool and the commit
//!    stamps every assignment [`OfferState::Provisional`] in the store
//!    *and* the WAL, so even a degraded window is durable and bounded
//!    by the local-only optimum ([`IslandedRound`]);
//! 3. **recover** — a crashed node (BRP *or* TSO,
//!    [`TsoNode::recover`](tso::TsoNode::recover)) rebuilds from
//!    snapshot + tail replay, re-registers, and re-anchors every peer
//!    stream through unsolicited resync snapshots;
//! 4. **reconcile** — when the link heals (`Recovering`), the rejoining
//!    BRP ships its provisional ledger
//!    ([`Message::ProvisionalReport`](message::Message)) *before* the
//!    re-anchoring snapshot; the TSO audits each provisional macro
//!    assignment — still pooled from that BRP → **adopt**, already
//!    planned elsewhere → **supersede** — so the hierarchy converges
//!    back to the exact plans of a never-islanded twin
//!    ([`chaos::run_campaign`] proves the quiet tail bit-identical).
//!
//! Components per the paper's LEDMS description:
//!
//! * [`runtime`] — the unified node runtime: the [`Node`] /
//!   [`NodeRuntime`] traits the simulation's generic event pump drives,
//!   and the [`PlanEngine`] each planning node embeds (aggregation
//!   pipeline plus a live
//!   [`DeltaEvaluator`](mirabel_schedule::DeltaEvaluator) plus
//!   pub/sub-driven incremental replanning). Every parallel path of an
//!   engine — flush shards, best-of-K initial starts, repair chains —
//!   dispatches onto the worker pool in its [`RuntimeConfig`]; by
//!   default that is the process-wide
//!   [`mirabel_core::exec::Pool::global`] executor, so an entire
//!   hierarchy wakes one set of persistent parked workers instead of
//!   spawning threads per node per round (and the pool width never
//!   changes any plan);
//! * [`comm`] — the Communication component: an in-process message
//!   network with deterministic delivery ordering, rich failure
//!   injection (loss, delay, jitter/reorder, duplication), per-link
//!   partitions, time-phased [`ChaosPlan`] schedules,
//!   per-link stream sequencing and a dead-letter queue that replays on
//!   partition heal or node re-registration;
//! * [`wire`] — the self-healing receive side of that wire:
//!   [`SequencedRx`] turns the per-link sequence
//!   numbers into exactly-once in-order delivery with gap detection,
//!   out-of-order buffering and resync requests (a lost delta degrades
//!   to one extra round-trip instead of silent divergence),
//!   [`DedupRx`] gives at-most-once semantics where
//!   ordering doesn't matter, and [`LinkHealth`] /
//!   [`RetransmitTracker`] supply the failure-detection half of the
//!   degraded-operation loop above;
//! * [`message`] — the message vocabulary exchanged between nodes,
//!   including the repair protocol
//!   ([`ResyncRequest`](message::Message::ResyncRequest) /
//!   [`ResyncSnapshot`](message::Message::ResyncSnapshot)) that splices
//!   a bounded state snapshot into the live delta stream;
//! * [`datastore`] — the Data Management component: a multidimensional
//!   star-schema store (dimension + fact tables, \[6\]) materializing
//!   the node's event history into queryable facts;
//! * [`wal`] — the **event-sourced persistence layer**: every envelope
//!   a node ingests (and every outbox flush it emits) is encoded with
//!   the [`mirabel_core::codec::Wire`] binary codec, wrapped in an
//!   [`EventRecord`] (`event_id` / `causation_id` /
//!   `replay_safe`) and appended to a pluggable
//!   [`WalStore`] *before* the node's state mutates.
//!   Snapshot-then-truncate compaction bounds replay length; a crashed
//!   BRP rebuilds from snapshot + tail replay
//!   ([`BrpNode::recover`](brp::BrpNode::recover)), re-registers (the
//!   dead-letter queue replays what it missed), and re-anchors its
//!   sequenced streams through the resync-snapshot path;
//! * [`prosumer`] / [`brp`] / [`tso`] — the three node roles, wiring the
//!   aggregation, forecasting, scheduling and negotiation crates
//!   together on top of the shared runtime;
//! * [`simulation`] — an end-to-end balancing simulation of a full
//!   three-level hierarchy: a generic event pump over the planner list,
//!   pub/sub-driven intra-day forecast refinements replanned
//!   incrementally at **every** level, join/leave prosumer churn, and
//!   the open-contract fallback on message loss or missed deadlines
//!   ("the overall system would gracefully behave as in the traditional
//!   setting");
//! * [`chaos`] — campaigns that *prove* the robustness story: scripted
//!   storms (loss, delay bursts, BRP↔TSO partition-then-heal, churn,
//!   mid-round BRP **and TSO** crash-restarts recovering from the WAL)
//!   driven through the simulation, with an invariant checker asserting
//!   offer conservation, zero phantom offers, energy-bound compliance,
//!   the islanded imbalance bound (`committed <= prepared` per
//!   [`IslandedRound`]) — and post-chaos **convergence**: after a quiet
//!   period the plan signatures must be bit-identical to a
//!   never-disturbed twin run.
//!   Federation campaigns
//!   ([`run_federation_campaign`]) add
//!   the **fault-isolation** proof: storm one region
//!   ([`ChaosPlan::in_region`](comm::ChaosPlan::in_region)) and every
//!   untouched region's full report stays bit-identical to its solo
//!   twin;
//! * [`federation`] — the multi-region layer itself: [`RegionSim`]
//!   shards driven concurrently, [`ExchangeGateway`]s diffing each
//!   TSO's exportable surplus onto the bus, advisory federation-level
//!   settlement, and per-region + exchange health rollups
//!   ([`Federation::stats`](federation::Federation::stats)).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brp;
pub mod chaos;
pub mod comm;
pub mod datastore;
pub mod federation;
pub mod message;
pub mod prosumer;
pub mod runtime;
pub mod simulation;
pub mod tso;
pub mod wal;
pub mod wire;

pub use brp::{BrpConfig, BrpNode, IslandedRound};
pub use chaos::{
    run_campaign, run_federation_campaign, CampaignConfig, CampaignReport,
    FederationCampaignConfig, FederationCampaignReport, InvariantViolation,
};
pub use comm::{
    ChaosPhase, ChaosPlan, DeadLetterQueue, DeadLetterReason, FailureModel, Network, NetworkStats,
};
pub use datastore::{DataStore, OfferState};
pub use federation::{
    ExchangeGateway, ExchangeReport, Federation, FederationConfig, FederationReport,
    FederationStats, RegionStats,
};
pub use message::{Envelope, Message};
pub use prosumer::ProsumerNode;
pub use runtime::{
    Node, NodeRuntime, OfferDeltaReport, PlanEngine, PlanReport, ReplanReport, RuntimeConfig,
    SchedulerKind,
};
pub use simulation::{simulate, RegionSim, SimulationConfig, SimulationReport};
pub use tso::TsoNode;
pub use wal::{EventRecord, FileWalStore, LoadedLog, MemWalStore, NodeWal, WalConfig, WalStore};
pub use wire::{
    DedupRx, LinkHealth, LinkHealthConfig, LinkHealthStats, LinkState, RetransmitTracker,
    SequencedRx, SequencedRxState, StreamStats,
};
