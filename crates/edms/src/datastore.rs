//! The Data Management component (paper §3): "data are persistently
//! stored using a multidimensional schema that can be seen as a
//! combination of star and snowflake schemas. This single, unified schema
//! is flexible enough to support actors at all levels, some of which only
//! use subparts of the schema."
//!
//! In the reproduction's event-sourced split, this store is the **read
//! side**: the durable record of a node is the event log in
//! [`crate::wal`] (every ingested envelope, appended before it is
//! applied), and the facts here are *materializations* of that event
//! stream into the queryable shape the control loop needs — each
//! [`crate::brp::BrpNode`] handler that appends a wire event also
//! upserts the corresponding fact rows. Replaying the log through the
//! handlers (crash recovery) rebuilds the same rows, so the store needs
//! no persistence story of its own.
//!
//! Dimensions: time (derived from the slot index), actor, energy type and
//! market area (snowflaked off the actor dimension). Fact tables:
//! measurements, flex-offer lifecycle events, schedules and prices.
//! Queries are the star-join aggregations the control loop needs.

use mirabel_core::{ActorId, FlexOfferId, Price, TimeSlot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Energy-type dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnergyType {
    /// Metered consumption.
    Consumption,
    /// Metered production.
    Production,
}

/// Lifecycle state of a flex-offer (the flex-offer fact's state
/// dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OfferState {
    /// Received and accepted into the pool.
    Accepted,
    /// Waived by the BRP.
    Rejected,
    /// Scheduled and assigned back to the prosumer.
    Assigned,
    /// Assigned by a BRP while islanded from its TSO: the assignment is
    /// binding toward the prosumer but pending TSO-level reconciliation
    /// (adopt or supersede) once the link heals.
    Provisional,
    /// Timed out without assignment; open contract applied.
    Expired,
}

/// Actor dimension row; `market_area` snowflakes into the market-area
/// dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActorDim {
    /// The actor key.
    pub actor: ActorId,
    /// Display name.
    pub name: String,
    /// Market area key (e.g. bidding zone).
    pub market_area: u32,
}

/// Measurement fact: one metered value per (slot, actor, type).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasurementFact {
    /// Slot key (time dimension is computed from it).
    pub slot: TimeSlot,
    /// Actor key.
    pub actor: ActorId,
    /// Energy type key.
    pub energy_type: EnergyType,
    /// Metered energy (kWh).
    pub kwh: f64,
}

/// Flex-offer lifecycle fact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OfferFact {
    /// Offer key.
    pub offer: FlexOfferId,
    /// Owning actor key.
    pub actor: ActorId,
    /// Slot of the state transition.
    pub slot: TimeSlot,
    /// New state.
    pub state: OfferState,
}

/// Schedule fact: the resolved assignment of one offer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleFact {
    /// Offer key.
    pub offer: FlexOfferId,
    /// Assigned start.
    pub start: TimeSlot,
    /// Total scheduled energy (kWh).
    pub total_kwh: f64,
    /// Agreed discount (EUR/kWh).
    pub discount: Price,
}

/// Forecast fact: a published net-load forecast value for a future slot.
/// Several publications for the same slot may exist; the freshest wins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForecastFact {
    /// The forecast target slot.
    pub slot: TimeSlot,
    /// Forecast net load (kWh, consumption minus production).
    pub net_kwh: f64,
    /// When the forecast was published.
    pub published_at: TimeSlot,
}

/// Price fact per (market area, slot).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceFact {
    /// Market-area key.
    pub market_area: u32,
    /// Slot key.
    pub slot: TimeSlot,
    /// Buy price (EUR/kWh).
    pub buy: f64,
    /// Sell price (EUR/kWh).
    pub sell: f64,
}

/// The star-schema store of one LEDMS node.
#[derive(Debug, Default)]
pub struct DataStore {
    actors: BTreeMap<ActorId, ActorDim>,
    measurements: Vec<MeasurementFact>,
    offers: Vec<OfferFact>,
    schedules: Vec<ScheduleFact>,
    prices: Vec<PriceFact>,
    forecasts: Vec<ForecastFact>,
}

impl DataStore {
    /// Empty store.
    pub fn new() -> DataStore {
        DataStore::default()
    }

    /// Upsert an actor-dimension row.
    pub fn upsert_actor(&mut self, row: ActorDim) {
        self.actors.insert(row.actor, row);
    }

    /// Actor-dimension lookup.
    pub fn actor(&self, id: ActorId) -> Option<&ActorDim> {
        self.actors.get(&id)
    }

    /// Append a measurement fact.
    pub fn record_measurement(&mut self, fact: MeasurementFact) {
        self.measurements.push(fact);
    }

    /// Append an offer lifecycle fact.
    pub fn record_offer(&mut self, fact: OfferFact) {
        self.offers.push(fact);
    }

    /// Append a schedule fact.
    pub fn record_schedule(&mut self, fact: ScheduleFact) {
        self.schedules.push(fact);
    }

    /// Append a price fact.
    pub fn record_price(&mut self, fact: PriceFact) {
        self.prices.push(fact);
    }

    /// Append a forecast fact.
    pub fn record_forecast(&mut self, fact: ForecastFact) {
        self.forecasts.push(fact);
    }

    /// Seamless past/current/forecast integration (paper §10 future
    /// work): net load per slot over `[from, to)`, served from
    /// measurements for slots at or before `now` and from the freshest
    /// published forecast for future slots. Slots with neither source
    /// yield `None`.
    pub fn unified_net_load(
        &self,
        from: TimeSlot,
        to: TimeSlot,
        now: TimeSlot,
    ) -> Vec<Option<f64>> {
        let len = (to - from).max(0) as usize;
        let mut out: Vec<Option<f64>> = vec![None; len];
        // Past and current: measured net load.
        for m in &self.measurements {
            if m.slot >= from && m.slot < to && m.slot <= now {
                let i = (m.slot - from) as usize;
                let signed = match m.energy_type {
                    EnergyType::Consumption => m.kwh,
                    EnergyType::Production => -m.kwh,
                };
                *out[i].get_or_insert(0.0) += signed;
            }
        }
        // Future: freshest forecast per slot.
        let mut freshest: BTreeMap<i64, (TimeSlot, f64)> = BTreeMap::new();
        for f in &self.forecasts {
            if f.slot >= from && f.slot < to && f.slot > now {
                match freshest.get(&f.slot.index()) {
                    Some((published, _)) if *published >= f.published_at => {}
                    _ => {
                        freshest.insert(f.slot.index(), (f.published_at, f.net_kwh));
                    }
                }
            }
        }
        for (slot_idx, (_, v)) in freshest {
            let i = (slot_idx - from.index()) as usize;
            out[i] = Some(v);
        }
        out
    }

    /// Star join: total energy by actor over `[from, to)` for one energy
    /// type.
    pub fn energy_by_actor(
        &self,
        energy_type: EnergyType,
        from: TimeSlot,
        to: TimeSlot,
    ) -> BTreeMap<ActorId, f64> {
        let mut out = BTreeMap::new();
        for m in &self.measurements {
            if m.energy_type == energy_type && m.slot >= from && m.slot < to {
                *out.entry(m.actor).or_insert(0.0) += m.kwh;
            }
        }
        out
    }

    /// Star join through the snowflaked market-area dimension: total
    /// energy per market area.
    pub fn energy_by_market_area(
        &self,
        energy_type: EnergyType,
        from: TimeSlot,
        to: TimeSlot,
    ) -> BTreeMap<u32, f64> {
        let mut out = BTreeMap::new();
        for m in &self.measurements {
            if m.energy_type == energy_type && m.slot >= from && m.slot < to {
                if let Some(actor) = self.actors.get(&m.actor) {
                    *out.entry(actor.market_area).or_insert(0.0) += m.kwh;
                }
            }
        }
        out
    }

    /// Net load (consumption − production) per slot over `[from, to)`.
    pub fn net_load(&self, from: TimeSlot, to: TimeSlot) -> Vec<f64> {
        let len = (to - from).max(0) as usize;
        let mut out = vec![0.0; len];
        for m in &self.measurements {
            if m.slot >= from && m.slot < to {
                let i = (m.slot - from) as usize;
                match m.energy_type {
                    EnergyType::Consumption => out[i] += m.kwh,
                    EnergyType::Production => out[i] -= m.kwh,
                }
            }
        }
        out
    }

    /// Latest recorded state of each offer.
    pub fn offer_states(&self) -> BTreeMap<FlexOfferId, OfferState> {
        let mut out = BTreeMap::new();
        for f in &self.offers {
            out.insert(f.offer, f.state); // facts are appended in time order
        }
        out
    }

    /// Count offers currently in `state`.
    pub fn count_in_state(&self, state: OfferState) -> usize {
        self.offer_states()
            .values()
            .filter(|&&s| s == state)
            .count()
    }

    /// Total scheduled energy and flexibility credit over all schedule
    /// facts.
    pub fn scheduled_totals(&self) -> (f64, Price) {
        let mut kwh = 0.0;
        let mut credit = Price::ZERO;
        for s in &self.schedules {
            kwh += s.total_kwh;
            credit += s.discount * s.total_kwh;
        }
        (kwh, credit)
    }

    /// Fact-table row counts
    /// `(measurements, offers, schedules, prices, forecasts)`.
    pub fn row_counts(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.measurements.len(),
            self.offers.len(),
            self.schedules.len(),
            self.prices.len(),
            self.forecasts.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_data() -> DataStore {
        let mut s = DataStore::new();
        s.upsert_actor(ActorDim {
            actor: ActorId(1),
            name: "home-1".into(),
            market_area: 10,
        });
        s.upsert_actor(ActorDim {
            actor: ActorId(2),
            name: "pv-2".into(),
            market_area: 10,
        });
        s.upsert_actor(ActorDim {
            actor: ActorId(3),
            name: "plant-3".into(),
            market_area: 20,
        });
        for slot in 0..4 {
            s.record_measurement(MeasurementFact {
                slot: TimeSlot(slot),
                actor: ActorId(1),
                energy_type: EnergyType::Consumption,
                kwh: 2.0,
            });
            s.record_measurement(MeasurementFact {
                slot: TimeSlot(slot),
                actor: ActorId(2),
                energy_type: EnergyType::Production,
                kwh: 1.0,
            });
            s.record_measurement(MeasurementFact {
                slot: TimeSlot(slot),
                actor: ActorId(3),
                energy_type: EnergyType::Consumption,
                kwh: 5.0,
            });
        }
        s
    }

    #[test]
    fn energy_by_actor_filters_type_and_window() {
        let s = store_with_data();
        let by_actor = s.energy_by_actor(EnergyType::Consumption, TimeSlot(0), TimeSlot(2));
        assert_eq!(by_actor[&ActorId(1)], 4.0);
        assert_eq!(by_actor[&ActorId(3)], 10.0);
        assert!(!by_actor.contains_key(&ActorId(2)));
    }

    #[test]
    fn snowflake_join_groups_by_market_area() {
        let s = store_with_data();
        let by_area = s.energy_by_market_area(EnergyType::Consumption, TimeSlot(0), TimeSlot(4));
        assert_eq!(by_area[&10], 8.0);
        assert_eq!(by_area[&20], 20.0);
    }

    #[test]
    fn net_load_subtracts_production() {
        let s = store_with_data();
        assert_eq!(s.net_load(TimeSlot(0), TimeSlot(4)), vec![6.0; 4]);
        assert_eq!(s.net_load(TimeSlot(4), TimeSlot(4)), Vec::<f64>::new());
    }

    #[test]
    fn offer_lifecycle_latest_state_wins() {
        let mut s = DataStore::new();
        s.record_offer(OfferFact {
            offer: FlexOfferId(1),
            actor: ActorId(1),
            slot: TimeSlot(0),
            state: OfferState::Accepted,
        });
        s.record_offer(OfferFact {
            offer: FlexOfferId(1),
            actor: ActorId(1),
            slot: TimeSlot(5),
            state: OfferState::Assigned,
        });
        s.record_offer(OfferFact {
            offer: FlexOfferId(2),
            actor: ActorId(1),
            slot: TimeSlot(1),
            state: OfferState::Expired,
        });
        assert_eq!(s.offer_states()[&FlexOfferId(1)], OfferState::Assigned);
        assert_eq!(s.count_in_state(OfferState::Assigned), 1);
        assert_eq!(s.count_in_state(OfferState::Expired), 1);
        assert_eq!(s.count_in_state(OfferState::Rejected), 0);
    }

    #[test]
    fn scheduled_totals_accumulate() {
        let mut s = DataStore::new();
        s.record_schedule(ScheduleFact {
            offer: FlexOfferId(1),
            start: TimeSlot(3),
            total_kwh: 10.0,
            discount: Price(0.02),
        });
        s.record_schedule(ScheduleFact {
            offer: FlexOfferId(2),
            start: TimeSlot(4),
            total_kwh: 5.0,
            discount: Price(0.04),
        });
        let (kwh, credit) = s.scheduled_totals();
        assert_eq!(kwh, 15.0);
        assert!(credit.approx_eq(Price(0.4), 1e-12));
    }

    #[test]
    fn row_counts() {
        let s = store_with_data();
        let (m, o, sc, p, f) = s.row_counts();
        assert_eq!(m, 12);
        assert_eq!((o, sc, p, f), (0, 0, 0, 0));
    }

    #[test]
    fn unified_net_load_stitches_past_and_forecast() {
        let mut s = store_with_data(); // measurements for slots 0..4

        // Forecasts for slots 3..8, published at slot 2 and refreshed at 3.
        for slot in 3..8 {
            s.record_forecast(ForecastFact {
                slot: TimeSlot(slot),
                net_kwh: 100.0,
                published_at: TimeSlot(2),
            });
        }
        s.record_forecast(ForecastFact {
            slot: TimeSlot(5),
            net_kwh: 42.0,
            published_at: TimeSlot(3), // fresher forecast for slot 5
        });
        let unified = s.unified_net_load(TimeSlot(0), TimeSlot(8), TimeSlot(3));
        // slots 0..=3: measured net load (2 + 5 - 1 = 6 kWh)
        for (i, v) in unified.iter().take(4).enumerate() {
            assert_eq!(*v, Some(6.0), "slot {i}");
        }
        // slots 4, 6, 7: stale forecast; slot 5: refreshed forecast
        assert_eq!(unified[4], Some(100.0));
        assert_eq!(unified[5], Some(42.0));
        assert_eq!(unified[6], Some(100.0));
        assert_eq!(unified[7], Some(100.0));
    }

    #[test]
    fn unified_net_load_gaps_are_none() {
        let s = DataStore::new();
        let unified = s.unified_net_load(TimeSlot(0), TimeSlot(3), TimeSlot(1));
        assert_eq!(unified, vec![None, None, None]);
    }

    #[test]
    fn unified_net_load_measurement_beats_forecast_for_past() {
        let mut s = store_with_data();
        // a (stale) forecast exists for an already-measured slot: the
        // measurement wins because the slot is not in the future
        s.record_forecast(ForecastFact {
            slot: TimeSlot(2),
            net_kwh: 999.0,
            published_at: TimeSlot(0),
        });
        let unified = s.unified_net_load(TimeSlot(0), TimeSlot(4), TimeSlot(3));
        assert_eq!(unified[2], Some(6.0));
    }
}
