//! Chaos campaigns: scripted failure storms with an invariant checker.
//!
//! The paper claims the EDMS must keep operating over unreliable
//! wide-area links; this module *attacks* that claim instead of assuming
//! it. A campaign drives [`simulate`] twice from the same seed — once
//! through a scripted [`ChaosPlan`] (loss storms, delay/reorder bursts,
//! partition-then-heal, prosumer churn) and once over a reliable
//! network — and then checks:
//!
//! * **offer conservation** — every submitted offer terminates exactly
//!   once (assignment or open-contract fallback), chaos or not;
//! * **no phantom offers** — nothing stays pooled at the TSO without a
//!   backing BRP export once the dust settles;
//! * **energy conservation** — no committed schedule violates its
//!   offer's energy bounds;
//! * **convergence** — after the last chaos phase plus a quiet period,
//!   the per-cycle plan signatures are **bit-identical** to the no-chaos
//!   run's: the sequenced wire, resync snapshots, dead-letter replay and
//!   deadline expiry must jointly erase every trace of the storm, not
//!   merely survive it;
//! * **islanded imbalance bound** — every window a BRP balanced locally
//!   (TSO link `Down`) must commit at a cost no worse than the
//!   local-only optimum its engine found at prepare time: islanding
//!   degrades service to the local optimum, never below it.
//!
//! The comparison is meaningful because everything stochastic outside
//! the network — offer generation, forecasts, churn — draws from RNG
//! streams independent of delivery outcomes, and every planner derives
//! its scheduling seeds from the window being planned rather than from
//! its history (see [`crate::runtime::PlanEngine`]).

use crate::comm::{ChaosPhase, ChaosPlan, FailureModel};
use crate::federation::{Federation, FederationConfig, FederationReport};
use crate::simulation::{simulate, SimulationConfig, SimulationReport};
use mirabel_core::{NodeId, RegionId, TimeSlot, SLOTS_PER_DAY};

/// The slot range covered by simulation cycles `[start_cycle, end_cycle)`.
pub fn cycle_span(start_cycle: usize, end_cycle: usize) -> (TimeSlot, TimeSlot) {
    let s = SLOTS_PER_DAY as i64;
    (
        TimeSlot(start_cycle as i64 * s),
        TimeSlot(end_cycle as i64 * s),
    )
}

/// A loss storm: drop each message with probability `p` during cycles
/// `[start_cycle, end_cycle)`.
pub fn loss_storm(start_cycle: usize, end_cycle: usize, p: f64) -> ChaosPhase {
    let (start, end) = cycle_span(start_cycle, end_cycle);
    ChaosPhase::new(start, end, FailureModel::drop(p))
}

/// A delay burst: fixed `delay` plus up to `jitter` extra slots of random
/// delay (which reorders) during cycles `[start_cycle, end_cycle)`.
pub fn delay_burst(start_cycle: usize, end_cycle: usize, delay: u32, jitter: u32) -> ChaosPhase {
    let (start, end) = cycle_span(start_cycle, end_cycle);
    ChaosPhase::new(start, end, FailureModel::delay(delay).jittered_by(jitter))
}

/// A partition: the `a ↔ b` link is cut (both directions) during cycles
/// `[start_cycle, end_cycle)` and heals afterwards, replaying the
/// retained envelopes in their original stream order.
pub fn partition_between(start_cycle: usize, end_cycle: usize, a: NodeId, b: NodeId) -> ChaosPhase {
    let (start, end) = cycle_span(start_cycle, end_cycle);
    ChaosPhase::new(start, end, FailureModel::reliable()).with_partitions(vec![(a, b)])
}

/// A crash-restart: `node` loses its entire in-memory state at the start
/// of `cycle` and is rebuilt from its write-ahead log (snapshot + tail
/// replay, then a resync snapshot to its parent) before the round is
/// pumped. Requires the simulation to run with WALs attached
/// ([`crate::simulation::SimulationConfig::wal`]).
///
/// The phase is **zero-length** (`start == end`): a crash is an instant,
/// not a windowed disturbance, so it never overrides the baseline
/// failure model and the quiet-tail overlap check treats it as ending
/// the moment it fires.
pub fn crash_of(cycle: usize, node: NodeId) -> ChaosPhase {
    let (start, _) = cycle_span(cycle, cycle + 1);
    ChaosPhase::new(start, start, FailureModel::reliable()).with_crashes(vec![node])
}

/// A chaos campaign: a simulation whose [`ChaosPlan`] ends at least
/// `quiet_cycles` before the run does.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The simulation to drive — including its chaos plan and churn.
    pub sim: SimulationConfig,
    /// Trailing cycles guaranteed chaos-free. The campaign compares the
    /// last `quiet_cycles - 1` cycles' plan signatures against the
    /// baseline run; the first quiet cycle is the settle cycle, where
    /// resync round-trips and deadline expiry finish erasing the storm.
    /// Values below 2 are treated as 2.
    pub quiet_cycles: usize,
}

/// One checked invariant that did not hold.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// The chaos plan extends into the configured quiet tail — the
    /// campaign cannot judge convergence.
    ChaosOverlapsQuietTail,
    /// Submitted ≠ assigned + fallbacks: an offer vanished or terminated
    /// twice.
    OfferNotConserved {
        /// Offers submitted over the run.
        submitted: usize,
        /// Offers that reached a terminal state.
        terminal: usize,
    },
    /// Unexpired TSO pool entries with no backing BRP export.
    PhantomOffers(usize),
    /// Committed schedules violating their offer's energy bounds.
    EnergyViolations(usize),
    /// A quiet-tail cycle's plan signature differs from the baseline
    /// run's.
    Diverged {
        /// The differing cycle (0-based).
        cycle: usize,
        /// The chaos run's signature for that cycle.
        chaos: u64,
        /// The baseline run's signature for that cycle.
        baseline: u64,
    },
    /// An islanded planning window committed at a cost above the
    /// local-only optimum its BRP prepared — degraded-mode repair made
    /// the imbalance worse instead of bounding it.
    IslandedImbalanceExceeded {
        /// First slot of the offending islanded window.
        window_start: TimeSlot,
        /// Cost the islanded commit realized.
        committed: f64,
        /// The local-only optimum found at prepare time.
        prepared: f64,
    },
}

/// Outcome of one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The run through the chaos plan.
    pub chaos: SimulationReport,
    /// The same seed over a reliable network (chaos plan and baseline
    /// failure model stripped; churn kept — it is workload, not
    /// network).
    pub baseline: SimulationReport,
    /// Number of trailing cycles whose signatures were compared.
    pub compared_cycles: usize,
    /// Every invariant that did not hold (empty = the system self-healed
    /// completely).
    pub violations: Vec<InvariantViolation>,
}

impl CampaignReport {
    /// Whether the chaos run self-healed completely.
    pub fn converged(&self) -> bool {
        self.violations.is_empty()
    }

    /// A printable multi-line summary (used by the examples).
    pub fn summary(&self) -> String {
        let c = &self.chaos;
        let n = c.network;
        let mut out = format!(
            "chaos run: {} offers, {} assigned, {} fallbacks, {} replans, {} crash-restarts\n\
             network:   {} sent, {} enqueued, {} delivered, {} dropped, {} duplicated,\n\
             \x20          {} dead-lettered, {} replayed, {} evicted\n\
             invariants: {} phantom offers, {} energy violations\n\
             islanding:  {} islanded windows, {} provisional adopted, {} superseded\n\
             convergence: last {} cycle signatures vs no-chaos baseline — ",
            c.offers_submitted,
            c.assigned,
            c.fallbacks,
            c.replans,
            c.crashes,
            n.sent,
            n.enqueued,
            n.delivered,
            n.dropped,
            n.duplicated,
            n.dead_lettered,
            n.replayed,
            n.dropped_dead_letters,
            c.phantom_offers,
            c.energy_violations,
            c.islanded.len(),
            c.provisional_adopted,
            c.provisional_superseded,
            self.compared_cycles,
        );
        if self.converged() {
            out.push_str("bit-identical");
        } else {
            out.push_str(&format!("{} violation(s):", self.violations.len()));
            for v in &self.violations {
                out.push_str(&format!("\n  - {v:?}"));
            }
        }
        out
    }
}

/// Run a chaos campaign: the scripted run, its reliable twin, and the
/// invariant checks.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let quiet = cfg.quiet_cycles.max(2);
    let mut violations = Vec::new();

    let quiet_start = cycle_span(cfg.sim.cycles.saturating_sub(quiet), cfg.sim.cycles).0;
    if cfg.sim.chaos.phases.iter().any(|p| p.end > quiet_start) {
        violations.push(InvariantViolation::ChaosOverlapsQuietTail);
    }

    let chaos = simulate(cfg.sim.clone());
    let baseline = simulate(SimulationConfig {
        chaos: ChaosPlan::reliable(),
        failure: FailureModel::reliable(),
        ..cfg.sim.clone()
    });

    let terminal = chaos.assigned + chaos.fallbacks;
    if terminal != chaos.offers_submitted {
        violations.push(InvariantViolation::OfferNotConserved {
            submitted: chaos.offers_submitted,
            terminal,
        });
    }
    if chaos.phantom_offers > 0 {
        violations.push(InvariantViolation::PhantomOffers(chaos.phantom_offers));
    }
    if chaos.energy_violations > 0 {
        violations.push(InvariantViolation::EnergyViolations(
            chaos.energy_violations,
        ));
    }
    // Islanded windows: the committed cost is bounded by the local-only
    // optimum found at prepare time (incremental repair only improves).
    for round in &chaos.islanded {
        if let (Some(prepared), Some(committed)) = (round.prepared_cost, round.committed_cost) {
            if committed > prepared + 1e-6 {
                violations.push(InvariantViolation::IslandedImbalanceExceeded {
                    window_start: round.window_start,
                    committed,
                    prepared,
                });
            }
        }
    }

    // Convergence: the quiet tail minus the settle cycle must hash
    // bit-identically to the baseline run.
    let compared_cycles = (quiet - 1).min(cfg.sim.cycles);
    for cycle in (cfg.sim.cycles - compared_cycles)..cfg.sim.cycles {
        let (c, b) = (
            chaos.plan_signatures[cycle],
            baseline.plan_signatures[cycle],
        );
        if c != b {
            violations.push(InvariantViolation::Diverged {
                cycle,
                chaos: c,
                baseline: b,
            });
        }
    }

    CampaignReport {
        chaos,
        baseline,
        compared_cycles,
        violations,
    }
}

/// A federation campaign: storm exactly one region of a federation and
/// prove **fault isolation** on top of the usual invariants.
#[derive(Debug, Clone)]
pub struct FederationCampaignConfig {
    /// The federation to drive. Its `sim.chaos` plan is re-scoped to
    /// [`FederationCampaignConfig::storm_region`] by the campaign.
    pub federation: FederationConfig,
    /// The single region the chaos plan targets.
    pub storm_region: RegionId,
    /// Trailing chaos-free cycles (semantics as
    /// [`CampaignConfig::quiet_cycles`]).
    pub quiet_cycles: usize,
}

/// Outcome of one federation campaign.
#[derive(Debug, Clone)]
pub struct FederationCampaignReport {
    /// The federated run with the storm scoped to one region.
    pub federation: FederationReport,
    /// Per-region violations. Untouched regions are held to the
    /// strictest standard — their **entire report** must equal the solo
    /// twin's, surfaced as [`InvariantViolation::Diverged`] per
    /// differing cycle (or cycle 0 for any non-signature field) — while
    /// the stormed region is judged like a normal campaign: invariants
    /// plus quiet-tail convergence against its reliable twin.
    pub violations: Vec<(RegionId, InvariantViolation)>,
    /// Number of trailing cycles compared for the stormed region.
    pub compared_cycles: usize,
}

impl FederationCampaignReport {
    /// Whether every region self-healed and isolation held.
    pub fn converged(&self) -> bool {
        self.violations.is_empty()
    }

    /// A printable multi-line summary (used by the federation example).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (i, region) in self.federation.regions.iter().enumerate() {
            out.push_str(&format!(
                "region {i}: {} offers, {} assigned, {} fallbacks, {} dropped, {} replayed\n",
                region.offers_submitted,
                region.assigned,
                region.fallbacks,
                region.network.dropped,
                region.network.replayed,
            ));
        }
        let x = &self.federation.exchange;
        out.push_str(&format!(
            "exchange: {} delta envelopes, {} snapshots, {:.1} kWh matched, converged: {}\n",
            x.deltas_published, x.snapshots_served, x.matched_kwh, x.converged,
        ));
        if self.converged() {
            out.push_str("isolation + convergence: clean");
        } else {
            out.push_str(&format!("{} violation(s):", self.violations.len()));
            for (r, v) in &self.violations {
                out.push_str(&format!("\n  - {r}: {v:?}"));
            }
        }
        out
    }
}

/// Run a federation campaign: scope the chaos plan to one region, run
/// the federation, and check each region against its solo twin.
///
/// The twin of region `r` is `simulate(Federation::region_config(cfg,
/// r))` — the *exact* configuration the federation hands that region,
/// including the region-scoped chaos. For untouched regions the scoped
/// plan resolves to [`ChaosPlan::reliable`], so twin equality is the
/// fault-isolation proof: a storm inside region `k` must not move one
/// byte of any other region's report. The stormed region's twin keeps
/// the storm, so it is additionally compared against a *reliable* twin
/// on the quiet tail, exactly like [`run_campaign`].
pub fn run_federation_campaign(cfg: &FederationCampaignConfig) -> FederationCampaignReport {
    let quiet = cfg.quiet_cycles.max(2);
    let mut violations: Vec<(RegionId, InvariantViolation)> = Vec::new();

    let mut fed_cfg = cfg.federation.clone();
    fed_cfg.sim.chaos = fed_cfg.sim.chaos.clone().in_region(cfg.storm_region);

    let cycles = fed_cfg.sim.cycles;
    let quiet_start = cycle_span(cycles.saturating_sub(quiet), cycles).0;
    if fed_cfg.sim.chaos.phases.iter().any(|p| p.end > quiet_start) {
        violations.push((cfg.storm_region, InvariantViolation::ChaosOverlapsQuietTail));
    }

    let federation = Federation::run(fed_cfg.clone());

    let compared_cycles = (quiet - 1).min(cycles);
    for (i, report) in federation.regions.iter().enumerate() {
        let region = RegionId(i as u64);
        let twin = simulate(Federation::region_config(&fed_cfg, region));

        // Invariants hold everywhere, stormed or not.
        let terminal = report.assigned + report.fallbacks;
        if terminal != report.offers_submitted {
            violations.push((
                region,
                InvariantViolation::OfferNotConserved {
                    submitted: report.offers_submitted,
                    terminal,
                },
            ));
        }
        if report.phantom_offers > 0 {
            violations.push((
                region,
                InvariantViolation::PhantomOffers(report.phantom_offers),
            ));
        }
        if report.energy_violations > 0 {
            violations.push((
                region,
                InvariantViolation::EnergyViolations(report.energy_violations),
            ));
        }

        if region == cfg.storm_region {
            // The stormed region converges like a normal campaign: its
            // quiet tail must match a reliable twin bit-for-bit.
            let reliable = simulate(SimulationConfig {
                chaos: ChaosPlan::reliable(),
                failure: FailureModel::reliable(),
                ..Federation::region_config(&fed_cfg, region)
            });
            for cycle in (cycles - compared_cycles)..cycles {
                let (c, b) = (
                    report.plan_signatures[cycle],
                    reliable.plan_signatures[cycle],
                );
                if c != b {
                    violations.push((
                        region,
                        InvariantViolation::Diverged {
                            cycle,
                            chaos: c,
                            baseline: b,
                        },
                    ));
                }
            }
        } else {
            // Fault isolation: the untouched region's FULL report —
            // every counter, every cycle's signature — must equal the
            // solo twin's.
            for (cycle, (&c, &b)) in report
                .plan_signatures
                .iter()
                .zip(&twin.plan_signatures)
                .enumerate()
            {
                if c != b {
                    violations.push((
                        region,
                        InvariantViolation::Diverged {
                            cycle,
                            chaos: c,
                            baseline: b,
                        },
                    ));
                }
            }
            if *report != twin {
                // Signatures matched but some other field differs —
                // still an isolation breach; flag it on cycle 0.
                if report.plan_signatures == twin.plan_signatures {
                    violations.push((
                        region,
                        InvariantViolation::Diverged {
                            cycle: 0,
                            chaos: 0,
                            baseline: 0,
                        },
                    ));
                }
            }
        }
    }

    FederationCampaignReport {
        federation,
        violations,
        compared_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sim(cycles: usize) -> SimulationConfig {
        SimulationConfig {
            brps: 2,
            prosumers_per_brp: 4,
            cycles,
            offers_per_prosumer: 1,
            use_tso: true,
            budget_evaluations: 2_000,
            seed: 42,
            ..SimulationConfig::default()
        }
    }

    #[test]
    fn loss_storm_campaign_converges() {
        let report = run_campaign(&CampaignConfig {
            sim: SimulationConfig {
                chaos: ChaosPlan::reliable().phase(loss_storm(1, 2, 0.5)),
                ..small_sim(5)
            },
            quiet_cycles: 3,
        });
        assert!(
            report.converged(),
            "loss storm must self-heal:\n{}",
            report.summary()
        );
        assert!(report.chaos.network.dropped > 0, "storm must actually drop");
    }

    #[test]
    fn crash_restart_campaign_converges() {
        let report = run_campaign(&CampaignConfig {
            sim: SimulationConfig {
                chaos: ChaosPlan::reliable().phase(crash_of(2, NodeId(1))),
                wal: Some(crate::wal::WalConfig::default()),
                ..small_sim(5)
            },
            quiet_cycles: 3,
        });
        assert_eq!(report.chaos.crashes, 1, "the crash must actually fire");
        assert_eq!(report.baseline.crashes, 0, "the twin never crashes");
        assert!(
            report.converged(),
            "crash-restart must self-heal via WAL recovery:\n{}",
            report.summary()
        );
    }

    /// Detector horizons that trip inside a two-cycle partition:
    /// ~1.5 cycles of silence is `Down`. Retransmits are pushed out of
    /// the run so the test isolates the islanding path.
    fn tight_link_health() -> crate::wire::LinkHealthConfig {
        crate::wire::LinkHealthConfig {
            suspect_after: 100,
            down_after: 150,
            retransmit_base: 10_000,
            max_retransmits: 0,
        }
    }

    #[test]
    fn islanding_campaign_with_tso_crash_and_partition_converges() {
        // The full degraded-mode loop under one campaign: a two-cycle
        // BRP↔TSO partition islands BRP 1 (local provisional balancing),
        // the heal reconciles its ledger, and a later TSO crash-restart
        // recovers from the WAL and re-anchors every BRP — after which
        // the quiet tail must be bit-identical to the never-faulted twin.
        let tso = NodeId(9_999);
        let report = run_campaign(&CampaignConfig {
            sim: SimulationConfig {
                chaos: ChaosPlan::reliable()
                    .phase(partition_between(1, 3, NodeId(1), tso))
                    .phase(crash_of(4, tso)),
                wal: Some(crate::wal::WalConfig::default()),
                link_health: tight_link_health(),
                ..small_sim(8)
            },
            quiet_cycles: 3,
        });
        assert_eq!(report.chaos.crashes, 1, "the TSO crash must fire");
        assert!(
            !report.chaos.islanded.is_empty(),
            "the partition must island BRP 1:\n{}",
            report.summary()
        );
        assert!(
            report.chaos.islanded.iter().any(|r| r.assignments > 0),
            "islanded rounds must produce provisional assignments"
        );
        assert!(
            report.chaos.provisional_adopted + report.chaos.provisional_superseded > 0,
            "the heal must audit the provisional ledger:\n{}",
            report.summary()
        );
        assert!(
            report.baseline.islanded.is_empty(),
            "the twin never islands"
        );
        assert!(
            report.converged(),
            "islanded BRP must reconcile and the TSO re-anchor:\n{}",
            report.summary()
        );
    }

    #[test]
    fn tso_crash_without_wal_is_amnesia_but_still_converges() {
        // No WAL: the crashed TSO restarts cold. The BRP resync protocol
        // plus per-cycle offer expiry must still erase the damage by the
        // quiet tail.
        let report = run_campaign(&CampaignConfig {
            sim: SimulationConfig {
                chaos: ChaosPlan::reliable().phase(crash_of(2, NodeId(9_999))),
                ..small_sim(6)
            },
            quiet_cycles: 3,
        });
        assert_eq!(report.chaos.crashes, 1);
        assert!(
            report.converged(),
            "cold TSO restart must self-heal:\n{}",
            report.summary()
        );
    }

    #[test]
    fn chaos_overlapping_quiet_tail_is_flagged() {
        let report = run_campaign(&CampaignConfig {
            sim: SimulationConfig {
                // The storm runs into the final cycle: no quiet period.
                chaos: ChaosPlan::reliable().phase(loss_storm(0, 5, 0.4)),
                ..small_sim(5)
            },
            quiet_cycles: 2,
        });
        assert!(report
            .violations
            .contains(&InvariantViolation::ChaosOverlapsQuietTail));
    }

    #[test]
    fn no_chaos_campaign_is_trivially_identical() {
        let report = run_campaign(&CampaignConfig {
            sim: small_sim(3),
            quiet_cycles: 2,
        });
        assert!(report.converged(), "{}", report.summary());
        assert_eq!(report.chaos, report.baseline);
    }

    #[test]
    fn cycle_span_maps_cycles_to_slots() {
        let (a, b) = cycle_span(1, 3);
        assert_eq!(a, TimeSlot(SLOTS_PER_DAY as i64));
        assert_eq!(b, TimeSlot(3 * SLOTS_PER_DAY as i64));
    }

    #[test]
    fn federation_campaign_isolates_a_regional_storm() {
        let report = run_federation_campaign(&FederationCampaignConfig {
            federation: FederationConfig {
                regions: 3,
                sim: SimulationConfig {
                    chaos: ChaosPlan::reliable().phase(loss_storm(1, 2, 0.5)),
                    ..small_sim(5)
                },
                ..FederationConfig::default()
            },
            storm_region: RegionId(1),
            quiet_cycles: 3,
        });
        assert!(
            report.converged(),
            "storm in region 1 must stay in region 1 and self-heal:\n{}",
            report.summary()
        );
        // The storm must actually have dropped traffic in region 1 and
        // nowhere else.
        assert!(report.federation.regions[1].network.dropped > 0);
        assert_eq!(report.federation.regions[0].network.dropped, 0);
        assert_eq!(report.federation.regions[2].network.dropped, 0);
    }

    #[test]
    fn federation_campaign_flags_storm_overlapping_quiet_tail() {
        let report = run_federation_campaign(&FederationCampaignConfig {
            federation: FederationConfig {
                regions: 2,
                sim: SimulationConfig {
                    chaos: ChaosPlan::reliable().phase(loss_storm(0, 5, 0.4)),
                    ..small_sim(5)
                },
                ..FederationConfig::default()
            },
            storm_region: RegionId(0),
            quiet_cycles: 2,
        });
        assert!(report
            .violations
            .contains(&(RegionId(0), InvariantViolation::ChaosOverlapsQuietTail)));
    }
}
