//! Messages exchanged between EDMS nodes (paper §3: "flex-offers, supply
//! and demand measurements, forecasts, etc.").

use mirabel_aggregate::FlexOfferUpdate;
use mirabel_core::codec::{CodecError, Wire};
use mirabel_core::{
    ActorId, FlexOffer, FlexOfferId, NodeId, Price, RegionId, ScheduledFlexOffer, TimeSlot,
};
use serde::{Deserialize, Serialize};

/// The message vocabulary of the EDMS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Prosumer → BRP: a new flex-offer.
    SubmitOffer(FlexOffer),
    /// BRP → prosumer: the offer entered the pool; estimated value.
    OfferAccepted {
        /// The offer.
        offer: FlexOfferId,
        /// Estimated flexibility value in `[0,1]`.
        value: f64,
    },
    /// BRP → prosumer: the offer was waived; the open contract applies.
    OfferRejected {
        /// The offer.
        offer: FlexOfferId,
    },
    /// BRP → prosumer (or TSO → BRP): a scheduled assignment plus agreed
    /// discount.
    Assignment {
        /// The resolved schedule.
        schedule: ScheduledFlexOffer,
        /// Flexibility discount (EUR/kWh of scheduled energy).
        discount_per_kwh: Price,
    },
    /// Prosumer → BRP: metered energy for past slots (kWh per slot).
    Measurement {
        /// The metered actor.
        actor: ActorId,
        /// First slot of the readings.
        start: TimeSlot,
        /// kWh per slot (positive consumption, negative production).
        values: Vec<f64>,
    },
    /// BRP → TSO: macro (aggregated) flex-offer **deltas** for
    /// higher-level balancing. The BRP forwards the change stream its
    /// aggregation pipeline emits — inserts carry the new/updated macro
    /// offer value, deletes carry only the id — instead of re-sending
    /// full pool snapshots, so a trickle change at level 1 stays a
    /// trickle on the level 2 → level 3 wire.
    MacroOfferDeltas(Vec<FlexOfferUpdate>),
    /// TSO → BRP: the receiver detected a gap in the sender's sequenced
    /// delta stream (a `MacroOfferDeltas` envelope was lost or is still
    /// in flight) and asks for a state snapshot to re-anchor on.
    ResyncRequest,
    /// BRP → TSO: the answer to a [`Message::ResyncRequest`] — a bounded
    /// snapshot of *every* macro offer the sender currently exports. The
    /// receiver diffs it against its pooled view of that sender and
    /// splices only the differences into its live plan, so a lost delta
    /// costs one extra round-trip instead of silent divergence.
    ResyncSnapshot {
        /// The sender's complete current export set.
        offers: Vec<FlexOffer>,
    },
    /// Regional TSO → peer regions (federation exchange bus): net
    /// surplus/deficit **macro-offer deltas** in export-id space — the
    /// same delta-wire contract as [`Message::MacroOfferDeltas`], lifted
    /// one level: instead of BRPs trickling macro offers to their TSO,
    /// regional TSOs trickle their exportable surplus to every peer
    /// region. Bounded by construction (only offers that changed since
    /// the last publication are carried), so cross-border traffic stays
    /// a tiny fraction of intra-region wire bytes.
    ExchangeOfferDeltas(Vec<FlexOfferUpdate>),
    /// Liveness beacon piggybacked on the existing sequenced streams
    /// (failure detection, PR 10). In the hierarchy it flows TSO → BRP
    /// (each commit round) and BRP → TSO (rounds with nothing to flush),
    /// so both ends of a link hear each other at least once per cycle.
    /// `seen` is the sender's cumulative count of applied
    /// [`Message::MacroOfferDeltas`] envelopes from the receiver — a
    /// piggybacked acknowledgement the receiver compares against its own
    /// flush count to detect unacked flushes and drive bounded
    /// retransmission (as an idempotent [`Message::ResyncSnapshot`],
    /// never a replayed delta batch).
    Heartbeat {
        /// Cumulative count of the receiver's delta flushes the sender
        /// has applied.
        seen: u64,
    },
    /// Rejoining BRP → TSO (reconciliation handshake, PR 10): the
    /// assignments the BRP committed *locally* while its TSO link was
    /// down (islanded mode), stamped provisional in its datastore and
    /// WAL. The TSO audits them deterministically: a reported offer it
    /// no longer pools is **adopted** (the BRP's local decision stands),
    /// one it still pools is **superseded** (the TSO's next global plan
    /// re-decides it via the normal delta-splice).
    ProvisionalReport {
        /// First slot of the islanded window the report covers.
        window_start: TimeSlot,
        /// The provisional local assignments.
        assignments: Vec<ScheduledFlexOffer>,
    },
}

/// A routed message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Sender node.
    pub from: NodeId,
    /// Recipient node.
    pub to: NodeId,
    /// Slot at which the message was sent.
    pub sent_at: TimeSlot,
    /// Position in the `(from, to)` stream, stamped by the network at
    /// send time (before any failure injection, so a dropped envelope
    /// still consumes its slot and the receiver can detect the gap).
    /// `None` on envelopes handed to a node directly, bypassing the
    /// network — those are delivered unchecked.
    pub seq: Option<u64>,
    /// Payload.
    pub message: Message,
    /// Federation region the envelope was routed in (tenant-registry
    /// pattern: the tenant id rides the event envelope). Stamped by the
    /// region's [`Network`](crate::comm::Network) at route time;
    /// [`RegionId::DEFAULT`] on direct hand-offs and on every envelope
    /// of a pre-federation (single-hierarchy) deployment. Pure metadata:
    /// it never influences routing or planning, only isolation
    /// book-keeping, WAL namespacing and chaos targeting.
    pub region: RegionId,
}

impl Wire for Message {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Message::SubmitOffer(offer) => {
                out.push(0);
                offer.encode(out);
            }
            Message::OfferAccepted { offer, value } => {
                out.push(1);
                offer.encode(out);
                value.encode(out);
            }
            Message::OfferRejected { offer } => {
                out.push(2);
                offer.encode(out);
            }
            Message::Assignment {
                schedule,
                discount_per_kwh,
            } => {
                out.push(3);
                schedule.encode(out);
                discount_per_kwh.encode(out);
            }
            Message::Measurement {
                actor,
                start,
                values,
            } => {
                out.push(4);
                actor.encode(out);
                start.encode(out);
                values.encode(out);
            }
            Message::MacroOfferDeltas(updates) => {
                out.push(5);
                updates.encode(out);
            }
            Message::ResyncRequest => out.push(6),
            Message::ResyncSnapshot { offers } => {
                out.push(7);
                offers.encode(out);
            }
            Message::ExchangeOfferDeltas(updates) => {
                out.push(8);
                updates.encode(out);
            }
            Message::Heartbeat { seen } => {
                out.push(9);
                seen.encode(out);
            }
            Message::ProvisionalReport {
                window_start,
                assignments,
            } => {
                out.push(10);
                window_start.encode(out);
                assignments.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let (&tag, rest) = buf.split_first().ok_or(CodecError::UnexpectedEof)?;
        *buf = rest;
        match tag {
            0 => Ok(Message::SubmitOffer(FlexOffer::decode(buf)?)),
            1 => Ok(Message::OfferAccepted {
                offer: FlexOfferId::decode(buf)?,
                value: f64::decode(buf)?,
            }),
            2 => Ok(Message::OfferRejected {
                offer: FlexOfferId::decode(buf)?,
            }),
            3 => Ok(Message::Assignment {
                schedule: ScheduledFlexOffer::decode(buf)?,
                discount_per_kwh: Price::decode(buf)?,
            }),
            4 => Ok(Message::Measurement {
                actor: ActorId::decode(buf)?,
                start: TimeSlot::decode(buf)?,
                values: Vec::<f64>::decode(buf)?,
            }),
            5 => Ok(Message::MacroOfferDeltas(Vec::<FlexOfferUpdate>::decode(
                buf,
            )?)),
            6 => Ok(Message::ResyncRequest),
            7 => Ok(Message::ResyncSnapshot {
                offers: Vec::<FlexOffer>::decode(buf)?,
            }),
            8 => Ok(Message::ExchangeOfferDeltas(
                Vec::<FlexOfferUpdate>::decode(buf)?,
            )),
            9 => Ok(Message::Heartbeat {
                seen: u64::decode(buf)?,
            }),
            10 => Ok(Message::ProvisionalReport {
                window_start: TimeSlot::decode(buf)?,
                assignments: Vec::<ScheduledFlexOffer>::decode(buf)?,
            }),
            other => Err(CodecError::InvalidTag {
                what: "Message",
                tag: u64::from(other),
            }),
        }
    }
}

impl Wire for Envelope {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.encode(out);
        self.to.encode(out);
        self.sent_at.encode(out);
        self.seq.encode(out);
        self.message.encode(out);
        // The region rides LAST so pre-federation frames (which end
        // exactly after `message`) stay decodable: a legacy frame hits
        // EOF where the region varint would start, and the compat path
        // falls back to `RegionId::DEFAULT`.
        self.region.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Envelope {
            from: NodeId::decode(buf)?,
            to: NodeId::decode(buf)?,
            sent_at: TimeSlot::decode(buf)?,
            seq: Option::<u64>::decode(buf)?,
            message: Message::decode(buf)?,
            region: RegionId::decode(buf)?,
        })
    }
}

impl Envelope {
    /// Convenience constructor (unsequenced, default region; the network
    /// stamps `seq` and `region` when the envelope is routed).
    pub fn new(from: NodeId, to: NodeId, sent_at: TimeSlot, message: Message) -> Envelope {
        Envelope {
            from,
            to,
            sent_at,
            seq: None,
            message,
            region: RegionId::DEFAULT,
        }
    }

    /// Builder step: pin an explicit stream sequence number (tests and
    /// direct node-to-node hand-offs that bypass the network).
    pub fn with_seq(mut self, seq: u64) -> Envelope {
        self.seq = Some(seq);
        self
    }

    /// Builder step: pin an explicit region id (tests and direct
    /// hand-offs; routed envelopes get theirs stamped by the network).
    pub fn in_region(mut self, region: RegionId) -> Envelope {
        self.region = region;
        self
    }

    /// Decode the pre-federation envelope layout (no trailing region
    /// field); the envelope lands in [`RegionId::DEFAULT`]. Used by the
    /// WAL's backward-compatible frame decoder.
    pub(crate) fn decode_legacy(buf: &mut &[u8]) -> Result<Envelope, CodecError> {
        Ok(Envelope {
            from: NodeId::decode(buf)?,
            to: NodeId::decode(buf)?,
            sent_at: TimeSlot::decode(buf)?,
            seq: Option::<u64>::decode(buf)?,
            message: Message::decode(buf)?,
            region: RegionId::DEFAULT,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrip() {
        let e = Envelope::new(
            NodeId(1),
            NodeId(2),
            TimeSlot(5),
            Message::OfferRejected {
                offer: FlexOfferId(9),
            },
        );
        assert_eq!(e.from, NodeId(1));
        assert_eq!(e.to, NodeId(2));
        assert_eq!(e.region, RegionId::DEFAULT);
        assert!(matches!(e.message, Message::OfferRejected { .. }));
        let stamped = e.in_region(RegionId(3));
        assert_eq!(stamped.region, RegionId(3));
    }

    #[test]
    fn heartbeat_and_provisional_report_roundtrip() {
        let hb = Message::Heartbeat { seen: 42 };
        assert_eq!(Message::from_bytes(&hb.to_bytes()).unwrap(), hb);
        let report = Message::ProvisionalReport {
            window_start: TimeSlot(96),
            assignments: Vec::new(),
        };
        assert_eq!(Message::from_bytes(&report.to_bytes()).unwrap(), report);
    }

    #[test]
    fn legacy_envelope_frames_decode_into_default_region() {
        // A pre-federation frame is the current encoding minus the
        // trailing region varint.
        let env = Envelope::new(NodeId(4), NodeId(5), TimeSlot(9), Message::ResyncRequest)
            .with_seq(11)
            .in_region(RegionId(2));
        let bytes = env.to_bytes();
        let legacy = &bytes[..bytes.len() - 1]; // region 2 encodes as one varint byte
        let mut cursor = legacy;
        let back = Envelope::decode_legacy(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back.region, RegionId::DEFAULT);
        assert_eq!(back.seq, Some(11));
        // And the modern decoder refuses the truncated frame outright.
        assert!(Envelope::from_bytes(legacy).is_err());
    }
}
