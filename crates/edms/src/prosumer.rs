//! The level-1 prosumer node.
//!
//! Issues flex-offers to its BRP, executes the assignments it receives,
//! and — crucially for the paper's fault-tolerance story — falls back to
//! the *open contract* (earliest start, maximum energy) whenever an offer
//! passes its assignment deadline without a schedule, whether because the
//! BRP rejected it, the message was lost, or the deadline was missed.

use crate::message::{Envelope, Message};
use crate::runtime::Node;
use mirabel_core::{ActorId, Energy, FlexOffer, FlexOfferId, NodeId, ScheduledFlexOffer, TimeSlot};
use std::collections::BTreeMap;

/// A prosumer's view of one of its offers.
#[derive(Debug, Clone, PartialEq)]
enum OfferStatus {
    /// Submitted, no decision seen yet.
    Pending,
    /// BRP accepted; awaiting assignment.
    Accepted,
    /// Assignment received.
    Assigned(ScheduledFlexOffer),
    /// Open contract applied (rejection, loss or timeout).
    FallenBack(ScheduledFlexOffer),
}

/// The level-1 node.
#[derive(Debug)]
pub struct ProsumerNode {
    /// This node's id.
    pub id: NodeId,
    /// The metered actor behind the node.
    pub actor: ActorId,
    /// The responsible BRP's node id.
    pub brp: NodeId,
    offers: BTreeMap<FlexOfferId, (FlexOffer, OfferStatus)>,
    fallback_count: usize,
    assigned_count: usize,
}

impl ProsumerNode {
    /// Create a prosumer attached to `brp`.
    pub fn new(id: NodeId, actor: ActorId, brp: NodeId) -> ProsumerNode {
        ProsumerNode {
            id,
            actor,
            brp,
            offers: BTreeMap::new(),
            fallback_count: 0,
            assigned_count: 0,
        }
    }

    /// Submit a flex-offer; returns the envelope for the network.
    pub fn submit(&mut self, offer: FlexOffer, now: TimeSlot) -> Envelope {
        self.offers
            .insert(offer.id(), (offer.clone(), OfferStatus::Pending));
        Envelope::new(self.id, self.brp, now, Message::SubmitOffer(offer))
    }

    /// Handle an incoming message.
    pub fn handle(&mut self, envelope: Envelope) {
        match envelope.message {
            Message::OfferAccepted { offer, .. } => {
                if let Some((_, status)) = self.offers.get_mut(&offer) {
                    if *status == OfferStatus::Pending {
                        *status = OfferStatus::Accepted;
                    }
                }
            }
            Message::OfferRejected { offer } => {
                if let Some((o, status)) = self.offers.get_mut(&offer) {
                    if matches!(*status, OfferStatus::Pending | OfferStatus::Accepted) {
                        *status = OfferStatus::FallenBack(ScheduledFlexOffer::open_contract(o));
                        self.fallback_count += 1;
                    }
                }
            }
            Message::Assignment { schedule, .. } => {
                if let Some((offer, status)) = self.offers.get_mut(&schedule.offer_id) {
                    // Late assignments (after fallback) are ignored: the
                    // device is already committed to the open contract.
                    if matches!(*status, OfferStatus::Pending | OfferStatus::Accepted)
                        && schedule.validate_against(offer, 1e-6).is_ok()
                    {
                        *status = OfferStatus::Assigned(schedule);
                        self.assigned_count += 1;
                    }
                }
            }
            _ => {}
        }
    }

    /// Advance the clock: any offer whose assignment deadline has passed
    /// without an assignment falls back to the open contract. Returns the
    /// offers that fell back this step.
    pub fn on_slot(&mut self, now: TimeSlot) -> Vec<FlexOfferId> {
        let mut fell_back = Vec::new();
        for (id, (offer, status)) in self.offers.iter_mut() {
            if matches!(*status, OfferStatus::Pending | OfferStatus::Accepted)
                && offer.is_expired(now)
            {
                *status = OfferStatus::FallenBack(ScheduledFlexOffer::open_contract(offer));
                self.fallback_count += 1;
                fell_back.push(*id);
            }
        }
        fell_back
    }

    /// Realized flexible energy at slot `t`: the sum over all committed
    /// (assigned or fallen-back) schedules. Consumption positive.
    pub fn flexible_load_at(&self, t: TimeSlot) -> f64 {
        self.offers
            .values()
            .map(|(offer, status)| {
                let schedule = match status {
                    OfferStatus::Assigned(s) | OfferStatus::FallenBack(s) => s,
                    _ => return 0.0,
                };
                offer.demand_sign() * schedule.energy_at(t).kwh()
            })
            .sum()
    }

    /// Committed schedules (assigned or fallen back) whose energy
    /// profile violates the originating offer's bounds by more than
    /// `tol` — the chaos invariant checker's energy-conservation probe.
    /// Stays 0 unless a handler ever accepted an invalid schedule.
    pub fn energy_violations(&self, tol: f64) -> usize {
        self.offers
            .values()
            .filter(|(offer, status)| {
                let schedule = match status {
                    OfferStatus::Assigned(s) | OfferStatus::FallenBack(s) => s,
                    _ => return false,
                };
                schedule.validate_against(offer, tol).is_err()
            })
            .count()
    }

    /// Visit the committed execution of every offer whose earliest start
    /// falls in `[start, end)`: `(offer id, assigned?, schedule start,
    /// per-slot energies)`, ascending by offer id. Offer ids here are
    /// the stable sim-assigned micro ids, so two runs that converge to
    /// the same plans visit bit-identical tuples — the basis of the
    /// chaos campaign's per-cycle plan signatures. Visitor-style so the
    /// per-cycle signature hash allocates nothing.
    pub fn for_each_committed_in_window(
        &self,
        start: TimeSlot,
        end: TimeSlot,
        mut f: impl FnMut(FlexOfferId, bool, TimeSlot, &[Energy]),
    ) {
        for (id, (o, status)) in &self.offers {
            if o.earliest_start() < start || o.earliest_start() >= end {
                continue;
            }
            let (assigned, s) = match status {
                OfferStatus::Assigned(s) => (true, s),
                OfferStatus::FallenBack(s) => (false, s),
                _ => continue,
            };
            f(*id, assigned, s.start, &s.slot_energies);
        }
    }

    /// Offers that ended in the open contract.
    pub fn fallback_count(&self) -> usize {
        self.fallback_count
    }

    /// Offers executed under a BRP assignment.
    pub fn assigned_count(&self) -> usize {
        self.assigned_count
    }

    /// All offers ever submitted.
    pub fn offer_count(&self) -> usize {
        self.offers.len()
    }
}

impl Node for ProsumerNode {
    fn node_id(&self) -> NodeId {
        self.id
    }

    /// Level 1 in the unified hierarchy: prosumers consume decisions and
    /// assignments but never reply on the spot (their own messages
    /// originate from [`ProsumerNode::submit`]).
    fn handle(&mut self, envelope: Envelope, _now: TimeSlot) -> Vec<Envelope> {
        ProsumerNode::handle(self, envelope);
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{EnergyRange, Price, Profile};

    fn offer(id: u64, es: i64, deadline: i64) -> FlexOffer {
        FlexOffer::builder(id, 7)
            .earliest_start(TimeSlot(es))
            .time_flexibility(8)
            .assignment_before(TimeSlot(deadline))
            .profile(Profile::uniform(2, EnergyRange::new(1.0, 2.0).unwrap()))
            .build()
            .unwrap()
    }

    fn node() -> ProsumerNode {
        ProsumerNode::new(NodeId(10), ActorId(7), NodeId(1))
    }

    #[test]
    fn submit_targets_brp() {
        let mut p = node();
        let env = p.submit(offer(1, 20, 10), TimeSlot(0));
        assert_eq!(env.to, NodeId(1));
        assert!(matches!(env.message, Message::SubmitOffer(_)));
        assert_eq!(p.offer_count(), 1);
    }

    #[test]
    fn assignment_executes() {
        let mut p = node();
        let o = offer(1, 20, 10);
        p.submit(o.clone(), TimeSlot(0));
        let schedule = ScheduledFlexOffer::at_min(&o, TimeSlot(22));
        p.handle(Envelope::new(
            NodeId(1),
            NodeId(10),
            TimeSlot(5),
            Message::Assignment {
                schedule,
                discount_per_kwh: Price(0.02),
            },
        ));
        assert_eq!(p.assigned_count(), 1);
        assert!(p.flexible_load_at(TimeSlot(22)) > 0.0);
        assert_eq!(p.flexible_load_at(TimeSlot(30)), 0.0);
    }

    #[test]
    fn invalid_assignment_ignored() {
        let mut p = node();
        let o = offer(1, 20, 10);
        p.submit(o.clone(), TimeSlot(0));
        let mut schedule = ScheduledFlexOffer::at_min(&o, TimeSlot(22));
        schedule.start = TimeSlot(99); // outside window
        p.handle(Envelope::new(
            NodeId(1),
            NodeId(10),
            TimeSlot(5),
            Message::Assignment {
                schedule,
                discount_per_kwh: Price(0.02),
            },
        ));
        assert_eq!(p.assigned_count(), 0);
    }

    #[test]
    fn rejection_falls_back_to_open_contract() {
        let mut p = node();
        let o = offer(1, 20, 10);
        p.submit(o.clone(), TimeSlot(0));
        p.handle(Envelope::new(
            NodeId(1),
            NodeId(10),
            TimeSlot(2),
            Message::OfferRejected {
                offer: FlexOfferId(1),
            },
        ));
        assert_eq!(p.fallback_count(), 1);
        // open contract: earliest start, max energy
        assert!((p.flexible_load_at(TimeSlot(20)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn deadline_timeout_falls_back() {
        let mut p = node();
        p.submit(offer(1, 20, 10), TimeSlot(0));
        assert!(p.on_slot(TimeSlot(9)).is_empty());
        let fell = p.on_slot(TimeSlot(10));
        assert_eq!(fell, vec![FlexOfferId(1)]);
        assert_eq!(p.fallback_count(), 1);
        // idempotent
        assert!(p.on_slot(TimeSlot(11)).is_empty());
    }

    #[test]
    fn late_assignment_after_fallback_ignored() {
        let mut p = node();
        let o = offer(1, 20, 10);
        p.submit(o.clone(), TimeSlot(0));
        p.on_slot(TimeSlot(10)); // falls back
        p.handle(Envelope::new(
            NodeId(1),
            NodeId(10),
            TimeSlot(11),
            Message::Assignment {
                schedule: ScheduledFlexOffer::at_min(&o, TimeSlot(25)),
                discount_per_kwh: Price(0.02),
            },
        ));
        assert_eq!(p.assigned_count(), 0);
        // still the open-contract execution at earliest start
        assert!((p.flexible_load_at(TimeSlot(20)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn production_offer_counts_negative() {
        let mut p = node();
        let o = FlexOffer::builder(2, 7)
            .kind(mirabel_core::OfferKind::Production)
            .earliest_start(TimeSlot(20))
            .assignment_before(TimeSlot(10))
            .profile(Profile::uniform(1, EnergyRange::fixed(3.0)))
            .build()
            .unwrap();
        p.submit(o, TimeSlot(0));
        p.on_slot(TimeSlot(10));
        assert!((p.flexible_load_at(TimeSlot(20)) + 3.0).abs() < 1e-12);
    }
}
