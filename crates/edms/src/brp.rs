//! The level-2 balance-responsible-party (trader) node: the full LEDMS.
//!
//! The Control component is [`BrpNode::handle`] plus the planning
//! life-cycle: collect offers from prosumers, decide acceptance
//! (Negotiation), aggregate incrementally (Aggregation), forecast the
//! baseline (Forecasting), schedule the macro offers (Scheduling),
//! disaggregate and send assignments back — or forward the macro-offer
//! *delta stream* to the TSO and disaggregate *its* assignments instead
//! (paper §2: "the process is essentially repeated at a higher level").
//!
//! ## The unified life-cycle
//!
//! Planning runs on the shared [`PlanEngine`]
//! — the same prepare → replan → commit machinery the TSO uses one level
//! up:
//!
//! 1. [`BrpNode::prepare_plan`] schedules the eligible macro offers and
//!    keeps the result as a **live** `DeltaEvaluator` (owning its
//!    problem) instead of throwing the search state away;
//! 2. [`BrpNode::on_forecast_event`] consumes a typed
//!    [`ForecastEvent`] from the pub/sub hub: rebase on exactly the
//!    changed slots, scoped parallel multi-start repair — and offers
//!    submitted *while the plan is live* are spliced straight into the
//!    evaluator by the engine's offer-delta folding;
//! 3. [`BrpNode::commit_plan`] disaggregates the live solution into
//!    micro assignments once the window's deadline approaches.
//!
//! In TSO mode (`forward_to_tso`), the BRP does not schedule locally;
//! instead every aggregate change its pipeline emits is staged as an
//! export delta and flushed upward as one
//! [`Message::MacroOfferDeltas`] batch per planning round — snapshots
//! never cross the wire.
//!
//! [`BrpNode::plan_with_baseline`] runs phases 1+3 back-to-back for
//! callers without forecast updates.

use crate::datastore::{
    DataStore, EnergyType, MeasurementFact, OfferFact, OfferState, ScheduleFact,
};
use crate::message::{Envelope, Message};
use crate::runtime::{Node, NodeRuntime, PlanEngine, RuntimeConfig};
use crate::wal::{NodeWal, WalConfig, WalStore};
use crate::wire::{
    DedupRx, LinkHealth, LinkHealthConfig, LinkHealthStats, LinkState, RetransmitTracker,
};
use mirabel_aggregate::{
    AggregateUpdate, AggregationParams, AggregationPipeline, BinPackerConfig, FlexOfferUpdate,
};
use mirabel_core::codec::{put_u64, take_u64, CodecError, Wire};
use mirabel_core::{
    AggregateId, FlexOffer, FlexOfferId, NodeId, Price, ScheduledFlexOffer, TimeSlot,
};
use mirabel_forecast::{ForecastEvent, ForecastModel, HwtConfig, HwtModel, Seasonality};
use mirabel_negotiate::{AcceptanceDecision, AcceptancePolicy, PreExecutionPricing};
use mirabel_schedule::{evaluate, MarketPrices, SchedulingProblem, Solution};
use mirabel_timeseries::TimeSeries;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashMap};

pub use crate::runtime::{PlanReport, ReplanReport, SchedulerKind};

/// BRP configuration.
#[derive(Debug, Clone)]
pub struct BrpConfig {
    /// Aggregation thresholds.
    pub aggregation: AggregationParams,
    /// Optional bin-packer bounds.
    pub binpacker: Option<BinPackerConfig>,
    /// Scheduling algorithm.
    pub scheduler: SchedulerKind,
    /// Cost-evaluation budget per planning run.
    pub budget_evaluations: usize,
    /// Acceptance policy (Negotiation component).
    pub acceptance: AcceptancePolicy,
    /// Pricing scheme for assignments.
    pub pricing: PreExecutionPricing,
    /// Forward macro-offer deltas to the TSO instead of scheduling
    /// locally.
    pub forward_to_tso: bool,
    /// Parallel multi-start chains (K) per incremental repair.
    pub repair_chains: usize,
    /// Proposed moves per repair chain.
    pub repair_moves: usize,
    /// Parallel best-of-K restarts of the *initial* scheduler run (1 =
    /// single start; chain 0 always reproduces the single-start result).
    pub initial_starts: usize,
    /// Worker pool shared by every parallel path of this node —
    /// aggregate flush shards, initial-start chains and repair chains.
    /// Defaults to the process-wide [`mirabel_core::exec::Pool::global`]
    /// executor, so all BRPs and the TSO of a hierarchy wake the same
    /// parked workers; results are identical for any pool.
    pub pool: mirabel_core::exec::Pool,
    /// Failure-detector horizons for the TSO link (TSO mode only):
    /// silence thresholds for `Suspect`/`Down`, and the retransmit
    /// backoff for unacked outbox flushes. Purely slot-clocked, so
    /// detection is bit-identical at any worker-pool width.
    pub link_health: LinkHealthConfig,
}

impl Default for BrpConfig {
    fn default() -> BrpConfig {
        let runtime = RuntimeConfig::default();
        BrpConfig {
            aggregation: AggregationParams::p3(8, 8),
            binpacker: None,
            scheduler: runtime.scheduler,
            budget_evaluations: runtime.budget_evaluations,
            acceptance: AcceptancePolicy::default(),
            pricing: PreExecutionPricing::default(),
            forward_to_tso: false,
            repair_chains: runtime.repair_chains,
            repair_moves: runtime.repair_moves,
            initial_starts: runtime.initial_starts,
            pool: runtime.pool,
            link_health: LinkHealthConfig::default(),
        }
    }
}

impl BrpConfig {
    /// The shared runtime knobs carried by this configuration.
    fn runtime(&self) -> RuntimeConfig {
        RuntimeConfig {
            scheduler: self.scheduler,
            budget_evaluations: self.budget_evaluations,
            initial_starts: self.initial_starts,
            repair_chains: self.repair_chains,
            repair_moves: self.repair_moves,
            pool: self.pool.clone(),
        }
    }
}

/// The level-2 node.
#[derive(Debug)]
pub struct BrpNode {
    /// This node's id.
    pub id: NodeId,
    /// Parent TSO, if any.
    pub parent: Option<NodeId>,
    config: BrpConfig,
    /// Offer pool: id → (offer, source node). Ordered so every walk
    /// (expiry, planning) is deterministic across runs.
    pool: BTreeMap<FlexOfferId, (FlexOffer, NodeId)>,
    /// The shared planning runtime: pipeline + live plan.
    engine: PlanEngine,
    /// The Data Management component.
    pub store: DataStore,
    /// Exported macro-offer id → local aggregate id (TSO path).
    exports: BTreeMap<u64, AggregateId>,
    /// Net export deltas staged since the last forward (TSO path),
    /// keyed by export id: `Some(aggregate)` = upsert pending (the
    /// offer value is materialized once, at flush), `None` = delete
    /// pending. Later changes to the same aggregate overwrite earlier
    /// ones, so both the staging cost and the wire are proportional to
    /// the number of aggregates that changed, not to churn.
    outbox: BTreeMap<u64, Option<AggregateId>>,
    /// One at-most-once filter per sender: network-duplicated inbound
    /// envelopes (submissions, assignments, resync requests) are dropped
    /// before they reach a handler. A `HashMap` is safe: probed by
    /// sender only, never iterated, so its order cannot leak into
    /// results (snapshots sort by sender before encoding).
    rx: HashMap<u64, DedupRx, crate::comm::IdHashBuilder>,
    /// Optional write-ahead event log: when attached, every accepted
    /// inbound envelope (and every outbox flush) is appended *before*
    /// the state mutation it causes, with snapshot-then-truncate
    /// compaction bounding replay length.
    wal: Option<NodeWal>,
    /// Set while [`BrpNode::recover`] re-drives logged events through
    /// the handlers: suppresses WAL re-appends (and lets callers drop
    /// the regenerated replies, which were already sent pre-crash).
    replaying: bool,
    /// Event id of the most recently ingested envelope — the causation
    /// link stamped onto the outbox-flush records it triggers.
    last_ingest_event: Option<u64>,
    /// Failure detector for the TSO link (meaningful in TSO mode only).
    health: LinkHealth,
    /// Piggybacked-ack bookkeeping for upward outbox flushes.
    retransmit: RetransmitTracker,
    /// Envelopes accepted from the parent so far — the cumulative count
    /// this node's own heartbeats piggyback as an ack.
    parent_heard: u64,
    /// Whether the current live plan was prepared islanded (TSO link
    /// `Down`): its commit stamps assignments provisional.
    islanded_round: bool,
    /// First slot of the current island (None while connected).
    islanded_since: Option<TimeSlot>,
    /// Macro-level provisional assignments (export-id space) committed
    /// while islanded, pending the reconciliation handshake on heal.
    provisional: BTreeMap<FlexOfferId, ScheduledFlexOffer>,
    /// Per-window log of islanded planning rounds, drained by the
    /// simulation ([`take_islanded_rounds`](Self::take_islanded_rounds)).
    islanded_log: Vec<IslandedRound>,
}

/// One islanded planning round: what the BRP's local engine prepared
/// and committed for a window while its TSO link was `Down`. The chaos
/// invariant checker asserts `committed_cost <= prepared_cost` — the
/// islanded window's imbalance is bounded by the local-only optimum the
/// engine found at prepare time (refreshed after each mid-window
/// forecast repair, which legitimately moves the bound).
#[derive(Debug, Clone, PartialEq)]
pub struct IslandedRound {
    /// First slot of the islanded planning window.
    pub window_start: TimeSlot,
    /// Macro offers eligible for the local pass.
    pub eligible: usize,
    /// Cost of the local plan at prepare time (the local-only optimum),
    /// refreshed after each mid-window forecast repair.
    pub prepared_cost: Option<f64>,
    /// Cost at commit time, after incremental refinements.
    pub committed_cost: Option<f64>,
    /// Provisional micro assignments the commit produced.
    pub assignments: usize,
}

/// Decoded form of the state snapshot a BRP installs at WAL compaction
/// points: the offer pool (with source nodes) plus the per-sender
/// duplicate-filter states. Everything else a BRP holds — aggregates,
/// exports, outbox — is *derived* and is rebuilt by re-feeding the pool
/// through the aggregation pipeline on restore.
struct BrpSnapshot {
    pool: Vec<(FlexOffer, NodeId)>,
    /// `(sender, delivered_below, seen, duplicates)` per inbound stream.
    rx: Vec<(u64, u64, Vec<u64>, u64)>,
}

impl BrpSnapshot {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.pool.len() as u64);
        for (offer, from) in &self.pool {
            offer.encode(&mut out);
            from.encode(&mut out);
        }
        put_u64(&mut out, self.rx.len() as u64);
        for (sender, below, seen, dups) in &self.rx {
            put_u64(&mut out, *sender);
            put_u64(&mut out, *below);
            seen.encode(&mut out);
            put_u64(&mut out, *dups);
        }
        out
    }

    fn decode(mut buf: &[u8]) -> Result<BrpSnapshot, CodecError> {
        let buf = &mut buf;
        let pool_len = usize::decode(buf)?;
        let mut pool = Vec::with_capacity(pool_len.min(buf.len()));
        for _ in 0..pool_len {
            let offer = FlexOffer::decode(buf)?;
            let from = NodeId::decode(buf)?;
            pool.push((offer, from));
        }
        let rx_len = usize::decode(buf)?;
        let mut rx = Vec::with_capacity(rx_len.min(buf.len() + 1));
        for _ in 0..rx_len {
            let sender = take_u64(buf)?;
            let below = take_u64(buf)?;
            let seen = Vec::<u64>::decode(buf)?;
            let dups = take_u64(buf)?;
            rx.push((sender, below, seen, dups));
        }
        Ok(BrpSnapshot { pool, rx })
    }
}

impl BrpNode {
    /// Create a BRP node. All parallel paths — pipeline flush included —
    /// run on the config's shared worker pool (wired by [`PlanEngine`]).
    pub fn new(id: NodeId, parent: Option<NodeId>, config: BrpConfig) -> BrpNode {
        let pipeline = AggregationPipeline::new(config.aggregation, config.binpacker);
        let engine = PlanEngine::new(
            pipeline,
            config.runtime(),
            id.value().wrapping_mul(0x9e37_79b9),
        );
        let health = LinkHealth::new(config.link_health);
        BrpNode {
            id,
            parent,
            config,
            pool: BTreeMap::new(),
            engine,
            store: DataStore::new(),
            exports: BTreeMap::new(),
            outbox: BTreeMap::new(),
            rx: HashMap::default(),
            wal: None,
            replaying: false,
            last_ingest_event: None,
            health,
            retransmit: RetransmitTracker::default(),
            parent_heard: 0,
            islanded_round: false,
            islanded_since: None,
            provisional: BTreeMap::new(),
            islanded_log: Vec::new(),
        }
    }

    /// Attach a write-ahead log. From here on every accepted inbound
    /// envelope and outbox flush is appended before it is applied, and
    /// the node installs a compacting snapshot every
    /// [`WalConfig::snapshot_every`] events.
    pub fn attach_wal(&mut self, wal: NodeWal) {
        self.wal = Some(wal);
    }

    /// The attached WAL, if any (diagnostics: tail length, io errors).
    pub fn wal(&self) -> Option<&NodeWal> {
        self.wal.as_ref()
    }

    /// Detach and return the WAL (the chaos harness keeps the "disk"
    /// alive across a simulated crash this way).
    pub fn take_wal(&mut self) -> Option<NodeWal> {
        self.wal.take()
    }

    /// Network-injected duplicates this node's at-most-once filters
    /// dropped, summed across its inbound sender streams — the dedup
    /// column of the federation's per-region stats rollup.
    pub fn dedup_duplicates(&self) -> u64 {
        self.rx.values().map(|rx| rx.duplicates).sum()
    }

    /// Order-independent digest of the pooled offers — recovery tests
    /// compare a replayed node's pool against its never-crashed twin.
    pub fn pool_digest(&self) -> u64 {
        let mut digest: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut buf = Vec::new();
        for (offer, from) in self.pool.values() {
            buf.clear();
            offer.encode(&mut buf);
            from.encode(&mut buf);
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in &buf {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            digest = digest.rotate_left(7) ^ h;
        }
        digest
    }

    /// Encode the node's durable state for a WAL snapshot.
    fn snapshot_bytes(&self) -> Vec<u8> {
        let mut rx: Vec<(u64, u64, Vec<u64>, u64)> = self
            .rx
            .iter()
            .map(|(sender, dedup)| {
                let (below, seen, dups) = dedup.export_state();
                (*sender, below, seen, dups)
            })
            .collect();
        // The rx map is a HashMap: sort so snapshot bytes (and thus WAL
        // contents) are identical across runs.
        rx.sort_unstable_by_key(|row| row.0);
        BrpSnapshot {
            pool: self
                .pool
                .values()
                .map(|(offer, from)| (offer.clone(), *from))
                .collect(),
            rx,
        }
        .encode()
    }

    /// Restore from a decoded snapshot: the pool is re-fed through the
    /// aggregation pipeline (which rebuilds aggregates, exports and
    /// outbox as a full refresh — the parent's pooled view is then
    /// reconciled by the recovery resync snapshot), and the duplicate
    /// filters resume where the crashed node's windows stood.
    fn restore_snapshot(&mut self, snap: BrpSnapshot) {
        let mut inserts = Vec::with_capacity(snap.pool.len());
        for (offer, from) in snap.pool {
            inserts.push(FlexOfferUpdate::Insert(offer.clone()));
            self.pool.insert(offer.id(), (offer, from));
        }
        if !inserts.is_empty() {
            self.apply_updates(inserts);
        }
        self.rx.clear();
        for (sender, below, seen, dups) in snap.rx {
            self.rx
                .insert(sender, DedupRx::from_state(below, seen, dups));
        }
    }

    /// Install a compacting snapshot when the WAL's tail has grown past
    /// its configured bound.
    fn maybe_compact(&mut self) {
        if self.wal.as_ref().is_some_and(NodeWal::wants_snapshot) {
            let bytes = self.snapshot_bytes();
            if let Some(wal) = self.wal.as_mut() {
                wal.install_snapshot(&bytes);
            }
        }
    }

    /// Rebuild a crashed BRP from its surviving WAL store: restore the
    /// latest snapshot, replay the events appended since (with the
    /// original handling clock, replies suppressed — they were already
    /// sent pre-crash), resume the WAL, and emit a voluntary
    /// [`Message::ResyncSnapshot`] to the parent so its pooled view
    /// re-anchors on the recovered export set. Returns the node plus the
    /// recovery envelopes to route.
    pub fn recover(
        id: NodeId,
        parent: Option<NodeId>,
        config: BrpConfig,
        store: Box<dyn WalStore>,
        wal_config: WalConfig,
        now: TimeSlot,
    ) -> std::io::Result<(BrpNode, Vec<Envelope>)> {
        let (wal, snapshot, records) = NodeWal::recover(store, wal_config)?;
        let mut node = BrpNode::new(id, parent, config);
        if let Some(bytes) = snapshot {
            if let Ok(snap) = BrpSnapshot::decode(&bytes) {
                node.restore_snapshot(snap);
            }
        }
        node.replaying = true;
        for rec in records {
            if rec.replay_safe && rec.envelope.to == id {
                // Re-drive the ingest through the real handler; the
                // regenerated replies are dropped.
                let _ = BrpNode::handle(&mut node, rec.envelope, rec.recorded_at);
            } else if rec.envelope.from == id {
                match rec.envelope.message {
                    // Outbox-flush marker: these staged deltas left the
                    // node before the crash — replay the flush as the
                    // state transition it was.
                    Message::MacroOfferDeltas(_) => node.outbox.clear(),
                    // Provisional markers: non-empty = an islanded
                    // commit's macro ledger (re-apply it so the pool
                    // effect of the crashed commit is reproduced); empty
                    // = the reconciliation hand-off that cleared it.
                    Message::ProvisionalReport { assignments, .. } => {
                        if assignments.is_empty() {
                            node.provisional.clear();
                        } else {
                            for s in assignments {
                                node.provisional.insert(s.offer_id, s.clone());
                                let _ = node.apply_macro_assignment(
                                    s,
                                    Price(0.0),
                                    rec.recorded_at,
                                    OfferState::Provisional,
                                );
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        node.replaying = false;
        node.wal = Some(wal);
        let mut out = Vec::new();
        if node.config.forward_to_tso {
            if let Some(parent) = node.parent {
                // A restart is a reconciliation point: if the crashed
                // node died mid-island, its rebuilt provisional ledger
                // ships ahead of the re-anchoring snapshot, exactly like
                // a live heal would send it.
                if !node.provisional.is_empty() {
                    let assignments: Vec<ScheduledFlexOffer> =
                        node.provisional.values().cloned().collect();
                    node.provisional.clear();
                    if let Some(wal) = node.wal.as_mut() {
                        let marker = Envelope::new(
                            node.id,
                            parent,
                            now,
                            Message::ProvisionalReport {
                                window_start: now,
                                assignments: Vec::new(),
                            },
                        );
                        wal.append(&marker, None, false, now);
                    }
                    out.push(Envelope::new(
                        node.id,
                        parent,
                        now,
                        Message::ProvisionalReport {
                            window_start: now,
                            assignments,
                        },
                    ));
                }
                out.extend(node.on_resync_request(parent, now));
            }
        }
        Ok((node, out))
    }

    /// Offers currently pooled.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Current state of the TSO-link failure detector.
    pub fn link_state(&self) -> LinkState {
        self.health.state()
    }

    /// Counters kept by the TSO-link failure detector (federation
    /// rollups absorb these per region).
    pub fn link_health_stats(&self) -> LinkHealthStats {
        self.health.stats()
    }

    /// Upward flushes the parent has not acknowledged yet.
    pub fn unacked_flushes(&self) -> u64 {
        self.retransmit.unacked()
    }

    /// Provisional macro assignments awaiting TSO reconciliation.
    pub fn provisional_count(&self) -> usize {
        self.provisional.len()
    }

    /// Drain the log of islanded planning rounds accumulated since the
    /// last call (the simulation collects these per cycle for the chaos
    /// invariant checks).
    pub fn take_islanded_rounds(&mut self) -> Vec<IslandedRound> {
        std::mem::take(&mut self.islanded_log)
    }

    /// Current number of aggregates.
    pub fn aggregate_count(&self) -> usize {
        self.engine.pipeline().aggregate_count()
    }

    /// Export deltas staged for the next forward (TSO mode).
    pub fn staged_deltas(&self) -> usize {
        self.outbox.len()
    }

    /// Run pool deltas through the engine (pipeline + live-plan fold)
    /// and stage the aggregate changes as export deltas in TSO mode.
    fn apply_updates(&mut self, updates: Vec<FlexOfferUpdate>) {
        let (agg_updates, _fold) = self.engine.apply_offer_updates(updates);
        // Stage only when the deltas can actually be flushed somewhere:
        // without a parent the outbox would grow without bound.
        if self.config.forward_to_tso && self.parent.is_some() {
            self.stage_exports(&agg_updates);
        }
    }

    /// Stage the pipeline's aggregate changes for the next upward flush
    /// in the export id space (`brp-id * 1e9 + aggregate id`). Only the
    /// *net* per-id effect is kept, and upserts stage the aggregate id —
    /// the offer value is materialized once, at flush, never per
    /// emission.
    fn stage_exports(&mut self, updates: &[AggregateUpdate]) {
        for u in updates {
            match u {
                AggregateUpdate::Upsert(agg) => {
                    let export_id = self.id.value() * 1_000_000_000 + agg.id.value();
                    self.exports.insert(export_id, agg.id);
                    self.outbox.insert(export_id, Some(agg.id));
                }
                AggregateUpdate::Removed(agg_id) => {
                    let export_id = self.id.value() * 1_000_000_000 + agg_id.value();
                    if self.exports.remove(&export_id).is_some() {
                        self.outbox.insert(export_id, None);
                    }
                }
            }
        }
    }

    /// Handle one message; returns reply envelopes. Network-duplicated
    /// envelopes (same per-link stream sequence number) are dropped by
    /// the sender's [`DedupRx`] before reaching any handler.
    pub fn handle(&mut self, envelope: Envelope, now: TimeSlot) -> Vec<Envelope> {
        if !self
            .rx
            .entry(envelope.from.value())
            .or_default()
            .accept(envelope.seq)
        {
            return Vec::new();
        }
        // Append-before-apply: only *accepted* envelopes reach the log,
        // so replay re-runs the duplicate filter through the exact same
        // state sequence. `recorded_at` pins the handling clock so
        // replayed deadline decisions match the originals.
        if !self.replaying {
            if let Some(wal) = self.wal.as_mut() {
                self.last_ingest_event = Some(wal.append(&envelope, None, true, now));
            }
        }
        // Any accepted envelope from the parent is proof of TSO life —
        // the failure detector restarts its silence clock on it, and the
        // count is what this node's own heartbeats piggyback as an ack.
        if Some(envelope.from) == self.parent {
            self.health.heard(now);
            self.parent_heard += 1;
        }
        let out = match envelope.message {
            Message::SubmitOffer(offer) => self.on_submit(offer, envelope.from, now),
            Message::Measurement {
                actor,
                start,
                values,
            } => {
                for (i, &v) in values.iter().enumerate() {
                    let (energy_type, kwh) = if v >= 0.0 {
                        (EnergyType::Consumption, v)
                    } else {
                        (EnergyType::Production, -v)
                    };
                    self.store.record_measurement(MeasurementFact {
                        slot: start + i as u32,
                        actor,
                        energy_type,
                        kwh,
                    });
                }
                Vec::new()
            }
            Message::Assignment {
                schedule,
                discount_per_kwh,
            } => self.on_tso_assignment(schedule, discount_per_kwh, now),
            Message::ResyncRequest => self.on_resync_request(envelope.from, now),
            Message::Heartbeat { seen } => {
                if Some(envelope.from) == self.parent {
                    self.health.heard_heartbeat(now);
                    self.retransmit.on_ack(seen);
                }
                Vec::new()
            }
            _ => Vec::new(),
        };
        self.maybe_compact();
        out
    }

    /// Answer a parent's resync request with a bounded snapshot of the
    /// complete current export set. The snapshot supersedes every delta
    /// staged so far (the receiver re-anchors its stream on it), so the
    /// outbox is cleared — re-sending those deltas after the snapshot
    /// would only replay state the snapshot already carries.
    fn on_resync_request(&mut self, from: NodeId, now: TimeSlot) -> Vec<Envelope> {
        self.outbox.clear();
        // Exported aggregates are live by construction, but this path
        // also runs right after WAL recovery — skip (rather than panic
        // on) any export whose aggregate a truncated log failed to
        // rebuild; the snapshot diff then retires it at the parent too.
        let offers: Vec<FlexOffer> = self
            .exports
            .iter()
            .filter_map(|(export_id, agg_id)| {
                self.engine
                    .pipeline()
                    .aggregate(*agg_id)?
                    .to_flex_offer_as(*export_id, self.id.value())
                    .ok()
            })
            .collect();
        vec![Envelope::new(
            self.id,
            from,
            now,
            Message::ResyncSnapshot { offers },
        )]
    }

    /// Exported macro-offer ids currently live (the parent's pool should
    /// contain exactly these — the chaos invariant checker's
    /// "no phantom offers" probe).
    pub fn exported_offer_ids(&self) -> Vec<FlexOfferId> {
        self.exports.keys().map(|id| FlexOfferId(*id)).collect()
    }

    fn on_submit(&mut self, offer: FlexOffer, from: NodeId, now: TimeSlot) -> Vec<Envelope> {
        // One pool descent per submission: the entry doubles as the
        // duplicate probe and the accept path's insertion slot.
        let id = offer.id();
        let decision = self.config.acceptance.decide(&offer, now);
        let reply = match self.pool.entry(id) {
            // Replayed submission of an offer already pooled (an
            // unsequenced duplicate the network dedup cannot catch):
            // re-acknowledge without touching the pipeline — the pool
            // state must not churn.
            Entry::Occupied(e) if e.get().0 == offer => {
                let value = match decision {
                    AcceptanceDecision::Accept { value } => value,
                    AcceptanceDecision::Reject(_) => 0.0,
                };
                Message::OfferAccepted { offer: id, value }
            }
            entry => match decision {
                AcceptanceDecision::Accept { value } => {
                    match entry {
                        Entry::Occupied(mut e) => {
                            e.insert((offer.clone(), from));
                        }
                        Entry::Vacant(v) => {
                            v.insert((offer.clone(), from));
                        }
                    }
                    self.store.record_offer(OfferFact {
                        offer: id,
                        actor: offer.owner(),
                        slot: now,
                        state: OfferState::Accepted,
                    });
                    self.apply_updates(vec![FlexOfferUpdate::Insert(offer)]);
                    Message::OfferAccepted { offer: id, value }
                }
                AcceptanceDecision::Reject(_) => {
                    self.store.record_offer(OfferFact {
                        offer: id,
                        actor: offer.owner(),
                        slot: now,
                        state: OfferState::Rejected,
                    });
                    Message::OfferRejected { offer: id }
                }
            },
        };
        vec![Envelope::new(self.id, from, now, reply)]
    }

    /// Drop offers whose assignment deadline has passed. The round's
    /// deletes go through the pipeline as ONE batch, so each touched
    /// group is flushed once instead of once per expired offer.
    fn expire(&mut self, now: TimeSlot) -> usize {
        let expired: Vec<FlexOfferId> = self
            .pool
            .iter()
            .filter(|(_, (o, _))| o.is_expired(now))
            .map(|(id, _)| *id)
            .collect();
        for id in &expired {
            let (offer, _) = self.pool.remove(id).expect("present");
            self.store.record_offer(OfferFact {
                offer: *id,
                actor: offer.owner(),
                slot: now,
                state: OfferState::Expired,
            });
        }
        if !expired.is_empty() {
            self.apply_updates(
                expired
                    .iter()
                    .map(|id| FlexOfferUpdate::Delete(*id))
                    .collect(),
            );
        }
        expired.len()
    }

    /// Forecast the baseline imbalance for `[start, start+horizon)` from
    /// the measurement history (net load via the star schema, HWT daily
    /// model). Returns zeros when history is too short — the cold-start
    /// behaviour.
    pub fn forecast_baseline(&self, start: TimeSlot, horizon: usize) -> Vec<f64> {
        let train_slots = 4 * mirabel_core::SLOTS_PER_DAY as i64;
        let history = self.store.net_load(start - train_slots as u32, start);
        let nonzero = history.iter().filter(|v| **v != 0.0).count();
        if nonzero < 2 * mirabel_core::SLOTS_PER_DAY as usize {
            return vec![0.0; horizon];
        }
        let series = TimeSeries::new(start - train_slots as u32, history);
        let mut model = HwtModel::new(HwtConfig {
            seasonality: Seasonality::Daily,
        });
        model.fit(&series);
        model.forecast(horizon)
    }

    /// Plan the window `[window_start, window_start+horizon)` against an
    /// externally supplied baseline and keep the result as a live
    /// evaluator for incremental replanning. In TSO mode, flushes the
    /// staged export deltas upward instead. Returns forwarding envelopes
    /// plus the report; assignments are produced later by
    /// [`commit_plan`](Self::commit_plan).
    pub fn prepare_plan(
        &mut self,
        now: TimeSlot,
        window_start: TimeSlot,
        baseline: Vec<f64>,
        prices: MarketPrices,
        penalties: Vec<f64>,
    ) -> (Vec<Envelope>, PlanReport) {
        // A new round starts: expiry deltas must not be folded into the
        // previous window's (now stale) live plan, and whether this
        // round runs islanded is decided afresh by the detector below.
        self.engine.abandon();
        self.islanded_round = false;
        let mut report = PlanReport {
            expired: self.expire(now),
            ..PlanReport::default()
        };

        if self.config.forward_to_tso {
            report.eligible_macro = self.engine.eligible_count(window_start, baseline.len());
            let Some(parent) = self.parent else {
                return (Vec::new(), report);
            };
            // Advance the failure detector — except out of `Recovering`,
            // which must survive until the reconciliation handshake below
            // has run; its own tick then confirms the heal.
            let state = if self.health.state() == LinkState::Recovering {
                LinkState::Recovering
            } else {
                self.health.tick(now)
            };
            match state {
                LinkState::Down => {
                    // ISLAND: the TSO is presumed unreachable. Keep the
                    // staged export deltas (the heal-time snapshot
                    // supersedes them) and run the local engine over this
                    // node's own pool — which naturally covers every
                    // offer the TSO has not assigned, including ones it
                    // previously passed over. The commit stamps the
                    // resulting assignments provisional.
                    self.islanded_round = true;
                    if self.islanded_since.is_none() {
                        self.islanded_since = Some(window_start);
                    }
                    let (eligible, cost) =
                        self.engine
                            .prepare(window_start, baseline, prices, penalties);
                    report.eligible_macro = eligible;
                    report.cost = cost;
                    self.islanded_log.push(IslandedRound {
                        window_start,
                        eligible,
                        prepared_cost: cost,
                        committed_cost: None,
                        assignments: 0,
                    });
                    return (Vec::new(), report);
                }
                LinkState::Recovering => {
                    // RECONCILE: traffic resumed after an island. Ship
                    // the provisional macro assignments FIRST — the TSO
                    // audits them against its pre-snapshot pool (still
                    // pooled here → adopt, already assigned elsewhere →
                    // supersede) — then a full export snapshot that
                    // re-anchors its pooled view of this node.
                    let mut out = Vec::new();
                    if !self.provisional.is_empty() {
                        let assignments: Vec<ScheduledFlexOffer> =
                            self.provisional.values().cloned().collect();
                        self.provisional.clear();
                        // Log the hand-off as an *empty* report marker:
                        // replaying it wipes the provisional ledger the
                        // earlier commit markers rebuilt.
                        if !self.replaying {
                            if let Some(wal) = self.wal.as_mut() {
                                let marker = Envelope::new(
                                    self.id,
                                    parent,
                                    now,
                                    Message::ProvisionalReport {
                                        window_start: now,
                                        assignments: Vec::new(),
                                    },
                                );
                                wal.append(&marker, self.last_ingest_event, false, now);
                            }
                        }
                        out.push(Envelope::new(
                            self.id,
                            parent,
                            now,
                            Message::ProvisionalReport {
                                window_start: self.islanded_since.unwrap_or(now),
                                assignments,
                            },
                        ));
                    }
                    self.islanded_since = None;
                    out.extend(self.on_resync_request(parent, now));
                    self.health.tick(now);
                    if !self.replaying {
                        self.maybe_compact();
                    }
                    return (out, report);
                }
                LinkState::Up | LinkState::Suspect => {}
            }
            // Unacked-frontier retransmit: the payload is the idempotent
            // export snapshot, never a replayed delta batch — a re-sent
            // batch would take a fresh stream sequence number and could
            // regress newer state at the receiver.
            if self
                .retransmit
                .should_retransmit(now, &self.config.link_health)
            {
                self.health.note_retransmit();
                return (self.on_resync_request(parent, now), report);
            }
            // Materialize the net staged changes: one offer build per
            // aggregate that actually changed this round.
            let deltas: Vec<FlexOfferUpdate> = std::mem::take(&mut self.outbox)
                .into_iter()
                .map(|(export_id, entry)| match entry {
                    Some(agg_id) => {
                        let agg = self
                            .engine
                            .pipeline()
                            .aggregate(agg_id)
                            .expect("staged upsert outlives the round or is overwritten");
                        FlexOfferUpdate::Insert(
                            agg.to_flex_offer_as(export_id, self.id.value())
                                .expect("aggregates are valid flex-offers"),
                        )
                    }
                    None => FlexOfferUpdate::Delete(FlexOfferId(export_id)),
                })
                .collect();
            report.forwarded = deltas.len();
            if deltas.is_empty() {
                // Nothing staged: heartbeat instead, so the parent (a)
                // hears this node is alive even across idle rounds and
                // (b) registers a stream entry for zero-offer BRPs. The
                // `seen` count acks the parent's traffic in return.
                let heartbeat = Envelope::new(
                    self.id,
                    parent,
                    now,
                    Message::Heartbeat {
                        seen: self.parent_heard,
                    },
                );
                return (vec![heartbeat], report);
            }
            self.retransmit.on_flush(now);
            let env = Envelope::new(self.id, parent, now, Message::MacroOfferDeltas(deltas));
            // Log the flush as a (non-replay-safe) outbound marker:
            // replay treats it as "these staged deltas left the node",
            // caused by the last ingested event.
            if !self.replaying {
                if let Some(wal) = self.wal.as_mut() {
                    wal.append(&env, self.last_ingest_event, false, now);
                }
                self.maybe_compact();
            }
            return (vec![env], report);
        }

        let (eligible, cost) = self
            .engine
            .prepare(window_start, baseline, prices, penalties);
        report.eligible_macro = eligible;
        report.cost = cost;
        (Vec::new(), report)
    }

    /// React to a typed forecast change event on the live plan (see
    /// [`PlanEngine::on_forecast_event`]).
    pub fn on_forecast_event(&mut self, event: &ForecastEvent) -> Option<ReplanReport> {
        let report = self.engine.on_forecast_event(event);
        if self.islanded_round {
            // A mid-window forecast repair moves the local-only optimum:
            // the islanded invariant (`committed_cost <= prepared_cost`)
            // must be judged against the post-repair bound, not the
            // pre-event one.
            if let (Some(rep), Some(round)) = (report.as_ref(), self.islanded_log.last_mut()) {
                round.prepared_cost = Some(rep.cost_after);
            }
        }
        report
    }

    /// Commit the live plan: disaggregate the current (possibly
    /// repaired) solution into micro assignments and drop the live
    /// state. Returns the assignment envelopes plus the final schedule
    /// cost, or `None` when no plan is live.
    pub fn commit_plan(&mut self, now: TimeSlot) -> Option<(Vec<Envelope>, f64)> {
        let (problem, solution, cost) = self.engine.commit()?;
        if self.islanded_round {
            self.islanded_round = false;
            // Capture the macro-level schedules in export-id space
            // *before* disaggregation collapses the aggregates: this
            // ledger is what the TSO audits at reconciliation.
            let macros: Vec<ScheduledFlexOffer> = solution
                .to_schedules(&problem)
                .into_iter()
                .map(|s| ScheduledFlexOffer {
                    offer_id: FlexOfferId(self.id.value() * 1_000_000_000 + s.offer_id.value()),
                    start: s.start,
                    slot_energies: s.slot_energies,
                })
                .collect();
            let envelopes =
                self.disaggregate_and_assign(&problem, &solution, now, OfferState::Provisional);
            for m in &macros {
                self.provisional.insert(m.offer_id, m.clone());
            }
            if let Some(round) = self.islanded_log.last_mut() {
                round.committed_cost = Some(cost);
                round.assignments = envelopes.len();
            }
            // Commit marker: replaying a non-empty self-addressed report
            // rebuilds the provisional ledger a crashed island had
            // accumulated.
            if !self.replaying && !macros.is_empty() {
                if let Some(wal) = self.wal.as_mut() {
                    let marker = Envelope::new(
                        self.id,
                        self.id,
                        now,
                        Message::ProvisionalReport {
                            window_start: self.islanded_since.unwrap_or(now),
                            assignments: macros,
                        },
                    );
                    wal.append(&marker, self.last_ingest_event, false, now);
                }
                self.maybe_compact();
            }
            return Some((envelopes, cost));
        }
        let envelopes =
            self.disaggregate_and_assign(&problem, &solution, now, OfferState::Assigned);
        Some((envelopes, cost))
    }

    /// Window start of the live plan, if one is pending commitment.
    pub fn live_window(&self) -> Option<TimeSlot> {
        self.engine.live_window()
    }

    /// One-shot planning: [`prepare_plan`](Self::prepare_plan) followed
    /// immediately by [`commit_plan`](Self::commit_plan) — for callers
    /// with no forecast updates between scheduling and assignment.
    pub fn plan_with_baseline(
        &mut self,
        now: TimeSlot,
        window_start: TimeSlot,
        baseline: Vec<f64>,
        prices: MarketPrices,
        penalties: Vec<f64>,
    ) -> (Vec<Envelope>, PlanReport) {
        let (mut envelopes, mut report) =
            self.prepare_plan(now, window_start, baseline, prices, penalties);
        if let Some((assignments, cost)) = self.commit_plan(now) {
            report.cost = Some(cost);
            report.assignments = assignments.len();
            envelopes.extend(assignments);
        }
        (envelopes, report)
    }

    /// Turn a macro-level solution into micro assignments for prosumers,
    /// recording each assigned offer in the given lifecycle state
    /// (`Assigned` for connected rounds, `Provisional` for islanded
    /// ones).
    fn disaggregate_and_assign(
        &mut self,
        problem: &SchedulingProblem,
        solution: &Solution,
        now: TimeSlot,
        state: OfferState,
    ) -> Vec<Envelope> {
        let mut out = Vec::new();
        // Collect every assigned offer's delete and run them through the
        // pipeline as one batch after the loop: each touched group is
        // flushed once per planning round, not once per micro assignment.
        let mut deletes = Vec::new();
        let schedules = solution.to_schedules(problem);
        for macro_schedule in schedules {
            let agg_id = AggregateId(macro_schedule.offer_id.value());
            let micro = match self.engine.pipeline().disaggregate(agg_id, &macro_schedule) {
                Ok(m) => m,
                Err(_) => continue,
            };
            for schedule in micro {
                let Some((offer, source)) = self.pool.remove(&schedule.offer_id) else {
                    continue;
                };
                deletes.push(FlexOfferUpdate::Delete(schedule.offer_id));
                let discount = self.config.pricing.discount_per_kwh(&offer, now);
                self.store.record_offer(OfferFact {
                    offer: offer.id(),
                    actor: offer.owner(),
                    slot: now,
                    state,
                });
                self.store.record_schedule(ScheduleFact {
                    offer: offer.id(),
                    start: schedule.start,
                    total_kwh: schedule.total_energy().kwh(),
                    discount,
                });
                out.push(Envelope::new(
                    self.id,
                    source,
                    now,
                    Message::Assignment {
                        schedule,
                        discount_per_kwh: discount,
                    },
                ));
            }
        }
        if !deletes.is_empty() {
            self.apply_updates(deletes);
        }
        out
    }

    /// Handle an assignment for an exported macro offer coming back from
    /// the TSO: disaggregate into micro assignments.
    fn on_tso_assignment(
        &mut self,
        schedule: ScheduledFlexOffer,
        discount: Price,
        now: TimeSlot,
    ) -> Vec<Envelope> {
        self.apply_macro_assignment(schedule, discount, now, OfferState::Assigned)
    }

    /// Disaggregate one export-space macro schedule into micro
    /// assignments, recording each in the given lifecycle state. Also
    /// the replay path for islanded commit markers: the deterministic
    /// pipeline rebuilds the same aggregates, so re-applying the logged
    /// macro ledger reproduces the crashed island's pool effect exactly.
    fn apply_macro_assignment(
        &mut self,
        schedule: ScheduledFlexOffer,
        _discount: Price,
        now: TimeSlot,
        state: OfferState,
    ) -> Vec<Envelope> {
        let Some(agg_id) = self.exports.get(&schedule.offer_id.value()).copied() else {
            return Vec::new();
        };
        // Rewrite the schedule to reference the local aggregate id.
        let local = ScheduledFlexOffer {
            offer_id: FlexOfferId(agg_id.value()),
            start: schedule.start,
            slot_energies: schedule.slot_energies,
        };
        let micro = match self.engine.pipeline().disaggregate(agg_id, &local) {
            Ok(m) => m,
            Err(_) => return Vec::new(),
        };
        let mut out = Vec::new();
        let mut deletes = Vec::new();
        for s in micro {
            let Some((offer, source)) = self.pool.remove(&s.offer_id) else {
                continue;
            };
            deletes.push(FlexOfferUpdate::Delete(s.offer_id));
            let discount = self.config.pricing.discount_per_kwh(&offer, now);
            self.store.record_offer(OfferFact {
                offer: offer.id(),
                actor: offer.owner(),
                slot: now,
                state,
            });
            self.store.record_schedule(ScheduleFact {
                offer: offer.id(),
                start: s.start,
                total_kwh: s.total_energy().kwh(),
                discount,
            });
            out.push(Envelope::new(
                self.id,
                source,
                now,
                Message::Assignment {
                    schedule: s,
                    discount_per_kwh: discount,
                },
            ));
        }
        if !deletes.is_empty() {
            // Deleting the assigned members collapses the aggregate; the
            // resulting `Removed` delta is staged so the TSO's pool
            // forgets the export too.
            self.apply_updates(deletes);
        }
        out
    }

    /// Evaluate how a given set of realized flexible loads would cost
    /// under a baseline — used by the simulation for before/after
    /// comparisons.
    pub fn cost_of(problem: &SchedulingProblem, solution: &Solution) -> f64 {
        evaluate(problem, solution).total()
    }
}

impl Node for BrpNode {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn handle(&mut self, envelope: Envelope, now: TimeSlot) -> Vec<Envelope> {
        BrpNode::handle(self, envelope, now)
    }
}

impl NodeRuntime for BrpNode {
    fn prepare_plan(
        &mut self,
        now: TimeSlot,
        window_start: TimeSlot,
        baseline: Vec<f64>,
        prices: MarketPrices,
        penalties: Vec<f64>,
    ) -> (Vec<Envelope>, PlanReport) {
        BrpNode::prepare_plan(self, now, window_start, baseline, prices, penalties)
    }

    fn on_forecast_event(&mut self, event: &ForecastEvent) -> Option<ReplanReport> {
        BrpNode::on_forecast_event(self, event)
    }

    fn commit_plan(&mut self, now: TimeSlot) -> Vec<Envelope> {
        BrpNode::commit_plan(self, now)
            .map(|(envelopes, _)| envelopes)
            .unwrap_or_default()
    }

    fn live_window(&self) -> Option<TimeSlot> {
        BrpNode::live_window(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{EnergyRange, Profile};

    fn offer(id: u64, owner: u64, es: i64, deadline: i64, tf: u32) -> FlexOffer {
        FlexOffer::builder(id, owner)
            .earliest_start(TimeSlot(es))
            .time_flexibility(tf)
            .assignment_before(TimeSlot(deadline))
            .profile(Profile::uniform(2, EnergyRange::new(1.0, 2.0).unwrap()))
            .build()
            .unwrap()
    }

    fn submit(brp: &mut BrpNode, o: FlexOffer, from: u64, now: i64) -> Vec<Envelope> {
        brp.handle(
            Envelope::new(NodeId(from), brp.id, TimeSlot(now), Message::SubmitOffer(o)),
            TimeSlot(now),
        )
    }

    #[test]
    fn accepts_and_pools_offers() {
        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        let replies = submit(&mut brp, offer(1, 7, 100, 90, 12), 10, 0);
        assert_eq!(replies.len(), 1);
        assert!(matches!(replies[0].message, Message::OfferAccepted { .. }));
        assert_eq!(replies[0].to, NodeId(10));
        assert_eq!(brp.pool_size(), 1);
        assert_eq!(brp.aggregate_count(), 1);
        assert_eq!(brp.store.count_in_state(OfferState::Accepted), 1);
    }

    #[test]
    fn rejects_inflexible_offer() {
        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        let rigid = FlexOffer::builder(2, 7)
            .earliest_start(TimeSlot(100))
            .assignment_before(TimeSlot(90))
            .profile(Profile::uniform(1, EnergyRange::fixed(1.0)))
            .build()
            .unwrap();
        let replies = submit(&mut brp, rigid, 10, 0);
        assert!(matches!(replies[0].message, Message::OfferRejected { .. }));
        assert_eq!(brp.pool_size(), 0);
    }

    #[test]
    fn expiry_drops_pool_entries() {
        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        submit(&mut brp, offer(1, 7, 100, 50, 12), 10, 0);
        let (_, report) = brp.plan_with_baseline(
            TimeSlot(60), // past the deadline
            TimeSlot(61),
            vec![0.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        assert_eq!(report.expired, 1);
        assert_eq!(brp.pool_size(), 0);
        assert_eq!(brp.store.count_in_state(OfferState::Expired), 1);
    }

    #[test]
    fn local_plan_produces_assignments() {
        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        for i in 0..20 {
            submit(
                &mut brp,
                offer(i, i, 110 + (i as i64 % 5), 90, 8),
                100 + i,
                0,
            );
        }
        let baseline: Vec<f64> = (0..96).map(|k| if k < 48 { -2.0 } else { 1.0 }).collect();
        let (envelopes, report) = brp.plan_with_baseline(
            TimeSlot(80),
            TimeSlot(96),
            baseline,
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        assert!(report.eligible_macro > 0);
        assert_eq!(report.assignments, 20);
        assert_eq!(envelopes.len(), 20);
        assert!(report.cost.is_some());
        // every assignment goes back to the submitting node
        for e in &envelopes {
            assert!(e.to.value() >= 100);
            assert!(matches!(e.message, Message::Assignment { .. }));
        }
        // pool drained, facts recorded
        assert_eq!(brp.pool_size(), 0);
        assert_eq!(brp.store.count_in_state(OfferState::Assigned), 20);
    }

    #[test]
    fn binpacked_plan_batches_same_bin_deletes() {
        // Regression: committing a plan deletes every assigned offer in
        // ONE pipeline batch; with the bin-packer on, several members of
        // the same bin go in a single flush.
        let config = BrpConfig {
            binpacker: Some(BinPackerConfig::max_members(3)),
            ..BrpConfig::default()
        };
        let mut brp = BrpNode::new(NodeId(1), None, config);
        for i in 0..9 {
            submit(&mut brp, offer(i, i, 110, 90, 8), 100 + i, 0);
        }
        assert!(brp.aggregate_count() >= 3);
        let (envelopes, report) = brp.plan_with_baseline(
            TimeSlot(80),
            TimeSlot(96),
            vec![-1.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        assert_eq!(report.assignments, 9);
        assert_eq!(envelopes.len(), 9);
        assert_eq!(brp.pool_size(), 0);
        assert_eq!(brp.aggregate_count(), 0);
    }

    #[test]
    fn multi_start_initial_plan_never_worse() {
        let plan_cost = |starts: usize| {
            let mut brp = BrpNode::new(
                NodeId(1),
                None,
                BrpConfig {
                    initial_starts: starts,
                    budget_evaluations: 4_000,
                    ..BrpConfig::default()
                },
            );
            for i in 0..20 {
                submit(
                    &mut brp,
                    offer(i, i, 110 + (i as i64 % 5), 90, 8),
                    100 + i,
                    0,
                );
            }
            let baseline: Vec<f64> = (0..96).map(|k| if k < 48 { -2.0 } else { 1.0 }).collect();
            let (_, report) = brp.plan_with_baseline(
                TimeSlot(80),
                TimeSlot(96),
                baseline,
                MarketPrices::flat(96, 0.08, 0.03, 100.0),
                vec![0.2; 96],
            );
            report.cost.expect("scheduled locally")
        };
        let single = plan_cost(1);
        let multi = plan_cost(3);
        // Chain 0 of the multi-start shares the single-start seed, so
        // best-of-3 can never be worse.
        assert!(multi <= single + 1e-9, "multi {multi} vs single {single}");
    }

    #[test]
    fn shared_pool_width_does_not_change_the_plan() {
        // End-to-end determinism through the node: flush shards,
        // best-of-K initial starts and repair chains all dispatch onto
        // the config's pool, and the committed plan is identical whether
        // that pool is serial or 8 lanes wide.
        let plan_with = |width: usize| {
            let mut brp = BrpNode::new(
                NodeId(1),
                None,
                BrpConfig {
                    pool: mirabel_core::exec::Pool::new(width),
                    initial_starts: 3,
                    budget_evaluations: 4_000,
                    ..BrpConfig::default()
                },
            );
            for i in 0..20 {
                submit(
                    &mut brp,
                    offer(i, i, 110 + (i as i64 % 5), 90, 8),
                    100 + i,
                    0,
                );
            }
            let baseline: Vec<f64> = (0..96).map(|k| if k < 48 { -2.0 } else { 1.0 }).collect();
            brp.prepare_plan(
                TimeSlot(80),
                TimeSlot(96),
                baseline.clone(),
                MarketPrices::flat(96, 0.08, 0.03, 100.0),
                vec![0.2; 96],
            );
            // Refinement event → repair chains on the pool.
            let mut refined = baseline;
            for v in refined.iter_mut().skip(10).take(8) {
                *v += 1.0;
            }
            let event = ForecastEvent {
                subscription: 0,
                forecast: refined,
                changed: vec![mirabel_forecast::SlotRange { start: 10, end: 18 }],
                max_relative_change: f64::INFINITY,
            };
            brp.on_forecast_event(&event);
            let (envelopes, cost) = brp.commit_plan(TimeSlot(80)).expect("live plan");
            let schedule_signature: Vec<_> = envelopes
                .iter()
                .map(|e| match &e.message {
                    Message::Assignment { schedule, .. } => {
                        (e.to, schedule.offer_id, schedule.start)
                    }
                    other => panic!("expected assignment, got {other:?}"),
                })
                .collect();
            (cost, schedule_signature)
        };
        let reference = plan_with(1);
        assert_eq!(reference, plan_with(2));
        assert_eq!(reference, plan_with(8));
    }

    #[test]
    fn forwarding_stages_and_flushes_deltas() {
        let config = BrpConfig {
            forward_to_tso: true,
            ..BrpConfig::default()
        };
        let mut brp = BrpNode::new(NodeId(3), Some(NodeId(99)), config);
        for i in 0..10 {
            submit(&mut brp, offer(i, i, 110, 90, 8), 100 + i, 0);
        }
        assert!(brp.staged_deltas() > 0, "submissions stage export deltas");
        let (envelopes, report) = brp.plan_with_baseline(
            TimeSlot(80),
            TimeSlot(96),
            vec![0.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        assert!(report.forwarded > 0);
        assert_eq!(envelopes.len(), 1);
        assert_eq!(envelopes[0].to, NodeId(99));
        let Message::MacroOfferDeltas(deltas) = &envelopes[0].message else {
            panic!("expected MacroOfferDeltas");
        };
        for d in deltas {
            let FlexOfferUpdate::Insert(o) = d else {
                panic!("first forward carries only inserts, got {d:?}");
            };
            assert!(o.id().value() >= 3_000_000_000, "export ids are global");
        }
        // Flushed: a second plan with no new offers forwards no deltas —
        // it degrades to a liveness heartbeat instead.
        assert_eq!(brp.staged_deltas(), 0);
        let (envelopes, report) = brp.plan_with_baseline(
            TimeSlot(81),
            TimeSlot(96),
            vec![0.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        assert_eq!(report.forwarded, 0);
        assert_eq!(envelopes.len(), 1);
        assert!(matches!(envelopes[0].message, Message::Heartbeat { .. }));
        assert_eq!(envelopes[0].to, NodeId(99));
    }

    #[test]
    fn forwarding_trickle_change_stays_a_trickle() {
        // After the initial flush, one more submission must forward a
        // delta batch proportional to the change — not the pool.
        let config = BrpConfig {
            forward_to_tso: true,
            aggregation: AggregationParams::p0(),
            ..BrpConfig::default()
        };
        let mut brp = BrpNode::new(NodeId(3), Some(NodeId(99)), config);
        for i in 0..50 {
            submit(&mut brp, offer(i, i, 110 + i as i64, 90, 4), 100 + i, 0);
        }
        brp.plan_with_baseline(
            TimeSlot(10),
            TimeSlot(96),
            vec![0.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        submit(&mut brp, offer(777, 7, 120, 90, 4), 100, 11);
        let (envelopes, report) = brp.plan_with_baseline(
            TimeSlot(12),
            TimeSlot(96),
            vec![0.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        assert_eq!(report.forwarded, 1, "one new offer → one delta");
        let Message::MacroOfferDeltas(deltas) = &envelopes[0].message else {
            panic!("expected MacroOfferDeltas");
        };
        assert_eq!(deltas.len(), 1);
    }

    #[test]
    fn tso_assignment_disaggregates_to_prosumers() {
        let config = BrpConfig {
            forward_to_tso: true,
            ..BrpConfig::default()
        };
        let mut brp = BrpNode::new(NodeId(3), Some(NodeId(99)), config);
        for i in 0..5 {
            submit(&mut brp, offer(i, i, 110, 90, 8), 100 + i, 0);
        }
        let (envelopes, _) = brp.plan_with_baseline(
            TimeSlot(80),
            TimeSlot(96),
            vec![0.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        let Message::MacroOfferDeltas(deltas) = &envelopes[0].message else {
            panic!("expected MacroOfferDeltas");
        };
        let exported: Vec<&FlexOffer> = deltas
            .iter()
            .map(|d| match d {
                FlexOfferUpdate::Insert(o) => o,
                other => panic!("expected insert, got {other:?}"),
            })
            .collect();
        // The flush coalesces the round's staged stream to its net
        // effect: the 5 submissions collapse into one final-snapshot
        // insert — schedule it at its earliest start, minimum energy.
        assert_eq!(exported.len(), 1, "coalesced to the net change");
        let macro_offer = *exported.last().unwrap();
        let schedule = ScheduledFlexOffer::at_min(macro_offer, macro_offer.earliest_start());
        let micro_envs = brp.handle(
            Envelope::new(
                NodeId(99),
                NodeId(3),
                TimeSlot(85),
                Message::Assignment {
                    schedule,
                    discount_per_kwh: Price(0.01),
                },
            ),
            TimeSlot(85),
        );
        assert!(!micro_envs.is_empty());
        for e in &micro_envs {
            assert!(matches!(e.message, Message::Assignment { .. }));
        }
        // The emptied aggregate's removal is staged so the TSO's pool
        // forgets the export on the next flush.
        assert!(brp.outbox.values().any(|d| d.is_none()));
    }

    #[test]
    fn prepare_replan_commit_cycle() {
        use mirabel_forecast::ForecastHub;

        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        for i in 0..20 {
            submit(
                &mut brp,
                offer(i, i, 110 + (i as i64 % 5), 90, 8),
                100 + i,
                0,
            );
        }
        let hub = ForecastHub::new();
        let sub = hub.subscribe(96, 0.0);
        let baseline: Vec<f64> = (0..96).map(|k| if k < 48 { -2.0 } else { 1.0 }).collect();
        hub.publish(&baseline);
        let event = hub.poll(sub).unwrap();

        let (envelopes, report) = brp.prepare_plan(
            TimeSlot(80),
            TimeSlot(96),
            event.forecast,
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        assert!(envelopes.is_empty(), "no assignments before commit");
        assert!(report.eligible_macro > 0);
        assert_eq!(brp.live_window(), Some(TimeSlot(96)));
        // Nothing assigned yet: the pool still holds every offer.
        assert_eq!(brp.pool_size(), 20);

        // Intra-day refinement: a contiguous block of slots moves.
        let mut refined = baseline.clone();
        for v in refined.iter_mut().skip(20).take(10) {
            *v += 1.5;
        }
        hub.publish(&refined);
        let event = hub.poll(sub).unwrap();
        assert_eq!(event.changed_slot_count(), 10);
        let replan = brp.on_forecast_event(&event).expect("live plan exists");
        assert_eq!(replan.changed_slots, 10);
        assert!(replan.scoped_offers > 0);
        assert!(replan.cost_after <= replan.cost_before);

        let (assignments, cost) = brp.commit_plan(TimeSlot(80)).expect("live plan");
        assert_eq!(assignments.len(), 20);
        assert!((cost - replan.cost_after).abs() < 1e-9);
        assert_eq!(brp.pool_size(), 0);
        assert_eq!(brp.store.count_in_state(OfferState::Assigned), 20);
        // Committed: nothing live anymore.
        assert!(brp.commit_plan(TimeSlot(80)).is_none());
        assert!(brp.on_forecast_event(&event).is_none());
    }

    #[test]
    fn late_submission_folds_into_live_plan() {
        // An offer accepted between prepare and commit is spliced into
        // the live evaluator — the commit covers it without a replan.
        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        for i in 0..10 {
            submit(&mut brp, offer(i, i, 110, 90, 8), 100 + i, 0);
        }
        brp.prepare_plan(
            TimeSlot(80),
            TimeSlot(96),
            vec![-1.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        assert_eq!(brp.live_window(), Some(TimeSlot(96)));
        submit(&mut brp, offer(55, 5, 120, 90, 8), 155, 1);
        let (assignments, _) = brp.commit_plan(TimeSlot(80)).expect("live plan");
        assert_eq!(assignments.len(), 11, "late offer is committed too");
        assert_eq!(brp.pool_size(), 0);
    }

    #[test]
    fn forecast_event_from_diverged_lineage_is_still_exact() {
        // The plan is prepared from a baseline that is NOT the hub's
        // last delivery (post-processed forecast). A later event whose
        // ranges under-report the differences against the live baseline
        // must still rebase every differing slot (lineage guard).
        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        for i in 0..10 {
            submit(&mut brp, offer(i, i, 110, 90, 8), 100 + i, 0);
        }
        // Live baseline: hub forecast shifted by a constant the hub
        // never saw.
        let hub_forecast = vec![0.5; 96];
        let live_baseline: Vec<f64> = hub_forecast.iter().map(|v| v + 0.1).collect();
        brp.prepare_plan(
            TimeSlot(80),
            TimeSlot(96),
            live_baseline,
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        // Event: relative to hub lineage only slot 7 changed, but vs the
        // live baseline *every* slot differs.
        let mut new_forecast = hub_forecast.clone();
        new_forecast[7] = 3.0;
        let event = mirabel_forecast::ForecastEvent {
            subscription: 0,
            forecast: new_forecast,
            changed: vec![mirabel_forecast::SlotRange { start: 7, end: 8 }],
            max_relative_change: 5.0,
        };
        let replan = brp.on_forecast_event(&event).expect("live plan exists");
        // All 96 slots differ from the live baseline and must be listed.
        assert_eq!(replan.changed_slots, 96);
        // Debug builds additionally verify the rebase against the full
        // evaluation inside DeltaEvaluator (no panic = exact).
        assert!(brp.commit_plan(TimeSlot(80)).is_some());
    }

    #[test]
    fn forecast_event_with_wrong_horizon_ignored() {
        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        for i in 0..5 {
            submit(&mut brp, offer(i, i, 110, 90, 8), 100 + i, 0);
        }
        brp.prepare_plan(
            TimeSlot(80),
            TimeSlot(96),
            vec![0.5; 96],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        let event = mirabel_forecast::ForecastEvent {
            subscription: 0,
            forecast: vec![0.5; 48], // horizon mismatch
            changed: vec![mirabel_forecast::SlotRange { start: 0, end: 48 }],
            max_relative_change: f64::INFINITY,
        };
        assert!(brp.on_forecast_event(&event).is_none());
        // Live plan untouched and still committable.
        assert!(brp.commit_plan(TimeSlot(80)).is_some());
    }

    #[test]
    fn forecast_baseline_cold_start_is_zero() {
        let brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        let f = brp.forecast_baseline(TimeSlot(1000), 96);
        assert_eq!(f, vec![0.0; 96]);
    }

    #[test]
    fn forecast_baseline_learns_from_measurements() {
        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        // four days of a flat 5 kWh/slot net load
        let start = TimeSlot(0);
        let values = vec![5.0; 4 * 96];
        brp.handle(
            Envelope::new(
                NodeId(10),
                NodeId(1),
                TimeSlot(0),
                Message::Measurement {
                    actor: mirabel_core::ActorId(7),
                    start,
                    values,
                },
            ),
            TimeSlot(0),
        );
        let f = brp.forecast_baseline(TimeSlot(4 * 96), 10);
        for v in f {
            assert!((v - 5.0).abs() < 0.5, "forecast {v}");
        }
    }

    #[test]
    fn crash_recovery_rebuilds_pool_from_snapshot_and_tail() {
        // snapshot_every: 2 forces mid-stream compaction, so recovery
        // exercises snapshot restore *and* tail replay together.
        let wal_config = WalConfig { snapshot_every: 2 };
        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        brp.attach_wal(NodeWal::in_memory(wal_config));
        let mut twin = BrpNode::new(NodeId(1), None, BrpConfig::default());
        for i in 0..5 {
            let o = offer(100 + i, 50 + i, 110, 90, 8);
            submit(&mut brp, o.clone(), 1_000 + i, 0);
            submit(&mut twin, o, 1_000 + i, 0);
        }
        assert!(
            brp.wal().unwrap().tail_len() < 5,
            "compaction truncated the log"
        );
        let store = brp.take_wal().unwrap().into_store();
        drop(brp); // the crash: every in-memory structure is lost
        let (recovered, out) = BrpNode::recover(
            NodeId(1),
            None,
            BrpConfig::default(),
            store,
            wal_config,
            TimeSlot(0),
        )
        .unwrap();
        assert!(out.is_empty(), "local mode: no parent to resync");
        assert_eq!(recovered.pool_size(), twin.pool_size());
        assert_eq!(recovered.pool_digest(), twin.pool_digest());
        assert_eq!(recovered.aggregate_count(), twin.aggregate_count());
        assert!(recovered.wal().is_some(), "the log resumes after recovery");
    }

    #[test]
    fn crash_recovery_preserves_dedup_state() {
        let wal_config = WalConfig::default();
        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        brp.attach_wal(NodeWal::in_memory(wal_config));
        let sequenced = |seq: u64| {
            Envelope::new(
                NodeId(42),
                NodeId(1),
                TimeSlot(0),
                Message::SubmitOffer(offer(7, 7, 110, 90, 8)),
            )
            .with_seq(seq)
        };
        assert!(!brp.handle(sequenced(5), TimeSlot(0)).is_empty());
        let store = brp.take_wal().unwrap().into_store();
        drop(brp);
        let (mut recovered, _) = BrpNode::recover(
            NodeId(1),
            None,
            BrpConfig::default(),
            store,
            wal_config,
            TimeSlot(0),
        )
        .unwrap();
        assert_eq!(recovered.pool_size(), 1);
        // The duplicate filter survived the crash: a network-replayed
        // copy of seq 5 is still rejected.
        assert!(recovered.handle(sequenced(5), TimeSlot(0)).is_empty());
        assert_eq!(recovered.pool_size(), 1);
    }

    #[test]
    fn tso_mode_recovery_replays_flush_and_resyncs_parent() {
        let config = BrpConfig {
            forward_to_tso: true,
            ..BrpConfig::default()
        };
        let wal_config = WalConfig::default();
        let mut brp = BrpNode::new(NodeId(3), Some(NodeId(99)), config.clone());
        brp.attach_wal(NodeWal::in_memory(wal_config));
        for i in 0..10 {
            submit(&mut brp, offer(i, i, 110, 90, 8), 100 + i, 0);
        }
        let (envelopes, _) = brp.plan_with_baseline(
            TimeSlot(80),
            TimeSlot(96),
            vec![0.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        assert_eq!(envelopes.len(), 1, "outbox flushed upward");
        let store = brp.take_wal().unwrap().into_store();
        drop(brp);
        let (recovered, out) = BrpNode::recover(
            NodeId(3),
            Some(NodeId(99)),
            config,
            store,
            wal_config,
            TimeSlot(81),
        )
        .unwrap();
        assert_eq!(recovered.pool_size(), 10);
        // Recovery re-anchors the parent on a full snapshot rather than
        // trusting the re-derived outbox (the flush marker proved those
        // deltas already left the node pre-crash).
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, NodeId(99));
        let Message::ResyncSnapshot { offers } = &out[0].message else {
            panic!("expected ResyncSnapshot, got {:?}", out[0].message);
        };
        assert!(!offers.is_empty(), "snapshot carries the export set");
        assert_eq!(
            recovered.staged_deltas(),
            0,
            "resync snapshot supersedes the outbox"
        );
    }

    /// Tight failure-detector horizons for the islanding tests: silence
    /// of 4+ slots is `Down`, retransmits effectively disabled.
    fn islanding_config() -> BrpConfig {
        BrpConfig {
            forward_to_tso: true,
            link_health: crate::wire::LinkHealthConfig {
                suspect_after: 2,
                down_after: 4,
                retransmit_base: 1_000_000,
                max_retransmits: 0,
            },
            ..BrpConfig::default()
        }
    }

    fn plan(brp: &mut BrpNode, now: i64) -> (Vec<Envelope>, PlanReport) {
        brp.plan_with_baseline(
            TimeSlot(now),
            TimeSlot(96),
            vec![-1.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        )
    }

    #[test]
    fn silent_tso_islands_brp_and_stamps_provisional() {
        let mut brp = BrpNode::new(NodeId(3), Some(NodeId(99)), islanding_config());
        for i in 0..10 {
            submit(&mut brp, offer(i, i, 110, 90, 8), 100 + i, 0);
        }
        // Round 1: link presumed Up (silence clock starts here) — the
        // staged deltas flush upward as usual.
        let (envelopes, _) = plan(&mut brp, 10);
        assert_eq!(envelopes.len(), 1);
        assert!(matches!(envelopes[0].message, Message::MacroOfferDeltas(_)));
        assert_eq!(brp.link_state(), LinkState::Up);

        // Round 2: 10 silent slots exceed `down_after` — the node
        // islands and plans locally; every assignment is provisional.
        let (envelopes, report) = plan(&mut brp, 20);
        assert_eq!(brp.link_state(), LinkState::Down);
        assert!(report.cost.is_some(), "local pass scheduled the pool");
        assert_eq!(report.assignments, 10);
        assert_eq!(envelopes.len(), 10, "micro assignments to prosumers");
        assert_eq!(brp.pool_size(), 0);
        assert_eq!(brp.store.count_in_state(OfferState::Provisional), 10);
        assert_eq!(brp.store.count_in_state(OfferState::Assigned), 0);
        assert!(brp.provisional_count() > 0);

        let rounds = brp.take_islanded_rounds();
        assert_eq!(rounds.len(), 1);
        let round = &rounds[0];
        assert_eq!(round.window_start, TimeSlot(96));
        assert!(round.eligible > 0);
        assert_eq!(round.assignments, 10);
        let (prepared, committed) = (
            round.prepared_cost.expect("prepared"),
            round.committed_cost.expect("committed"),
        );
        assert!(
            committed <= prepared + 1e-6,
            "islanded imbalance bounded by the local-only optimum: {committed} vs {prepared}"
        );
        assert!(brp.take_islanded_rounds().is_empty(), "drained");
    }

    #[test]
    fn heal_reconciles_provisional_report_before_snapshot() {
        let mut brp = BrpNode::new(NodeId(3), Some(NodeId(99)), islanding_config());
        for i in 0..10 {
            submit(&mut brp, offer(i, i, 110, 90, 8), 100 + i, 0);
        }
        plan(&mut brp, 10);
        plan(&mut brp, 20); // islands
        assert_eq!(brp.link_state(), LinkState::Down);
        assert!(brp.provisional_count() > 0);

        // TSO traffic resumes: a heartbeat flips the detector to
        // Recovering (never straight to Up — the handshake runs first).
        brp.handle(
            Envelope::new(
                NodeId(99),
                NodeId(3),
                TimeSlot(21),
                Message::Heartbeat { seen: 1 },
            ),
            TimeSlot(21),
        );
        assert_eq!(brp.link_state(), LinkState::Recovering);

        // The next round reconciles: provisional report FIRST (the TSO
        // audits it against its pre-snapshot pool), snapshot second.
        let (out, _) = plan(&mut brp, 22);
        assert_eq!(out.len(), 2);
        let Message::ProvisionalReport {
            window_start,
            assignments,
        } = &out[0].message
        else {
            panic!("expected ProvisionalReport first, got {:?}", out[0].message);
        };
        assert_eq!(*window_start, TimeSlot(96), "stamped with island start");
        assert!(!assignments.is_empty());
        assert!(
            assignments
                .iter()
                .all(|s| s.offer_id.value() >= 3_000_000_000),
            "provisional ledger is in export-id space"
        );
        assert!(matches!(out[1].message, Message::ResyncSnapshot { .. }));
        assert_eq!(brp.provisional_count(), 0, "ledger handed off");
        assert_eq!(brp.link_state(), LinkState::Up, "heal confirmed");
        assert_eq!(brp.link_health_stats().recoveries, 1);
    }

    #[test]
    fn unacked_flush_retransmits_idempotent_snapshot() {
        let config = BrpConfig {
            forward_to_tso: true,
            link_health: crate::wire::LinkHealthConfig {
                suspect_after: 1_000_000,
                down_after: 2_000_000,
                retransmit_base: 4,
                max_retransmits: 2,
            },
            ..BrpConfig::default()
        };
        let mut brp = BrpNode::new(NodeId(3), Some(NodeId(99)), config);
        for i in 0..5 {
            submit(&mut brp, offer(i, i, 110, 90, 8), 100 + i, 0);
        }
        let (envelopes, _) = plan(&mut brp, 0);
        assert!(matches!(envelopes[0].message, Message::MacroOfferDeltas(_)));
        assert_eq!(brp.unacked_flushes(), 1);

        // The flush stays unacked past the backoff deadline: the node
        // re-anchors the parent with a snapshot, never a replayed batch.
        let (envelopes, _) = plan(&mut brp, 6);
        assert_eq!(envelopes.len(), 1);
        assert!(matches!(
            envelopes[0].message,
            Message::ResyncSnapshot { .. }
        ));
        assert_eq!(brp.link_health_stats().retransmits, 1);

        // A parent heartbeat acking the frontier silences the tracker:
        // the next idle round is a plain heartbeat again.
        brp.handle(
            Envelope::new(
                NodeId(99),
                NodeId(3),
                TimeSlot(7),
                Message::Heartbeat { seen: 1 },
            ),
            TimeSlot(7),
        );
        assert_eq!(brp.unacked_flushes(), 0);
        let (envelopes, _) = plan(&mut brp, 20);
        assert!(matches!(envelopes[0].message, Message::Heartbeat { .. }));
        assert_eq!(brp.link_health_stats().retransmits, 1, "no further fires");
    }

    #[test]
    fn islanded_crash_recovery_rebuilds_provisional_ledger() {
        let wal_config = WalConfig::default();
        let mut brp = BrpNode::new(NodeId(3), Some(NodeId(99)), islanding_config());
        brp.attach_wal(NodeWal::in_memory(wal_config));
        for i in 0..10 {
            submit(&mut brp, offer(i, i, 110, 90, 8), 100 + i, 0);
        }
        plan(&mut brp, 10);
        plan(&mut brp, 20); // islands, commits provisionally
        let expected = brp.provisional_count();
        assert!(expected > 0);

        let store = brp.take_wal().unwrap().into_store();
        drop(brp); // crash mid-island
        let (recovered, out) = BrpNode::recover(
            NodeId(3),
            Some(NodeId(99)),
            islanding_config(),
            store,
            wal_config,
            TimeSlot(21),
        )
        .unwrap();
        // The rebuilt ledger ships as part of the recovery handshake:
        // provisional report first, re-anchoring snapshot second.
        assert_eq!(out.len(), 2);
        let Message::ProvisionalReport { assignments, .. } = &out[0].message else {
            panic!("expected ProvisionalReport first, got {:?}", out[0].message);
        };
        assert_eq!(assignments.len(), expected);
        assert!(matches!(out[1].message, Message::ResyncSnapshot { .. }));
        assert_eq!(recovered.provisional_count(), 0, "ledger handed off");
        assert_eq!(recovered.pool_size(), 0, "provisional offers left the pool");
        assert_eq!(
            recovered.store.count_in_state(OfferState::Provisional),
            10,
            "replay restamped the islanded assignments"
        );
    }

    #[test]
    fn post_reconcile_crash_recovery_finds_ledger_cleared() {
        let wal_config = WalConfig::default();
        let mut brp = BrpNode::new(NodeId(3), Some(NodeId(99)), islanding_config());
        brp.attach_wal(NodeWal::in_memory(wal_config));
        for i in 0..10 {
            submit(&mut brp, offer(i, i, 110, 90, 8), 100 + i, 0);
        }
        plan(&mut brp, 10);
        plan(&mut brp, 20); // islands
        brp.handle(
            Envelope::new(
                NodeId(99),
                NodeId(3),
                TimeSlot(21),
                Message::Heartbeat { seen: 1 },
            ),
            TimeSlot(21),
        );
        plan(&mut brp, 22); // reconciles: ledger handed off + marker logged
        assert_eq!(brp.provisional_count(), 0);

        let store = brp.take_wal().unwrap().into_store();
        drop(brp);
        let (recovered, _) = BrpNode::recover(
            NodeId(3),
            Some(NodeId(99)),
            islanding_config(),
            store,
            wal_config,
            TimeSlot(23),
        )
        .unwrap();
        assert_eq!(
            recovered.provisional_count(),
            0,
            "the hand-off marker replayed as a clear"
        );
    }
}
