//! The level-2 balance-responsible-party (trader) node: the full LEDMS.
//!
//! The Control component is [`BrpNode::handle`] plus the planning
//! life-cycle: collect offers from prosumers, decide acceptance
//! (Negotiation), aggregate incrementally (Aggregation), forecast the
//! baseline (Forecasting), schedule the macro offers (Scheduling),
//! disaggregate and send assignments back — or forward the macro offers
//! to the TSO and disaggregate *its* assignments instead (paper §2: "the
//! process is essentially repeated at a higher level").
//!
//! ## Event-driven incremental replanning
//!
//! Planning is split into three phases so forecast updates between
//! scheduling and assignment are processed in time proportional to the
//! *change*, not the problem:
//!
//! 1. [`BrpNode::prepare_plan`] schedules the eligible macro offers and
//!    keeps the result as a **live** [`DeltaEvaluator`] (owning its
//!    problem) instead of throwing the search state away;
//! 2. [`BrpNode::on_forecast_event`] consumes a typed
//!    [`ForecastEvent`] from the pub/sub hub: the event's slot ranges
//!    drive [`DeltaEvaluator::rebase`] (re-pricing only the moved
//!    slots), [`repair_scope`] restricts moves to offers that can reach
//!    them, and [`repair_parallel`] runs K multi-start repair chains on
//!    worker threads, keeping the best;
//! 3. [`BrpNode::commit_plan`] disaggregates the live solution into
//!    micro assignments once the window's deadline approaches.
//!
//! [`BrpNode::plan_with_baseline`] runs phases 1+3 back-to-back for
//! callers without forecast updates.

use crate::datastore::{
    DataStore, EnergyType, MeasurementFact, OfferFact, OfferState, ScheduleFact,
};
use crate::message::{Envelope, Message};
use mirabel_aggregate::{AggregationParams, AggregationPipeline, BinPackerConfig, FlexOfferUpdate};
use mirabel_core::{
    AggregateId, FlexOffer, FlexOfferId, NodeId, Price, ScheduledFlexOffer, TimeSlot,
};
use mirabel_forecast::{ForecastEvent, ForecastModel, HwtConfig, HwtModel, Seasonality};
use mirabel_negotiate::{AcceptanceDecision, AcceptancePolicy, PreExecutionPricing};
use mirabel_schedule::{
    evaluate, multi_start, repair_parallel, repair_scope, Budget, DeltaEvaluator,
    EvolutionaryScheduler, GreedyScheduler, HybridScheduler, MarketPrices, RepairConfig,
    SchedulingProblem, Solution,
};
use mirabel_timeseries::TimeSeries;
use std::collections::BTreeMap;

/// Which metaheuristic the BRP runs (paper §6 provides two; the hybrid is
/// the future-work extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Randomized greedy search.
    Greedy,
    /// Evolutionary algorithm.
    Evolutionary,
    /// Greedy-seeded EA.
    Hybrid,
}

/// BRP configuration.
#[derive(Debug, Clone)]
pub struct BrpConfig {
    /// Aggregation thresholds.
    pub aggregation: AggregationParams,
    /// Optional bin-packer bounds.
    pub binpacker: Option<BinPackerConfig>,
    /// Scheduling algorithm.
    pub scheduler: SchedulerKind,
    /// Cost-evaluation budget per planning run.
    pub budget_evaluations: usize,
    /// Acceptance policy (Negotiation component).
    pub acceptance: AcceptancePolicy,
    /// Pricing scheme for assignments.
    pub pricing: PreExecutionPricing,
    /// Forward macro offers to the TSO instead of scheduling locally.
    pub forward_to_tso: bool,
    /// Parallel multi-start chains (K) per incremental repair.
    pub repair_chains: usize,
    /// Proposed moves per repair chain.
    pub repair_moves: usize,
    /// Parallel best-of-K restarts of the *initial* scheduler run (1 =
    /// single start; chain 0 always reproduces the single-start result).
    pub initial_starts: usize,
    /// Worker threads for the aggregation pipeline's shard-parallel
    /// flush (results are identical for any value).
    pub flush_threads: usize,
}

impl Default for BrpConfig {
    fn default() -> BrpConfig {
        let repair = RepairConfig::default();
        BrpConfig {
            aggregation: AggregationParams::p3(8, 8),
            binpacker: None,
            scheduler: SchedulerKind::Greedy,
            budget_evaluations: 20_000,
            acceptance: AcceptancePolicy::default(),
            pricing: PreExecutionPricing::default(),
            forward_to_tso: false,
            repair_chains: repair.chains,
            repair_moves: repair.moves_per_chain,
            initial_starts: 1,
            flush_threads: 1,
        }
    }
}

/// Outcome of one planning run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanReport {
    /// Offers expired (assignment deadline passed) and dropped.
    pub expired: usize,
    /// Macro offers eligible for the window.
    pub eligible_macro: usize,
    /// Macro offers forwarded to the TSO.
    pub forwarded: usize,
    /// Micro assignments produced.
    pub assignments: usize,
    /// Total schedule cost, when scheduled locally.
    pub cost: Option<f64>,
}

/// Outcome of one incremental replan ([`BrpNode::on_forecast_event`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanReport {
    /// Slots whose forecast moved (and were re-priced by the rebase).
    pub changed_slots: usize,
    /// Offers inside the repair scope.
    pub scoped_offers: usize,
    /// Total cost right after the rebase, before repair.
    pub cost_before: f64,
    /// Total cost after the parallel multi-start repair.
    pub cost_after: f64,
}

/// The live planning state kept between [`BrpNode::prepare_plan`] and
/// [`BrpNode::commit_plan`]: the evaluator owns its problem, so forecast
/// events can rebase it in place — no problem reconstruction, no resync.
#[derive(Debug)]
struct LivePlan {
    eval: DeltaEvaluator<'static>,
    window_start: TimeSlot,
}

/// The level-2 node.
#[derive(Debug)]
pub struct BrpNode {
    /// This node's id.
    pub id: NodeId,
    /// Parent TSO, if any.
    pub parent: Option<NodeId>,
    config: BrpConfig,
    /// Offer pool: id → (offer, source node). Ordered so every walk
    /// (expiry, planning) is deterministic across runs.
    pool: BTreeMap<FlexOfferId, (FlexOffer, NodeId)>,
    pipeline: AggregationPipeline,
    /// The Data Management component.
    pub store: DataStore,
    /// Exported macro-offer id → local aggregate id (TSO path).
    exports: BTreeMap<u64, AggregateId>,
    /// Current plan awaiting commitment, if any.
    live: Option<LivePlan>,
    seed: u64,
}

impl BrpNode {
    /// Create a BRP node.
    pub fn new(id: NodeId, parent: Option<NodeId>, config: BrpConfig) -> BrpNode {
        let mut pipeline = AggregationPipeline::new(config.aggregation, config.binpacker);
        pipeline.set_flush_threads(config.flush_threads);
        BrpNode {
            id,
            parent,
            config,
            pool: BTreeMap::new(),
            pipeline,
            store: DataStore::new(),
            exports: BTreeMap::new(),
            live: None,
            seed: id.value().wrapping_mul(0x9e37_79b9),
        }
    }

    /// Offers currently pooled.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Current number of aggregates.
    pub fn aggregate_count(&self) -> usize {
        self.pipeline.aggregate_count()
    }

    /// Handle one message; returns reply envelopes.
    pub fn handle(&mut self, envelope: Envelope, now: TimeSlot) -> Vec<Envelope> {
        match envelope.message {
            Message::SubmitOffer(offer) => self.on_submit(offer, envelope.from, now),
            Message::Measurement {
                actor,
                start,
                values,
            } => {
                for (i, &v) in values.iter().enumerate() {
                    let (energy_type, kwh) = if v >= 0.0 {
                        (EnergyType::Consumption, v)
                    } else {
                        (EnergyType::Production, -v)
                    };
                    self.store.record_measurement(MeasurementFact {
                        slot: start + i as u32,
                        actor,
                        energy_type,
                        kwh,
                    });
                }
                Vec::new()
            }
            Message::Assignment {
                schedule,
                discount_per_kwh,
            } => self.on_tso_assignment(schedule, discount_per_kwh, now),
            _ => Vec::new(),
        }
    }

    fn on_submit(&mut self, offer: FlexOffer, from: NodeId, now: TimeSlot) -> Vec<Envelope> {
        let decision = self.config.acceptance.decide(&offer, now);
        let reply = match decision {
            AcceptanceDecision::Accept { value } => {
                self.store.record_offer(OfferFact {
                    offer: offer.id(),
                    actor: offer.owner(),
                    slot: now,
                    state: OfferState::Accepted,
                });
                self.pool.insert(offer.id(), (offer.clone(), from));
                self.pipeline
                    .apply(vec![FlexOfferUpdate::Insert(offer.clone())]);
                Message::OfferAccepted {
                    offer: offer.id(),
                    value,
                }
            }
            AcceptanceDecision::Reject(_) => {
                self.store.record_offer(OfferFact {
                    offer: offer.id(),
                    actor: offer.owner(),
                    slot: now,
                    state: OfferState::Rejected,
                });
                Message::OfferRejected { offer: offer.id() }
            }
        };
        vec![Envelope::new(self.id, from, now, reply)]
    }

    /// Drop offers whose assignment deadline has passed. The round's
    /// deletes go through the pipeline as ONE batch, so each touched
    /// group is flushed once instead of once per expired offer.
    fn expire(&mut self, now: TimeSlot) -> usize {
        let expired: Vec<FlexOfferId> = self
            .pool
            .iter()
            .filter(|(_, (o, _))| o.is_expired(now))
            .map(|(id, _)| *id)
            .collect();
        for id in &expired {
            let (offer, _) = self.pool.remove(id).expect("present");
            self.store.record_offer(OfferFact {
                offer: *id,
                actor: offer.owner(),
                slot: now,
                state: OfferState::Expired,
            });
        }
        if !expired.is_empty() {
            self.pipeline.apply(
                expired
                    .iter()
                    .map(|id| FlexOfferUpdate::Delete(*id))
                    .collect(),
            );
        }
        expired.len()
    }

    /// Forecast the baseline imbalance for `[start, start+horizon)` from
    /// the measurement history (net load via the star schema, HWT daily
    /// model). Returns zeros when history is too short — the cold-start
    /// behaviour.
    pub fn forecast_baseline(&self, start: TimeSlot, horizon: usize) -> Vec<f64> {
        let train_slots = 4 * mirabel_core::SLOTS_PER_DAY as i64;
        let history = self.store.net_load(start - train_slots as u32, start);
        let nonzero = history.iter().filter(|v| **v != 0.0).count();
        if nonzero < 2 * mirabel_core::SLOTS_PER_DAY as usize {
            return vec![0.0; horizon];
        }
        let series = TimeSeries::new(start - train_slots as u32, history);
        let mut model = HwtModel::new(HwtConfig {
            seasonality: Seasonality::Daily,
        });
        model.fit(&series);
        model.forecast(horizon)
    }

    /// Macro offers that fit entirely inside `[start, start+horizon)`.
    fn eligible_macros(&self, start: TimeSlot, horizon: usize) -> Vec<FlexOffer> {
        let end = start + horizon as u32;
        self.pipeline
            .macro_offers()
            .into_iter()
            .filter(|m| m.earliest_start() >= start && m.latest_end() <= end)
            .collect()
    }

    /// Plan the window `[window_start, window_start+horizon)` against an
    /// externally supplied baseline and keep the result as a live
    /// evaluator for incremental replanning. Returns forwarding
    /// envelopes (TSO mode only) plus the report; assignments are
    /// produced later by [`commit_plan`](Self::commit_plan).
    pub fn prepare_plan(
        &mut self,
        now: TimeSlot,
        window_start: TimeSlot,
        baseline: Vec<f64>,
        prices: MarketPrices,
        penalties: Vec<f64>,
    ) -> (Vec<Envelope>, PlanReport) {
        self.live = None;
        let mut report = PlanReport {
            expired: self.expire(now),
            ..PlanReport::default()
        };
        let horizon = baseline.len();
        let macros = self.eligible_macros(window_start, horizon);
        report.eligible_macro = macros.len();
        if macros.is_empty() {
            return (Vec::new(), report);
        }

        if self.config.forward_to_tso {
            let Some(parent) = self.parent else {
                return (Vec::new(), report);
            };
            // Export with globally-unique ids: brp-id * 1e9 + aggregate id.
            let mut exported = Vec::with_capacity(macros.len());
            for m in macros {
                let agg_id = AggregateId(m.id().value());
                let export_id = self.id.value() * 1_000_000_000 + m.id().value();
                self.exports.insert(export_id, agg_id);
                let rebuilt = FlexOffer::builder(export_id, self.id.value())
                    .kind(m.kind())
                    .earliest_start(m.earliest_start())
                    .latest_start(m.latest_start())
                    .assignment_before(m.assignment_before())
                    .profile(m.profile().clone())
                    .unit_price(m.unit_price())
                    .build()
                    .expect("macro offers are valid");
                exported.push(rebuilt);
            }
            report.forwarded = exported.len();
            let env = Envelope::new(self.id, parent, now, Message::MacroOffers(exported));
            return (vec![env], report);
        }

        // Schedule locally: K parallel best-of restarts of the chosen
        // scheduler (chain 0 reproduces the single-start result, so
        // `initial_starts > 1` can only improve the plan).
        let problem = SchedulingProblem::new(window_start, baseline, macros, prices, penalties)
            .expect("eligible macros fit the window");
        let budget = Budget::evaluations(self.config.budget_evaluations);
        self.seed = self.seed.wrapping_add(1);
        let starts = self.config.initial_starts.max(1);
        let result = match self.config.scheduler {
            SchedulerKind::Greedy => multi_start(starts, self.seed, |s| {
                GreedyScheduler.run(&problem, budget, s)
            }),
            SchedulerKind::Evolutionary => multi_start(starts, self.seed, |s| {
                EvolutionaryScheduler::default().run(&problem, budget, s)
            }),
            SchedulerKind::Hybrid => multi_start(starts, self.seed, |s| {
                HybridScheduler::default().run(&problem, budget, s)
            }),
        };
        report.cost = Some(result.cost.total());

        // Keep the search state alive: forecast events rebase this
        // evaluator in place instead of rebuilding the problem.
        self.live = Some(LivePlan {
            eval: DeltaEvaluator::new_owned(problem, result.solution),
            window_start,
        });
        (Vec::new(), report)
    }

    /// React to a typed forecast change event on the live plan: rebase
    /// the evaluator to the event's forecast (re-pricing only the
    /// changed slots), then run a parallel multi-start repair restricted
    /// to the offers that can reach those slots. Returns `None` when
    /// there is no live plan or the event does not match its horizon.
    ///
    /// The event's ranges are relative to the *hub's* last delivery; if
    /// the live baseline has diverged from that lineage (e.g. the plan
    /// was prepared from a post-processed forecast), the extra differing
    /// slots are detected by an O(horizon) scan and folded into the
    /// rebase, so the result is always exact.
    pub fn on_forecast_event(&mut self, event: &ForecastEvent) -> Option<ReplanReport> {
        let live = self.live.as_mut()?;
        let horizon = live.eval.problem().horizon();
        if event.forecast.len() != horizon {
            return None;
        }
        let mut touched = vec![false; horizon];
        for t in event.changed_slots() {
            if t < horizon {
                touched[t] = true;
            }
        }
        for (i, (new, old)) in event
            .forecast
            .iter()
            .zip(&live.eval.problem().baseline_imbalance)
            .enumerate()
        {
            if new != old {
                touched[i] = true;
            }
        }
        let changed: Vec<usize> = touched
            .iter()
            .enumerate()
            .filter(|(_, &t)| t)
            .map(|(i, _)| i)
            .collect();
        let cost_before = live.eval.rebase(&event.forecast, &changed);
        let scope = repair_scope(live.eval.problem(), &changed);
        self.seed = self.seed.wrapping_add(1);
        let cost_after = repair_parallel(
            &mut live.eval,
            &scope,
            RepairConfig {
                chains: self.config.repair_chains,
                moves_per_chain: self.config.repair_moves,
                seed: self.seed,
            },
        );
        Some(ReplanReport {
            changed_slots: changed.len(),
            scoped_offers: scope.len(),
            cost_before,
            cost_after,
        })
    }

    /// Commit the live plan: disaggregate the current (possibly
    /// repaired) solution into micro assignments and drop the live
    /// state. Returns the assignment envelopes plus the final schedule
    /// cost, or `None` when no plan is live.
    pub fn commit_plan(&mut self, now: TimeSlot) -> Option<(Vec<Envelope>, f64)> {
        let live = self.live.take()?;
        let cost = live.eval.total();
        let eval = live.eval;
        let envelopes = self.disaggregate_and_assign(eval.problem(), eval.solution(), now);
        Some((envelopes, cost))
    }

    /// Window start of the live plan, if one is pending commitment.
    pub fn live_window(&self) -> Option<TimeSlot> {
        self.live.as_ref().map(|l| l.window_start)
    }

    /// One-shot planning: [`prepare_plan`](Self::prepare_plan) followed
    /// immediately by [`commit_plan`](Self::commit_plan) — for callers
    /// with no forecast updates between scheduling and assignment.
    pub fn plan_with_baseline(
        &mut self,
        now: TimeSlot,
        window_start: TimeSlot,
        baseline: Vec<f64>,
        prices: MarketPrices,
        penalties: Vec<f64>,
    ) -> (Vec<Envelope>, PlanReport) {
        let (mut envelopes, mut report) =
            self.prepare_plan(now, window_start, baseline, prices, penalties);
        if let Some((assignments, cost)) = self.commit_plan(now) {
            report.cost = Some(cost);
            report.assignments = assignments.len();
            envelopes.extend(assignments);
        }
        (envelopes, report)
    }

    /// Turn a macro-level solution into micro assignments for prosumers.
    fn disaggregate_and_assign(
        &mut self,
        problem: &SchedulingProblem,
        solution: &Solution,
        now: TimeSlot,
    ) -> Vec<Envelope> {
        let mut out = Vec::new();
        // Collect every assigned offer's delete and run them through the
        // pipeline as one batch after the loop: each touched group is
        // flushed once per planning round, not once per micro assignment.
        let mut deletes = Vec::new();
        let schedules = solution.to_schedules(problem);
        for macro_schedule in schedules {
            let agg_id = AggregateId(macro_schedule.offer_id.value());
            let micro = match self.pipeline.disaggregate(agg_id, &macro_schedule) {
                Ok(m) => m,
                Err(_) => continue,
            };
            for schedule in micro {
                let Some((offer, source)) = self.pool.remove(&schedule.offer_id) else {
                    continue;
                };
                deletes.push(FlexOfferUpdate::Delete(schedule.offer_id));
                let discount = self.config.pricing.discount_per_kwh(&offer, now);
                self.store.record_offer(OfferFact {
                    offer: offer.id(),
                    actor: offer.owner(),
                    slot: now,
                    state: OfferState::Assigned,
                });
                self.store.record_schedule(ScheduleFact {
                    offer: offer.id(),
                    start: schedule.start,
                    total_kwh: schedule.total_energy().kwh(),
                    discount,
                });
                out.push(Envelope::new(
                    self.id,
                    source,
                    now,
                    Message::Assignment {
                        schedule,
                        discount_per_kwh: discount,
                    },
                ));
            }
        }
        if !deletes.is_empty() {
            self.pipeline.apply(deletes);
        }
        out
    }

    /// Handle an assignment for an exported macro offer coming back from
    /// the TSO: disaggregate into micro assignments.
    fn on_tso_assignment(
        &mut self,
        schedule: ScheduledFlexOffer,
        _discount: Price,
        now: TimeSlot,
    ) -> Vec<Envelope> {
        let Some(agg_id) = self.exports.remove(&schedule.offer_id.value()) else {
            return Vec::new();
        };
        // Rewrite the schedule to reference the local aggregate id.
        let local = ScheduledFlexOffer {
            offer_id: FlexOfferId(agg_id.value()),
            start: schedule.start,
            slot_energies: schedule.slot_energies,
        };
        let micro = match self.pipeline.disaggregate(agg_id, &local) {
            Ok(m) => m,
            Err(_) => return Vec::new(),
        };
        let mut out = Vec::new();
        let mut deletes = Vec::new();
        for s in micro {
            let Some((offer, source)) = self.pool.remove(&s.offer_id) else {
                continue;
            };
            deletes.push(FlexOfferUpdate::Delete(s.offer_id));
            let discount = self.config.pricing.discount_per_kwh(&offer, now);
            self.store.record_offer(OfferFact {
                offer: offer.id(),
                actor: offer.owner(),
                slot: now,
                state: OfferState::Assigned,
            });
            self.store.record_schedule(ScheduleFact {
                offer: offer.id(),
                start: s.start,
                total_kwh: s.total_energy().kwh(),
                discount,
            });
            out.push(Envelope::new(
                self.id,
                source,
                now,
                Message::Assignment {
                    schedule: s,
                    discount_per_kwh: discount,
                },
            ));
        }
        if !deletes.is_empty() {
            self.pipeline.apply(deletes);
        }
        out
    }

    /// Evaluate how a given set of realized flexible loads would cost
    /// under a baseline — used by the simulation for before/after
    /// comparisons.
    pub fn cost_of(problem: &SchedulingProblem, solution: &Solution) -> f64 {
        evaluate(problem, solution).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{EnergyRange, Profile};

    fn offer(id: u64, owner: u64, es: i64, deadline: i64, tf: u32) -> FlexOffer {
        FlexOffer::builder(id, owner)
            .earliest_start(TimeSlot(es))
            .time_flexibility(tf)
            .assignment_before(TimeSlot(deadline))
            .profile(Profile::uniform(2, EnergyRange::new(1.0, 2.0).unwrap()))
            .build()
            .unwrap()
    }

    fn submit(brp: &mut BrpNode, o: FlexOffer, from: u64, now: i64) -> Vec<Envelope> {
        brp.handle(
            Envelope::new(NodeId(from), brp.id, TimeSlot(now), Message::SubmitOffer(o)),
            TimeSlot(now),
        )
    }

    #[test]
    fn accepts_and_pools_offers() {
        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        let replies = submit(&mut brp, offer(1, 7, 100, 90, 12), 10, 0);
        assert_eq!(replies.len(), 1);
        assert!(matches!(replies[0].message, Message::OfferAccepted { .. }));
        assert_eq!(replies[0].to, NodeId(10));
        assert_eq!(brp.pool_size(), 1);
        assert_eq!(brp.aggregate_count(), 1);
        assert_eq!(brp.store.count_in_state(OfferState::Accepted), 1);
    }

    #[test]
    fn rejects_inflexible_offer() {
        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        let rigid = FlexOffer::builder(2, 7)
            .earliest_start(TimeSlot(100))
            .assignment_before(TimeSlot(90))
            .profile(Profile::uniform(1, EnergyRange::fixed(1.0)))
            .build()
            .unwrap();
        let replies = submit(&mut brp, rigid, 10, 0);
        assert!(matches!(replies[0].message, Message::OfferRejected { .. }));
        assert_eq!(brp.pool_size(), 0);
    }

    #[test]
    fn expiry_drops_pool_entries() {
        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        submit(&mut brp, offer(1, 7, 100, 50, 12), 10, 0);
        let (_, report) = brp.plan_with_baseline(
            TimeSlot(60), // past the deadline
            TimeSlot(61),
            vec![0.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        assert_eq!(report.expired, 1);
        assert_eq!(brp.pool_size(), 0);
        assert_eq!(brp.store.count_in_state(OfferState::Expired), 1);
    }

    #[test]
    fn local_plan_produces_assignments() {
        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        for i in 0..20 {
            submit(
                &mut brp,
                offer(i, i, 110 + (i as i64 % 5), 90, 8),
                100 + i,
                0,
            );
        }
        let baseline: Vec<f64> = (0..96).map(|k| if k < 48 { -2.0 } else { 1.0 }).collect();
        let (envelopes, report) = brp.plan_with_baseline(
            TimeSlot(80),
            TimeSlot(96),
            baseline,
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        assert!(report.eligible_macro > 0);
        assert_eq!(report.assignments, 20);
        assert_eq!(envelopes.len(), 20);
        assert!(report.cost.is_some());
        // every assignment goes back to the submitting node
        for e in &envelopes {
            assert!(e.to.value() >= 100);
            assert!(matches!(e.message, Message::Assignment { .. }));
        }
        // pool drained, facts recorded
        assert_eq!(brp.pool_size(), 0);
        assert_eq!(brp.store.count_in_state(OfferState::Assigned), 20);
    }

    #[test]
    fn binpacked_plan_batches_same_bin_deletes() {
        // Regression: committing a plan deletes every assigned offer in
        // ONE pipeline batch; with the bin-packer on, several members of
        // the same bin go in a single flush.
        let config = BrpConfig {
            binpacker: Some(BinPackerConfig::max_members(3)),
            ..BrpConfig::default()
        };
        let mut brp = BrpNode::new(NodeId(1), None, config);
        for i in 0..9 {
            submit(&mut brp, offer(i, i, 110, 90, 8), 100 + i, 0);
        }
        assert!(brp.aggregate_count() >= 3);
        let (envelopes, report) = brp.plan_with_baseline(
            TimeSlot(80),
            TimeSlot(96),
            vec![-1.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        assert_eq!(report.assignments, 9);
        assert_eq!(envelopes.len(), 9);
        assert_eq!(brp.pool_size(), 0);
        assert_eq!(brp.aggregate_count(), 0);
    }

    #[test]
    fn multi_start_initial_plan_never_worse() {
        let plan_cost = |starts: usize| {
            let mut brp = BrpNode::new(
                NodeId(1),
                None,
                BrpConfig {
                    initial_starts: starts,
                    budget_evaluations: 4_000,
                    ..BrpConfig::default()
                },
            );
            for i in 0..20 {
                submit(
                    &mut brp,
                    offer(i, i, 110 + (i as i64 % 5), 90, 8),
                    100 + i,
                    0,
                );
            }
            let baseline: Vec<f64> = (0..96).map(|k| if k < 48 { -2.0 } else { 1.0 }).collect();
            let (_, report) = brp.plan_with_baseline(
                TimeSlot(80),
                TimeSlot(96),
                baseline,
                MarketPrices::flat(96, 0.08, 0.03, 100.0),
                vec![0.2; 96],
            );
            report.cost.expect("scheduled locally")
        };
        let single = plan_cost(1);
        let multi = plan_cost(3);
        // Chain 0 of the multi-start shares the single-start seed, so
        // best-of-3 can never be worse.
        assert!(multi <= single + 1e-9, "multi {multi} vs single {single}");
    }

    #[test]
    fn forwarding_exports_unique_ids() {
        let config = BrpConfig {
            forward_to_tso: true,
            ..BrpConfig::default()
        };
        let mut brp = BrpNode::new(NodeId(3), Some(NodeId(99)), config);
        for i in 0..10 {
            submit(&mut brp, offer(i, i, 110, 90, 8), 100 + i, 0);
        }
        let (envelopes, report) = brp.plan_with_baseline(
            TimeSlot(80),
            TimeSlot(96),
            vec![0.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        assert!(report.forwarded > 0);
        assert_eq!(envelopes.len(), 1);
        assert_eq!(envelopes[0].to, NodeId(99));
        if let Message::MacroOffers(offers) = &envelopes[0].message {
            for o in offers {
                assert!(o.id().value() >= 3_000_000_000);
            }
        } else {
            panic!("expected MacroOffers");
        }
    }

    #[test]
    fn tso_assignment_disaggregates_to_prosumers() {
        let config = BrpConfig {
            forward_to_tso: true,
            ..BrpConfig::default()
        };
        let mut brp = BrpNode::new(NodeId(3), Some(NodeId(99)), config);
        for i in 0..5 {
            submit(&mut brp, offer(i, i, 110, 90, 8), 100 + i, 0);
        }
        let (envelopes, _) = brp.plan_with_baseline(
            TimeSlot(80),
            TimeSlot(96),
            vec![0.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        let Message::MacroOffers(exported) = &envelopes[0].message else {
            panic!("expected MacroOffers");
        };
        // TSO schedules the first exported macro offer at its earliest
        // start, minimum energy.
        let macro_offer = &exported[0];
        let schedule = ScheduledFlexOffer::at_min(macro_offer, macro_offer.earliest_start());
        let micro_envs = brp.handle(
            Envelope::new(
                NodeId(99),
                NodeId(3),
                TimeSlot(85),
                Message::Assignment {
                    schedule,
                    discount_per_kwh: Price(0.01),
                },
            ),
            TimeSlot(85),
        );
        assert!(!micro_envs.is_empty());
        for e in &micro_envs {
            assert!(matches!(e.message, Message::Assignment { .. }));
        }
    }

    #[test]
    fn prepare_replan_commit_cycle() {
        use mirabel_forecast::ForecastHub;

        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        for i in 0..20 {
            submit(
                &mut brp,
                offer(i, i, 110 + (i as i64 % 5), 90, 8),
                100 + i,
                0,
            );
        }
        let hub = ForecastHub::new();
        let sub = hub.subscribe(96, 0.0);
        let baseline: Vec<f64> = (0..96).map(|k| if k < 48 { -2.0 } else { 1.0 }).collect();
        hub.publish(&baseline);
        let event = hub.poll(sub).unwrap();

        let (envelopes, report) = brp.prepare_plan(
            TimeSlot(80),
            TimeSlot(96),
            event.forecast,
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        assert!(envelopes.is_empty(), "no assignments before commit");
        assert!(report.eligible_macro > 0);
        assert_eq!(brp.live_window(), Some(TimeSlot(96)));
        // Nothing assigned yet: the pool still holds every offer.
        assert_eq!(brp.pool_size(), 20);

        // Intra-day refinement: a contiguous block of slots moves.
        let mut refined = baseline.clone();
        for v in refined.iter_mut().skip(20).take(10) {
            *v += 1.5;
        }
        hub.publish(&refined);
        let event = hub.poll(sub).unwrap();
        assert_eq!(event.changed_slot_count(), 10);
        let replan = brp.on_forecast_event(&event).expect("live plan exists");
        assert_eq!(replan.changed_slots, 10);
        assert!(replan.scoped_offers > 0);
        assert!(replan.cost_after <= replan.cost_before);

        let (assignments, cost) = brp.commit_plan(TimeSlot(80)).expect("live plan");
        assert_eq!(assignments.len(), 20);
        assert!((cost - replan.cost_after).abs() < 1e-9);
        assert_eq!(brp.pool_size(), 0);
        assert_eq!(brp.store.count_in_state(OfferState::Assigned), 20);
        // Committed: nothing live anymore.
        assert!(brp.commit_plan(TimeSlot(80)).is_none());
        assert!(brp.on_forecast_event(&event).is_none());
    }

    #[test]
    fn forecast_event_from_diverged_lineage_is_still_exact() {
        // The plan is prepared from a baseline that is NOT the hub's
        // last delivery (post-processed forecast). A later event whose
        // ranges under-report the differences against the live baseline
        // must still rebase every differing slot (lineage guard).
        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        for i in 0..10 {
            submit(&mut brp, offer(i, i, 110, 90, 8), 100 + i, 0);
        }
        // Live baseline: hub forecast shifted by a constant the hub
        // never saw.
        let hub_forecast = vec![0.5; 96];
        let live_baseline: Vec<f64> = hub_forecast.iter().map(|v| v + 0.1).collect();
        brp.prepare_plan(
            TimeSlot(80),
            TimeSlot(96),
            live_baseline,
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        // Event: relative to hub lineage only slot 7 changed, but vs the
        // live baseline *every* slot differs.
        let mut new_forecast = hub_forecast.clone();
        new_forecast[7] = 3.0;
        let event = mirabel_forecast::ForecastEvent {
            subscription: 0,
            forecast: new_forecast,
            changed: vec![mirabel_forecast::SlotRange { start: 7, end: 8 }],
            max_relative_change: 5.0,
        };
        let replan = brp.on_forecast_event(&event).expect("live plan exists");
        // All 96 slots differ from the live baseline and must be listed.
        assert_eq!(replan.changed_slots, 96);
        // Debug builds additionally verify the rebase against the full
        // evaluation inside DeltaEvaluator (no panic = exact).
        assert!(brp.commit_plan(TimeSlot(80)).is_some());
    }

    #[test]
    fn forecast_event_with_wrong_horizon_ignored() {
        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        for i in 0..5 {
            submit(&mut brp, offer(i, i, 110, 90, 8), 100 + i, 0);
        }
        brp.prepare_plan(
            TimeSlot(80),
            TimeSlot(96),
            vec![0.5; 96],
            MarketPrices::flat(96, 0.08, 0.03, 100.0),
            vec![0.2; 96],
        );
        let event = mirabel_forecast::ForecastEvent {
            subscription: 0,
            forecast: vec![0.5; 48], // horizon mismatch
            changed: vec![mirabel_forecast::SlotRange { start: 0, end: 48 }],
            max_relative_change: f64::INFINITY,
        };
        assert!(brp.on_forecast_event(&event).is_none());
        // Live plan untouched and still committable.
        assert!(brp.commit_plan(TimeSlot(80)).is_some());
    }

    #[test]
    fn forecast_baseline_cold_start_is_zero() {
        let brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        let f = brp.forecast_baseline(TimeSlot(1000), 96);
        assert_eq!(f, vec![0.0; 96]);
    }

    #[test]
    fn forecast_baseline_learns_from_measurements() {
        let mut brp = BrpNode::new(NodeId(1), None, BrpConfig::default());
        // four days of a flat 5 kWh/slot net load
        let start = TimeSlot(0);
        let values = vec![5.0; 4 * 96];
        brp.handle(
            Envelope::new(
                NodeId(10),
                NodeId(1),
                TimeSlot(0),
                Message::Measurement {
                    actor: mirabel_core::ActorId(7),
                    start,
                    values,
                },
            ),
            TimeSlot(0),
        );
        let f = brp.forecast_baseline(TimeSlot(4 * 96), 10);
        for v in f {
            assert!((v - 5.0).abs() < 0.5, "forecast {v}");
        }
    }
}
