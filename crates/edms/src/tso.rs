//! The level-3 TSO node: "the process is essentially repeated at a higher
//! level: the aggregated flex-offers are sent to a TSO's node for further
//! aggregation, scheduling, and disaggregation" (paper §2).

use crate::message::{Envelope, Message};
use mirabel_aggregate::{AggregationParams, AggregationPipeline, FlexOfferUpdate};
use mirabel_core::{AggregateId, FlexOffer, FlexOfferId, NodeId, Price, TimeSlot};
use mirabel_schedule::{Budget, GreedyScheduler, MarketPrices, SchedulingProblem};
use std::collections::BTreeMap;

/// The level-3 node.
#[derive(Debug)]
pub struct TsoNode {
    /// This node's id.
    pub id: NodeId,
    /// Pool of macro offers received from BRPs: id → (offer, source BRP).
    pool: BTreeMap<FlexOfferId, (FlexOffer, NodeId)>,
    pipeline: AggregationPipeline,
    budget_evaluations: usize,
    seed: u64,
}

impl TsoNode {
    /// Create a TSO aggregating BRP macro offers with the given
    /// thresholds.
    pub fn new(id: NodeId, aggregation: AggregationParams, budget_evaluations: usize) -> TsoNode {
        TsoNode {
            id,
            pool: BTreeMap::new(),
            pipeline: AggregationPipeline::new(aggregation, None),
            budget_evaluations,
            seed: id.value().wrapping_mul(0x51ed_270b),
        }
    }

    /// Macro offers currently pooled.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Second-level aggregates currently maintained.
    pub fn aggregate_count(&self) -> usize {
        self.pipeline.aggregate_count()
    }

    /// Handle a message (only `MacroOffers` is meaningful to a TSO).
    pub fn handle(&mut self, envelope: Envelope) {
        if let Message::MacroOffers(offers) = envelope.message {
            let updates = offers
                .into_iter()
                .map(|o| {
                    self.pool.insert(o.id(), (o.clone(), envelope.from));
                    FlexOfferUpdate::Insert(o)
                })
                .collect();
            self.pipeline.apply(updates);
        }
    }

    /// Schedule the pooled macro offers over `[window_start,
    /// window_start+baseline.len())` and return per-BRP assignments
    /// (disaggregated one level, back to the BRP macro offers).
    pub fn plan(
        &mut self,
        now: TimeSlot,
        window_start: TimeSlot,
        baseline: Vec<f64>,
        prices: MarketPrices,
        penalties: Vec<f64>,
    ) -> Vec<Envelope> {
        let horizon = baseline.len();
        let end = window_start + horizon as u32;
        let macros: Vec<FlexOffer> = self
            .pipeline
            .macro_offers()
            .into_iter()
            .filter(|m| m.earliest_start() >= window_start && m.latest_end() <= end)
            .collect();
        if macros.is_empty() {
            return Vec::new();
        }
        let problem = SchedulingProblem::new(window_start, baseline, macros, prices, penalties)
            .expect("eligible macros fit the window");
        self.seed = self.seed.wrapping_add(1);
        let result = GreedyScheduler.run(
            &problem,
            Budget::evaluations(self.budget_evaluations),
            self.seed,
        );

        let mut out = Vec::new();
        // Batch the round's deletes so each touched group flushes once.
        let mut deletes = Vec::new();
        for macro_schedule in result.solution.to_schedules(&problem) {
            let agg_id = AggregateId(macro_schedule.offer_id.value());
            let members = match self.pipeline.disaggregate(agg_id, &macro_schedule) {
                Ok(m) => m,
                Err(_) => continue,
            };
            for schedule in members {
                let Some((_, source_brp)) = self.pool.remove(&schedule.offer_id) else {
                    continue;
                };
                deletes.push(FlexOfferUpdate::Delete(schedule.offer_id));
                out.push(Envelope::new(
                    self.id,
                    source_brp,
                    now,
                    Message::Assignment {
                        schedule,
                        discount_per_kwh: Price::ZERO,
                    },
                ));
            }
        }
        if !deletes.is_empty() {
            self.pipeline.apply(deletes);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{EnergyRange, Profile};

    fn macro_offer(id: u64, es: i64) -> FlexOffer {
        FlexOffer::builder(id, 1)
            .earliest_start(TimeSlot(es))
            .time_flexibility(8)
            .assignment_before(TimeSlot(es - 10))
            .profile(Profile::uniform(4, EnergyRange::new(5.0, 10.0).unwrap()))
            .build()
            .unwrap()
    }

    #[test]
    fn pools_macro_offers() {
        let mut tso = TsoNode::new(NodeId(99), AggregationParams::p0(), 5_000);
        tso.handle(Envelope::new(
            NodeId(1),
            NodeId(99),
            TimeSlot(0),
            Message::MacroOffers(vec![macro_offer(1_000_000_001, 120)]),
        ));
        assert_eq!(tso.pool_size(), 1);
        assert_eq!(tso.aggregate_count(), 1);
    }

    #[test]
    fn plan_sends_assignments_to_source_brps() {
        let mut tso = TsoNode::new(NodeId(99), AggregationParams::p0(), 5_000);
        tso.handle(Envelope::new(
            NodeId(1),
            NodeId(99),
            TimeSlot(0),
            Message::MacroOffers(vec![macro_offer(1_000_000_001, 120)]),
        ));
        tso.handle(Envelope::new(
            NodeId(2),
            NodeId(99),
            TimeSlot(0),
            Message::MacroOffers(vec![macro_offer(2_000_000_001, 120)]),
        ));
        let envelopes = tso.plan(
            TimeSlot(100),
            TimeSlot(96),
            vec![-5.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 1000.0),
            vec![0.2; 96],
        );
        assert_eq!(envelopes.len(), 2);
        let targets: Vec<u64> = envelopes.iter().map(|e| e.to.value()).collect();
        assert!(targets.contains(&1));
        assert!(targets.contains(&2));
        for e in &envelopes {
            assert!(matches!(e.message, Message::Assignment { .. }));
        }
        assert_eq!(tso.pool_size(), 0);
    }

    #[test]
    fn offers_outside_window_deferred() {
        let mut tso = TsoNode::new(NodeId(99), AggregationParams::p0(), 1_000);
        tso.handle(Envelope::new(
            NodeId(1),
            NodeId(99),
            TimeSlot(0),
            Message::MacroOffers(vec![macro_offer(1_000_000_001, 500)]),
        ));
        let envelopes = tso.plan(
            TimeSlot(100),
            TimeSlot(96),
            vec![0.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 1000.0),
            vec![0.2; 96],
        );
        assert!(envelopes.is_empty());
        assert_eq!(tso.pool_size(), 1); // still pooled for a later window
    }
}
