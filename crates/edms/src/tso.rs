//! The level-3 TSO node: "the process is essentially repeated at a higher
//! level: the aggregated flex-offers are sent to a TSO's node for further
//! aggregation, scheduling, and disaggregation" (paper §2).
//!
//! The TSO runs the **same** prepare → replan → commit life-cycle as the
//! BRP, on the shared [`PlanEngine`]:
//!
//! * [`TsoNode::handle`] consumes the BRPs' macro-offer **delta**
//!   streams ([`Message::MacroOfferDeltas`]): inserts and deletes flow
//!   through the TSO's own aggregation pipeline, and — when a plan is
//!   live — are spliced into the live evaluator at O(changed) cost, so
//!   a trickle change at level 1 replans at level 3 as a trickle, never
//!   a problem reconstruction;
//! * [`TsoNode::prepare_plan`] schedules the window-eligible
//!   second-level aggregates and keeps the evaluator live;
//! * [`TsoNode::on_forecast_event`] rebases on a pub/sub forecast event
//!   exactly like a BRP (the TSO subscribes to the same hub);
//! * [`TsoNode::commit_plan`] disaggregates one level — back to the BRP
//!   macro offers — and sends each assignment to its source BRP.
//!
//! Pooled offers are stored **once**, in the pipeline's `OfferSlab`; the
//! TSO keeps only an id → source-BRP map ([`TsoNode::source_of`]) beside
//! it — no cloned `FlexOffer` pool.
//!
//! The resync path is also the **crash-recovery** path: a BRP rebuilt
//! from its write-ahead log (see [`crate::wal`]) announces itself with
//! an *unsolicited* [`Message::ResyncSnapshot`], and the TSO's
//! [`snapshot diff`](TsoNode::handle) plus per-stream
//! [`SequencedRx::resynced`] re-anchor its pooled view and the sequence
//! numbers in one round-trip — the TSO cannot tell a recovery from an
//! ordinary lost-delta resync.
//!
//! In a multi-region [`Federation`](crate::federation::Federation) the
//! TSO is also the **export boundary**: mid-cycle — after planning and
//! refinement, before the commit wave consumes the pool — the region
//! snapshots [`TsoNode::pooled_ids`] / [`TsoNode::pooled_offer`] as its
//! exportable surplus, and the federation's
//! [`ExchangeGateway`](crate::federation::ExchangeGateway) publishes
//! that snapshot to peer regions over the same delta + resync wire
//! contract the BRP → TSO link uses.

use crate::message::{Envelope, Message};
use crate::runtime::{
    Node, NodeRuntime, OfferDeltaReport, PlanEngine, PlanReport, ReplanReport, RuntimeConfig,
};
use crate::wal::{NodeWal, WalConfig, WalStore};
use crate::wire::{SequencedRx, SequencedRxState, StreamStats};
use mirabel_aggregate::{AggregationParams, AggregationPipeline, FlexOfferUpdate};
use mirabel_core::codec::{put_u64, take_u64, CodecError, Wire};
use mirabel_core::{AggregateId, FlexOffer, FlexOfferId, NodeId, Price, TimeSlot};
use mirabel_forecast::ForecastEvent;
use mirabel_schedule::{MarketPrices, SchedulingProblem, Solution};
use std::collections::{BTreeMap, BTreeSet};

/// The level-3 node.
#[derive(Debug)]
pub struct TsoNode {
    /// This node's id.
    pub id: NodeId,
    /// Source BRP per pooled macro offer. Offer *values* live exactly
    /// once, in the pipeline's slab — resolve them with
    /// [`pooled_offer`](Self::pooled_offer).
    sources: BTreeMap<FlexOfferId, NodeId>,
    /// The shared planning runtime: pipeline + live plan.
    engine: PlanEngine,
    /// Fold report of the last delta batch applied to a live plan.
    last_fold: Option<OfferDeltaReport>,
    /// One sequenced-stream guard per sending BRP: the delta wire is
    /// stateful, so inbound `MacroOfferDeltas` must apply exactly once
    /// and in order — gaps trigger a [`Message::ResyncRequest`].
    /// Heartbeats ride the same stamped stream, so they flow through
    /// the same guard; provisional reports are audited on receipt
    /// instead (see [`handle`](Self::handle)).
    rx: BTreeMap<NodeId, SequencedRx>,
    /// Per-BRP count of applied `MacroOfferDeltas` envelopes — the
    /// cumulative ack each outbound [`Message::Heartbeat`] piggybacks,
    /// letting the BRP detect unacked flushes.
    applied: BTreeMap<NodeId, u64>,
    /// Provisional (islanded) assignments adopted at reconciliation:
    /// the BRP's local decision stood.
    provisional_adopted: u64,
    /// Provisional assignments superseded at reconciliation: the TSO
    /// had already decided the offer globally.
    provisional_superseded: u64,
    /// Write-ahead log (append-before-apply), when attached.
    wal: Option<NodeWal>,
    /// Event id of the envelope currently being ingested.
    last_ingest_event: Option<u64>,
    /// True while [`recover`](Self::recover) replays the WAL tail:
    /// replayed envelopes must not re-append.
    replaying: bool,
}

impl TsoNode {
    /// Create a TSO aggregating BRP macro offers with the given
    /// thresholds.
    pub fn new(id: NodeId, aggregation: AggregationParams, budget_evaluations: usize) -> TsoNode {
        TsoNode::with_config(
            id,
            aggregation,
            RuntimeConfig {
                budget_evaluations,
                ..RuntimeConfig::default()
            },
        )
    }

    /// Create a TSO with full control over the runtime knobs.
    pub fn with_config(id: NodeId, aggregation: AggregationParams, cfg: RuntimeConfig) -> TsoNode {
        TsoNode {
            id,
            sources: BTreeMap::new(),
            engine: PlanEngine::new(
                AggregationPipeline::new(aggregation, None),
                cfg,
                id.value().wrapping_mul(0x51ed_270b),
            ),
            last_fold: None,
            rx: BTreeMap::new(),
            applied: BTreeMap::new(),
            provisional_adopted: 0,
            provisional_superseded: 0,
            wal: None,
            last_ingest_event: None,
            replaying: false,
        }
    }

    /// Macro offers currently pooled.
    pub fn pool_size(&self) -> usize {
        self.sources.len()
    }

    /// Second-level aggregates currently maintained.
    pub fn aggregate_count(&self) -> usize {
        self.engine.pipeline().aggregate_count()
    }

    /// The BRP a pooled macro offer came from.
    pub fn source_of(&self, id: FlexOfferId) -> Option<NodeId> {
        self.sources.get(&id).copied()
    }

    /// Resolve a pooled macro offer against the pipeline's slab (the
    /// single store).
    pub fn pooled_offer(&self, id: FlexOfferId) -> Option<&FlexOffer> {
        self.engine.pipeline().offer(id)
    }

    /// The TSO's aggregation pipeline (read-only; diagnostics and
    /// equivalence tests).
    pub fn pipeline(&self) -> &AggregationPipeline {
        self.engine.pipeline()
    }

    /// Ids of the pooled macro offers, ascending.
    pub fn pooled_ids(&self) -> Vec<FlexOfferId> {
        self.sources.keys().copied().collect()
    }

    /// Fold report of the most recent delta batch that touched a live
    /// plan (how much incremental replanning it cost).
    pub fn last_offer_delta_report(&self) -> Option<&OfferDeltaReport> {
        self.last_fold.as_ref()
    }

    /// The live plan's problem, when one is pending commitment (the
    /// level-3 equivalence tests compare it against a from-scratch
    /// rebuild).
    pub fn live_problem(&self) -> Option<&SchedulingProblem> {
        self.engine.live_problem()
    }

    /// The live plan's current solution.
    pub fn live_solution(&self) -> Option<&Solution> {
        self.engine.live_solution()
    }

    /// The live plan's current total cost.
    pub fn live_cost(&self) -> Option<f64> {
        self.engine.live_cost()
    }

    /// Handle a message. `MacroOfferDeltas` — and the heartbeats that
    /// ride the same stamped BRP → TSO stream — run through the
    /// sender's sequenced-stream guard: duplicates drop, out-of-order
    /// envelopes buffer, a gap answers with a
    /// [`Message::ResyncRequest`]. Deliverable delta batches update the
    /// pool *and* any live plan in O(changed). A
    /// [`Message::ProvisionalReport`] is audited immediately on receipt
    /// (a healing link usually carries a gap that would strand it in
    /// the guard). A [`Message::ResyncSnapshot`] is diffed against the
    /// pooled view of its sender and only the differences are spliced.
    ///
    /// With a WAL attached the envelope is appended **before** any state
    /// mutates (append-before-apply), so a crash mid-handle replays it.
    pub fn handle(&mut self, envelope: Envelope, now: TimeSlot) -> Vec<Envelope> {
        if !self.replaying {
            if let Some(wal) = self.wal.as_mut() {
                self.last_ingest_event = Some(wal.append(&envelope, None, true, now));
            }
        }
        let out = self.dispatch(envelope, now);
        self.maybe_compact();
        out
    }

    fn dispatch(&mut self, envelope: Envelope, now: TimeSlot) -> Vec<Envelope> {
        match &envelope.message {
            Message::MacroOfferDeltas(_) | Message::Heartbeat { .. } => {
                let from = envelope.from;
                let (deliverable, request_resync) =
                    self.rx.entry(from).or_default().receive(envelope);
                for env in deliverable {
                    self.deliver(env);
                }
                if request_resync {
                    return vec![Envelope::new(self.id, from, now, Message::ResyncRequest)];
                }
                Vec::new()
            }
            Message::ProvisionalReport { .. } => {
                // Audited on receipt, OUTSIDE the sequenced guard. An
                // islanded BRP's delta stream usually carries a loss gap
                // by the time it heals; riding the guard would park the
                // report behind that gap and the resync snapshot that
                // always follows it would re-anchor past it, silently
                // discarding the reconciliation hand-off. The snapshot's
                // `resynced` also swallows the report's sequence slot,
                // so skipping the guard leaves no phantom gap — and the
                // audit must see the **pre-snapshot** pool anyway.
                let from = envelope.from;
                let Message::ProvisionalReport { assignments, .. } = envelope.message else {
                    unreachable!("matched above");
                };
                self.audit_provisional(from, assignments);
                Vec::new()
            }
            Message::ResyncSnapshot { .. } => {
                let from = envelope.from;
                let seq = envelope.seq;
                let Message::ResyncSnapshot { offers } = envelope.message else {
                    unreachable!("matched above");
                };
                // Splice only the differences: a snapshot that confirms
                // the pooled view must not disturb the live plan (or its
                // repair seed stream).
                let diff = self.snapshot_diff(from, &offers);
                if !diff.is_empty() {
                    self.apply_deltas(from, diff);
                }
                // Buffered envelopes beyond the snapshot apply on top.
                let released = self.rx.entry(from).or_default().resynced(seq);
                for env in released {
                    self.deliver(env);
                }
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    /// Apply one in-order deliverable envelope released by a stream
    /// guard.
    fn deliver(&mut self, env: Envelope) {
        let from = env.from;
        match env.message {
            Message::MacroOfferDeltas(updates) => {
                self.apply_deltas(from, updates);
                *self.applied.entry(from).or_insert(0) += 1;
            }
            Message::Heartbeat { .. } => {
                // Pure liveness: the BRP-side detector is the consumer;
                // the TSO only needs the envelope to keep the stream's
                // sequence numbers contiguous.
            }
            _ => {}
        }
    }

    /// Reconciliation audit of a rejoining BRP's islanded assignments.
    ///
    /// Deterministic rule: an offer the TSO still pools was never
    /// decided globally, so the BRP's local decision is **adopted** —
    /// the offer leaves the pool (and any live plan) exactly as if the
    /// TSO had assigned it. An offer the TSO no longer pools was
    /// already assigned (or expired) globally, so the report entry is
    /// **superseded**: the TSO's own `Assignment` stands and the BRP's
    /// provisional one is replaced by the normal delta-splice.
    fn audit_provisional(
        &mut self,
        from: NodeId,
        assignments: Vec<mirabel_core::ScheduledFlexOffer>,
    ) {
        let mut adopted = Vec::new();
        for schedule in assignments {
            if self.sources.get(&schedule.offer_id) == Some(&from) {
                adopted.push(FlexOfferUpdate::Delete(schedule.offer_id));
            } else {
                self.provisional_superseded += 1;
            }
        }
        if !adopted.is_empty() {
            self.provisional_adopted += adopted.len() as u64;
            self.apply_deltas(from, adopted);
        }
    }

    /// Provisional assignments adopted / superseded during
    /// reconciliation handshakes so far.
    pub fn provisional_audit(&self) -> (u64, u64) {
        (self.provisional_adopted, self.provisional_superseded)
    }

    /// Apply one in-order batch of BRP deltas to the pool and any live
    /// plan.
    fn apply_deltas(&mut self, from: NodeId, updates: Vec<FlexOfferUpdate>) {
        let mut accepted = Vec::with_capacity(updates.len());
        for u in updates {
            match u {
                FlexOfferUpdate::Insert(offer) => {
                    self.sources.insert(offer.id(), from);
                    accepted.push(FlexOfferUpdate::Insert(offer));
                }
                FlexOfferUpdate::Delete(id) => {
                    // Deletes for offers this TSO already assigned
                    // (and dropped at commit) are expected no-ops.
                    if self.sources.remove(&id).is_some() {
                        accepted.push(FlexOfferUpdate::Delete(id));
                    }
                }
            }
        }
        // The report always describes the LAST batch: None when the
        // batch had no effect (all-unknown deletes) or no plan was
        // live to fold into.
        self.last_fold = if accepted.is_empty() {
            None
        } else {
            self.engine.apply_offer_updates(accepted).1
        };
    }

    /// The delta updates that would reconcile the pooled view of `from`
    /// with its snapshot: deletes for pooled offers the snapshot no
    /// longer carries, inserts for new or value-changed offers.
    fn snapshot_diff(&self, from: NodeId, offers: &[FlexOffer]) -> Vec<FlexOfferUpdate> {
        let snapshot_ids: BTreeSet<FlexOfferId> = offers.iter().map(|o| o.id()).collect();
        let mut diff: Vec<FlexOfferUpdate> = self
            .sources
            .iter()
            .filter(|(id, src)| **src == from && !snapshot_ids.contains(id))
            .map(|(id, _)| FlexOfferUpdate::Delete(*id))
            .collect();
        for o in offers {
            let unchanged = self.sources.get(&o.id()) == Some(&from)
                && self.engine.pipeline().offer(o.id()) == Some(o);
            if !unchanged {
                diff.push(FlexOfferUpdate::Insert(o.clone()));
            }
        }
        diff
    }

    /// Delivery counters of the sequenced delta stream from `brp`
    /// (zeros if it never sent).
    pub fn stream_stats(&self, brp: NodeId) -> StreamStats {
        self.rx
            .get(&brp)
            .map_or_else(StreamStats::default, |rx| rx.stats())
    }

    /// Drop pooled macro offers whose assignment deadline has passed —
    /// the same timeout rule every other level applies, and what makes
    /// the delta wire *self-healing*: a lost `Delete` leaves a ghost
    /// offer only until its deadline, never forever.
    fn expire(&mut self, now: TimeSlot) -> usize {
        let expired: Vec<FlexOfferId> = self
            .sources
            .keys()
            .filter(|id| {
                self.engine
                    .pipeline()
                    .offer(**id)
                    .is_some_and(|o| o.is_expired(now))
            })
            .copied()
            .collect();
        for id in &expired {
            self.sources.remove(id);
        }
        if !expired.is_empty() {
            self.engine.apply_offer_updates(
                expired
                    .iter()
                    .map(|id| FlexOfferUpdate::Delete(*id))
                    .collect(),
            );
        }
        expired.len()
    }

    /// Phase 1: schedule the pooled macro offers eligible for
    /// `[window_start, window_start+baseline.len())` and keep the result
    /// live. Assignments are produced by [`commit_plan`](Self::commit_plan).
    ///
    /// Also emits one [`Message::Heartbeat`] to every BRP heard from so
    /// far, carrying the cumulative count of that BRP's applied delta
    /// flushes — the piggybacked ack the BRP-side failure detector and
    /// retransmit tracker consume.
    pub fn prepare_plan(
        &mut self,
        now: TimeSlot,
        window_start: TimeSlot,
        baseline: Vec<f64>,
        prices: MarketPrices,
        penalties: Vec<f64>,
    ) -> (Vec<Envelope>, PlanReport) {
        self.last_fold = None;
        // Stale live plan first: expiry deltas must not fold into it.
        self.engine.abandon();
        let expired = self.expire(now);
        let (eligible, cost) = self
            .engine
            .prepare(window_start, baseline, prices, penalties);
        let report = PlanReport {
            expired,
            eligible_macro: eligible,
            cost,
            ..PlanReport::default()
        };
        let heartbeats = self
            .rx
            .keys()
            .map(|&brp| {
                Envelope::new(
                    self.id,
                    brp,
                    now,
                    Message::Heartbeat {
                        seen: self.applied.get(&brp).copied().unwrap_or(0),
                    },
                )
            })
            .collect();
        (heartbeats, report)
    }

    /// Phase 2: incremental replan after a forecast change event (see
    /// [`PlanEngine::on_forecast_event`]).
    pub fn on_forecast_event(&mut self, event: &ForecastEvent) -> Option<ReplanReport> {
        self.engine.on_forecast_event(event)
    }

    /// Phase 3: disaggregate the live solution one level (back to the
    /// BRP macro offers) and address each assignment to its source BRP.
    /// Returns the envelopes plus the final schedule cost.
    pub fn commit_plan(&mut self, now: TimeSlot) -> Option<(Vec<Envelope>, f64)> {
        let (problem, solution, cost) = self.engine.commit()?;
        let mut out = Vec::new();
        // Batch the round's deletes so each touched group flushes once.
        let mut deletes = Vec::new();
        for macro_schedule in solution.to_schedules(&problem) {
            let agg_id = AggregateId(macro_schedule.offer_id.value());
            let members = match self.engine.pipeline().disaggregate(agg_id, &macro_schedule) {
                Ok(m) => m,
                Err(_) => continue,
            };
            for schedule in members {
                let Some(source_brp) = self.sources.remove(&schedule.offer_id) else {
                    continue;
                };
                deletes.push(FlexOfferUpdate::Delete(schedule.offer_id));
                out.push(Envelope::new(
                    self.id,
                    source_brp,
                    now,
                    Message::Assignment {
                        schedule,
                        discount_per_kwh: Price::ZERO,
                    },
                ));
            }
        }
        if !deletes.is_empty() {
            self.engine.apply_offer_updates(deletes);
        }
        // Commit markers: each assignment is appended replay-unsafe so
        // recovery re-applies its pool deletion ("this offer left the
        // pool here") without re-planning — the TSO's analogue of the
        // BRP's outbox-flush markers.
        if let Some(wal) = self.wal.as_mut() {
            for env in &out {
                wal.append(env, self.last_ingest_event, false, now);
            }
        }
        self.maybe_compact();
        Some((out, cost))
    }

    /// Window start of the live plan, if one is pending commitment.
    pub fn live_window(&self) -> Option<TimeSlot> {
        self.engine.live_window()
    }

    /// Attach a write-ahead log: from now on every inbound envelope is
    /// appended before it is applied, and committed assignments are
    /// appended as replay-unsafe markers.
    pub fn attach_wal(&mut self, wal: NodeWal) {
        self.wal = Some(wal);
    }

    /// The attached WAL, if any.
    pub fn wal(&self) -> Option<&NodeWal> {
        self.wal.as_ref()
    }

    /// Detach and return the WAL — the "disk" a simulated crash leaves
    /// behind for [`recover`](Self::recover).
    pub fn take_wal(&mut self) -> Option<NodeWal> {
        self.wal.take()
    }

    /// Encode the node's recoverable state for a WAL snapshot.
    fn snapshot(&self) -> TsoSnapshot {
        TsoSnapshot {
            pool: self
                .sources
                .iter()
                .filter_map(|(id, src)| {
                    self.engine.pipeline().offer(*id).map(|o| (o.clone(), *src))
                })
                .collect(),
            rx: self
                .rx
                .iter()
                .map(|(node, rx)| (*node, rx.export_state()))
                .collect(),
            applied: self.applied.iter().map(|(n, c)| (*n, *c)).collect(),
            provisional_adopted: self.provisional_adopted,
            provisional_superseded: self.provisional_superseded,
        }
    }

    /// Re-feed a decoded snapshot into a fresh node.
    fn restore_snapshot(&mut self, snap: TsoSnapshot) {
        let mut inserts = Vec::with_capacity(snap.pool.len());
        for (offer, src) in snap.pool {
            self.sources.insert(offer.id(), src);
            inserts.push(FlexOfferUpdate::Insert(offer));
        }
        if !inserts.is_empty() {
            self.engine.apply_offer_updates(inserts);
        }
        for (node, state) in snap.rx {
            self.rx.insert(node, SequencedRx::from_state(state));
        }
        self.applied = snap.applied.into_iter().collect();
        self.provisional_adopted = snap.provisional_adopted;
        self.provisional_superseded = snap.provisional_superseded;
    }

    /// Install a snapshot and truncate the log when the tail is long
    /// enough (see [`WalConfig::snapshot_every`]).
    fn maybe_compact(&mut self) {
        if self.wal.as_ref().is_some_and(NodeWal::wants_snapshot) {
            let bytes = self.snapshot().to_bytes();
            if let Some(wal) = self.wal.as_mut() {
                wal.install_snapshot(&bytes);
            }
        }
    }

    /// Rebuild a crashed TSO from the store its WAL left behind:
    /// restore the latest snapshot, replay the tail (ingests re-handle
    /// with their original clock; assignment markers re-apply their
    /// pool deletions), then re-anchor every known BRP through the
    /// resync path — the returned envelopes are one
    /// [`Message::ResyncRequest`] per BRP, asking each for the bounded
    /// state snapshot that heals whatever the crash window lost.
    #[allow(clippy::type_complexity)]
    pub fn recover(
        id: NodeId,
        aggregation: AggregationParams,
        cfg: RuntimeConfig,
        store: Box<dyn WalStore>,
        wal_config: WalConfig,
        now: TimeSlot,
    ) -> std::io::Result<(TsoNode, Vec<Envelope>)> {
        let (wal, snapshot, records) = NodeWal::recover(store, wal_config)?;
        let mut node = TsoNode::with_config(id, aggregation, cfg);
        if let Some(bytes) = snapshot {
            if let Ok(snap) = TsoSnapshot::from_bytes(&bytes) {
                node.restore_snapshot(snap);
            }
        }
        node.replaying = true;
        for rec in records {
            if rec.envelope.from == id {
                // Replay-unsafe commit marker: the offer left the pool
                // when this assignment was sent.
                if let Message::Assignment { schedule, .. } = &rec.envelope.message {
                    if node.sources.remove(&schedule.offer_id).is_some() {
                        node.engine
                            .apply_offer_updates(vec![FlexOfferUpdate::Delete(schedule.offer_id)]);
                    }
                }
            } else if rec.replay_safe && rec.envelope.to == id {
                // Replies regenerated during replay were already sent
                // (or lost) in the pre-crash timeline; drop them.
                let _ = node.dispatch(rec.envelope, rec.recorded_at);
            }
        }
        node.replaying = false;
        node.attach_wal(wal);
        let out = node
            .rx
            .keys()
            .map(|&brp| Envelope::new(id, brp, now, Message::ResyncRequest))
            .collect();
        Ok((node, out))
    }

    /// One-shot planning: [`prepare_plan`](Self::prepare_plan) followed
    /// immediately by [`commit_plan`](Self::commit_plan).
    pub fn plan(
        &mut self,
        now: TimeSlot,
        window_start: TimeSlot,
        baseline: Vec<f64>,
        prices: MarketPrices,
        penalties: Vec<f64>,
    ) -> Vec<Envelope> {
        self.prepare_plan(now, window_start, baseline, prices, penalties);
        self.commit_plan(now)
            .map(|(envelopes, _)| envelopes)
            .unwrap_or_default()
    }
}

/// The TSO's recoverable state, encoded into WAL snapshots: the pooled
/// macro offers with their source BRPs, the per-BRP sequenced-stream
/// guards (frozen via [`SequencedRx::export_state`]), the per-BRP
/// applied-flush counters behind heartbeat acks, and the reconciliation
/// audit counters.
#[derive(Debug, Clone, PartialEq)]
struct TsoSnapshot {
    pool: Vec<(FlexOffer, NodeId)>,
    rx: Vec<(NodeId, SequencedRxState)>,
    applied: Vec<(NodeId, u64)>,
    provisional_adopted: u64,
    provisional_superseded: u64,
}

impl Wire for TsoSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.pool.len() as u64);
        for (offer, src) in &self.pool {
            offer.encode(out);
            src.encode(out);
        }
        put_u64(out, self.rx.len() as u64);
        for (node, state) in &self.rx {
            node.encode(out);
            state.encode(out);
        }
        put_u64(out, self.applied.len() as u64);
        for (node, count) in &self.applied {
            node.encode(out);
            count.encode(out);
        }
        put_u64(out, self.provisional_adopted);
        put_u64(out, self.provisional_superseded);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let pool_len = take_u64(buf)? as usize;
        let mut pool = Vec::with_capacity(pool_len.min(1024));
        for _ in 0..pool_len {
            pool.push((FlexOffer::decode(buf)?, NodeId::decode(buf)?));
        }
        let rx_len = take_u64(buf)? as usize;
        let mut rx = Vec::with_capacity(rx_len.min(1024));
        for _ in 0..rx_len {
            rx.push((NodeId::decode(buf)?, SequencedRxState::decode(buf)?));
        }
        let applied_len = take_u64(buf)? as usize;
        let mut applied = Vec::with_capacity(applied_len.min(1024));
        for _ in 0..applied_len {
            applied.push((NodeId::decode(buf)?, u64::decode(buf)?));
        }
        Ok(TsoSnapshot {
            pool,
            rx,
            applied,
            provisional_adopted: take_u64(buf)?,
            provisional_superseded: take_u64(buf)?,
        })
    }
}

impl Node for TsoNode {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn handle(&mut self, envelope: Envelope, now: TimeSlot) -> Vec<Envelope> {
        TsoNode::handle(self, envelope, now)
    }
}

impl NodeRuntime for TsoNode {
    fn prepare_plan(
        &mut self,
        now: TimeSlot,
        window_start: TimeSlot,
        baseline: Vec<f64>,
        prices: MarketPrices,
        penalties: Vec<f64>,
    ) -> (Vec<Envelope>, PlanReport) {
        TsoNode::prepare_plan(self, now, window_start, baseline, prices, penalties)
    }

    fn on_forecast_event(&mut self, event: &ForecastEvent) -> Option<ReplanReport> {
        TsoNode::on_forecast_event(self, event)
    }

    fn commit_plan(&mut self, now: TimeSlot) -> Vec<Envelope> {
        TsoNode::commit_plan(self, now)
            .map(|(envelopes, _)| envelopes)
            .unwrap_or_default()
    }

    fn live_window(&self) -> Option<TimeSlot> {
        TsoNode::live_window(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{EnergyRange, Profile};

    fn macro_offer(id: u64, es: i64) -> FlexOffer {
        FlexOffer::builder(id, 1)
            .earliest_start(TimeSlot(es))
            .time_flexibility(8)
            .assignment_before(TimeSlot(es - 10))
            .profile(Profile::uniform(4, EnergyRange::new(5.0, 10.0).unwrap()))
            .build()
            .unwrap()
    }

    fn deltas_from(from: u64, updates: Vec<FlexOfferUpdate>) -> Envelope {
        Envelope::new(
            NodeId(from),
            NodeId(99),
            TimeSlot(0),
            Message::MacroOfferDeltas(updates),
        )
    }

    fn insert(tso: &mut TsoNode, from: u64, offer: FlexOffer) {
        tso.handle(
            deltas_from(from, vec![FlexOfferUpdate::Insert(offer)]),
            TimeSlot(0),
        );
    }

    #[test]
    fn pools_macro_offer_deltas_without_cloning() {
        let mut tso = TsoNode::new(NodeId(99), AggregationParams::p0(), 5_000);
        insert(&mut tso, 1, macro_offer(1_000_000_001, 120));
        assert_eq!(tso.pool_size(), 1);
        assert_eq!(tso.aggregate_count(), 1);
        assert_eq!(tso.source_of(FlexOfferId(1_000_000_001)), Some(NodeId(1)));
        // The value lives once, in the slab.
        assert!(tso.pooled_offer(FlexOfferId(1_000_000_001)).is_some());
        // Deletes shrink the pool; unknown deletes are tolerated no-ops.
        tso.handle(
            deltas_from(
                1,
                vec![
                    FlexOfferUpdate::Delete(FlexOfferId(1_000_000_001)),
                    FlexOfferUpdate::Delete(FlexOfferId(42)),
                ],
            ),
            TimeSlot(0),
        );
        assert_eq!(tso.pool_size(), 0);
        assert_eq!(tso.aggregate_count(), 0);
    }

    #[test]
    fn plan_sends_assignments_to_source_brps() {
        let mut tso = TsoNode::new(NodeId(99), AggregationParams::p0(), 5_000);
        insert(&mut tso, 1, macro_offer(1_000_000_001, 120));
        insert(&mut tso, 2, macro_offer(2_000_000_001, 120));
        let envelopes = tso.plan(
            TimeSlot(100),
            TimeSlot(96),
            vec![-5.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 1000.0),
            vec![0.2; 96],
        );
        assert_eq!(envelopes.len(), 2);
        let targets: Vec<u64> = envelopes.iter().map(|e| e.to.value()).collect();
        assert!(targets.contains(&1));
        assert!(targets.contains(&2));
        for e in &envelopes {
            assert!(matches!(e.message, Message::Assignment { .. }));
        }
        assert_eq!(tso.pool_size(), 0);
    }

    #[test]
    fn offers_outside_window_deferred() {
        let mut tso = TsoNode::new(NodeId(99), AggregationParams::p0(), 1_000);
        insert(&mut tso, 1, macro_offer(1_000_000_001, 500));
        let envelopes = tso.plan(
            TimeSlot(100),
            TimeSlot(96),
            vec![0.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 1000.0),
            vec![0.2; 96],
        );
        assert!(envelopes.is_empty());
        assert_eq!(tso.pool_size(), 1); // still pooled for a later window
    }

    #[test]
    fn delta_while_live_splices_into_plan() {
        let mut tso = TsoNode::new(NodeId(99), AggregationParams::p0(), 4_000);
        for i in 0..10u64 {
            insert(
                &mut tso,
                1 + i % 2,
                macro_offer(1_000_000_000 + i, 110 + i as i64),
            );
        }
        let (_, report) = tso.prepare_plan(
            TimeSlot(90),
            TimeSlot(96),
            vec![-4.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 1000.0),
            vec![0.2; 96],
        );
        assert_eq!(report.eligible_macro, 10);
        assert_eq!(tso.live_window(), Some(TimeSlot(96)));

        // A trickle of BRP deltas while the plan is live: one insert,
        // one delete. The live problem is spliced, not rebuilt.
        tso.handle(
            deltas_from(
                2,
                vec![
                    FlexOfferUpdate::Insert(macro_offer(2_000_000_777, 130)),
                    FlexOfferUpdate::Delete(FlexOfferId(1_000_000_003)),
                ],
            ),
            TimeSlot(91),
        );
        let fold = tso.last_offer_delta_report().expect("live plan folded");
        assert_eq!(fold.inserted, 1);
        assert_eq!(fold.removed, 1);
        assert!(fold.cost_after <= fold.cost_before);
        let problem = tso.live_problem().expect("still live");
        assert_eq!(problem.offers.len(), 10); // 10 - 1 + 1

        // Commit covers the spliced offer and skips the deleted one.
        let (envelopes, _) = tso.commit_plan(TimeSlot(92)).expect("live plan");
        assert_eq!(envelopes.len(), 10);
        assert_eq!(tso.pool_size(), 0);
        assert!(envelopes.iter().any(|e| e.to == NodeId(2)));
    }

    #[test]
    fn prepare_emits_heartbeats_with_applied_counts() {
        let mut tso = TsoNode::new(NodeId(99), AggregationParams::p0(), 2_000);
        insert(&mut tso, 1, macro_offer(1_000_000_001, 120));
        insert(&mut tso, 1, macro_offer(1_000_000_002, 121));
        insert(&mut tso, 2, macro_offer(2_000_000_001, 120));
        let (envelopes, _) = tso.prepare_plan(
            TimeSlot(90),
            TimeSlot(96),
            vec![-1.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 1000.0),
            vec![0.2; 96],
        );
        let mut beats: Vec<(u64, u64)> = envelopes
            .iter()
            .filter_map(|e| match e.message {
                Message::Heartbeat { seen } => Some((e.to.value(), seen)),
                _ => None,
            })
            .collect();
        beats.sort_unstable();
        assert_eq!(
            beats,
            vec![(1, 2), (2, 1)],
            "one beat per BRP, acked counts"
        );
    }

    #[test]
    fn provisional_report_adopts_pooled_and_supersedes_assigned() {
        let mut tso = TsoNode::new(NodeId(99), AggregationParams::p0(), 2_000);
        let pooled = macro_offer(1_000_000_001, 120);
        insert(&mut tso, 1, pooled.clone());
        // A provisional schedule for the pooled offer (adopt) and for an
        // offer the TSO never pooled / already decided (supersede).
        let adopt = mirabel_core::ScheduledFlexOffer::at_min(&pooled, TimeSlot(120));
        let supersede = mirabel_core::ScheduledFlexOffer::at_min(
            &macro_offer(1_000_000_777, 120),
            TimeSlot(120),
        );
        tso.handle(
            Envelope::new(
                NodeId(1),
                NodeId(99),
                TimeSlot(10),
                Message::ProvisionalReport {
                    window_start: TimeSlot(96),
                    assignments: vec![adopt, supersede],
                },
            ),
            TimeSlot(10),
        );
        assert_eq!(tso.provisional_audit(), (1, 1));
        assert_eq!(tso.pool_size(), 0, "adopted offer left the pool");
    }

    #[test]
    fn tso_recovers_from_wal_and_reanchors_brps() {
        use crate::wal::{NodeWal, WalConfig};
        let mut tso = TsoNode::new(NodeId(99), AggregationParams::p0(), 2_000);
        tso.attach_wal(NodeWal::in_memory(WalConfig { snapshot_every: 3 }));
        // Enough traffic to cross the snapshot threshold, plus a tail.
        for i in 0..5u64 {
            insert(&mut tso, 1 + i % 2, macro_offer(1_000_000_000 + i, 200));
        }
        let pooled_before = tso.pooled_ids();
        let applied_before = tso.applied.clone();
        assert!(tso.wal().unwrap().next_event_id() >= 5);

        // Crash: recover from the store the WAL leaves behind.
        let store = tso.take_wal().unwrap().into_store();
        let (recovered, out) = TsoNode::recover(
            NodeId(99),
            AggregationParams::p0(),
            RuntimeConfig {
                budget_evaluations: 2_000,
                ..RuntimeConfig::default()
            },
            store,
            WalConfig { snapshot_every: 3 },
            TimeSlot(50),
        )
        .unwrap();
        assert_eq!(recovered.pooled_ids(), pooled_before);
        assert_eq!(recovered.applied, applied_before);
        // Re-anchor: one ResyncRequest per known BRP.
        let mut targets: Vec<u64> = out.iter().map(|e| e.to.value()).collect();
        targets.sort_unstable();
        assert_eq!(targets, vec![1, 2]);
        assert!(out
            .iter()
            .all(|e| matches!(e.message, Message::ResyncRequest)));
    }

    #[test]
    fn tso_recovery_replays_commit_markers() {
        use crate::wal::{NodeWal, WalConfig};
        let mut tso = TsoNode::new(NodeId(99), AggregationParams::p0(), 5_000);
        tso.attach_wal(NodeWal::in_memory(WalConfig::default()));
        insert(&mut tso, 1, macro_offer(1_000_000_001, 120));
        insert(&mut tso, 2, macro_offer(2_000_000_001, 120));
        let envelopes = tso.plan(
            TimeSlot(100),
            TimeSlot(96),
            vec![-5.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 1000.0),
            vec![0.2; 96],
        );
        assert_eq!(envelopes.len(), 2);
        assert_eq!(tso.pool_size(), 0);
        let store = tso.take_wal().unwrap().into_store();
        let (recovered, _) = TsoNode::recover(
            NodeId(99),
            AggregationParams::p0(),
            RuntimeConfig {
                budget_evaluations: 5_000,
                ..RuntimeConfig::default()
            },
            store,
            WalConfig::default(),
            TimeSlot(101),
        )
        .unwrap();
        assert_eq!(
            recovered.pool_size(),
            0,
            "assigned offers must not resurrect on replay"
        );
    }

    #[test]
    fn ineligible_delta_pools_but_does_not_splice() {
        let mut tso = TsoNode::new(NodeId(99), AggregationParams::p0(), 2_000);
        insert(&mut tso, 1, macro_offer(1_000_000_001, 120));
        tso.prepare_plan(
            TimeSlot(90),
            TimeSlot(96),
            vec![-1.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 1000.0),
            vec![0.2; 96],
        );
        // Outside the live window: pooled for later, not spliced.
        insert(&mut tso, 1, macro_offer(1_000_000_002, 500));
        let fold = tso.last_offer_delta_report().expect("fold ran");
        assert_eq!(fold.inserted, 0);
        assert_eq!(tso.live_problem().unwrap().offers.len(), 1);
        assert_eq!(tso.pool_size(), 2);
        let (envelopes, _) = tso.commit_plan(TimeSlot(91)).unwrap();
        assert_eq!(envelopes.len(), 1);
        assert_eq!(tso.pool_size(), 1);
    }
}
