//! The level-3 TSO node: "the process is essentially repeated at a higher
//! level: the aggregated flex-offers are sent to a TSO's node for further
//! aggregation, scheduling, and disaggregation" (paper §2).
//!
//! The TSO runs the **same** prepare → replan → commit life-cycle as the
//! BRP, on the shared [`PlanEngine`]:
//!
//! * [`TsoNode::handle`] consumes the BRPs' macro-offer **delta**
//!   streams ([`Message::MacroOfferDeltas`]): inserts and deletes flow
//!   through the TSO's own aggregation pipeline, and — when a plan is
//!   live — are spliced into the live evaluator at O(changed) cost, so
//!   a trickle change at level 1 replans at level 3 as a trickle, never
//!   a problem reconstruction;
//! * [`TsoNode::prepare_plan`] schedules the window-eligible
//!   second-level aggregates and keeps the evaluator live;
//! * [`TsoNode::on_forecast_event`] rebases on a pub/sub forecast event
//!   exactly like a BRP (the TSO subscribes to the same hub);
//! * [`TsoNode::commit_plan`] disaggregates one level — back to the BRP
//!   macro offers — and sends each assignment to its source BRP.
//!
//! Pooled offers are stored **once**, in the pipeline's `OfferSlab`; the
//! TSO keeps only an id → source-BRP map ([`TsoNode::source_of`]) beside
//! it — no cloned `FlexOffer` pool.
//!
//! The resync path is also the **crash-recovery** path: a BRP rebuilt
//! from its write-ahead log (see [`crate::wal`]) announces itself with
//! an *unsolicited* [`Message::ResyncSnapshot`], and the TSO's
//! [`snapshot diff`](TsoNode::handle) plus per-stream
//! [`SequencedRx::resynced`] re-anchor its pooled view and the sequence
//! numbers in one round-trip — the TSO cannot tell a recovery from an
//! ordinary lost-delta resync.
//!
//! In a multi-region [`Federation`](crate::federation::Federation) the
//! TSO is also the **export boundary**: mid-cycle — after planning and
//! refinement, before the commit wave consumes the pool — the region
//! snapshots [`TsoNode::pooled_ids`] / [`TsoNode::pooled_offer`] as its
//! exportable surplus, and the federation's
//! [`ExchangeGateway`](crate::federation::ExchangeGateway) publishes
//! that snapshot to peer regions over the same delta + resync wire
//! contract the BRP → TSO link uses.

use crate::message::{Envelope, Message};
use crate::runtime::{
    Node, NodeRuntime, OfferDeltaReport, PlanEngine, PlanReport, ReplanReport, RuntimeConfig,
};
use crate::wire::{SequencedRx, StreamStats};
use mirabel_aggregate::{AggregationParams, AggregationPipeline, FlexOfferUpdate};
use mirabel_core::{AggregateId, FlexOffer, FlexOfferId, NodeId, Price, TimeSlot};
use mirabel_forecast::ForecastEvent;
use mirabel_schedule::{MarketPrices, SchedulingProblem, Solution};
use std::collections::{BTreeMap, BTreeSet};

/// The level-3 node.
#[derive(Debug)]
pub struct TsoNode {
    /// This node's id.
    pub id: NodeId,
    /// Source BRP per pooled macro offer. Offer *values* live exactly
    /// once, in the pipeline's slab — resolve them with
    /// [`pooled_offer`](Self::pooled_offer).
    sources: BTreeMap<FlexOfferId, NodeId>,
    /// The shared planning runtime: pipeline + live plan.
    engine: PlanEngine,
    /// Fold report of the last delta batch applied to a live plan.
    last_fold: Option<OfferDeltaReport>,
    /// One sequenced-stream guard per sending BRP: the delta wire is
    /// stateful, so inbound `MacroOfferDeltas` must apply exactly once
    /// and in order — gaps trigger a [`Message::ResyncRequest`].
    rx: BTreeMap<NodeId, SequencedRx>,
}

impl TsoNode {
    /// Create a TSO aggregating BRP macro offers with the given
    /// thresholds.
    pub fn new(id: NodeId, aggregation: AggregationParams, budget_evaluations: usize) -> TsoNode {
        TsoNode::with_config(
            id,
            aggregation,
            RuntimeConfig {
                budget_evaluations,
                ..RuntimeConfig::default()
            },
        )
    }

    /// Create a TSO with full control over the runtime knobs.
    pub fn with_config(id: NodeId, aggregation: AggregationParams, cfg: RuntimeConfig) -> TsoNode {
        TsoNode {
            id,
            sources: BTreeMap::new(),
            engine: PlanEngine::new(
                AggregationPipeline::new(aggregation, None),
                cfg,
                id.value().wrapping_mul(0x51ed_270b),
            ),
            last_fold: None,
            rx: BTreeMap::new(),
        }
    }

    /// Macro offers currently pooled.
    pub fn pool_size(&self) -> usize {
        self.sources.len()
    }

    /// Second-level aggregates currently maintained.
    pub fn aggregate_count(&self) -> usize {
        self.engine.pipeline().aggregate_count()
    }

    /// The BRP a pooled macro offer came from.
    pub fn source_of(&self, id: FlexOfferId) -> Option<NodeId> {
        self.sources.get(&id).copied()
    }

    /// Resolve a pooled macro offer against the pipeline's slab (the
    /// single store).
    pub fn pooled_offer(&self, id: FlexOfferId) -> Option<&FlexOffer> {
        self.engine.pipeline().offer(id)
    }

    /// The TSO's aggregation pipeline (read-only; diagnostics and
    /// equivalence tests).
    pub fn pipeline(&self) -> &AggregationPipeline {
        self.engine.pipeline()
    }

    /// Ids of the pooled macro offers, ascending.
    pub fn pooled_ids(&self) -> Vec<FlexOfferId> {
        self.sources.keys().copied().collect()
    }

    /// Fold report of the most recent delta batch that touched a live
    /// plan (how much incremental replanning it cost).
    pub fn last_offer_delta_report(&self) -> Option<&OfferDeltaReport> {
        self.last_fold.as_ref()
    }

    /// The live plan's problem, when one is pending commitment (the
    /// level-3 equivalence tests compare it against a from-scratch
    /// rebuild).
    pub fn live_problem(&self) -> Option<&SchedulingProblem> {
        self.engine.live_problem()
    }

    /// The live plan's current solution.
    pub fn live_solution(&self) -> Option<&Solution> {
        self.engine.live_solution()
    }

    /// The live plan's current total cost.
    pub fn live_cost(&self) -> Option<f64> {
        self.engine.live_cost()
    }

    /// Handle a message. `MacroOfferDeltas` run through the sender's
    /// sequenced-stream guard — duplicates drop, out-of-order batches
    /// buffer, a gap answers with a [`Message::ResyncRequest`] — and the
    /// deliverable batches update the pool *and* any live plan in
    /// O(changed). A [`Message::ResyncSnapshot`] is diffed against the
    /// pooled view of its sender and only the differences are spliced.
    pub fn handle(&mut self, envelope: Envelope, now: TimeSlot) -> Vec<Envelope> {
        match &envelope.message {
            Message::MacroOfferDeltas(_) => {
                let from = envelope.from;
                let (deliverable, request_resync) =
                    self.rx.entry(from).or_default().receive(envelope);
                for env in deliverable {
                    if let Message::MacroOfferDeltas(updates) = env.message {
                        self.apply_deltas(env.from, updates);
                    }
                }
                if request_resync {
                    return vec![Envelope::new(self.id, from, now, Message::ResyncRequest)];
                }
                Vec::new()
            }
            Message::ResyncSnapshot { .. } => {
                let from = envelope.from;
                let seq = envelope.seq;
                let Message::ResyncSnapshot { offers } = envelope.message else {
                    unreachable!("matched above");
                };
                // Splice only the differences: a snapshot that confirms
                // the pooled view must not disturb the live plan (or its
                // repair seed stream).
                let diff = self.snapshot_diff(from, &offers);
                if !diff.is_empty() {
                    self.apply_deltas(from, diff);
                }
                // Buffered deltas beyond the snapshot apply on top.
                let released = self.rx.entry(from).or_default().resynced(seq);
                for env in released {
                    if let Message::MacroOfferDeltas(updates) = env.message {
                        self.apply_deltas(env.from, updates);
                    }
                }
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    /// Apply one in-order batch of BRP deltas to the pool and any live
    /// plan.
    fn apply_deltas(&mut self, from: NodeId, updates: Vec<FlexOfferUpdate>) {
        let mut accepted = Vec::with_capacity(updates.len());
        for u in updates {
            match u {
                FlexOfferUpdate::Insert(offer) => {
                    self.sources.insert(offer.id(), from);
                    accepted.push(FlexOfferUpdate::Insert(offer));
                }
                FlexOfferUpdate::Delete(id) => {
                    // Deletes for offers this TSO already assigned
                    // (and dropped at commit) are expected no-ops.
                    if self.sources.remove(&id).is_some() {
                        accepted.push(FlexOfferUpdate::Delete(id));
                    }
                }
            }
        }
        // The report always describes the LAST batch: None when the
        // batch had no effect (all-unknown deletes) or no plan was
        // live to fold into.
        self.last_fold = if accepted.is_empty() {
            None
        } else {
            self.engine.apply_offer_updates(accepted).1
        };
    }

    /// The delta updates that would reconcile the pooled view of `from`
    /// with its snapshot: deletes for pooled offers the snapshot no
    /// longer carries, inserts for new or value-changed offers.
    fn snapshot_diff(&self, from: NodeId, offers: &[FlexOffer]) -> Vec<FlexOfferUpdate> {
        let snapshot_ids: BTreeSet<FlexOfferId> = offers.iter().map(|o| o.id()).collect();
        let mut diff: Vec<FlexOfferUpdate> = self
            .sources
            .iter()
            .filter(|(id, src)| **src == from && !snapshot_ids.contains(id))
            .map(|(id, _)| FlexOfferUpdate::Delete(*id))
            .collect();
        for o in offers {
            let unchanged = self.sources.get(&o.id()) == Some(&from)
                && self.engine.pipeline().offer(o.id()) == Some(o);
            if !unchanged {
                diff.push(FlexOfferUpdate::Insert(o.clone()));
            }
        }
        diff
    }

    /// Delivery counters of the sequenced delta stream from `brp`
    /// (zeros if it never sent).
    pub fn stream_stats(&self, brp: NodeId) -> StreamStats {
        self.rx
            .get(&brp)
            .map_or_else(StreamStats::default, |rx| rx.stats())
    }

    /// Drop pooled macro offers whose assignment deadline has passed —
    /// the same timeout rule every other level applies, and what makes
    /// the delta wire *self-healing*: a lost `Delete` leaves a ghost
    /// offer only until its deadline, never forever.
    fn expire(&mut self, now: TimeSlot) -> usize {
        let expired: Vec<FlexOfferId> = self
            .sources
            .keys()
            .filter(|id| {
                self.engine
                    .pipeline()
                    .offer(**id)
                    .is_some_and(|o| o.is_expired(now))
            })
            .copied()
            .collect();
        for id in &expired {
            self.sources.remove(id);
        }
        if !expired.is_empty() {
            self.engine.apply_offer_updates(
                expired
                    .iter()
                    .map(|id| FlexOfferUpdate::Delete(*id))
                    .collect(),
            );
        }
        expired.len()
    }

    /// Phase 1: schedule the pooled macro offers eligible for
    /// `[window_start, window_start+baseline.len())` and keep the result
    /// live. Assignments are produced by [`commit_plan`](Self::commit_plan).
    pub fn prepare_plan(
        &mut self,
        now: TimeSlot,
        window_start: TimeSlot,
        baseline: Vec<f64>,
        prices: MarketPrices,
        penalties: Vec<f64>,
    ) -> (Vec<Envelope>, PlanReport) {
        self.last_fold = None;
        // Stale live plan first: expiry deltas must not fold into it.
        self.engine.abandon();
        let expired = self.expire(now);
        let (eligible, cost) = self
            .engine
            .prepare(window_start, baseline, prices, penalties);
        let report = PlanReport {
            expired,
            eligible_macro: eligible,
            cost,
            ..PlanReport::default()
        };
        (Vec::new(), report)
    }

    /// Phase 2: incremental replan after a forecast change event (see
    /// [`PlanEngine::on_forecast_event`]).
    pub fn on_forecast_event(&mut self, event: &ForecastEvent) -> Option<ReplanReport> {
        self.engine.on_forecast_event(event)
    }

    /// Phase 3: disaggregate the live solution one level (back to the
    /// BRP macro offers) and address each assignment to its source BRP.
    /// Returns the envelopes plus the final schedule cost.
    pub fn commit_plan(&mut self, now: TimeSlot) -> Option<(Vec<Envelope>, f64)> {
        let (problem, solution, cost) = self.engine.commit()?;
        let mut out = Vec::new();
        // Batch the round's deletes so each touched group flushes once.
        let mut deletes = Vec::new();
        for macro_schedule in solution.to_schedules(&problem) {
            let agg_id = AggregateId(macro_schedule.offer_id.value());
            let members = match self.engine.pipeline().disaggregate(agg_id, &macro_schedule) {
                Ok(m) => m,
                Err(_) => continue,
            };
            for schedule in members {
                let Some(source_brp) = self.sources.remove(&schedule.offer_id) else {
                    continue;
                };
                deletes.push(FlexOfferUpdate::Delete(schedule.offer_id));
                out.push(Envelope::new(
                    self.id,
                    source_brp,
                    now,
                    Message::Assignment {
                        schedule,
                        discount_per_kwh: Price::ZERO,
                    },
                ));
            }
        }
        if !deletes.is_empty() {
            self.engine.apply_offer_updates(deletes);
        }
        Some((out, cost))
    }

    /// Window start of the live plan, if one is pending commitment.
    pub fn live_window(&self) -> Option<TimeSlot> {
        self.engine.live_window()
    }

    /// One-shot planning: [`prepare_plan`](Self::prepare_plan) followed
    /// immediately by [`commit_plan`](Self::commit_plan).
    pub fn plan(
        &mut self,
        now: TimeSlot,
        window_start: TimeSlot,
        baseline: Vec<f64>,
        prices: MarketPrices,
        penalties: Vec<f64>,
    ) -> Vec<Envelope> {
        self.prepare_plan(now, window_start, baseline, prices, penalties);
        self.commit_plan(now)
            .map(|(envelopes, _)| envelopes)
            .unwrap_or_default()
    }
}

impl Node for TsoNode {
    fn node_id(&self) -> NodeId {
        self.id
    }

    fn handle(&mut self, envelope: Envelope, now: TimeSlot) -> Vec<Envelope> {
        TsoNode::handle(self, envelope, now)
    }
}

impl NodeRuntime for TsoNode {
    fn prepare_plan(
        &mut self,
        now: TimeSlot,
        window_start: TimeSlot,
        baseline: Vec<f64>,
        prices: MarketPrices,
        penalties: Vec<f64>,
    ) -> (Vec<Envelope>, PlanReport) {
        TsoNode::prepare_plan(self, now, window_start, baseline, prices, penalties)
    }

    fn on_forecast_event(&mut self, event: &ForecastEvent) -> Option<ReplanReport> {
        TsoNode::on_forecast_event(self, event)
    }

    fn commit_plan(&mut self, now: TimeSlot) -> Vec<Envelope> {
        TsoNode::commit_plan(self, now)
            .map(|(envelopes, _)| envelopes)
            .unwrap_or_default()
    }

    fn live_window(&self) -> Option<TimeSlot> {
        TsoNode::live_window(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::{EnergyRange, Profile};

    fn macro_offer(id: u64, es: i64) -> FlexOffer {
        FlexOffer::builder(id, 1)
            .earliest_start(TimeSlot(es))
            .time_flexibility(8)
            .assignment_before(TimeSlot(es - 10))
            .profile(Profile::uniform(4, EnergyRange::new(5.0, 10.0).unwrap()))
            .build()
            .unwrap()
    }

    fn deltas_from(from: u64, updates: Vec<FlexOfferUpdate>) -> Envelope {
        Envelope::new(
            NodeId(from),
            NodeId(99),
            TimeSlot(0),
            Message::MacroOfferDeltas(updates),
        )
    }

    fn insert(tso: &mut TsoNode, from: u64, offer: FlexOffer) {
        tso.handle(
            deltas_from(from, vec![FlexOfferUpdate::Insert(offer)]),
            TimeSlot(0),
        );
    }

    #[test]
    fn pools_macro_offer_deltas_without_cloning() {
        let mut tso = TsoNode::new(NodeId(99), AggregationParams::p0(), 5_000);
        insert(&mut tso, 1, macro_offer(1_000_000_001, 120));
        assert_eq!(tso.pool_size(), 1);
        assert_eq!(tso.aggregate_count(), 1);
        assert_eq!(tso.source_of(FlexOfferId(1_000_000_001)), Some(NodeId(1)));
        // The value lives once, in the slab.
        assert!(tso.pooled_offer(FlexOfferId(1_000_000_001)).is_some());
        // Deletes shrink the pool; unknown deletes are tolerated no-ops.
        tso.handle(
            deltas_from(
                1,
                vec![
                    FlexOfferUpdate::Delete(FlexOfferId(1_000_000_001)),
                    FlexOfferUpdate::Delete(FlexOfferId(42)),
                ],
            ),
            TimeSlot(0),
        );
        assert_eq!(tso.pool_size(), 0);
        assert_eq!(tso.aggregate_count(), 0);
    }

    #[test]
    fn plan_sends_assignments_to_source_brps() {
        let mut tso = TsoNode::new(NodeId(99), AggregationParams::p0(), 5_000);
        insert(&mut tso, 1, macro_offer(1_000_000_001, 120));
        insert(&mut tso, 2, macro_offer(2_000_000_001, 120));
        let envelopes = tso.plan(
            TimeSlot(100),
            TimeSlot(96),
            vec![-5.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 1000.0),
            vec![0.2; 96],
        );
        assert_eq!(envelopes.len(), 2);
        let targets: Vec<u64> = envelopes.iter().map(|e| e.to.value()).collect();
        assert!(targets.contains(&1));
        assert!(targets.contains(&2));
        for e in &envelopes {
            assert!(matches!(e.message, Message::Assignment { .. }));
        }
        assert_eq!(tso.pool_size(), 0);
    }

    #[test]
    fn offers_outside_window_deferred() {
        let mut tso = TsoNode::new(NodeId(99), AggregationParams::p0(), 1_000);
        insert(&mut tso, 1, macro_offer(1_000_000_001, 500));
        let envelopes = tso.plan(
            TimeSlot(100),
            TimeSlot(96),
            vec![0.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 1000.0),
            vec![0.2; 96],
        );
        assert!(envelopes.is_empty());
        assert_eq!(tso.pool_size(), 1); // still pooled for a later window
    }

    #[test]
    fn delta_while_live_splices_into_plan() {
        let mut tso = TsoNode::new(NodeId(99), AggregationParams::p0(), 4_000);
        for i in 0..10u64 {
            insert(
                &mut tso,
                1 + i % 2,
                macro_offer(1_000_000_000 + i, 110 + i as i64),
            );
        }
        let (_, report) = tso.prepare_plan(
            TimeSlot(90),
            TimeSlot(96),
            vec![-4.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 1000.0),
            vec![0.2; 96],
        );
        assert_eq!(report.eligible_macro, 10);
        assert_eq!(tso.live_window(), Some(TimeSlot(96)));

        // A trickle of BRP deltas while the plan is live: one insert,
        // one delete. The live problem is spliced, not rebuilt.
        tso.handle(
            deltas_from(
                2,
                vec![
                    FlexOfferUpdate::Insert(macro_offer(2_000_000_777, 130)),
                    FlexOfferUpdate::Delete(FlexOfferId(1_000_000_003)),
                ],
            ),
            TimeSlot(91),
        );
        let fold = tso.last_offer_delta_report().expect("live plan folded");
        assert_eq!(fold.inserted, 1);
        assert_eq!(fold.removed, 1);
        assert!(fold.cost_after <= fold.cost_before);
        let problem = tso.live_problem().expect("still live");
        assert_eq!(problem.offers.len(), 10); // 10 - 1 + 1

        // Commit covers the spliced offer and skips the deleted one.
        let (envelopes, _) = tso.commit_plan(TimeSlot(92)).expect("live plan");
        assert_eq!(envelopes.len(), 10);
        assert_eq!(tso.pool_size(), 0);
        assert!(envelopes.iter().any(|e| e.to == NodeId(2)));
    }

    #[test]
    fn ineligible_delta_pools_but_does_not_splice() {
        let mut tso = TsoNode::new(NodeId(99), AggregationParams::p0(), 2_000);
        insert(&mut tso, 1, macro_offer(1_000_000_001, 120));
        tso.prepare_plan(
            TimeSlot(90),
            TimeSlot(96),
            vec![-1.0; 96],
            MarketPrices::flat(96, 0.08, 0.03, 1000.0),
            vec![0.2; 96],
        );
        // Outside the live window: pooled for later, not spliced.
        insert(&mut tso, 1, macro_offer(1_000_000_002, 500));
        let fold = tso.last_offer_delta_report().expect("fold ran");
        assert_eq!(fold.inserted, 0);
        assert_eq!(tso.live_problem().unwrap().offers.len(), 1);
        assert_eq!(tso.pool_size(), 2);
        let (envelopes, _) = tso.commit_plan(TimeSlot(91)).unwrap();
        assert_eq!(envelopes.len(), 1);
        assert_eq!(tso.pool_size(), 1);
    }
}
