//! Per-node write-ahead event log: append-before-apply durability for
//! the wire.
//!
//! The paper's EDMS "stores flex-offers, supply and demand measurements,
//! forecasts, etc." so that every actor level can recover and audit its
//! state. This module is that persistence substrate for the
//! reproduction: every envelope a node ingests (and every outbox flush
//! it emits) is encoded with the [`Wire`] codec, wrapped in an
//! [`EventRecord`] — `event_id`, `causation_id`, `replay_safe` — and
//! appended to a [`WalStore`] *before* the node mutates its in-memory
//! state. A crashed node then rebuilds bit-for-bit recoverable state by
//! restoring the latest snapshot and replaying the events appended
//! since (see `BrpNode::recover`), and re-anchors its sequenced streams
//! through the existing resync-snapshot path.
//!
//! Replay length is bounded by **snapshot-then-truncate compaction**:
//! every [`WalConfig::snapshot_every`] appended events the owning node
//! installs an encoded state snapshot and the store truncates the log,
//! so recovery cost is O(snapshot + tail), never O(lifetime).
//!
//! Two stores are provided: [`MemWalStore`] (deterministic simulations
//! and chaos campaigns) and [`FileWalStore`] (length- and
//! checksum-framed files on disk, tolerant of a torn tail write).

use crate::message::Envelope;
use mirabel_core::codec::{put_u64, take_u64, CodecError, Wire};
use mirabel_core::{NodeId, RegionId, TimeSlot};
use std::fs;
use std::io::{Read, Write as IoWrite};
use std::path::{Path, PathBuf};

/// Tuning knobs for a node's WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Install a snapshot (and truncate the log) after this many
    /// appended events — the bound on replay length.
    pub snapshot_every: usize,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            snapshot_every: 256,
        }
    }
}

/// One durable record: the event envelope around a wire envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Monotonic per-node event id (also the WAL position).
    pub event_id: u64,
    /// The ingested event that caused this one — e.g. an outbox flush
    /// caused by the round's planning — when the producer knows it.
    pub causation_id: Option<u64>,
    /// Whether recovery may replay this record through the node's
    /// message handler. Ingested envelopes are replay-safe; outbound
    /// flush markers are not (they replay as state transitions — "the
    /// outbox was emptied here" — instead of being re-handled).
    pub replay_safe: bool,
    /// The slot at which the node originally handled the envelope —
    /// replaying with the same clock keeps time-dependent decisions
    /// (acceptance, expiry) identical to the first execution.
    pub recorded_at: TimeSlot,
    /// The wire envelope.
    pub envelope: Envelope,
    /// Federation region the event belongs to (tenant-registry pattern:
    /// the tenant id rides the durable record, denormalized from
    /// [`Envelope::region`] so region-scoped audits and per-region WAL
    /// namespaces don't have to peel the envelope). Legacy
    /// (pre-federation) frames decode into [`RegionId::DEFAULT`].
    pub region: RegionId,
}

impl Wire for EventRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.event_id.encode(out);
        self.causation_id.encode(out);
        self.replay_safe.encode(out);
        self.recorded_at.encode(out);
        self.envelope.encode(out);
        // LAST, like `Envelope::region`: legacy frames end exactly after
        // the envelope, so the compat decoder can detect them by EOF.
        self.region.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(EventRecord {
            event_id: u64::decode(buf)?,
            causation_id: Option::<u64>::decode(buf)?,
            replay_safe: bool::decode(buf)?,
            recorded_at: TimeSlot::decode(buf)?,
            envelope: Envelope::decode(buf)?,
            region: RegionId::decode(buf)?,
        })
    }
}

impl EventRecord {
    /// Decode one WAL frame, accepting both the current layout and the
    /// pre-federation layout (no region fields anywhere).
    ///
    /// The compat logic leans on two codec guarantees: `from_bytes`
    /// demands *full* buffer consumption, and both region fields ride at
    /// the very end of their structs. A legacy frame therefore fails the
    /// modern decode deterministically (EOF exactly where the envelope's
    /// region varint would start) and is retried with the legacy layout,
    /// landing in [`RegionId::DEFAULT`]. A modern frame can never be
    /// misread as legacy because the modern decode is tried first.
    pub fn from_frame(frame: &[u8]) -> Result<EventRecord, CodecError> {
        match EventRecord::from_bytes(frame) {
            Ok(rec) => Ok(rec),
            Err(_) => {
                let mut buf = frame;
                let rec = EventRecord {
                    event_id: u64::decode(&mut buf)?,
                    causation_id: Option::<u64>::decode(&mut buf)?,
                    replay_safe: bool::decode(&mut buf)?,
                    recorded_at: TimeSlot::decode(&mut buf)?,
                    envelope: Envelope::decode_legacy(&mut buf)?,
                    region: RegionId::DEFAULT,
                };
                if buf.is_empty() {
                    Ok(rec)
                } else {
                    Err(CodecError::TrailingBytes(buf.len()))
                }
            }
        }
    }
}

/// What a [`WalStore`] reads back: the installed snapshot (if any)
/// plus the frames appended since it was installed.
pub type LoadedLog = (Option<Vec<u8>>, Vec<Vec<u8>>);

/// Pluggable storage behind a node's WAL.
///
/// A store holds at most one snapshot plus the frames appended since it
/// was installed. Frames are opaque byte strings (encoded
/// [`EventRecord`]s); the store only guarantees order and atomicity of
/// [`install_snapshot`](WalStore::install_snapshot) (which truncates
/// the frame log).
pub trait WalStore: std::fmt::Debug + Send {
    /// Append one encoded event frame after the current log tail.
    fn append(&mut self, frame: &[u8]) -> std::io::Result<()>;
    /// Replace the snapshot and truncate the appended frames.
    fn install_snapshot(&mut self, snapshot: &[u8]) -> std::io::Result<()>;
    /// Read back `(snapshot, frames appended since it)`.
    fn load(&mut self) -> std::io::Result<LoadedLog>;
}

/// In-memory store: deterministic, used by simulations and chaos
/// campaigns (the "disk" survives the node because the harness owns it).
#[derive(Debug, Default)]
pub struct MemWalStore {
    snapshot: Option<Vec<u8>>,
    frames: Vec<Vec<u8>>,
}

impl MemWalStore {
    /// An empty store.
    pub fn new() -> MemWalStore {
        MemWalStore::default()
    }

    /// Frames appended since the last snapshot.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Whether a snapshot is installed.
    pub fn has_snapshot(&self) -> bool {
        self.snapshot.is_some()
    }
}

impl WalStore for MemWalStore {
    fn append(&mut self, frame: &[u8]) -> std::io::Result<()> {
        self.frames.push(frame.to_vec());
        Ok(())
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) -> std::io::Result<()> {
        self.snapshot = Some(snapshot.to_vec());
        self.frames.clear();
        Ok(())
    }

    fn load(&mut self) -> std::io::Result<LoadedLog> {
        Ok((self.snapshot.clone(), self.frames.clone()))
    }
}

/// FNV-1a 32-bit checksum guarding each on-disk frame against torn or
/// bit-rotted writes.
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// File-backed store: `snapshot.bin` plus `wal.log` in one directory.
///
/// Log frames are `[len: u32 LE][fnv1a32: u32 LE][payload]`; a torn
/// tail (incomplete length, short payload, or checksum mismatch) ends
/// the replay at the last intact frame instead of failing recovery.
/// Snapshots are written to a temporary file and renamed into place, so
/// a crash mid-install leaves the previous snapshot readable.
#[derive(Debug)]
pub struct FileWalStore {
    dir: PathBuf,
    log: Option<fs::File>,
}

impl FileWalStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<FileWalStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(FileWalStore { dir, log: None })
    }

    /// Open a store in the federation's per-region WAL namespace:
    /// `root/region-<r>/node-<n>`. Every region owns a disjoint
    /// directory subtree, so region-scoped recovery, archival and
    /// deletion are directory operations that cannot touch a peer
    /// region's logs.
    pub fn open_namespaced(
        root: impl AsRef<Path>,
        region: RegionId,
        node: NodeId,
    ) -> std::io::Result<FileWalStore> {
        FileWalStore::open(
            root.as_ref()
                .join(format!("region-{}", region.value()))
                .join(format!("node-{}", node.value())),
        )
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.bin")
    }

    fn log_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    fn log_file(&mut self) -> std::io::Result<&mut fs::File> {
        if self.log.is_none() {
            self.log = Some(
                fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(self.log_path())?,
            );
        }
        Ok(self.log.as_mut().expect("just opened"))
    }

    fn parse_frames(bytes: &[u8]) -> Vec<Vec<u8>> {
        let mut frames = Vec::new();
        let mut at = 0usize;
        while bytes.len() - at >= 8 {
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
            let sum = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
            let start = at + 8;
            let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
                break; // torn tail: length runs past EOF
            };
            let payload = &bytes[start..end];
            if fnv1a32(payload) != sum {
                break; // torn or corrupt tail
            }
            frames.push(payload.to_vec());
            at = end;
        }
        frames
    }
}

impl WalStore for FileWalStore {
    fn append(&mut self, frame: &[u8]) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(frame.len() + 8);
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(&fnv1a32(frame).to_le_bytes());
        buf.extend_from_slice(frame);
        let file = self.log_file()?;
        file.write_all(&buf)?;
        file.flush()
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) -> std::io::Result<()> {
        let tmp = self.dir.join("snapshot.tmp");
        fs::write(&tmp, snapshot)?;
        fs::rename(&tmp, self.snapshot_path())?;
        // Truncate the log: everything below the snapshot is compacted.
        self.log = None;
        fs::write(self.log_path(), [])?;
        Ok(())
    }

    fn load(&mut self) -> std::io::Result<LoadedLog> {
        let snapshot = match fs::read(self.snapshot_path()) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let frames = match fs::File::open(self.log_path()) {
            Ok(mut f) => {
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes)?;
                FileWalStore::parse_frames(&bytes)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        Ok((snapshot, frames))
    }
}

/// A node's write-ahead log: event-id assignment, append-before-apply
/// framing, and snapshot-then-truncate compaction over a [`WalStore`].
///
/// The snapshot bytes a node hands to [`install_snapshot`] are opaque
/// here; `NodeWal` prefixes them with its own header (`next_event_id`)
/// so recovery resumes the event-id sequence exactly.
///
/// [`install_snapshot`]: NodeWal::install_snapshot
#[derive(Debug)]
pub struct NodeWal {
    store: Box<dyn WalStore>,
    config: WalConfig,
    next_event_id: u64,
    appended_since_snapshot: usize,
    /// Append/install failures swallowed so far (durability degrades to
    /// best-effort rather than crashing the node on a full disk).
    io_errors: u64,
}

impl NodeWal {
    /// A WAL over the given store.
    pub fn new(store: Box<dyn WalStore>, config: WalConfig) -> NodeWal {
        NodeWal {
            store,
            config,
            next_event_id: 0,
            appended_since_snapshot: 0,
            io_errors: 0,
        }
    }

    /// Convenience: a WAL over a fresh in-memory store.
    pub fn in_memory(config: WalConfig) -> NodeWal {
        NodeWal::new(Box::new(MemWalStore::new()), config)
    }

    /// Reopen a store after a crash: returns the WAL (event-id sequence
    /// resumed), the node snapshot installed last (if any), and the
    /// event records appended since it, in order. Undecodable tail
    /// records end the replay early rather than failing it.
    pub fn recover(
        mut store: Box<dyn WalStore>,
        config: WalConfig,
    ) -> std::io::Result<(NodeWal, Option<Vec<u8>>, Vec<EventRecord>)> {
        let (snapshot_bytes, frames) = store.load()?;
        let mut next_event_id = 0;
        let snapshot = match snapshot_bytes {
            Some(bytes) => {
                let mut buf = bytes.as_slice();
                match take_u64(&mut buf) {
                    Ok(id) => {
                        next_event_id = id;
                        Some(buf.to_vec())
                    }
                    Err(_) => None,
                }
            }
            None => None,
        };
        let mut records = Vec::with_capacity(frames.len());
        for frame in &frames {
            match EventRecord::from_frame(frame) {
                Ok(rec) => {
                    next_event_id = next_event_id.max(rec.event_id + 1);
                    records.push(rec);
                }
                Err(_) => break,
            }
        }
        let wal = NodeWal {
            store,
            config,
            next_event_id,
            appended_since_snapshot: records.len(),
            io_errors: 0,
        };
        Ok((wal, snapshot, records))
    }

    /// Append one event **before** the node applies it. Returns the
    /// assigned event id.
    pub fn append(
        &mut self,
        envelope: &Envelope,
        causation_id: Option<u64>,
        replay_safe: bool,
        recorded_at: TimeSlot,
    ) -> u64 {
        let event_id = self.next_event_id;
        self.next_event_id += 1;
        let record = EventRecord {
            event_id,
            causation_id,
            replay_safe,
            recorded_at,
            region: envelope.region,
            envelope: envelope.clone(),
        };
        if self.store.append(&record.to_bytes()).is_err() {
            self.io_errors += 1;
        }
        self.appended_since_snapshot += 1;
        event_id
    }

    /// Whether compaction is due (the owning node should encode its
    /// state and call [`install_snapshot`](Self::install_snapshot)).
    pub fn wants_snapshot(&self) -> bool {
        self.appended_since_snapshot >= self.config.snapshot_every
    }

    /// Install a node-state snapshot and truncate the log.
    pub fn install_snapshot(&mut self, state: &[u8]) {
        let mut bytes = Vec::with_capacity(state.len() + 10);
        put_u64(&mut bytes, self.next_event_id);
        bytes.extend_from_slice(state);
        if self.store.install_snapshot(&bytes).is_err() {
            self.io_errors += 1;
        } else {
            self.appended_since_snapshot = 0;
        }
    }

    /// Events appended since the last snapshot (the replay length a
    /// crash right now would incur).
    pub fn tail_len(&self) -> usize {
        self.appended_since_snapshot
    }

    /// The next event id this WAL will assign.
    pub fn next_event_id(&self) -> u64 {
        self.next_event_id
    }

    /// Append/install failures swallowed so far.
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// Tear down the WAL and return the underlying store — the "disk" a
    /// simulated crash leaves behind for [`NodeWal::recover`].
    pub fn into_store(self) -> Box<dyn WalStore> {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use mirabel_core::{FlexOfferId, NodeId};

    fn env(n: u64) -> Envelope {
        Envelope::new(
            NodeId(1),
            NodeId(2),
            TimeSlot(n as i64),
            Message::OfferRejected {
                offer: FlexOfferId(n),
            },
        )
        .with_seq(n)
    }

    #[test]
    fn event_record_roundtrip() {
        let rec = EventRecord {
            event_id: 42,
            causation_id: Some(7),
            replay_safe: true,
            recorded_at: TimeSlot(-3),
            envelope: env(9).in_region(RegionId(3)),
            region: RegionId(3),
        };
        let back = EventRecord::from_bytes(&rec.to_bytes()).unwrap();
        assert_eq!(back, rec);
        assert_eq!(EventRecord::from_frame(&rec.to_bytes()).unwrap(), rec);
    }

    #[test]
    fn legacy_frames_decode_into_default_region() {
        // Hand-build a pre-federation frame: every field of the modern
        // layout except the two trailing region varints.
        let modern = EventRecord {
            event_id: 5,
            causation_id: None,
            replay_safe: true,
            recorded_at: TimeSlot(2),
            envelope: env(5),
            region: RegionId::DEFAULT,
        };
        let bytes = modern.to_bytes();
        // Region 0 encodes as a single zero byte in each position;
        // stripping the record's and the envelope's gives the old frame.
        let legacy = &bytes[..bytes.len() - 2];
        assert!(
            EventRecord::from_bytes(legacy).is_err(),
            "modern decoder must reject the old layout"
        );
        let rec = EventRecord::from_frame(legacy).unwrap();
        assert_eq!(rec.region, RegionId::DEFAULT);
        assert_eq!(rec.envelope.region, RegionId::DEFAULT);
        assert_eq!(rec.event_id, 5);
        assert_eq!(rec.envelope, env(5));
    }

    #[test]
    fn recovery_replays_legacy_frames() {
        // A store written before the region field existed: frames are
        // modern encodings minus the two trailing region bytes.
        let mut store = MemWalStore::new();
        for n in 0..3u64 {
            let rec = EventRecord {
                event_id: n,
                causation_id: None,
                replay_safe: true,
                recorded_at: TimeSlot(n as i64),
                envelope: env(n),
                region: RegionId::DEFAULT,
            };
            let bytes = rec.to_bytes();
            store.append(&bytes[..bytes.len() - 2]).unwrap();
        }
        let (wal, snapshot, records) =
            NodeWal::recover(Box::new(store), WalConfig::default()).unwrap();
        assert!(snapshot.is_none());
        assert_eq!(records.len(), 3, "old frames replay under the new codec");
        assert!(records.iter().all(|r| r.region == RegionId::DEFAULT));
        assert_eq!(wal.next_event_id(), 3);
    }

    #[test]
    fn namespaced_stores_are_disjoint_per_region() {
        let root = std::env::temp_dir().join(format!(
            "mirabel-wal-ns-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&root);
        let mut a = FileWalStore::open_namespaced(&root, RegionId(0), NodeId(1)).unwrap();
        let mut b = FileWalStore::open_namespaced(&root, RegionId(1), NodeId(1)).unwrap();
        a.append(b"region-0-frame").unwrap();
        b.append(b"region-1-frame").unwrap();
        assert!(root
            .join("region-0")
            .join("node-1")
            .join("wal.log")
            .exists());
        assert!(root
            .join("region-1")
            .join("node-1")
            .join("wal.log")
            .exists());
        // Dropping one region's namespace leaves the peer untouched.
        fs::remove_dir_all(root.join("region-0")).unwrap();
        let (_, frames) = b.load().unwrap();
        assert_eq!(frames, vec![b"region-1-frame".to_vec()]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn mem_store_append_snapshot_truncate() {
        let mut wal = NodeWal::in_memory(WalConfig { snapshot_every: 3 });
        assert_eq!(wal.append(&env(0), None, true, TimeSlot(0)), 0);
        assert_eq!(wal.append(&env(1), Some(0), true, TimeSlot(0)), 1);
        assert!(!wal.wants_snapshot());
        wal.append(&env(2), None, true, TimeSlot(1));
        assert!(wal.wants_snapshot(), "cap reached");
        wal.install_snapshot(b"state-1");
        assert_eq!(wal.tail_len(), 0);
        wal.append(&env(3), None, true, TimeSlot(2));

        // "Crash": recover from the same store.
        let NodeWal { store, .. } = wal;
        let (wal2, snapshot, records) =
            NodeWal::recover(store, WalConfig { snapshot_every: 3 }).unwrap();
        assert_eq!(snapshot.as_deref(), Some(b"state-1".as_slice()));
        assert_eq!(records.len(), 1, "only the post-snapshot tail replays");
        assert_eq!(records[0].event_id, 3);
        assert_eq!(wal2.next_event_id(), 4, "event-id sequence resumes");
    }

    #[test]
    fn file_store_roundtrip_and_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "mirabel-wal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        {
            let store = Box::new(FileWalStore::open(&dir).unwrap());
            let mut wal = NodeWal::new(store, WalConfig::default());
            wal.append(&env(0), None, true, TimeSlot(0));
            wal.install_snapshot(b"snap");
            wal.append(&env(1), None, true, TimeSlot(1));
            wal.append(&env(2), Some(1), false, TimeSlot(1));
        }
        // Simulate a torn tail: append garbage half-frame bytes.
        {
            let mut f = fs::OpenOptions::new()
                .append(true)
                .open(dir.join("wal.log"))
                .unwrap();
            f.write_all(&[0xEE, 0xFF, 0x00, 0x00, 0x12]).unwrap();
        }
        let store = Box::new(FileWalStore::open(&dir).unwrap());
        let (wal, snapshot, records) = NodeWal::recover(store, WalConfig::default()).unwrap();
        assert_eq!(snapshot.as_deref(), Some(b"snap".as_slice()));
        assert_eq!(records.len(), 2, "intact frames survive the torn tail");
        assert_eq!(records[1].causation_id, Some(1));
        assert!(!records[1].replay_safe);
        assert_eq!(wal.next_event_id(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_install_survives_missing_log() {
        let dir = std::env::temp_dir().join(format!(
            "mirabel-wal-snap-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = Box::new(FileWalStore::open(&dir).unwrap());
        let mut wal = NodeWal::new(store, WalConfig::default());
        wal.install_snapshot(b"only-snapshot");
        let store = Box::new(FileWalStore::open(&dir).unwrap());
        let (_, snapshot, records) = NodeWal::recover(store, WalConfig::default()).unwrap();
        assert_eq!(snapshot.as_deref(), Some(b"only-snapshot".as_slice()));
        assert!(records.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
