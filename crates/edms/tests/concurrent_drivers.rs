//! The concurrent-driver determinism suite.
//!
//! `simulate()` drives every node of a hierarchy level concurrently on
//! the shared [`Pool`] (PR 7's parallel level pump). The contract is the
//! workspace-wide one: **pool width never changes output** — a width-8
//! run must be bit-identical to the width-1 (serial) run, plan
//! signatures included, with chaos raging or not. This suite pins that
//! at widths 1/2/8, proves the chaos-convergence invariants of the
//! campaign harness survive concurrent drivers, and asserts the pump
//! dispatches real pool batches with zero inline-serial fallbacks (the
//! silent serialization that motivated the submission-queue executor).

use mirabel_core::exec::Pool;
use mirabel_core::NodeId;
use mirabel_edms::chaos::{
    delay_burst, loss_storm, partition_between, run_campaign, CampaignConfig,
};
use mirabel_edms::{simulate, ChaosPlan, FailureModel, SimulationConfig};

const TSO: NodeId = NodeId(9_999);
const BRP0: NodeId = NodeId(1);

/// A hierarchy busy enough that every wave has multi-node levels,
/// refinement replans, message delays, and churn — the paths the
/// parallel pump must not perturb.
fn busy_three_level(width: usize) -> SimulationConfig {
    SimulationConfig {
        brps: 4,
        prosumers_per_brp: 6,
        cycles: 4,
        offers_per_prosumer: 2,
        use_tso: true,
        failure: FailureModel::delay(2),
        churn_fraction: 0.10,
        budget_evaluations: 3_000,
        seed: 7_007,
        pool: Pool::new(width),
        ..SimulationConfig::default()
    }
}

#[test]
fn plan_signatures_bit_identical_at_widths_1_2_8() {
    let serial = simulate(busy_three_level(1));
    assert!(serial.assigned > 0, "baseline assigned nothing: {serial:?}");
    assert!(!serial.plan_signatures.is_empty());
    for width in [2, 8] {
        let concurrent = simulate(busy_three_level(width));
        assert_eq!(
            serial.plan_signatures, concurrent.plan_signatures,
            "plan signatures diverged at pool width {width}"
        );
        assert_eq!(
            serial, concurrent,
            "simulation report diverged at pool width {width}"
        );
    }
}

#[test]
fn two_level_mode_is_width_independent_too() {
    // No TSO: the BRP level carries the live plans and the commit wave,
    // so the parallel pump drives level 2 end to end.
    let mk = |width| {
        simulate(SimulationConfig {
            brps: 3,
            prosumers_per_brp: 5,
            cycles: 3,
            seed: 99,
            pool: Pool::new(width),
            ..SimulationConfig::default()
        })
    };
    let serial = mk(1);
    assert_eq!(serial, mk(2));
    assert_eq!(serial, mk(8));
}

#[test]
fn chaos_campaign_converges_under_concurrent_drivers() {
    // The PR 6 flagship invariants — offer conservation, no phantom
    // offers, no energy violations, quiet-tail signatures equal to the
    // no-chaos twin — must hold with every level driven concurrently,
    // and the whole campaign report must match the serial run's.
    let campaign = |width| CampaignConfig {
        sim: SimulationConfig {
            brps: 3,
            prosumers_per_brp: 4,
            cycles: 8,
            offers_per_prosumer: 2,
            use_tso: true,
            budget_evaluations: 3_000,
            seed: 2_026,
            churn_fraction: 0.10,
            chaos: ChaosPlan::reliable()
                .phase(loss_storm(1, 2, 0.35))
                .phase(delay_burst(2, 3, 2, 3))
                .phase(partition_between(3, 4, BRP0, TSO)),
            pool: Pool::new(width),
            ..SimulationConfig::default()
        },
        quiet_cycles: 4,
    };
    let concurrent = run_campaign(&campaign(4));
    assert!(
        concurrent.converged(),
        "campaign did not self-heal under concurrent drivers:\n{}",
        concurrent.summary()
    );
    assert!(
        concurrent.chaos.network.dropped > 0,
        "storm dropped nothing"
    );

    let serial = run_campaign(&campaign(1));
    assert_eq!(
        serial.chaos, concurrent.chaos,
        "chaos run diverged between serial and concurrent drivers"
    );
    assert_eq!(serial.baseline, concurrent.baseline);
    assert_eq!(serial.violations, concurrent.violations);
}

#[test]
fn concurrent_pump_dispatches_without_inline_fallbacks() {
    // The executor's queue replaced the run-lock whose busy path silently
    // serialized concurrent calls. A full simulation must dispatch real
    // batches (level pumps, prosumer chunks, nested repair chains) and
    // record zero inline-serial fallbacks.
    let pool = Pool::new(8);
    let report = simulate(SimulationConfig {
        pool: pool.clone(),
        ..busy_three_level(8)
    });
    assert!(report.assigned > 0);
    let stats = pool.stats();
    assert!(
        stats.batches_run > 0,
        "the pump dispatched no pool batches: {stats:?}"
    );
    assert!(stats.batch_tasks >= stats.batches_run);
    assert_eq!(
        stats.inline_serial_fallbacks, 0,
        "concurrent drivers fell back to inline-serial: {stats:?}"
    );
}

/// EU-scale smoke (`--ignored`; run in release): one full planning round
/// over a million prosumers — 8 BRPs × 125k — through the concurrent
/// level pump on the global (core-sized) pool. Correctness probes only;
/// throughput numbers come from the bench crate's `BENCH_throughput`
/// emitter.
#[test]
#[ignore = "release-scale: ~1M prosumers, run with --ignored"]
fn million_prosumer_round_survives_concurrent_drivers() {
    let report = simulate(SimulationConfig {
        brps: 8,
        prosumers_per_brp: 125_000,
        cycles: 1,
        offers_per_prosumer: 1,
        use_tso: true,
        budget_evaluations: 2_000,
        refine_fraction: 0.05,
        seed: 1_000_000,
        pool: Pool::global().clone(),
        ..SimulationConfig::default()
    });
    assert_eq!(report.offers_submitted, 1_000_000);
    assert_eq!(
        report.assigned + report.fallbacks,
        report.offers_submitted,
        "offer conservation broke at scale"
    );
    assert!(report.assigned > 0, "nothing assigned at scale");
    assert_eq!(report.energy_violations, 0);
    assert_eq!(report.phantom_offers, 0);
    assert!(report.imbalance_after <= report.imbalance_before);
}
