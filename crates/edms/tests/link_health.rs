//! Property tests for the failure-detection half of the degraded-mode
//! loop: [`LinkHealth`]'s slot-clocked `Up → Suspect → Down →
//! Recovering` machine and [`RetransmitTracker`]'s bounded exponential
//! backoff.
//!
//! The properties mirror what the chaos campaigns rely on: detection
//! latency is bounded by `down_after` plus one tick interval, every
//! transition sequence is legal under *any* random drop/partition/heal
//! schedule, and the whole machine is a pure function of its input
//! schedule — the determinism that keeps islanded campaign reports
//! bit-identical across worker-pool widths.

use mirabel_core::TimeSlot;
use mirabel_edms::{LinkHealth, LinkHealthConfig, LinkState, RetransmitTracker};
use proptest::prelude::*;

/// A random but valid pair of horizons (`down_after >= suspect_after`).
fn horizons() -> impl Strategy<Value = LinkHealthConfig> {
    (1i64..100, 0i64..100).prop_map(|(suspect, extra)| LinkHealthConfig {
        suspect_after: suspect,
        down_after: suspect + extra,
        retransmit_base: 8,
        max_retransmits: 3,
    })
}

/// One event of a random link schedule, with a time gap before it.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Peer traffic arrives (`heard`).
    Traffic,
    /// A heartbeat arrives (`heard_heartbeat`).
    Heartbeat,
    /// The owner polls the detector (`tick`).
    Tick,
}

fn schedule() -> impl Strategy<Value = Vec<(i64, Event)>> {
    proptest::collection::vec(
        (
            0i64..60,
            (0u8..3).prop_map(|k| match k {
                0 => Event::Traffic,
                1 => Event::Heartbeat,
                _ => Event::Tick,
            }),
        ),
        1..80,
    )
}

/// Replay a schedule against a fresh detector, returning the state
/// observed after every event.
fn replay(config: LinkHealthConfig, schedule: &[(i64, Event)]) -> Vec<(LinkState, u64, u64, u64)> {
    let mut health = LinkHealth::new(config);
    let mut now = 0i64;
    let mut trace = Vec::with_capacity(schedule.len());
    for &(gap, event) in schedule {
        now += gap;
        match event {
            Event::Traffic => health.heard(TimeSlot(now)),
            Event::Heartbeat => health.heard_heartbeat(TimeSlot(now)),
            Event::Tick => {
                health.tick(TimeSlot(now));
            }
        }
        let s = health.stats();
        trace.push((health.state(), s.suspects, s.downs, s.recoveries));
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// After the last peer traffic, a detector polled every `interval`
    /// slots reports `Down` within `down_after + interval` — the
    /// detection-latency bound the islanding path is built on.
    #[test]
    fn prop_detection_latency_is_bounded(
        config in horizons(),
        interval in 1i64..50,
        last_heard in 0i64..500,
    ) {
        let mut health = LinkHealth::new(config);
        health.heard(TimeSlot(last_heard));
        let mut t = last_heard;
        let detected_at = loop {
            t += interval;
            if health.tick(TimeSlot(t)) == LinkState::Down {
                break t;
            }
            prop_assert!(
                t - last_heard < config.down_after + interval,
                "no Down after {} slots of silence (down_after {})",
                t - last_heard,
                config.down_after
            );
        };
        prop_assert!(detected_at - last_heard >= config.down_after);
        prop_assert!(detected_at - last_heard < config.down_after + interval);
        prop_assert_eq!(health.stats().downs, 1);
    }

    /// Any random interleaving of traffic, heartbeats and polls produces
    /// only legal transitions (no `Down → Up` shortcut past the
    /// reconciliation handshake, no re-suspecting a `Recovering` link)
    /// and monotone counters.
    #[test]
    fn prop_random_schedules_produce_legal_transitions(
        config in horizons(),
        schedule in schedule(),
    ) {
        let trace = replay(config, &schedule);
        let mut prev = (LinkState::Up, 0u64, 0u64, 0u64);
        for &step in &trace {
            let (state, suspects, downs, recoveries) = step;
            let (prev_state, ps, pd, pr) = prev;
            let legal = match (prev_state, state) {
                // Self-loops are always fine.
                (a, b) if a == b => true,
                (LinkState::Up, LinkState::Suspect | LinkState::Down) => true,
                (LinkState::Suspect, LinkState::Up | LinkState::Down) => true,
                (LinkState::Down, LinkState::Recovering) => true,
                (LinkState::Recovering, LinkState::Up | LinkState::Down) => true,
                _ => false,
            };
            prop_assert!(legal, "illegal transition {prev_state:?} -> {state:?}");
            prop_assert!(suspects >= ps && downs >= pd && recoveries >= pr);
            prev = step;
        }
        let heartbeats = schedule
            .iter()
            .filter(|(_, e)| matches!(e, Event::Heartbeat))
            .count() as u64;
        let mut health = LinkHealth::new(config);
        let mut now = 0;
        for &(gap, event) in &schedule {
            now += gap;
            match event {
                Event::Traffic => health.heard(TimeSlot(now)),
                Event::Heartbeat => health.heard_heartbeat(TimeSlot(now)),
                Event::Tick => { health.tick(TimeSlot(now)); }
            }
        }
        prop_assert_eq!(health.stats().heartbeats_seen, heartbeats);
    }

    /// A drop/partition/heal cycle behaves as the campaigns assume:
    /// steady traffic keeps the link `Up`, a partition longer than
    /// `down_after` drives it `Down`, the first post-heal traffic only
    /// reaches `Recovering`, and fresh steady traffic completes exactly
    /// one recovery back to `Up`.
    #[test]
    fn prop_partition_then_heal_recovers(
        config in horizons(),
        interval in 1i64..40,
        steady in 2usize..20,
    ) {
        let mut health = LinkHealth::new(config);
        let mut now = 0i64;
        // Steady phase: traffic then poll every interval — never worse
        // than Up, because each poll sees zero silence.
        for _ in 0..steady {
            health.heard(TimeSlot(now));
            prop_assert_eq!(health.tick(TimeSlot(now)), LinkState::Up);
            now += interval;
        }
        // Partition: polls continue, traffic stops, for long enough that
        // the silence horizon must trip.
        let silence_start = now - interval;
        while now - silence_start < config.down_after + interval {
            health.tick(TimeSlot(now));
            now += interval;
        }
        prop_assert_eq!(health.state(), LinkState::Down);
        // Heal: the first traffic only earns Recovering…
        health.heard(TimeSlot(now));
        prop_assert_eq!(health.state(), LinkState::Recovering);
        // …and a poll with fresh traffic confirms the heal.
        prop_assert_eq!(health.tick(TimeSlot(now)), LinkState::Up);
        prop_assert_eq!(health.stats().downs, 1);
        prop_assert_eq!(health.stats().recoveries, 1);
    }

    /// The detector is a pure function of its schedule: two instances
    /// replaying the same random schedule agree on state and counters at
    /// every step. This is the property that keeps islanded chaos
    /// reports bit-identical at any worker-pool width.
    #[test]
    fn prop_detector_is_deterministic(
        config in horizons(),
        schedule in schedule(),
    ) {
        prop_assert_eq!(replay(config, &schedule), replay(config, &schedule));
    }

    /// With an unacked frontier and no acks, the tracker fires exactly
    /// `max_retransmits` times under exponential backoff — attempt `n`
    /// waits at least `retransmit_base << n` — then stays quiet forever.
    /// A full ack clears the frontier immediately.
    #[test]
    fn prop_retransmit_backoff_is_bounded(
        base in 1i64..64,
        budget in 0u32..6,
        flushes in 1u64..5,
    ) {
        let config = LinkHealthConfig {
            suspect_after: 1,
            down_after: 1,
            retransmit_base: base,
            max_retransmits: budget,
        };
        let mut tracker = RetransmitTracker::default();
        for _ in 0..flushes {
            tracker.on_flush(TimeSlot(0));
        }
        prop_assert_eq!(tracker.flushes_sent(), flushes);
        prop_assert_eq!(tracker.unacked(), flushes);

        let horizon = base.saturating_mul(1 << (budget + 2));
        let mut fired_at = Vec::new();
        for now in 0..=horizon {
            if tracker.should_retransmit(TimeSlot(now), &config) {
                fired_at.push(now);
            }
        }
        prop_assert_eq!(fired_at.len(), budget as usize);
        for (n, pair) in fired_at.windows(2).enumerate() {
            prop_assert!(
                pair[1] - pair[0] >= base << (n + 1),
                "attempt {} gap {} under backoff {}",
                n + 1,
                pair[1] - pair[0],
                base << (n + 1)
            );
        }

        // A partial ack leaves the frontier pending; a full ack clears
        // it and silences the tracker for good.
        prop_assert!(!tracker.on_ack(flushes - 1));
        prop_assert!(tracker.on_ack(flushes));
        prop_assert_eq!(tracker.unacked(), 0);
        prop_assert!(!tracker.should_retransmit(TimeSlot(horizon * 2 + 1), &config));
    }
}
