//! Chaos campaigns through the full three-level hierarchy.
//!
//! The flagship robustness test: scripted storms (≥30% loss, delay
//! bursts, BRP↔TSO partition-then-heal, 10% prosumer churn) driven
//! through [`simulate`] must leave **no trace** — zero invariant
//! violations and, after a quiet period, plan signatures bit-identical
//! to a twin run that never saw the storm. Plus property tests over
//! random chaos plans and a pool-width determinism check.

use mirabel_core::exec::Pool;
use mirabel_core::{EnergyRange, FlexOffer, NodeId, Profile, TimeSlot};
use mirabel_edms::chaos::{
    crash_of, delay_burst, loss_storm, partition_between, run_campaign, CampaignConfig,
};
use mirabel_edms::{
    simulate, BrpConfig, BrpNode, ChaosPlan, Envelope, FailureModel, LinkHealthConfig, Message,
    NodeWal, SimulationConfig, WalConfig,
};
use proptest::prelude::*;

/// The simulation's fixed node ids: BRP `b` is `NodeId(1 + b)`, the TSO
/// is `NodeId(9_999)`.
const TSO: NodeId = NodeId(9_999);
const BRP0: NodeId = NodeId(1);

fn three_level(cycles: usize, seed: u64) -> SimulationConfig {
    SimulationConfig {
        brps: 3,
        prosumers_per_brp: 4,
        cycles,
        offers_per_prosumer: 2,
        use_tso: true,
        budget_evaluations: 3_000,
        seed,
        ..SimulationConfig::default()
    }
}

/// The acceptance scenario: a 35% loss storm, a delay/reorder burst, a
/// BRP↔TSO partition that heals, and 10% join/leave churn throughout —
/// followed by a quiet tail that must be bit-identical to the no-chaos
/// twin.
#[test]
fn scripted_campaign_self_heals_bit_identically() {
    let plan = ChaosPlan::reliable()
        .phase(loss_storm(1, 2, 0.35))
        .phase(delay_burst(2, 3, 2, 3))
        .phase(partition_between(3, 4, BRP0, TSO));
    let report = run_campaign(&CampaignConfig {
        sim: SimulationConfig {
            chaos: plan,
            churn_fraction: 0.10,
            ..three_level(8, 2024)
        },
        quiet_cycles: 4,
    });

    // The storm must actually have raged…
    let n = report.chaos.network;
    assert!(
        n.dropped > 0,
        "loss storm dropped nothing:\n{}",
        report.summary()
    );
    assert!(n.dead_lettered > 0, "partition/churn dead-lettered nothing");
    assert!(n.replayed > 0, "healing replayed nothing");

    // …and still be erased completely.
    assert!(
        report.converged(),
        "campaign did not self-heal:\n{}",
        report.summary()
    );
}

/// The durability acceptance scenario: two different BRPs crash-restart
/// mid-campaign (one of them during a loss storm), losing every byte of
/// in-memory state. Each rebuilds from its write-ahead log — snapshot +
/// tail replay, with `snapshot_every: 8` forcing real compaction mid-run
/// — re-registers (dead letters replay), and re-anchors the TSO through
/// an unsolicited resync snapshot. The quiet tail must be bit-identical
/// to the twin that never crashed.
#[test]
fn crash_campaign_recovers_bit_identically() {
    let plan = ChaosPlan::reliable()
        .phase(loss_storm(1, 2, 0.3))
        .phase(crash_of(2, BRP0))
        .phase(crash_of(3, NodeId(2)));
    let report = run_campaign(&CampaignConfig {
        sim: SimulationConfig {
            chaos: plan,
            churn_fraction: 0.10,
            wal: Some(WalConfig { snapshot_every: 8 }),
            ..three_level(7, 99)
        },
        quiet_cycles: 3,
    });
    assert_eq!(report.chaos.crashes, 2, "both crashes must fire");
    assert_eq!(report.baseline.crashes, 0, "the twin never crashes");
    assert!(
        report.chaos.network.replayed > 0,
        "re-registration replayed nothing:\n{}",
        report.summary()
    );
    assert!(
        report.converged(),
        "crash recovery left a trace:\n{}",
        report.summary()
    );
}

/// Duplicate delivery is filtered at every level (sequenced wire at the
/// TSO, dedup guard at the BRPs, idempotent prosumer transitions): a
/// heavily-duplicating network produces the exact plans of a reliable
/// one.
#[test]
fn duplication_is_invisible_to_outcomes() {
    let seed = 77;
    let noisy = simulate(SimulationConfig {
        failure: FailureModel::reliable().duplicated(0.5),
        ..three_level(4, seed)
    });
    let clean = simulate(three_level(4, seed));

    assert!(
        noisy.network.duplicated > 0,
        "nothing duplicated: {noisy:?}"
    );
    assert_eq!(noisy.plan_signatures, clean.plan_signatures);
    assert_eq!(noisy.assigned, clean.assigned);
    assert_eq!(noisy.fallbacks, clean.fallbacks);
    assert_eq!(noisy.assigned + noisy.fallbacks, noisy.offers_submitted);
    assert_eq!(noisy.phantom_offers, 0);
    assert_eq!(noisy.energy_violations, 0);
}

/// The same chaos seed must produce bit-identical campaign reports at
/// any worker-pool width — chaos recovery is deterministic, not merely
/// eventually consistent.
#[test]
fn chaos_campaign_deterministic_across_pool_widths() {
    let campaign = |pool: Pool| {
        run_campaign(&CampaignConfig {
            sim: SimulationConfig {
                chaos: ChaosPlan::reliable()
                    .phase(loss_storm(1, 2, 0.4))
                    .phase(partition_between(2, 3, BRP0, TSO)),
                churn_fraction: 0.10,
                pool,
                ..three_level(6, 1312)
            },
            quiet_cycles: 3,
        })
    };
    let narrow = campaign(Pool::new(1));
    let wide = campaign(Pool::new(8));
    assert_eq!(narrow, wide);
    assert!(narrow.converged(), "{}", narrow.summary());
}

/// Detector horizons that trip inside a two-cycle BRP↔TSO partition;
/// retransmits pushed beyond the run so the islanding path is isolated.
fn tight_link_health() -> LinkHealthConfig {
    LinkHealthConfig {
        suspect_after: 100,
        down_after: 150,
        retransmit_base: 10_000,
        max_retransmits: 0,
    }
}

/// The islanded-mode degraded loop — partition-driven islanding with
/// provisional local balancing, heal-time reconciliation, and a
/// WAL-backed TSO crash-restart — must be bit-identical at any worker
/// pool width, at the full campaign-report level (islanded rounds,
/// adopt/supersede audit counts, plan signatures, everything).
#[test]
fn islanding_campaign_deterministic_across_pool_widths() {
    let campaign = |pool: Pool| {
        run_campaign(&CampaignConfig {
            sim: SimulationConfig {
                chaos: ChaosPlan::reliable()
                    .phase(partition_between(1, 3, BRP0, TSO))
                    .phase(crash_of(4, TSO)),
                wal: Some(WalConfig { snapshot_every: 16 }),
                link_health: tight_link_health(),
                pool,
                ..three_level(8, 512)
            },
            quiet_cycles: 3,
        })
    };
    let narrow = campaign(Pool::new(1));
    let dual = campaign(Pool::new(2));
    let wide = campaign(Pool::new(8));
    assert!(
        !narrow.chaos.islanded.is_empty(),
        "the partition must island BRP 1:\n{}",
        narrow.summary()
    );
    assert_eq!(narrow.chaos.crashes, 1, "the TSO crash must fire");
    assert_eq!(narrow, dual);
    assert_eq!(narrow, wide);
    assert!(narrow.converged(), "{}", narrow.summary());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any random chaos plan confined to the first half of the run —
    /// loss up to 50%, delays, jitter, duplication, an optional BRP↔TSO
    /// partition, up to 15% churn — self-heals: conservation holds,
    /// no phantom offers, no energy violations, and the quiet tail is
    /// bit-identical to the no-chaos twin.
    #[test]
    fn random_chaos_plans_self_heal(
        seed in 0u64..1_000,
        drop_p in 0.0f64..0.5,
        delay in 0u32..3,
        jitter in 0u32..4,
        dup_p in 0.0f64..0.3,
        churn in 0.0f64..0.15,
        partition in any::<bool>(),
    ) {
        let failure = FailureModel::drop(drop_p)
            .delayed_by(delay)
            .jittered_by(jitter)
            .duplicated(dup_p);
        let mut plan = ChaosPlan::reliable()
            .phase(loss_storm(0, 1, drop_p))
            .phase(mirabel_edms::ChaosPhase::new(
                mirabel_edms::chaos::cycle_span(1, 2).0,
                mirabel_edms::chaos::cycle_span(1, 2).1,
                failure,
            ));
        if partition {
            plan = plan.phase(partition_between(2, 3, BRP0, TSO));
        }
        let report = run_campaign(&CampaignConfig {
            sim: SimulationConfig {
                chaos: plan,
                churn_fraction: churn,
                brps: 2,
                prosumers_per_brp: 3,
                offers_per_prosumer: 1,
                budget_evaluations: 1_500,
                ..three_level(6, seed)
            },
            quiet_cycles: 3,
        });
        prop_assert!(
            report.converged(),
            "random chaos did not self-heal (seed {}):\n{}",
            seed,
            report.summary()
        );
    }

    /// Crashing a random BRP at a random cycle of a random campaign —
    /// under a random loss storm, churn, and snapshot cadence — replays
    /// to the exact state of the never-crashed twin: the quiet-tail plan
    /// signatures are bit-identical.
    #[test]
    fn random_crashes_replay_to_identical_plans(
        seed in 0u64..1_000,
        crash_cycle in 1usize..3,
        crashed_brp in 0u64..2,
        drop_p in 0.0f64..0.4,
        churn in 0.0f64..0.10,
        snapshot_every in 4usize..64,
    ) {
        let plan = ChaosPlan::reliable()
            .phase(loss_storm(0, 1, drop_p))
            .phase(crash_of(crash_cycle, NodeId(1 + crashed_brp)));
        let report = run_campaign(&CampaignConfig {
            sim: SimulationConfig {
                chaos: plan,
                churn_fraction: churn,
                wal: Some(WalConfig { snapshot_every }),
                brps: 2,
                prosumers_per_brp: 3,
                offers_per_prosumer: 1,
                budget_evaluations: 1_500,
                ..three_level(6, seed)
            },
            quiet_cycles: 3,
        });
        prop_assert_eq!(report.chaos.crashes, 1);
        prop_assert!(
            report.converged(),
            "random crash did not replay cleanly (seed {}):\n{}",
            seed,
            report.summary()
        );
    }

    /// The node-level twin check behind the campaign assertion: feed a
    /// random offer stream into a WAL-backed BRP and its WAL-less twin,
    /// crash the former at a random point mid-stream, and the recovered
    /// pool must match the twin's entry for entry (`pool_digest` hashes
    /// the canonical encoding of every pooled offer).
    #[test]
    fn random_crash_point_replays_to_identical_pool(
        offers in proptest::collection::vec((1i64..80, 0u32..8), 1..24),
        crash_at in 0usize..24,
        snapshot_every in 1usize..16,
    ) {
        let wal_config = WalConfig { snapshot_every };
        let brp_id = NodeId(1);
        let config = BrpConfig::default();
        let mut brp = BrpNode::new(brp_id, None, config.clone());
        brp.attach_wal(NodeWal::in_memory(wal_config));
        let mut twin = BrpNode::new(brp_id, None, config.clone());
        let now = TimeSlot(0);

        let crash_at = crash_at.min(offers.len());
        for (i, &(es, tf)) in offers.iter().enumerate() {
            if i == crash_at {
                let store = brp.take_wal().expect("WAL attached").into_store();
                let (rebuilt, out) =
                    BrpNode::recover(brp_id, None, config.clone(), store, wal_config, now)
                        .expect("in-memory stores cannot fail");
                prop_assert!(out.is_empty(), "local-mode recovery emits nothing");
                brp = rebuilt;
            }
            let offer = FlexOffer::builder(i as u64, 500 + i as u64)
                .earliest_start(TimeSlot(es))
                .latest_start(TimeSlot(es + tf as i64))
                .assignment_before(TimeSlot(es))
                .profile(Profile::uniform(2, EnergyRange::new(1.0, 2.0).unwrap()))
                .build()
                .unwrap();
            let from = NodeId(500 + i as u64);
            for node in [&mut brp, &mut twin] {
                node.handle(
                    Envelope::new(from, brp_id, now, Message::SubmitOffer(offer.clone())),
                    now,
                );
            }
        }
        if crash_at >= offers.len() {
            let store = brp.take_wal().expect("WAL attached").into_store();
            let (rebuilt, _) =
                BrpNode::recover(brp_id, None, config, store, wal_config, now)
                    .expect("in-memory stores cannot fail");
            brp = rebuilt;
        }

        prop_assert_eq!(brp.pool_size(), twin.pool_size());
        prop_assert_eq!(brp.pool_digest(), twin.pool_digest());
    }
}

/// Release-scale campaign smoke for CI's `--ignored` step: a bigger
/// hierarchy, a longer storm, full churn — still bit-identical after
/// the quiet tail.
#[test]
#[ignore = "release-scale chaos smoke; run with --ignored"]
fn release_scale_campaign_smoke() {
    let plan = ChaosPlan::reliable()
        .phase(loss_storm(1, 3, 0.4))
        .phase(delay_burst(3, 4, 2, 4))
        .phase(partition_between(4, 6, BRP0, TSO))
        .phase(partition_between(4, 6, NodeId(2), TSO));
    let report = run_campaign(&CampaignConfig {
        sim: SimulationConfig {
            brps: 4,
            prosumers_per_brp: 10,
            offers_per_prosumer: 2,
            budget_evaluations: 8_000,
            chaos: plan,
            churn_fraction: 0.10,
            ..three_level(10, 424242)
        },
        quiet_cycles: 4,
    });
    assert!(
        report.converged(),
        "release-scale campaign did not self-heal:\n{}",
        report.summary()
    );
    assert!(report.chaos.network.dropped > 0);
    assert!(report.chaos.network.replayed > 0);
}

/// Release-scale islanded-mode smoke for CI's `--ignored` step. The
/// loss storm drops enough TSO heartbeats that a BRP's detector trips
/// `Down` and it islands; its heal-time `ProvisionalReport` is then
/// sent straight into the next partition window, so reconciliation
/// rides the dead-letter replay path — the report reaches the TSO at
/// the partition heal, over a delta stream that still carries a
/// storm-loss gap, and must be audited anyway. A WAL-backed TSO
/// crash-restart afterwards re-anchors every BRP, and the quiet tail
/// is bit-identical despite full churn.
#[test]
#[ignore = "release-scale islanded-mode smoke; run with --ignored"]
fn release_scale_islanding_smoke() {
    let plan = ChaosPlan::reliable()
        .phase(loss_storm(1, 3, 0.3))
        .phase(partition_between(2, 4, BRP0, TSO))
        .phase(partition_between(3, 5, NodeId(2), TSO))
        .phase(crash_of(6, TSO));
    let report = run_campaign(&CampaignConfig {
        sim: SimulationConfig {
            brps: 4,
            prosumers_per_brp: 10,
            offers_per_prosumer: 2,
            budget_evaluations: 8_000,
            chaos: plan,
            churn_fraction: 0.10,
            wal: Some(WalConfig { snapshot_every: 16 }),
            link_health: tight_link_health(),
            ..three_level(10, 131_072)
        },
        quiet_cycles: 4,
    });
    assert_eq!(report.chaos.crashes, 1, "the TSO crash must fire");
    assert!(
        !report.chaos.islanded.is_empty(),
        "partitions must island BRPs:\n{}",
        report.summary()
    );
    assert!(
        report.chaos.provisional_adopted + report.chaos.provisional_superseded > 0,
        "the heal must audit provisional ledgers:\n{}",
        report.summary()
    );
    assert!(
        report.converged(),
        "islanded-mode campaign left a trace:\n{}",
        report.summary()
    );
}

/// Release-scale crash-recovery smoke for CI's `--ignored` step: three
/// crash-restarts across a bigger hierarchy — one during a loss storm,
/// one during a partition, one repeat crash of the same BRP — with an
/// aggressive snapshot cadence so compaction churns throughout.
#[test]
#[ignore = "release-scale crash-recovery smoke; run with --ignored"]
fn release_scale_crash_recovery_smoke() {
    let plan = ChaosPlan::reliable()
        .phase(loss_storm(1, 3, 0.4))
        .phase(crash_of(2, BRP0))
        .phase(partition_between(3, 5, NodeId(2), TSO))
        .phase(crash_of(4, NodeId(3)))
        .phase(crash_of(5, BRP0));
    let report = run_campaign(&CampaignConfig {
        sim: SimulationConfig {
            brps: 4,
            prosumers_per_brp: 10,
            offers_per_prosumer: 2,
            budget_evaluations: 8_000,
            chaos: plan,
            churn_fraction: 0.10,
            wal: Some(WalConfig { snapshot_every: 16 }),
            ..three_level(10, 777_777)
        },
        quiet_cycles: 4,
    });
    assert_eq!(report.chaos.crashes, 3);
    assert!(
        report.converged(),
        "release-scale crash recovery left a trace:\n{}",
        report.summary()
    );
    assert!(report.chaos.network.replayed > 0);
}
