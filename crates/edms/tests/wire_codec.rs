//! Wire-codec roundtrips for every [`Message`] variant.
//!
//! The core crate proves the primitive and domain-type codecs
//! ([`mirabel_core::codec`]); these tests prove the *protocol* layer on
//! top of them — each `Message` variant, the [`Envelope`] framing
//! (including the optional stream sequence number), and the WAL's
//! [`EventRecord`] wrapper — survives encode → decode losslessly. Every
//! byte a node persists or puts on the wire goes through exactly these
//! paths.

use mirabel_aggregate::FlexOfferUpdate;
use mirabel_core::codec::Wire;
use mirabel_core::{
    ActorId, Energy, EnergyRange, FlexOffer, FlexOfferId, NodeId, OfferKind, Price, Profile,
    RegionId, ScheduledFlexOffer, Slice, TimeSlot,
};
use mirabel_edms::{DedupRx, Envelope, EventRecord, Message, SequencedRxState, StreamStats};
use proptest::prelude::*;

/// A small but fully parameterised offer: enough degrees of freedom to
/// exercise every field the codec writes, while offer-structure depth is
/// covered by the core crate's own `FlexOffer` roundtrip property.
fn offer_from(id: u64, production: bool, es: i64, tf: u32, lo: f64, width: f64) -> FlexOffer {
    let kind = if production {
        OfferKind::Production
    } else {
        OfferKind::Consumption
    };
    let profile = Profile::new(vec![Slice::new(
        2,
        EnergyRange::new(lo, lo + width).unwrap(),
    )
    .unwrap()])
    .unwrap();
    FlexOffer::builder(id, id ^ 0xdead_beef)
        .kind(kind)
        .earliest_start(TimeSlot(es))
        .latest_start(TimeSlot(es + tf as i64))
        .assignment_before(TimeSlot(es - 1))
        .profile(profile)
        .unit_price(Price(0.25))
        .build()
        .unwrap()
}

fn roundtrip(msg: &Message) -> Message {
    Message::from_bytes(&msg.to_bytes()).unwrap()
}

/// The only variant with no payload: a plain unit check suffices.
#[test]
fn resync_request_roundtrips() {
    let msg = Message::ResyncRequest;
    assert_eq!(roundtrip(&msg), msg);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_submit_offer_roundtrip(
        id in any::<u64>(),
        production in any::<bool>(),
        es in -1_000i64..1_000,
        tf in 0u32..64,
        lo in -10.0f64..10.0,
        width in 0.0f64..10.0,
    ) {
        let msg = Message::SubmitOffer(offer_from(id, production, es, tf, lo, width));
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn prop_offer_accepted_roundtrip(id in any::<u64>(), value in 0.0f64..1.0) {
        let msg = Message::OfferAccepted {
            offer: FlexOfferId(id),
            value,
        };
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn prop_offer_rejected_roundtrip(id in any::<u64>()) {
        let msg = Message::OfferRejected {
            offer: FlexOfferId(id),
        };
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn prop_assignment_roundtrip(
        id in any::<u64>(),
        start in -500i64..500,
        energies in proptest::collection::vec(-20.0f64..20.0, 0..8),
        discount in 0.0f64..1.0,
    ) {
        let msg = Message::Assignment {
            schedule: ScheduledFlexOffer {
                offer_id: FlexOfferId(id),
                start: TimeSlot(start),
                slot_energies: energies.into_iter().map(Energy::from_kwh).collect(),
            },
            discount_per_kwh: Price(discount),
        };
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn prop_measurement_roundtrip(
        actor in any::<u64>(),
        start in -1_000i64..1_000,
        values in proptest::collection::vec(-50.0f64..50.0, 0..16),
    ) {
        let msg = Message::Measurement {
            actor: ActorId(actor),
            start: TimeSlot(start),
            values,
        };
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn prop_macro_offer_deltas_roundtrip(
        deltas in proptest::collection::vec(
            (any::<bool>(), any::<u64>(), -500i64..500, 0u32..32),
            0..8
        ),
    ) {
        let updates = deltas
            .into_iter()
            .map(|(insert, id, es, tf)| {
                if insert {
                    FlexOfferUpdate::Insert(offer_from(id, false, es, tf, 1.0, 2.0))
                } else {
                    FlexOfferUpdate::Delete(FlexOfferId(id))
                }
            })
            .collect();
        let msg = Message::MacroOfferDeltas(updates);
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn prop_resync_snapshot_roundtrip(
        offers in proptest::collection::vec(
            (any::<u64>(), any::<bool>(), -500i64..500, 0u32..32),
            0..6
        ),
    ) {
        let msg = Message::ResyncSnapshot {
            offers: offers
                .into_iter()
                .map(|(id, production, es, tf)| offer_from(id, production, es, tf, 0.5, 1.5))
                .collect(),
        };
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    /// The federation's cross-border delta batches reuse the intra-region
    /// update vocabulary; the envelope tag and payload must survive.
    #[test]
    fn prop_exchange_offer_deltas_roundtrip(
        deltas in proptest::collection::vec(
            (any::<bool>(), any::<u64>(), -500i64..500, 0u32..32),
            0..8
        ),
    ) {
        let updates = deltas
            .into_iter()
            .map(|(insert, id, es, tf)| {
                if insert {
                    FlexOfferUpdate::Insert(offer_from(id, true, es, tf, 0.5, 1.0))
                } else {
                    FlexOfferUpdate::Delete(FlexOfferId(id))
                }
            })
            .collect();
        let msg = Message::ExchangeOfferDeltas(updates);
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    /// Envelope framing: routing ids, send slot, the optional stream
    /// sequence number and the region tag must all survive, around any
    /// payload.
    #[test]
    fn prop_envelope_roundtrip(
        from in any::<u64>(),
        to in any::<u64>(),
        sent_at in -1_000i64..1_000,
        sequenced in any::<bool>(),
        seq in any::<u64>(),
        region in any::<u64>(),
        value in 0.0f64..1.0,
    ) {
        let mut env = Envelope::new(
            NodeId(from),
            NodeId(to),
            TimeSlot(sent_at),
            Message::OfferAccepted { offer: FlexOfferId(7), value },
        )
        .in_region(RegionId(region));
        if sequenced {
            env = env.with_seq(seq);
        }
        let back = Envelope::from_bytes(&env.to_bytes()).unwrap();
        prop_assert_eq!(back, env);
    }

    /// Pre-federation envelope frames carry no trailing region field;
    /// decoding them must land in [`RegionId::DEFAULT`] with every other
    /// field intact. The legacy frame is constructed by stripping the
    /// region suffix — exactly the bytes an old build would have written.
    #[test]
    fn prop_legacy_envelope_decodes_into_default_region(
        from in any::<u64>(),
        to in any::<u64>(),
        sent_at in -1_000i64..1_000,
        seq in any::<u64>(),
        value in 0.0f64..1.0,
    ) {
        let env = Envelope::new(
            NodeId(from),
            NodeId(to),
            TimeSlot(sent_at),
            Message::OfferAccepted { offer: FlexOfferId(7), value },
        )
        .with_seq(seq);
        let mut frame = env.to_bytes();
        let region_suffix = RegionId::DEFAULT.to_bytes().len();
        frame.truncate(frame.len() - region_suffix);

        // A legacy frame inside an EventRecord decodes via the record's
        // compat path; bare modern decode must reject it (truncated).
        prop_assert!(Envelope::from_bytes(&frame).is_err());
        let record = EventRecord {
            event_id: 1,
            causation_id: None,
            replay_safe: true,
            recorded_at: TimeSlot(sent_at),
            envelope: env.clone(),
            region: RegionId::DEFAULT,
        };
        let mut record_frame = record.to_bytes();
        // Strip the record's own region suffix AND the envelope's.
        record_frame.truncate(record_frame.len() - 2 * region_suffix);
        let back = EventRecord::from_frame(&record_frame).unwrap();
        prop_assert_eq!(back.region, RegionId::DEFAULT);
        prop_assert_eq!(back.envelope.region, RegionId::DEFAULT);
        prop_assert_eq!(back.envelope.seq, Some(seq));
        prop_assert_eq!(back.envelope.from, NodeId(from));
        prop_assert_eq!(back.envelope.message, env.message);
    }

    /// The failure detector's liveness beacon: the cumulative ack
    /// cursor it piggybacks must survive the frame.
    #[test]
    fn prop_heartbeat_roundtrip(seen in any::<u64>()) {
        let msg = Message::Heartbeat { seen };
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    /// The reconciliation hand-off: an islanded window's provisional
    /// macro ledger — window start plus every schedule, including the
    /// empty hand-off marker — must survive the frame.
    #[test]
    fn prop_provisional_report_roundtrip(
        window_start in -1_000i64..1_000,
        schedules in proptest::collection::vec(
            (any::<u64>(), -500i64..500, proptest::collection::vec(-20.0f64..20.0, 0..6)),
            0..6
        ),
    ) {
        let msg = Message::ProvisionalReport {
            window_start: TimeSlot(window_start),
            assignments: schedules
                .into_iter()
                .map(|(id, start, energies)| ScheduledFlexOffer {
                    offer_id: FlexOfferId(id),
                    start: TimeSlot(start),
                    slot_energies: energies.into_iter().map(Energy::from_kwh).collect(),
                })
                .collect(),
        };
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    /// The new health-protocol frames must ride legacy (pre-federation)
    /// framing too: a region-stripped EventRecord carrying a Heartbeat
    /// decodes through the compat path with the payload intact.
    #[test]
    fn prop_heartbeat_in_legacy_frame_decodes(
        seen in any::<u64>(),
        seq in any::<u64>(),
        sent_at in -1_000i64..1_000,
    ) {
        let env = Envelope::new(
            NodeId(9_999),
            NodeId(1),
            TimeSlot(sent_at),
            Message::Heartbeat { seen },
        )
        .with_seq(seq);
        let record = EventRecord {
            event_id: 1,
            causation_id: None,
            replay_safe: true,
            recorded_at: TimeSlot(sent_at),
            envelope: env.clone(),
            region: RegionId::DEFAULT,
        };
        let mut frame = record.to_bytes();
        let region_suffix = RegionId::DEFAULT.to_bytes().len();
        frame.truncate(frame.len() - 2 * region_suffix);
        let back = EventRecord::from_frame(&frame).unwrap();
        prop_assert_eq!(back.envelope.message, Message::Heartbeat { seen });
        prop_assert_eq!(back.envelope.seq, Some(seq));
        prop_assert_eq!(back.region, RegionId::DEFAULT);
    }

    /// A [`SequencedRx`] freeze-frame — cursor, parked envelopes, buffer
    /// cap, resync flag, counters — survives the snapshot codec.
    #[test]
    fn prop_sequenced_rx_state_roundtrip(
        next_expected in any::<u64>(),
        parked in proptest::collection::vec((any::<u64>(), 0.0f64..1.0), 0..5),
        buffer_cap in 1u64..1_024,
        resync_pending in any::<bool>(),
        delivered in any::<u32>(),
        duplicates in any::<u32>(),
    ) {
        let state = SequencedRxState {
            next_expected,
            buffered: parked
                .into_iter()
                .map(|(seq, value)| {
                    Envelope::new(
                        NodeId(1),
                        NodeId(9_999),
                        TimeSlot(0),
                        Message::OfferAccepted { offer: FlexOfferId(seq), value },
                    )
                    .with_seq(seq)
                })
                .collect(),
            buffer_cap,
            resync_pending,
            stats: StreamStats {
                delivered: delivered as u64,
                duplicates: duplicates as u64,
                ..StreamStats::default()
            },
        };
        let back = SequencedRxState::from_bytes(&state.to_bytes()).unwrap();
        prop_assert_eq!(back, state);
    }

    /// A [`DedupRx`] frozen mid-stream and rebuilt from its exported
    /// state is *behaviorally* identical to the original: the exported
    /// tuple matches, and both filters give the same accept/reject
    /// verdict on any follow-up stream (duplicates of pre-freeze
    /// deliveries included).
    #[test]
    fn prop_dedup_rx_state_roundtrips_behaviorally(
        before in proptest::collection::vec(0u64..64, 0..48),
        after in proptest::collection::vec(0u64..64, 0..48),
    ) {
        let mut original = DedupRx::default();
        for seq in &before {
            original.accept(Some(*seq));
        }
        let (delivered_below, seen, duplicates) = original.export_state();
        let mut restored = DedupRx::from_state(delivered_below, seen, duplicates);
        prop_assert_eq!(restored.export_state(), original.export_state());
        for seq in &after {
            prop_assert_eq!(restored.accept(Some(*seq)), original.accept(Some(*seq)));
        }
        prop_assert_eq!(restored.export_state(), original.export_state());
        prop_assert_eq!(restored.duplicates, original.duplicates);
    }

    /// The WAL's event wrapper: ids, causation link, replay-safety flag,
    /// the recorded clock and the region tag must all survive alongside
    /// the envelope.
    #[test]
    fn prop_event_record_roundtrip(
        event_id in any::<u64>(),
        caused in any::<bool>(),
        causation in any::<u64>(),
        replay_safe in any::<bool>(),
        recorded_at in -1_000i64..1_000,
        id in any::<u64>(),
        region in any::<u64>(),
    ) {
        let record = EventRecord {
            event_id,
            causation_id: caused.then_some(causation),
            replay_safe,
            recorded_at: TimeSlot(recorded_at),
            envelope: Envelope::new(
                NodeId(1),
                NodeId(2),
                TimeSlot(recorded_at),
                Message::OfferRejected { offer: FlexOfferId(id) },
            )
            .in_region(RegionId(region)),
            region: RegionId(region),
        };
        let back = EventRecord::from_bytes(&record.to_bytes()).unwrap();
        prop_assert_eq!(back, record);
        // from_frame accepts modern frames unchanged.
        let via_compat = EventRecord::from_frame(&record.to_bytes()).unwrap();
        prop_assert_eq!(via_compat, record);
    }
}
