//! Federation determinism suite: the same seeded population, sliced
//! into 1, 2 or 4 regions and driven at pool widths 1, 2 and 8.
//!
//! What must hold:
//!
//! * **invariants per region, any split** — offer conservation
//!   (`submitted == assigned + fallbacks`), zero phantom offers, zero
//!   energy violations, imbalance reduced;
//! * **width invariance** — for a fixed split, the *entire*
//!   [`FederationReport`] (every counter, every per-region plan
//!   signature, the exchange accounting) is bit-identical at widths 1,
//!   2 and 8: parallelism changes wall-clock only;
//! * **solo-twin equality** — region `r` of a federation equals
//!   `simulate(Federation::region_config(&cfg, r))` run alone: the
//!   federation observes regions, it never perturbs them;
//! * **exchange health** — on a reliable bus the gateways converge and
//!   deltas actually flow.
//!
//! The release-scale rounds (the full 4k-prosumer population, and the
//! headline 4 × 250k configuration) are `#[ignore]`d; run them with
//! `cargo test --release -- --ignored`.

use mirabel_core::exec::Pool;
use mirabel_core::RegionId;
use mirabel_edms::federation::{Federation, FederationConfig, FederationReport};
use mirabel_edms::{simulate, SimulationConfig};

/// One region's shape when the fixed population is split `regions`
/// ways: `total_brps / regions` BRPs, same prosumers per BRP.
fn split_shape(total_brps: usize, regions: usize, per_brp: usize, pool: Pool) -> FederationConfig {
    assert_eq!(total_brps % regions, 0, "split must be exact");
    FederationConfig {
        regions,
        sim: SimulationConfig {
            brps: total_brps / regions,
            prosumers_per_brp: per_brp,
            cycles: 2,
            offers_per_prosumer: 1,
            use_tso: true,
            budget_evaluations: 2_000,
            seed: 2_024,
            pool,
            ..SimulationConfig::default()
        },
        ..FederationConfig::default()
    }
}

fn assert_invariants(report: &FederationReport, label: &str) {
    for (r, region) in report.regions.iter().enumerate() {
        assert_eq!(
            region.assigned + region.fallbacks,
            region.offers_submitted,
            "{label}: offer conservation broke in region {r}"
        );
        assert_eq!(
            region.phantom_offers, 0,
            "{label}: phantom offers in region {r}"
        );
        assert_eq!(
            region.energy_violations, 0,
            "{label}: energy violations in region {r}"
        );
        assert!(
            region.imbalance_after <= region.imbalance_before,
            "{label}: scheduling made imbalance worse in region {r}"
        );
    }
}

/// The split/width matrix at CI scale: every split of the population
/// holds the invariants, and within a split the full federation report
/// is invariant to pool width.
#[test]
fn splits_hold_invariants_and_width_never_changes_a_report() {
    for &regions in &[1usize, 2, 4] {
        let per_width: Vec<FederationReport> = [1usize, 2, 8]
            .iter()
            .map(|&w| Federation::run(split_shape(4, regions, 32, Pool::new(w))))
            .collect();
        assert_invariants(&per_width[0], &format!("{regions}-region split"));
        assert_eq!(
            per_width[0], per_width[1],
            "{regions}-region split: width 1 vs 2 diverged"
        );
        assert_eq!(
            per_width[1], per_width[2],
            "{regions}-region split: width 2 vs 8 diverged"
        );
    }
}

/// Fault isolation without chaos: every region inside a federation is
/// bit-identical to its solo twin, at any width.
#[test]
fn federated_regions_equal_their_solo_twins() {
    let cfg = split_shape(4, 4, 32, Pool::new(4));
    let report = Federation::run(cfg.clone());
    for r in 0..4 {
        let twin = simulate(Federation::region_config(&cfg, RegionId(r as u64)));
        assert_eq!(
            report.regions[r as usize], twin,
            "region {r} diverged from its solo twin"
        );
    }
}

/// The exchange layer on a reliable bus: deltas flow (each cycle's
/// export snapshot churns the published set) and every gateway's
/// imported views converge onto its peers' exports.
#[test]
fn exchange_converges_and_carries_traffic() {
    let report = Federation::run(split_shape(4, 4, 32, Pool::new(2)));
    assert!(report.exchange.converged, "reliable bus must converge");
    assert!(
        report.exchange.deltas_published > 0,
        "exports must churn across cycles: {:?}",
        report.exchange
    );
    assert!(
        report.exchange.bus.bytes_sent > 0,
        "the bus is always byte-metered"
    );
    assert_eq!(report.exchange.streams.resyncs_requested, 0);
}

/// The full 4k-prosumer population (4 BRPs × 1000) as 1, 2 and 4
/// regions at width 8: invariants per split, plus width 1-vs-8 equality
/// on the 4-region split. Debug-mode runtime is ~10s per federation
/// run, hence `--ignored`.
#[test]
#[ignore = "4k-prosumer population: ~1 min, run with --ignored (release recommended)"]
fn four_thousand_prosumer_population_splits_cleanly() {
    for &regions in &[1usize, 2, 4] {
        let report = Federation::run(split_shape(4, regions, 1_000, Pool::new(8)));
        assert_invariants(&report, &format!("4k population, {regions} regions"));
        let total: usize = report.regions.iter().map(|r| r.offers_submitted).sum();
        assert_eq!(total, 8_000, "4k prosumers × 2 cycles × 1 offer");
    }
    let narrow = Federation::run(split_shape(4, 4, 1_000, Pool::new(1)));
    let wide = Federation::run(split_shape(4, 4, 1_000, Pool::new(8)));
    assert_eq!(narrow, wide, "4-region 4k split: width 1 vs 8 diverged");
}

/// The headline configuration: 4 regions × 250k prosumers — the same
/// million-prosumer population the monolithic hierarchy's release smoke
/// drives, sharded. Correctness probes plus the exchange-traffic bound;
/// throughput numbers come from the bench crate's `BENCH_federation`
/// emitter.
#[test]
#[ignore = "release-scale: 4 × 250k prosumers, run with --release -- --ignored"]
fn four_region_million_prosumer_round() {
    let report = Federation::run(FederationConfig {
        regions: 4,
        sim: SimulationConfig {
            brps: 2,
            prosumers_per_brp: 125_000,
            cycles: 1,
            offers_per_prosumer: 1,
            use_tso: true,
            budget_evaluations: 2_000,
            refine_fraction: 0.05,
            seed: 1_000_000,
            pool: Pool::global().clone(),
            ..SimulationConfig::default()
        },
        meter_bytes: true,
        ..FederationConfig::default()
    });
    assert_invariants(&report, "4 × 250k");
    let total: usize = report.regions.iter().map(|r| r.offers_submitted).sum();
    assert_eq!(total, 1_000_000);
    assert!(report.exchange.converged);
    let ratio = report.exchange_byte_ratio();
    assert!(
        ratio < 0.01,
        "cross-border traffic must stay under 1% of intra-region bytes, got {ratio}"
    );
}
