//! Level-3 incremental-vs-scratch equivalence: the TSO's delta-driven
//! life-cycle must end in exactly the state a from-scratch rebuild
//! reaches — the `delta_vs_scratch` contract of the aggregate crate,
//! lifted one hierarchy level.
//!
//! Two properties are pinned down:
//!
//! 1. after any interleaving of `MacroOfferDeltas` batches, forecast
//!    events, and live-plan splices, the TSO's *live scheduling problem*
//!    (offer set + baseline) equals the problem a fresh TSO builds from
//!    the cumulative snapshot, and the live evaluator's cost equals the
//!    reference full evaluation of its solution;
//! 2. the TSO's pool (ids, sources, slab contents, aggregate membership)
//!    replayed through random delta sequences equals the
//!    snapshot-forwarding baseline model.

use mirabel_aggregate::{AggregationParams, FlexOfferUpdate};
use mirabel_core::{EnergyRange, FlexOffer, FlexOfferId, NodeId, Profile, TimeSlot};
use mirabel_edms::{Envelope, Message, RuntimeConfig, TsoNode};
use mirabel_forecast::ForecastHub;
use mirabel_schedule::{evaluate, MarketPrices};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn macro_offer(id: u64, es: i64, tf: u32) -> FlexOffer {
    FlexOffer::builder(id, 1)
        .earliest_start(TimeSlot(es))
        .time_flexibility(tf)
        .assignment_before(TimeSlot(es - 10))
        .profile(Profile::uniform(4, EnergyRange::new(2.0, 6.0).unwrap()))
        .build()
        .unwrap()
}

fn deltas(from: u64, updates: Vec<FlexOfferUpdate>) -> Envelope {
    Envelope::new(
        NodeId(from),
        NodeId(99),
        TimeSlot(0),
        Message::MacroOfferDeltas(updates),
    )
}

fn tso(budget: usize) -> TsoNode {
    TsoNode::with_config(
        NodeId(99),
        AggregationParams::p0(),
        RuntimeConfig {
            budget_evaluations: budget,
            ..RuntimeConfig::default()
        },
    )
}

/// Sorted signature of a live problem's offer set, keyed by the member
/// *export ids* behind each scheduled aggregate: aggregate ids and
/// insertion order are history-dependent (fresh ids for spliced
/// aggregates, `swap_remove` on departures), but the set of (members,
/// window) pairs must be identical between the incremental and scratch
/// paths.
fn offer_signature(t: &TsoNode, p: &mirabel_schedule::SchedulingProblem) -> Vec<(Vec<u64>, i64)> {
    let mut sig: Vec<(Vec<u64>, i64)> = p
        .offers
        .iter()
        .map(|o| {
            let agg = t
                .pipeline()
                .aggregate(mirabel_core::AggregateId(o.id().value()))
                .expect("scheduled aggregate is maintained");
            (
                agg.member_ids.iter().map(|id| id.value()).collect(),
                o.earliest_start().index(),
            )
        })
        .collect();
    sig.sort_unstable();
    sig
}

#[test]
fn tso_incremental_replan_equals_scratch_rebuild() {
    let horizon = 96usize;
    let window = TimeSlot(96);
    let prices = MarketPrices::flat(horizon, 0.08, 0.03, 1000.0);
    let penalties = vec![0.2; horizon];

    // Incremental TSO: pooled via deltas, prepared on the initial
    // forecast, then hit by an offer-delta trickle AND a forecast event.
    let mut a = tso(4_000);
    let initial: Vec<FlexOfferUpdate> = (0..30u64)
        .map(|i| FlexOfferUpdate::Insert(macro_offer(1_000_000_000 + i, 100 + (i as i64 % 60), 8)))
        .collect();
    a.handle(deltas(1, initial), TimeSlot(0));

    let hub = ForecastHub::new();
    let sub = hub.subscribe(horizon, 0.0);
    let forecast0 = vec![-3.0; horizon];
    hub.publish(&forecast0);
    let event0 = hub.poll(sub).unwrap();
    let (_, report) = a.prepare_plan(
        TimeSlot(80),
        window,
        event0.forecast,
        prices.clone(),
        penalties.clone(),
    );
    assert_eq!(report.eligible_macro, 30);

    // Offer trickle while live: two inserts, one delete, one attribute
    // update of an existing offer (same export id, new attributes —
    // under p0 that moves it to a new similarity group, so the live
    // plan sees the old aggregate leave and a new one arrive).
    a.handle(
        deltas(
            2,
            vec![
                FlexOfferUpdate::Insert(macro_offer(2_000_000_001, 130, 6)),
                FlexOfferUpdate::Insert(macro_offer(2_000_000_002, 140, 4)),
                FlexOfferUpdate::Delete(FlexOfferId(1_000_000_005)),
                FlexOfferUpdate::Insert(macro_offer(1_000_000_006, 151, 3)),
            ],
        ),
        TimeSlot(81),
    );
    let fold = a.last_offer_delta_report().expect("live plan folded");
    assert_eq!(fold.inserted, 3);
    assert_eq!(fold.removed, 2);
    assert!(fold.cost_after <= fold.cost_before + 1e-9);

    // Forecast refinement: a contiguous block moves; the TSO replans on
    // exactly those slots.
    let mut refined = forecast0.clone();
    for v in refined.iter_mut().skip(30).take(12) {
        *v += 2.0;
    }
    hub.publish(&refined);
    let event1 = hub.poll(sub).unwrap();
    let replan = a.on_forecast_event(&event1).expect("live plan exists");
    assert_eq!(replan.changed_slots, 12);
    assert!(replan.cost_after <= replan.cost_before + 1e-9);

    // Scratch TSO: the cumulative final snapshot, prepared directly on
    // the refined forecast.
    let mut b = tso(4_000);
    let mut snapshot: Vec<FlexOfferUpdate> = (0..30u64)
        .filter(|i| *i != 5)
        .map(|i| {
            if i == 6 {
                FlexOfferUpdate::Insert(macro_offer(1_000_000_006, 151, 3))
            } else {
                FlexOfferUpdate::Insert(macro_offer(1_000_000_000 + i, 100 + (i as i64 % 60), 8))
            }
        })
        .collect();
    snapshot.push(FlexOfferUpdate::Insert(macro_offer(2_000_000_001, 130, 6)));
    snapshot.push(FlexOfferUpdate::Insert(macro_offer(2_000_000_002, 140, 4)));
    b.handle(deltas(1, snapshot), TimeSlot(0));
    b.prepare_plan(
        TimeSlot(82),
        window,
        refined.clone(),
        prices.clone(),
        penalties.clone(),
    );

    // Equivalence: same live problem (offer set + baseline), and the
    // incremental evaluator's cost is exact (equals the reference full
    // evaluation — never drifted state).
    let pa = a.live_problem().expect("a live");
    let pb = b.live_problem().expect("b live");
    assert_eq!(offer_signature(&a, pa), offer_signature(&b, pb));
    assert_eq!(pa.baseline_imbalance, pb.baseline_imbalance);
    let cost = a.live_cost().unwrap();
    let reference = evaluate(pa, a.live_solution().unwrap()).total();
    assert!(
        (cost - reference).abs() < 1e-6,
        "incremental cost {cost} drifted from reference {reference}"
    );

    // Both commit cleanly; every assignment goes to the offer's source.
    let (env_a, _) = a.commit_plan(TimeSlot(83)).unwrap();
    let (env_b, _) = b.commit_plan(TimeSlot(83)).unwrap();
    assert_eq!(env_a.len(), 31);
    assert_eq!(env_b.len(), 31);
    assert_eq!(a.pool_size(), 0);
    for e in &env_a {
        let Message::Assignment { schedule, .. } = &e.message else {
            panic!("expected assignment");
        };
        // Batch 2 came from BRP 2 — including the re-announced
        // 1_000_000_006, whose source is last-writer-wins.
        let expected = if schedule.offer_id.value() >= 2_000_000_000
            || schedule.offer_id.value() == 1_000_000_006
        {
            NodeId(2)
        } else {
            NodeId(1)
        };
        assert_eq!(e.to, expected, "assignment routed to its source BRP");
    }
}

#[test]
fn forecast_event_with_wrong_horizon_ignored_at_level_3() {
    let mut t = tso(1_000);
    t.handle(
        deltas(1, vec![FlexOfferUpdate::Insert(macro_offer(7, 120, 8))]),
        TimeSlot(0),
    );
    t.prepare_plan(
        TimeSlot(90),
        TimeSlot(96),
        vec![0.0; 96],
        MarketPrices::flat(96, 0.08, 0.03, 1000.0),
        vec![0.2; 96],
    );
    let event = mirabel_forecast::ForecastEvent {
        subscription: 0,
        forecast: vec![0.0; 48],
        changed: vec![mirabel_forecast::SlotRange { start: 0, end: 48 }],
        max_relative_change: f64::INFINITY,
    };
    assert!(t.on_forecast_event(&event).is_none());
    assert!(t.commit_plan(TimeSlot(91)).is_some());
}

/// One step of the snapshot-forwarding baseline: a plain map of
/// id → (offer, source), exactly what the pre-delta TSO pool was.
type PoolModel = BTreeMap<u64, (FlexOffer, u64)>;

fn apply_to_model(model: &mut PoolModel, from: u64, updates: &[FlexOfferUpdate]) {
    for u in updates {
        match u {
            FlexOfferUpdate::Insert(o) => {
                model.insert(o.id().value(), (o.clone(), from));
            }
            FlexOfferUpdate::Delete(id) => {
                model.remove(&id.value());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random BRP flush sequences through `MacroOfferDeltas` leave the
    /// TSO pool identical to the snapshot-forwarding baseline: same ids,
    /// same sources, same slab values, same aggregate membership union.
    #[test]
    fn macro_offer_deltas_match_snapshot_baseline(
        batches in proptest::collection::vec(
            (
                1u64..=3, // source BRP
                proptest::collection::vec(
                    (any::<bool>(), 0u64..24, 100i64..160, 0u32..10),
                    1..8,
                ),
            ),
            1..12,
        )
    ) {
        let mut t = tso(500);
        let mut model: PoolModel = BTreeMap::new();
        for (from, ops) in &batches {
            let updates: Vec<FlexOfferUpdate> = ops
                .iter()
                .map(|(insert, id, es, tf)| {
                    if *insert {
                        FlexOfferUpdate::Insert(macro_offer(1_000 + id, *es, *tf))
                    } else {
                        FlexOfferUpdate::Delete(FlexOfferId(1_000 + id))
                    }
                })
                .collect();
            apply_to_model(&mut model, *from, &updates);
            t.handle(deltas(*from, updates), TimeSlot(0));
        }

        // Pool size, ids and sources match the baseline.
        prop_assert_eq!(t.pool_size(), model.len());
        let ids = t.pooled_ids();
        let expected: Vec<FlexOfferId> =
            model.keys().map(|id| FlexOfferId(*id)).collect();
        prop_assert_eq!(&ids, &expected);
        for (id, (offer, source)) in &model {
            prop_assert_eq!(t.source_of(FlexOfferId(*id)), Some(NodeId(*source)));
            // The slab holds the latest value, stored exactly once.
            let pooled = t.pooled_offer(FlexOfferId(*id)).expect("pooled");
            prop_assert_eq!(pooled.earliest_start(), offer.earliest_start());
            prop_assert_eq!(pooled.time_flexibility(), offer.time_flexibility());
        }
        // The aggregates partition exactly the pooled ids.
        let mut members: Vec<u64> = t
            .pipeline()
            .aggregates()
            .flat_map(|a| a.member_ids.iter().map(|id| id.value()))
            .collect();
        members.sort_unstable();
        let expected_members: Vec<u64> = model.keys().copied().collect();
        prop_assert_eq!(members, expected_members);
        prop_assert_eq!(t.pipeline().offer_count(), model.len());
    }
}
