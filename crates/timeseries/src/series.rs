//! Dense, slot-aligned time series.

use mirabel_core::TimeSlot;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense series of f64 observations, one per metering slot, starting at
/// [`TimeSeries::start`]. Units are whatever the producer says they are
/// (kWh per slot for energy series, MW for the demand experiments — the
/// accuracy metrics are scale-free).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    start: TimeSlot,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Build a series starting at `start`.
    pub fn new(start: TimeSlot, values: Vec<f64>) -> TimeSeries {
        TimeSeries { start, values }
    }

    /// Empty series positioned at `start`.
    pub fn empty(start: TimeSlot) -> TimeSeries {
        TimeSeries {
            start,
            values: Vec::new(),
        }
    }

    /// First slot of the series.
    pub fn start(&self) -> TimeSlot {
        self.start
    }

    /// First slot *after* the series.
    pub fn end(&self) -> TimeSlot {
        self.start + self.values.len() as u32
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Observation at absolute slot `t`, if covered.
    pub fn at(&self, t: TimeSlot) -> Option<f64> {
        let d = t - self.start;
        if d < 0 {
            return None;
        }
        self.values.get(d as usize).copied()
    }

    /// Append one observation at the end of the series.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Append many observations.
    pub fn extend(&mut self, vs: impl IntoIterator<Item = f64>) {
        self.values.extend(vs);
    }

    /// Sub-series covering `[from, to)` intersected with the series span.
    pub fn window(&self, from: TimeSlot, to: TimeSlot) -> TimeSeries {
        let lo = from.max(self.start).min(self.end());
        let hi = to.min(self.end()).max(lo);
        let a = (lo - self.start) as usize;
        let b = (hi - self.start) as usize;
        TimeSeries {
            start: lo,
            values: self.values[a..b].to_vec(),
        }
    }

    /// The last `n` observations (fewer if the series is shorter).
    pub fn tail(&self, n: usize) -> TimeSeries {
        let k = self.values.len().saturating_sub(n);
        TimeSeries {
            start: self.start + k as u32,
            values: self.values[k..].to_vec(),
        }
    }

    /// Split at absolute slot `t`: `(values before t, values from t on)`.
    pub fn split_at_slot(&self, t: TimeSlot) -> (TimeSeries, TimeSeries) {
        let d = (t - self.start).clamp(0, self.values.len() as i64) as usize;
        (
            TimeSeries {
                start: self.start,
                values: self.values[..d].to_vec(),
            },
            TimeSeries {
                start: self.start + d as u32,
                values: self.values[d..].to_vec(),
            },
        )
    }

    /// Iterate `(slot, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TimeSlot, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.start + i as u32, v))
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> TimeSeries {
        TimeSeries {
            start: self.start,
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise combination over the overlap of two series.
    pub fn zip_with(&self, other: &TimeSeries, f: impl Fn(f64, f64) -> f64) -> TimeSeries {
        let lo = self.start.max(other.start);
        let hi = self.end().min(other.end()).max(lo);
        let mut values = Vec::with_capacity((hi - lo) as usize);
        let mut t = lo;
        while t < hi {
            values.push(f(self.at(t).unwrap(), other.at(t).unwrap()));
            t += 1u32;
        }
        TimeSeries { start: lo, values }
    }

    /// Arithmetic mean; 0 for an empty series.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Population standard deviation; 0 for an empty series.
    pub fn std_dev(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64;
        var.sqrt()
    }

    /// Minimum value (NaN-free input assumed); `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum value; `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Aggregate to a coarser grid: each output value is the sum of `k`
    /// consecutive inputs (trailing partial block dropped). Used by
    /// hierarchical forecasting when a parent works at coarser resolution.
    pub fn downsample_sum(&self, k: usize) -> TimeSeries {
        assert!(k >= 1);
        let n = self.values.len() / k;
        let values = (0..n)
            .map(|i| self.values[i * k..(i + 1) * k].iter().sum())
            .collect();
        TimeSeries {
            start: self.start,
            values,
        }
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "series[{}..{}, n={}]",
            self.start,
            self.end(),
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(start: i64, vals: &[f64]) -> TimeSeries {
        TimeSeries::new(TimeSlot(start), vals.to_vec())
    }

    #[test]
    fn indexing() {
        let s = ts(10, &[1.0, 2.0, 3.0]);
        assert_eq!(s.start(), TimeSlot(10));
        assert_eq!(s.end(), TimeSlot(13));
        assert_eq!(s.at(TimeSlot(10)), Some(1.0));
        assert_eq!(s.at(TimeSlot(12)), Some(3.0));
        assert_eq!(s.at(TimeSlot(13)), None);
        assert_eq!(s.at(TimeSlot(9)), None);
    }

    #[test]
    fn window_clamps() {
        let s = ts(10, &[1.0, 2.0, 3.0, 4.0]);
        let w = s.window(TimeSlot(11), TimeSlot(13));
        assert_eq!(w.values(), &[2.0, 3.0]);
        assert_eq!(w.start(), TimeSlot(11));
        let all = s.window(TimeSlot(0), TimeSlot(100));
        assert_eq!(all.values(), s.values());
        let none = s.window(TimeSlot(50), TimeSlot(60));
        assert!(none.is_empty());
    }

    #[test]
    fn tail_and_split() {
        let s = ts(0, &[1.0, 2.0, 3.0, 4.0]);
        let t = s.tail(2);
        assert_eq!(t.values(), &[3.0, 4.0]);
        assert_eq!(t.start(), TimeSlot(2));
        let (a, b) = s.split_at_slot(TimeSlot(1));
        assert_eq!(a.values(), &[1.0]);
        assert_eq!(b.values(), &[2.0, 3.0, 4.0]);
        assert_eq!(b.start(), TimeSlot(1));
        // split outside bounds clamps
        let (a2, b2) = s.split_at_slot(TimeSlot(-5));
        assert!(a2.is_empty());
        assert_eq!(b2.len(), 4);
    }

    #[test]
    fn zip_with_overlap_only() {
        let a = ts(0, &[1.0, 2.0, 3.0]);
        let b = ts(1, &[10.0, 20.0, 30.0]);
        let c = a.zip_with(&b, |x, y| x + y);
        assert_eq!(c.start(), TimeSlot(1));
        assert_eq!(c.values(), &[12.0, 23.0]);
    }

    #[test]
    fn statistics() {
        let s = ts(0, &[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.std_dev() - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(TimeSeries::empty(TimeSlot(0)).mean(), 0.0);
        assert_eq!(TimeSeries::empty(TimeSlot(0)).min(), None);
    }

    #[test]
    fn downsample() {
        let s = ts(0, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let d = s.downsample_sum(2);
        assert_eq!(d.values(), &[3.0, 7.0]);
    }

    #[test]
    fn push_extend_iter() {
        let mut s = TimeSeries::empty(TimeSlot(5));
        s.push(1.0);
        s.extend([2.0, 3.0]);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(
            pairs,
            vec![(TimeSlot(5), 1.0), (TimeSlot(6), 2.0), (TimeSlot(7), 3.0)]
        );
    }

    #[test]
    fn map_preserves_alignment() {
        let s = ts(3, &[1.0, -2.0]);
        let m = s.map(f64::abs);
        assert_eq!(m.start(), TimeSlot(3));
        assert_eq!(m.values(), &[1.0, 2.0]);
    }
}
