//! Synthetic energy time series.
//!
//! Substitutes for the paper's evaluation data (DESIGN.md §3):
//!
//! * [`DemandGenerator`] stands in for the UK NationalGrid half-hourly
//!   national demand series: strong daily and weekly seasonality, a smooth
//!   annual component, holiday attenuation and autocorrelated noise.
//! * [`WindGenerator`] stands in for the NREL wind integration data sets:
//!   a mean-reverting wind-speed process pushed through a turbine power
//!   curve — much weaker seasonality, so forecast error grows quickly with
//!   the horizon, which is exactly the contrast Figure 4(b) shows.
//! * [`SolarGenerator`] produces PV-like supply for the end-to-end
//!   balancing examples (clear-sky bell curve with weather dips).

use crate::calendar::Calendar;
use crate::series::TimeSeries;
use mirabel_core::{TimeSlot, SLOTS_PER_DAY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// UK-style national electricity demand, in MW.
#[derive(Debug, Clone)]
pub struct DemandGenerator {
    /// Mean demand level (MW).
    pub base: f64,
    /// Amplitude of the daily cycle as a fraction of `base`.
    pub daily_amplitude: f64,
    /// Weekend demand reduction as a fraction of `base`.
    pub weekend_dip: f64,
    /// Amplitude of the annual cycle (winter peak) as a fraction of `base`.
    pub annual_amplitude: f64,
    /// Holiday demand reduction as a fraction of `base`.
    pub holiday_dip: f64,
    /// Standard deviation of the AR(1) noise as a fraction of `base`.
    pub noise: f64,
    /// AR(1) coefficient of the noise process.
    pub noise_ar: f64,
    /// Calendar supplying holidays.
    pub calendar: Calendar,
}

impl Default for DemandGenerator {
    fn default() -> DemandGenerator {
        DemandGenerator {
            base: 35_000.0,
            daily_amplitude: 0.22,
            weekend_dip: 0.10,
            annual_amplitude: 0.12,
            holiday_dip: 0.12,
            noise: 0.008,
            noise_ar: 0.8,
            calendar: Calendar::periodic_holidays(25, 61, 8),
        }
    }
}

impl DemandGenerator {
    /// Deterministic daily shape: overnight trough, morning ramp, evening
    /// peak. `x` is the slot-of-day in `[0, 1)`.
    fn daily_shape(x: f64) -> f64 {
        // Sum of two von-Mises-like bumps (morning 08:00, evening 18:00)
        // minus a night trough; normalized roughly to [-1, 1].
        let bump = |center: f64, width: f64| {
            let d = (x - center).abs().min(1.0 - (x - center).abs());
            (-0.5 * (d / width) * (d / width)).exp()
        };
        let morning = bump(8.0 / 24.0, 0.09);
        let evening = bump(18.0 / 24.0, 0.10);
        let night = bump(3.5 / 24.0, 0.12);
        0.8 * morning + 1.0 * evening - 0.9 * night
    }

    /// The deterministic (noise-free) demand at slot `t`.
    pub fn expected(&self, t: TimeSlot) -> f64 {
        let x = t.slot_of_day() as f64 / SLOTS_PER_DAY as f64;
        let day = t.day() as f64;
        let mut v = self.base * (1.0 + self.daily_amplitude * Self::daily_shape(x));
        // Winter peak: cosine over a 365-day year, maximum at day 0.
        v += self.base * self.annual_amplitude * (2.0 * PI * day / 365.0).cos();
        if self.calendar.is_weekend(t) {
            v -= self.base * self.weekend_dip;
        }
        if self.calendar.is_holiday(t) {
            v -= self.base * self.holiday_dip;
        }
        v
    }

    /// Generate `len` slots starting at `start`, with seeded AR(1) noise.
    pub fn generate(&self, start: TimeSlot, len: usize, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values = Vec::with_capacity(len);
        let mut ar = 0.0f64;
        let sigma = self.base * self.noise;
        for i in 0..len {
            let t = start + i as u32;
            let eps: f64 =
                rng.gen_range(-1.0..1.0) * sigma * (1.0 - self.noise_ar * self.noise_ar).sqrt();
            ar = self.noise_ar * ar + eps;
            values.push((self.expected(t) + ar).max(0.0));
        }
        TimeSeries::new(start, values)
    }

    /// Synthetic ambient temperature (°C): annual cycle (coldest at day
    /// 0), mild diurnal cycle, plus a slow mean-reverting weather process
    /// that produces multi-day cold snaps and warm spells. This is the
    /// "weather information" input of the EGRV model (paper §5).
    pub fn temperature(&self, start: TimeSlot, len: usize, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7e47);
        let mut weather = 0.0f64; // OU deviation from the climate normal
        let mut values = Vec::with_capacity(len);
        for i in 0..len {
            let t = start + i as u32;
            let day = t.day() as f64;
            let x = t.slot_of_day() as f64 / SLOTS_PER_DAY as f64;
            let climate = 11.0 - 9.0 * (2.0 * PI * day / 365.0).cos()
                + 3.0 * (2.0 * PI * (x - 0.625)).cos().max(-1.0) * 0.5;
            let eps: f64 = rng.gen_range(-1.0..1.0) * 0.6;
            weather += 0.004 * (0.0 - weather) + eps;
            values.push(climate + weather);
        }
        TimeSeries::new(start, values)
    }

    /// Generate demand that responds to the given temperature series with
    /// an electric-heating term: `heating_coeff · max(0, 16 °C − T)` as a
    /// percentage of `base` is added to the weather-free expectation.
    /// Covers exactly the span of `temperature`.
    pub fn generate_with_temperature(
        &self,
        temperature: &TimeSeries,
        heating_coeff: f64,
        seed: u64,
    ) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ar = 0.0f64;
        let sigma = self.base * self.noise;
        let mut values = Vec::with_capacity(temperature.len());
        for (t, temp) in temperature.iter() {
            let eps: f64 =
                rng.gen_range(-1.0..1.0) * sigma * (1.0 - self.noise_ar * self.noise_ar).sqrt();
            ar = self.noise_ar * ar + eps;
            let heating = self.base * 0.01 * heating_coeff * (16.0 - temp).max(0.0);
            values.push((self.expected(t) + heating + ar).max(0.0));
        }
        TimeSeries::new(temperature.start(), values)
    }
}

/// Wind farm supply, in MW, via a mean-reverting wind-speed process and a
/// cubic turbine power curve.
#[derive(Debug, Clone)]
pub struct WindGenerator {
    /// Rated (maximum) farm output in MW.
    pub rated_power: f64,
    /// Long-run mean wind speed (m/s).
    pub mean_speed: f64,
    /// Mean-reversion rate per slot (0..1, higher = snappier).
    pub reversion: f64,
    /// Per-slot wind-speed innovation standard deviation (m/s).
    pub speed_sigma: f64,
    /// Cut-in wind speed (m/s) below which output is zero.
    pub cut_in: f64,
    /// Rated wind speed (m/s) at which output saturates.
    pub rated_speed: f64,
    /// Cut-out speed (m/s) above which turbines stop.
    pub cut_out: f64,
    /// Mild diurnal modulation amplitude on the mean speed (fraction).
    pub diurnal: f64,
}

impl Default for WindGenerator {
    fn default() -> WindGenerator {
        WindGenerator {
            rated_power: 1_000.0,
            mean_speed: 8.0,
            // Slow mean reversion + modest innovations: wind has hours of
            // persistence (good short-horizon forecasts) but no usable
            // seasonality (poor long-horizon forecasts) — the contrast
            // Figure 4(b) shows. The stationary spread (σ/√2r ≈ 0.75 m/s)
            // keeps the farm above cut-in, as for the NREL fleet-level
            // data: SMAPE would otherwise saturate on zero-power slots.
            reversion: 0.02,
            speed_sigma: 0.15,
            cut_in: 3.0,
            rated_speed: 12.0,
            cut_out: 25.0,
            diurnal: 0.08,
        }
    }
}

impl WindGenerator {
    /// Turbine power curve: fraction of rated output at wind speed `v`.
    pub fn power_fraction(&self, v: f64) -> f64 {
        if v < self.cut_in || v >= self.cut_out {
            0.0
        } else if v >= self.rated_speed {
            1.0
        } else {
            let x = (v - self.cut_in) / (self.rated_speed - self.cut_in);
            x * x * x
        }
    }

    /// Generate `len` slots of farm output starting at `start`.
    pub fn generate(&self, start: TimeSlot, len: usize, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = self.mean_speed;
        let mut values = Vec::with_capacity(len);
        for i in 0..len {
            let t = start + i as u32;
            let x = t.slot_of_day() as f64 / SLOTS_PER_DAY as f64;
            // Slightly windier in the afternoon.
            let target = self.mean_speed * (1.0 + self.diurnal * (2.0 * PI * (x - 0.6)).cos());
            let eps: f64 = rng.gen_range(-1.0..1.0) * self.speed_sigma;
            v += self.reversion * (target - v) + eps;
            v = v.max(0.0);
            values.push(self.rated_power * self.power_fraction(v));
        }
        TimeSeries::new(start, values)
    }
}

/// PV supply: clear-sky bell over daylight hours with random cloud dips.
#[derive(Debug, Clone)]
pub struct SolarGenerator {
    /// Peak clear-sky output in MW.
    pub peak_power: f64,
    /// Sunrise as fraction of day (e.g. 0.25 = 06:00).
    pub sunrise: f64,
    /// Sunset as fraction of day.
    pub sunset: f64,
    /// Mean cloudiness in `[0,1]`; output is scaled by `1 - cloud`.
    pub mean_cloud: f64,
    /// Cloud process innovation scale.
    pub cloud_sigma: f64,
}

impl Default for SolarGenerator {
    fn default() -> SolarGenerator {
        SolarGenerator {
            peak_power: 500.0,
            sunrise: 0.27,
            sunset: 0.80,
            mean_cloud: 0.3,
            cloud_sigma: 0.05,
        }
    }
}

impl SolarGenerator {
    /// Clear-sky output fraction at slot-of-day fraction `x`.
    pub fn clear_sky(&self, x: f64) -> f64 {
        if x <= self.sunrise || x >= self.sunset {
            return 0.0;
        }
        let y = (x - self.sunrise) / (self.sunset - self.sunrise);
        (PI * y).sin().max(0.0)
    }

    /// Generate `len` slots starting at `start`.
    pub fn generate(&self, start: TimeSlot, len: usize, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cloud = self.mean_cloud;
        let mut values = Vec::with_capacity(len);
        for i in 0..len {
            let t = start + i as u32;
            let x = t.slot_of_day() as f64 / SLOTS_PER_DAY as f64;
            let eps: f64 = rng.gen_range(-1.0..1.0) * self.cloud_sigma;
            cloud = (0.95 * cloud + 0.05 * self.mean_cloud + eps).clamp(0.0, 1.0);
            values.push(self.peak_power * self.clear_sky(x) * (1.0 - cloud));
        }
        TimeSeries::new(start, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::smape;
    use mirabel_core::SLOTS_PER_WEEK;

    #[test]
    fn demand_deterministic_per_seed() {
        let g = DemandGenerator::default();
        let a = g.generate(TimeSlot(0), 200, 1);
        let b = g.generate(TimeSlot(0), 200, 1);
        assert_eq!(a, b);
        let c = g.generate(TimeSlot(0), 200, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn demand_positive_and_near_base() {
        let g = DemandGenerator::default();
        let s = g.generate(TimeSlot(0), SLOTS_PER_WEEK as usize, 7);
        assert!(s.min().unwrap() > 0.0);
        let m = s.mean();
        assert!(m > 0.5 * g.base && m < 1.5 * g.base, "mean {m}");
    }

    #[test]
    fn demand_has_daily_seasonality() {
        // Expected values one day apart (same weekday type) should be far
        // more similar than values half a day apart.
        let g = DemandGenerator::default();
        let t0 = TimeSlot(10); // Monday early morning
        let same = (g.expected(t0 + SLOTS_PER_DAY) - g.expected(t0)).abs();
        let opposite = (g.expected(t0 + SLOTS_PER_DAY / 2) - g.expected(t0)).abs();
        assert!(
            same < opposite,
            "daily pattern missing: {same} vs {opposite}"
        );
    }

    #[test]
    fn demand_weekend_lower_than_weekday() {
        let g = DemandGenerator::default();
        // Tuesday noon (day 1) vs Saturday noon (day 5), same annual phase
        // approximately.
        let weekday = g.expected(TimeSlot(SLOTS_PER_DAY as i64 + 48));
        let weekend = g.expected(TimeSlot(5 * SLOTS_PER_DAY as i64 + 48));
        assert!(weekend < weekday);
    }

    #[test]
    fn temperature_has_annual_and_weather_structure() {
        let g = DemandGenerator::default();
        let temp = g.temperature(TimeSlot(0), 365 * 96, 3);
        // winter (day 0) colder than summer (day ~182)
        let winter = temp.window(TimeSlot(0), TimeSlot(96 * 7)).mean();
        let summer = temp.window(TimeSlot(96 * 180), TimeSlot(96 * 187)).mean();
        assert!(winter < summer - 10.0, "winter {winter} summer {summer}");
        // deterministic per seed
        assert_eq!(temp, g.temperature(TimeSlot(0), 365 * 96, 3));
        assert_ne!(temp, g.temperature(TimeSlot(0), 365 * 96, 4));
    }

    #[test]
    fn cold_weather_raises_demand() {
        let g = DemandGenerator {
            noise: 0.0,
            ..DemandGenerator::default()
        };
        let temp = g.temperature(TimeSlot(0), 14 * 96, 9);
        let warm = temp.map(|_| 20.0);
        let cold = temp.map(|_| 0.0);
        let d_warm = g.generate_with_temperature(&warm, 1.5, 1);
        let d_cold = g.generate_with_temperature(&cold, 1.5, 1);
        // 16 degrees of heating at 1.5 %/°C = +24 % of base everywhere
        let lift = d_cold.mean() - d_warm.mean();
        assert!((lift - 0.24 * g.base).abs() < 1.0, "lift {lift}");
        // zero coefficient = no response
        let d_flat = g.generate_with_temperature(&cold, 0.0, 1);
        assert!((d_flat.mean() - d_warm.mean()).abs() < 1.0);
    }

    #[test]
    fn wind_within_rating() {
        let g = WindGenerator::default();
        let s = g.generate(TimeSlot(0), 2000, 3);
        assert!(s.min().unwrap() >= 0.0);
        assert!(s.max().unwrap() <= g.rated_power + 1e-9);
    }

    #[test]
    fn wind_power_curve_shape() {
        let g = WindGenerator::default();
        assert_eq!(g.power_fraction(0.0), 0.0);
        assert_eq!(g.power_fraction(2.9), 0.0);
        assert!(g.power_fraction(8.0) > 0.0 && g.power_fraction(8.0) < 1.0);
        assert_eq!(g.power_fraction(12.0), 1.0);
        assert_eq!(g.power_fraction(20.0), 1.0);
        assert_eq!(g.power_fraction(25.0), 0.0);
        // monotone between cut-in and rated
        assert!(g.power_fraction(6.0) < g.power_fraction(9.0));
    }

    #[test]
    fn wind_harder_to_persist_forecast_than_demand() {
        // The property Figure 4(b) relies on: a seasonal-naive forecast
        // (same slot yesterday) is much better for demand than for wind.
        let d = DemandGenerator::default().generate(TimeSlot(0), 4 * 96, 11);
        let w = WindGenerator::default().generate(TimeSlot(0), 4 * 96, 11);
        let naive_err = |s: &TimeSeries| {
            let v = s.values();
            smape(&v[96..], &v[..v.len() - 96])
        };
        assert!(
            naive_err(&d) < naive_err(&w),
            "demand {} wind {}",
            naive_err(&d),
            naive_err(&w)
        );
    }

    #[test]
    fn solar_zero_at_night_peaks_midday() {
        let g = SolarGenerator::default();
        let s = g.generate(TimeSlot(0), 96, 5);
        assert_eq!(s.at(TimeSlot(2)), Some(0.0)); // 00:30
        assert_eq!(s.at(TimeSlot(94)), Some(0.0)); // 23:30
        let midday = s.at(TimeSlot(50)).unwrap(); // 12:30
        assert!(midday > 0.0);
        assert!(midday <= g.peak_power);
    }

    #[test]
    fn solar_clear_sky_bounds() {
        let g = SolarGenerator::default();
        assert_eq!(g.clear_sky(0.0), 0.0);
        assert_eq!(g.clear_sky(0.9), 0.0);
        assert!(g.clear_sky(0.5) > 0.9);
    }
}
