//! # mirabel-timeseries
//!
//! Time-series substrate for the MIRABEL EDMS.
//!
//! The forecasting component (paper §5) consumes streams of energy
//! measurements; its evaluation (paper §9, Figure 4) runs on the UK
//! NationalGrid half-hourly demand data set and an NREL wind data set.
//! Neither is redistributable here, so this crate provides:
//!
//! * [`TimeSeries`] — a dense, slot-aligned series container,
//! * [`stats`] — forecast accuracy metrics (SMAPE as used in Figure 4,
//!   plus MAPE/MAE/RMSE/MASE),
//! * [`calendar`] — day-of-week/holiday context used by the EGRV model,
//! * [`generator`] — synthetic multi-seasonal demand and wind-supply
//!   processes that reproduce the statistical properties the experiments
//!   rely on (documented in `DESIGN.md` §3),
//! * [`store`] — the measurement side of the Data Management component.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod generator;
pub mod series;
pub mod stats;
pub mod store;

pub use calendar::Calendar;
pub use generator::{DemandGenerator, SolarGenerator, WindGenerator};
pub use series::TimeSeries;
pub use stats::{mae, mape, mase, rmse, smape};
pub use store::MeasurementStore;
