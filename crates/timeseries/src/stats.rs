//! Forecast accuracy metrics.
//!
//! The paper reports accuracy as SMAPE (Figure 4). The definition used by
//! Taylor (and by MIRABEL's forecasting work) is
//! `mean(|f - a| / ((|a| + |f|) / 2))`, which lies in `[0, 2]`. Values in
//! the paper's Figure 4(a) are tiny (≈0.001–0.005) because they measure
//! in-sample one-step error on a smooth national demand series.

/// Symmetric mean absolute percentage error over paired slices.
///
/// Pairs where both actual and forecast are zero contribute zero error.
/// Returns 0 for empty input. Slices must have equal length.
pub fn smape(actual: &[f64], forecast: &[f64]) -> f64 {
    assert_eq!(actual.len(), forecast.len(), "length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0;
    for (&a, &f) in actual.iter().zip(forecast) {
        let denom = (a.abs() + f.abs()) / 2.0;
        if denom > 0.0 {
            acc += (f - a).abs() / denom;
        }
    }
    acc / actual.len() as f64
}

/// Mean absolute percentage error; zero-actual pairs are skipped.
pub fn mape(actual: &[f64], forecast: &[f64]) -> f64 {
    assert_eq!(actual.len(), forecast.len(), "length mismatch");
    let mut acc = 0.0;
    let mut n = 0usize;
    for (&a, &f) in actual.iter().zip(forecast) {
        if a.abs() > 0.0 {
            acc += ((f - a) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        acc / n as f64
    }
}

/// Mean absolute error.
pub fn mae(actual: &[f64], forecast: &[f64]) -> f64 {
    assert_eq!(actual.len(), forecast.len(), "length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(forecast)
        .map(|(a, f)| (f - a).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Root mean squared error.
pub fn rmse(actual: &[f64], forecast: &[f64]) -> f64 {
    assert_eq!(actual.len(), forecast.len(), "length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    (actual
        .iter()
        .zip(forecast)
        .map(|(a, f)| (f - a) * (f - a))
        .sum::<f64>()
        / actual.len() as f64)
        .sqrt()
}

/// Mean absolute scaled error with seasonal naive scaling at lag `m`.
///
/// `history` supplies the in-sample series used for the scaling factor.
/// Returns `f64::INFINITY` when the naive error is zero (constant history).
pub fn mase(history: &[f64], actual: &[f64], forecast: &[f64], m: usize) -> f64 {
    assert_eq!(actual.len(), forecast.len(), "length mismatch");
    assert!(m >= 1);
    if history.len() <= m || actual.is_empty() {
        return f64::INFINITY;
    }
    let naive = history
        .windows(m + 1)
        .map(|w| (w[m] - w[0]).abs())
        .sum::<f64>()
        / (history.len() - m) as f64;
    if naive == 0.0 {
        return f64::INFINITY;
    }
    mae(actual, forecast) / naive
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smape_perfect_is_zero() {
        assert_eq!(smape(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn smape_bounded_by_two() {
        // opposite-sign or total miss saturates at 2
        let s = smape(&[1.0], &[0.0]);
        assert!((s - 2.0).abs() < 1e-12);
        assert!(smape(&[1.0, 1.0], &[0.0, 2.0]) <= 2.0);
    }

    #[test]
    fn smape_symmetric() {
        let a = smape(&[100.0], &[110.0]);
        let b = smape(&[110.0], &[100.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn smape_zero_pairs_ignored() {
        assert_eq!(smape(&[0.0, 1.0], &[0.0, 1.0]), 0.0);
        assert_eq!(smape(&[], &[]), 0.0);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let m = mape(&[0.0, 2.0], &[5.0, 3.0]);
        assert!((m - 0.5).abs() < 1e-12);
        assert_eq!(mape(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn mae_rmse_basic() {
        assert!((mae(&[1.0, 2.0], &[2.0, 0.0]) - 1.5).abs() < 1e-12);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(mae(&[], &[]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn mase_scaling() {
        // history with seasonal-naive MAE of 1.0 at m=1
        let hist = [0.0, 1.0, 2.0, 3.0];
        let m = mase(&hist, &[4.0], &[5.0], 1);
        assert!((m - 1.0).abs() < 1e-12);
        // constant history -> infinite MASE
        assert!(mase(&[1.0, 1.0, 1.0], &[1.0], &[2.0], 1).is_infinite());
        // degenerate history shorter than lag
        assert!(mase(&[1.0], &[1.0], &[1.0], 4).is_infinite());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        smape(&[1.0], &[1.0, 2.0]);
    }
}
