//! Measurement storage — the time-series side of MIRABEL's Data Management
//! component (paper §3: "all historical and current time demand/supply …
//! are stored and managed by the Data Management component").
//!
//! The store keeps one dense series per (actor, metric) key, supports
//! out-of-order but gap-free appends, windows for model training, and the
//! "current time" read the control component uses.

use crate::series::TimeSeries;
use mirabel_core::{ActorId, TimeSlot};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a stored series measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Metered consumption (kWh per slot).
    Consumption,
    /// Metered production (kWh per slot).
    Production,
    /// Forecast consumption.
    ForecastConsumption,
    /// Forecast production.
    ForecastProduction,
}

/// Error from the measurement store.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// An append would leave a gap between the series end and the new slot.
    Gap {
        /// Where the stored series currently ends.
        series_end: TimeSlot,
        /// Where the rejected append started.
        attempted: TimeSlot,
    },
    /// An append would overwrite existing observations.
    Overlap {
        /// Where the stored series currently ends.
        series_end: TimeSlot,
        /// Where the rejected append started.
        attempted: TimeSlot,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Gap {
                series_end,
                attempted,
            } => write!(f, "gap: series ends at {series_end}, append at {attempted}"),
            StoreError::Overlap {
                series_end,
                attempted,
            } => write!(
                f,
                "overlap: series ends at {series_end}, append at {attempted}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Thread-safe in-memory measurement store.
///
/// Series are keyed in an ordered map so every whole-store walk (e.g.
/// [`aggregate_window`](Self::aggregate_window)) visits keys in the
/// same order on every run — the workspace-wide determinism convention.
#[derive(Debug, Default)]
pub struct MeasurementStore {
    inner: RwLock<BTreeMap<(ActorId, Metric), TimeSeries>>,
}

impl MeasurementStore {
    /// Empty store.
    pub fn new() -> MeasurementStore {
        MeasurementStore::default()
    }

    /// Append observations for `(actor, metric)` starting at `start`.
    /// The first append establishes the series origin; subsequent appends
    /// must be exactly contiguous (`start == series end`).
    pub fn append(
        &self,
        actor: ActorId,
        metric: Metric,
        start: TimeSlot,
        values: &[f64],
    ) -> Result<(), StoreError> {
        let mut map = self.inner.write();
        match map.get_mut(&(actor, metric)) {
            None => {
                map.insert((actor, metric), TimeSeries::new(start, values.to_vec()));
                Ok(())
            }
            Some(series) => {
                let end = series.end();
                if start > end {
                    return Err(StoreError::Gap {
                        series_end: end,
                        attempted: start,
                    });
                }
                if start < end {
                    return Err(StoreError::Overlap {
                        series_end: end,
                        attempted: start,
                    });
                }
                series.extend(values.iter().copied());
                Ok(())
            }
        }
    }

    /// Full series for a key, if present.
    pub fn series(&self, actor: ActorId, metric: Metric) -> Option<TimeSeries> {
        self.inner.read().get(&(actor, metric)).cloned()
    }

    /// Window `[from, to)` of a series (empty if the key is missing).
    pub fn window(
        &self,
        actor: ActorId,
        metric: Metric,
        from: TimeSlot,
        to: TimeSlot,
    ) -> TimeSeries {
        self.inner
            .read()
            .get(&(actor, metric))
            .map(|s| s.window(from, to))
            .unwrap_or_else(|| TimeSeries::empty(from))
    }

    /// Most recent observation for a key.
    pub fn latest(&self, actor: ActorId, metric: Metric) -> Option<(TimeSlot, f64)> {
        self.inner.read().get(&(actor, metric)).and_then(|s| {
            if s.is_empty() {
                None
            } else {
                let t = s.end() - 1u32;
                Some((t, s.at(t).unwrap()))
            }
        })
    }

    /// Sum of all actors' series for `metric` over `[from, to)` — the
    /// BRP-level aggregate view.
    pub fn aggregate_window(&self, metric: Metric, from: TimeSlot, to: TimeSlot) -> TimeSeries {
        let map = self.inner.read();
        let len = (to - from).max(0) as usize;
        let mut acc = vec![0.0; len];
        for ((_, m), series) in map.iter() {
            if *m != metric {
                continue;
            }
            for (i, slot) in (0..len).map(|i| (i, from + i as u32)) {
                if let Some(v) = series.at(slot) {
                    acc[i] += v;
                }
            }
        }
        TimeSeries::new(from, acc)
    }

    /// Number of stored series.
    pub fn series_count(&self) -> usize {
        self.inner.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ActorId = ActorId(1);
    const B: ActorId = ActorId(2);

    #[test]
    fn append_and_read() {
        let store = MeasurementStore::new();
        store
            .append(A, Metric::Consumption, TimeSlot(0), &[1.0, 2.0])
            .unwrap();
        store
            .append(A, Metric::Consumption, TimeSlot(2), &[3.0])
            .unwrap();
        let s = store.series(A, Metric::Consumption).unwrap();
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(
            store.latest(A, Metric::Consumption),
            Some((TimeSlot(2), 3.0))
        );
    }

    #[test]
    fn gap_rejected() {
        let store = MeasurementStore::new();
        store
            .append(A, Metric::Consumption, TimeSlot(0), &[1.0])
            .unwrap();
        let err = store
            .append(A, Metric::Consumption, TimeSlot(5), &[2.0])
            .unwrap_err();
        assert!(matches!(err, StoreError::Gap { .. }));
    }

    #[test]
    fn overlap_rejected() {
        let store = MeasurementStore::new();
        store
            .append(A, Metric::Consumption, TimeSlot(0), &[1.0, 2.0])
            .unwrap();
        let err = store
            .append(A, Metric::Consumption, TimeSlot(1), &[9.0])
            .unwrap_err();
        assert!(matches!(err, StoreError::Overlap { .. }));
    }

    #[test]
    fn keys_are_independent() {
        let store = MeasurementStore::new();
        store
            .append(A, Metric::Consumption, TimeSlot(0), &[1.0])
            .unwrap();
        store
            .append(A, Metric::Production, TimeSlot(10), &[5.0])
            .unwrap();
        store
            .append(B, Metric::Consumption, TimeSlot(0), &[2.0])
            .unwrap();
        assert_eq!(store.series_count(), 3);
        assert_eq!(
            store.series(A, Metric::Production).unwrap().start(),
            TimeSlot(10)
        );
    }

    #[test]
    fn aggregate_window_sums_actors() {
        let store = MeasurementStore::new();
        store
            .append(A, Metric::Consumption, TimeSlot(0), &[1.0, 2.0, 3.0])
            .unwrap();
        store
            .append(B, Metric::Consumption, TimeSlot(1), &[10.0, 10.0])
            .unwrap();
        store
            .append(A, Metric::Production, TimeSlot(0), &[99.0, 99.0, 99.0])
            .unwrap();
        let agg = store.aggregate_window(Metric::Consumption, TimeSlot(0), TimeSlot(3));
        assert_eq!(agg.values(), &[1.0, 12.0, 13.0]);
    }

    #[test]
    fn missing_key_is_empty() {
        let store = MeasurementStore::new();
        assert!(store.series(A, Metric::Consumption).is_none());
        assert!(store
            .window(A, Metric::Consumption, TimeSlot(0), TimeSlot(5))
            .is_empty());
        assert_eq!(store.latest(A, Metric::Consumption), None);
    }
}
