//! Calendar context for forecasting.
//!
//! The EGRV model (paper §5) conditions on "weather information, calendar
//! events (e.g., holidays)". This module supplies the calendar part:
//! day-of-week comes from the epoch convention in `mirabel-core` (day 0 is
//! a Monday); holidays are an explicit, queryable set of day indices.

use mirabel_core::TimeSlot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A calendar: weekday structure plus a set of holiday days.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Calendar {
    holidays: BTreeSet<i64>,
}

impl Calendar {
    /// Calendar without holidays.
    pub fn new() -> Calendar {
        Calendar::default()
    }

    /// Mark day index `day` (slots `day*96 .. (day+1)*96`) as a holiday.
    pub fn add_holiday(&mut self, day: i64) -> &mut Self {
        self.holidays.insert(day);
        self
    }

    /// Calendar with the given holiday day indices.
    pub fn with_holidays(days: impl IntoIterator<Item = i64>) -> Calendar {
        Calendar {
            holidays: days.into_iter().collect(),
        }
    }

    /// A repeating synthetic holiday pattern: every `period`-th day starting
    /// at `first`, for `count` occurrences. Used by the demand generator.
    pub fn periodic_holidays(first: i64, period: i64, count: usize) -> Calendar {
        assert!(period >= 1);
        Calendar {
            holidays: (0..count as i64).map(|k| first + k * period).collect(),
        }
    }

    /// Whether the slot falls on a holiday.
    pub fn is_holiday(&self, t: TimeSlot) -> bool {
        self.holidays.contains(&t.day())
    }

    /// Whether the slot falls on a Saturday or Sunday.
    pub fn is_weekend(&self, t: TimeSlot) -> bool {
        t.day_of_week() >= 5
    }

    /// Whether the slot is a working day (neither weekend nor holiday).
    pub fn is_working_day(&self, t: TimeSlot) -> bool {
        !self.is_weekend(t) && !self.is_holiday(t)
    }

    /// Number of registered holidays.
    pub fn holiday_count(&self) -> usize {
        self.holidays.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirabel_core::SLOTS_PER_DAY;

    #[test]
    fn weekends() {
        let c = Calendar::new();
        // epoch day 0 = Monday
        assert!(!c.is_weekend(TimeSlot(0)));
        assert!(c.is_weekend(TimeSlot(5 * SLOTS_PER_DAY as i64))); // Saturday
        assert!(c.is_weekend(TimeSlot(6 * SLOTS_PER_DAY as i64))); // Sunday
        assert!(!c.is_weekend(TimeSlot(7 * SLOTS_PER_DAY as i64))); // next Monday
    }

    #[test]
    fn holidays() {
        let mut c = Calendar::new();
        c.add_holiday(2);
        assert!(c.is_holiday(TimeSlot(2 * SLOTS_PER_DAY as i64)));
        assert!(c.is_holiday(TimeSlot(2 * SLOTS_PER_DAY as i64 + 95)));
        assert!(!c.is_holiday(TimeSlot(3 * SLOTS_PER_DAY as i64)));
    }

    #[test]
    fn working_day_combines_both() {
        let c = Calendar::with_holidays([1]);
        assert!(c.is_working_day(TimeSlot(0))); // Monday, not holiday
        assert!(!c.is_working_day(TimeSlot(SLOTS_PER_DAY as i64))); // Tuesday holiday
        assert!(!c.is_working_day(TimeSlot(5 * SLOTS_PER_DAY as i64))); // Saturday
    }

    #[test]
    fn periodic() {
        let c = Calendar::periodic_holidays(10, 30, 3);
        assert_eq!(c.holiday_count(), 3);
        assert!(c.is_holiday(TimeSlot(10 * SLOTS_PER_DAY as i64)));
        assert!(c.is_holiday(TimeSlot(40 * SLOTS_PER_DAY as i64)));
        assert!(c.is_holiday(TimeSlot(70 * SLOTS_PER_DAY as i64)));
        assert!(!c.is_holiday(TimeSlot(100 * SLOTS_PER_DAY as i64)));
    }
}
